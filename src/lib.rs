//! # nowmp — Transparent Adaptive Parallelism on NOWs using OpenMP
//!
//! A from-scratch Rust reproduction of Scherer, Lu, Gross & Zwaenepoel,
//! *"Transparent Adaptive Parallelism on NOWs using OpenMP"* (PPoPP
//! 1999): an OpenMP-style fork-join runtime over a TreadMarks-like
//! software distributed shared memory, extended so that processes can
//! **join and leave a running computation transparently** — with grace
//! periods, urgent migration, and checkpoint-based fault tolerance.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`util`] | `nowmp-util` | wire codec, CRC-32, zero-run encoding, timing |
//! | [`net`] | `nowmp-net` | the simulated switched-Ethernet NOW |
//! | [`tmk`] | `nowmp-tmk` | the TreadMarks-like DSM (LRC, twins/diffs, GC, fork-join) |
//! | [`ckpt`] | `nowmp-ckpt` | the libckpt-substitute checkpoint format |
//! | [`core`] | `nowmp-core` | the adaptive cluster runtime (the paper's contribution) |
//! | [`omp`] | `nowmp-omp` | the OpenMP-style programming layer |
//! | [`apps`] | `nowmp-apps` | Jacobi, Gauss, 3D-FFT, NBF |
//!
//! Start with `examples/quickstart.rs`, then `examples/adaptive_jacobi.rs`.

pub use nowmp_apps as apps;
pub use nowmp_ckpt as ckpt;
pub use nowmp_core as core;
pub use nowmp_net as net;
pub use nowmp_omp as omp;
pub use nowmp_tmk as tmk;
pub use nowmp_util as util;

/// Convenience prelude for applications.
pub mod prelude {
    pub use nowmp_core::{
        AdaptHandle, Cluster, ClusterConfig, LeaveSel, LeaveStrategy, ReassignPolicy,
    };
    pub use nowmp_net::{CostModel, Gpid, HostId, NetModel};
    pub use nowmp_omp::{JobSpec, OmpCtx, OmpProgram, OmpSystem, Params};
    pub use nowmp_tmk::{DsmConfig, ElemKind};
    pub use nowmp_util::{Clock, Tick};
}
