//! Criterion benchmarks of live DSM synchronization paths (emulation
//! off — these time the protocol implementation, not the simulated
//! wire): fork/join, in-region barriers, distributed locks, page fetch
//! and diff fetch.

use criterion::{criterion_group, criterion_main, Criterion};
use nowmp_net::{HostId, NetModel, Network};
use nowmp_tmk::shared::SharedF64Vec;
use nowmp_tmk::system::{DsmSystem, MasterCtl, RegionRunner};
use nowmp_tmk::{DsmConfig, TmkCtx};
use std::sync::Arc;

const R_NOP: u32 = 0;
const R_BARRIER: u32 = 1;
const R_LOCK: u32 = 2;
const R_TOUCH_ALL: u32 = 3;
const R_WRITE_ALL: u32 = 4;

struct App;
impl RegionRunner for App {
    fn run(&self, region: u32, ctx: &mut TmkCtx) {
        match region {
            R_NOP => {}
            R_BARRIER => ctx.barrier(),
            R_LOCK => {
                ctx.lock(3);
                ctx.unlock(3);
            }
            R_TOUCH_ALL => {
                let v = SharedF64Vec::lookup(ctx, "v");
                let mut buf = vec![0.0; v.len()];
                v.read_into(ctx, 0, &mut buf);
            }
            R_WRITE_ALL => {
                if ctx.pid() == 1 {
                    let v = SharedF64Vec::lookup(ctx, "v");
                    for i in 0..v.len() {
                        let cur = v.get(ctx, i);
                        v.set(ctx, i, cur + 1.0);
                    }
                }
            }
            _ => unreachable!(),
        }
    }
}

fn system(procs: usize) -> MasterCtl {
    let net = Network::new(procs, 1, NetModel::disabled());
    let sys = DsmSystem::new(net, DsmConfig::default_4k(), Arc::new(App));
    let mut master = sys.start_master(HostId(0));
    let mut workers = Vec::new();
    for i in 1..procs {
        workers.push(sys.spawn_worker(HostId(i as u16), master.gpid(), workers.clone()));
    }
    master.alloc("v", 2048, nowmp_tmk::ElemKind::F64);
    master.init_team(&workers);
    master
}

fn bench_forkjoin(c: &mut Criterion) {
    for procs in [2usize, 4] {
        let mut master = system(procs);
        c.bench_function(&format!("fork_join_nop_{procs}p"), |b| {
            b.iter(|| master.parallel(R_NOP, &[]))
        });
        master.shutdown();
    }
}

fn bench_barrier(c: &mut Criterion) {
    let mut master = system(4);
    c.bench_function("in_region_barrier_4p", |b| {
        b.iter(|| master.parallel(R_BARRIER, &[]))
    });
    master.shutdown();
}

fn bench_lock(c: &mut Criterion) {
    let mut master = system(4);
    c.bench_function("lock_unlock_all_4p", |b| {
        b.iter(|| master.parallel(R_LOCK, &[]))
    });
    master.shutdown();
}

/// Raw throughput of the vendored lock-free channel the transport
/// rides on: batched same-thread send/recv (the service-loop burst
/// shape) and a cross-thread ping-pong (the request/reply shape).
fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");

    let (tx, rx) = crossbeam_channel::unbounded::<u64>();
    g.bench_function("send_recv_burst_64", |b| {
        b.iter(|| {
            for i in 0..64u64 {
                tx.send(i).unwrap();
            }
            let mut sum = 0u64;
            for _ in 0..64 {
                sum = sum.wrapping_add(rx.recv().unwrap());
            }
            sum
        })
    });

    let (req_tx, req_rx) = crossbeam_channel::unbounded::<u64>();
    let (rep_tx, rep_rx) = crossbeam_channel::unbounded::<u64>();
    let echo = std::thread::spawn(move || {
        while let Ok(v) = req_rx.recv() {
            if v == u64::MAX {
                break;
            }
            rep_tx.send(v + 1).unwrap();
        }
    });
    g.bench_function("cross_thread_pingpong", |b| {
        b.iter(|| {
            req_tx.send(7).unwrap();
            rep_rx.recv().unwrap()
        })
    });
    req_tx.send(u64::MAX).unwrap();
    echo.join().unwrap();
    g.finish();
}

fn bench_page_traffic(c: &mut Criterion) {
    let mut master = system(2);
    // Warm: both sides own copies; each iteration writes then fetches
    // diffs for 2048 slots = 32 pages.
    c.bench_function("write_then_fetch_32pages_2p", |b| {
        b.iter(|| {
            master.parallel(R_WRITE_ALL, &[]);
            master.parallel(R_TOUCH_ALL, &[]);
        })
    });
    master.shutdown();
}

criterion_group!(
    benches,
    bench_forkjoin,
    bench_barrier,
    bench_lock,
    bench_channel,
    bench_page_traffic
);
criterion_main!(benches);
