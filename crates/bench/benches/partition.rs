//! Criterion benchmarks of the iteration partitioners (the code the
//! OpenMP compiler emits and every fork re-runs) and the Figure 3
//! overlap analytics.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nowmp_core::{moved_fraction_on_leave, reassign, ReassignPolicy};
use nowmp_net::Gpid;
use nowmp_omp::sched;

fn bench_static(c: &mut Criterion) {
    c.bench_function("static_block_8", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for pid in 0..8 {
                let r = sched::static_block(black_box(0..1_000_000), pid, 8);
                acc += r.end - r.start;
            }
            acc
        })
    });
}

fn bench_chunks(c: &mut Criterion) {
    c.bench_function("static_chunks_collect", |b| {
        b.iter(|| sched::static_chunks(black_box(0..100_000), 64, 3, 8).count())
    });
    c.bench_function("guided_sizes", |b| {
        b.iter(|| sched::guided_chunk_sizes(black_box(100_000), 16, 8))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("moved_fraction_on_leave_8", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for l in 1..8 {
                acc += moved_fraction_on_leave(8, black_box(l));
            }
            acc
        })
    });
}

fn bench_reassign(c: &mut Criterion) {
    let old: Vec<Gpid> = (0..64).map(Gpid).collect();
    let leavers = vec![Gpid(10), Gpid(30)];
    let joiners = vec![Gpid(100)];
    c.bench_function("reassign_compact_64", |b| {
        b.iter(|| {
            reassign(
                ReassignPolicy::CompactKeepOrder,
                black_box(&old),
                black_box(&leavers),
                black_box(&joiners),
            )
        })
    });
    c.bench_function("reassign_fillgaps_64", |b| {
        b.iter(|| {
            reassign(
                ReassignPolicy::FillGaps,
                black_box(&old),
                black_box(&leavers),
                black_box(&joiners),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_static,
    bench_chunks,
    bench_fig3,
    bench_reassign
);
criterion_main!(benches);
