//! Criterion micro-benchmarks of the DSM protocol primitives: diff
//! creation/application, twin snapshots, vector clocks, the wire codec,
//! zero-run compression, CRC, the full inbound apply path, and the
//! sharded page table (uncontended and under cross-thread load).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nowmp_tmk::diff::Diff;
use nowmp_tmk::page::{PageBuf, PageMeta, PageState};
use nowmp_tmk::types::Vc;
use nowmp_tmk::PageTable;
use nowmp_util::wire::Wire;
use nowmp_util::{crc32, zrle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    for &changed in &[1usize, 64, 512] {
        let twin = vec![0u64; 512]; // one 4 KB page
        let page = PageBuf::from_words(&twin);
        for i in 0..changed {
            page.store(i * (512 / changed.max(1)) % 512, i as u64 + 1);
        }
        g.bench_function(&format!("create_4k_{changed}w"), |b| {
            b.iter(|| Diff::create(black_box(&twin), black_box(&page), 0))
        });
        let d = Diff::create(&twin, &page, 0);
        let target = PageBuf::from_words(&twin);
        g.bench_function(&format!("apply_4k_{changed}w"), |b| {
            b.iter(|| d.apply(black_box(&target)))
        });
        g.bench_function(&format!("wire_roundtrip_{changed}w"), |b| {
            b.iter(|| {
                let bytes = d.to_wire();
                Diff::from_wire(black_box(&bytes)).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_twin(c: &mut Criterion) {
    let page = PageBuf::new(512);
    c.bench_function("twin_snapshot_4k", |b| {
        b.iter(|| black_box(&page).snapshot())
    });
}

fn bench_vc(c: &mut Criterion) {
    let mut a = Vc::new(8);
    let mut bb = Vc::new(8);
    for i in 0..8 {
        a.set(i, (i as u32) * 3);
        bb.set(i, 20 - (i as u32) * 2);
    }
    c.bench_function("vc_merge_8", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.merge(black_box(&bb));
            x
        })
    });
    c.bench_function("vc_dominates_8", |b| {
        b.iter(|| black_box(&a).dominates(black_box(&bb)))
    });
}

fn bench_zrle(c: &mut Criterion) {
    let mut g = c.benchmark_group("zrle");
    let zeros = vec![0u64; 512];
    let mut sparse = vec![0u64; 512];
    for i in (0..512).step_by(16) {
        sparse[i] = i as u64 + 1;
    }
    let dense: Vec<u64> = (0..512u64).map(|i| i | 1).collect();
    for (name, data) in [("zero", &zeros), ("sparse", &sparse), ("dense", &dense)] {
        g.bench_function(&format!("compress_4k_{name}"), |b| {
            b.iter(|| zrle::compress(black_box(data)))
        });
        let buf = zrle::compress(data);
        g.bench_function(&format!("decompress_4k_{name}"), |b| {
            b.iter(|| zrle::decompress(black_box(&buf)).unwrap())
        });
    }
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xABu8; 4096];
    c.bench_function("crc32_4k", |b| b.iter(|| crc32(black_box(&data))));
}

/// The full inbound path a diff fetch reply takes: wire decode plus
/// apply into the live page — what `settle_buffered_diffs` and the
/// piggyback path pay per page.
fn bench_apply_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply_path");
    for &changed in &[1usize, 64, 512] {
        let twin = vec![0u64; 512];
        let page = PageBuf::from_words(&twin);
        for i in 0..changed {
            page.store(i * (512 / changed.max(1)) % 512, i as u64 + 1);
        }
        let bytes = Diff::create(&twin, &page, 0).to_wire();
        let target = PageBuf::from_words(&twin);
        g.bench_function(&format!("decode_apply_4k_{changed}w"), |b| {
            b.iter(|| {
                let d = Diff::from_wire(black_box(&bytes)).unwrap();
                d.apply(black_box(&target));
                d.words()
            })
        });
        // Apply alone, decode excluded — the lane that regressed 2×
        // when descriptors and payload lived in separate allocations
        // (two cache streams per apply). The header-prefixed layout
        // pins it back to a single-buffer walk.
        let d = Diff::from_wire(&bytes).unwrap();
        g.bench_function(&format!("apply_only_4k_{changed}w"), |b| {
            b.iter(|| d.apply(black_box(&target)))
        });
    }
    g.finish();
}

/// The fault-path metadata flip both table variants under test do per
/// page (same shape as the `hotpath` bin's contention lanes).
#[inline]
fn touch(meta: &mut PageMeta, round: u64) {
    meta.state = PageState::Write;
    meta.dirty = !meta.dirty;
    meta.zero_lent = round.is_multiple_of(2);
    meta.state = PageState::Read;
}

/// Page-table guard acquisition cost: a 64-page sweep through shard
/// guards vs the coarse single mutex it replaced, uncontended and
/// with a background thread hammering *other* pages. The sharded
/// sweep should be insensitive to the load; the coarse one queues.
fn bench_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("table");

    let table = Arc::new(PageTable::new());
    table.ensure(1024, nowmp_net::Gpid(1));
    let coarse: Arc<Mutex<Vec<PageMeta>>> = Arc::new(Mutex::new(
        (0..1024)
            .map(|_| PageMeta::new(nowmp_net::Gpid(1)))
            .collect(),
    ));

    let mut round = 0u64;
    g.bench_function("sharded_touch_64p", |b| {
        b.iter(|| {
            round += 1;
            for p in 0..64u32 {
                touch(&mut table.guard(p), round);
            }
        })
    });
    g.bench_function("coarse_touch_64p", |b| {
        b.iter(|| {
            round += 1;
            for p in 0..64usize {
                touch(&mut coarse.lock()[p], round);
            }
        })
    });

    // Same sweeps with one background thread touching pages 512..576
    // (disjoint shard blocks from the measured 0..64 sweep).
    let stop = Arc::new(AtomicBool::new(false));
    let bg = {
        let table = Arc::clone(&table);
        let coarse = Arc::clone(&coarse);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut r = 0u64;
            while !stop.load(Ordering::Acquire) {
                r += 1;
                for p in 512..576u32 {
                    touch(&mut table.guard(p), r);
                    touch(&mut coarse.lock()[p as usize], r);
                }
            }
        })
    };
    g.bench_function("sharded_touch_64p_under_load", |b| {
        b.iter(|| {
            round += 1;
            for p in 0..64u32 {
                touch(&mut table.guard(p), round);
            }
        })
    });
    g.bench_function("coarse_touch_64p_under_load", |b| {
        b.iter(|| {
            round += 1;
            for p in 0..64usize {
                touch(&mut coarse.lock()[p], round);
            }
        })
    });
    stop.store(true, Ordering::Release);
    bg.join().unwrap();
    g.finish();
}

criterion_group!(
    benches,
    bench_diff,
    bench_twin,
    bench_vc,
    bench_zrle,
    bench_crc,
    bench_apply_path,
    bench_table
);
criterion_main!(benches);
