//! Criterion micro-benchmarks of the DSM protocol primitives: diff
//! creation/application, twin snapshots, vector clocks, the wire codec,
//! zero-run compression and CRC.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nowmp_tmk::diff::Diff;
use nowmp_tmk::page::PageBuf;
use nowmp_tmk::types::Vc;
use nowmp_util::wire::Wire;
use nowmp_util::{crc32, zrle};

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    for &changed in &[1usize, 64, 512] {
        let twin = vec![0u64; 512]; // one 4 KB page
        let page = PageBuf::from_words(&twin);
        for i in 0..changed {
            page.store(i * (512 / changed.max(1)) % 512, i as u64 + 1);
        }
        g.bench_function(&format!("create_4k_{changed}w"), |b| {
            b.iter(|| Diff::create(black_box(&twin), black_box(&page), 0))
        });
        let d = Diff::create(&twin, &page, 0);
        let target = PageBuf::from_words(&twin);
        g.bench_function(&format!("apply_4k_{changed}w"), |b| {
            b.iter(|| d.apply(black_box(&target)))
        });
        g.bench_function(&format!("wire_roundtrip_{changed}w"), |b| {
            b.iter(|| {
                let bytes = d.to_wire();
                Diff::from_wire(black_box(&bytes)).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_twin(c: &mut Criterion) {
    let page = PageBuf::new(512);
    c.bench_function("twin_snapshot_4k", |b| {
        b.iter(|| black_box(&page).snapshot())
    });
}

fn bench_vc(c: &mut Criterion) {
    let mut a = Vc::new(8);
    let mut bb = Vc::new(8);
    for i in 0..8 {
        a.set(i, (i as u32) * 3);
        bb.set(i, 20 - (i as u32) * 2);
    }
    c.bench_function("vc_merge_8", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.merge(black_box(&bb));
            x
        })
    });
    c.bench_function("vc_dominates_8", |b| {
        b.iter(|| black_box(&a).dominates(black_box(&bb)))
    });
}

fn bench_zrle(c: &mut Criterion) {
    let mut g = c.benchmark_group("zrle");
    let zeros = vec![0u64; 512];
    let mut sparse = vec![0u64; 512];
    for i in (0..512).step_by(16) {
        sparse[i] = i as u64 + 1;
    }
    let dense: Vec<u64> = (0..512u64).map(|i| i | 1).collect();
    for (name, data) in [("zero", &zeros), ("sparse", &sparse), ("dense", &dense)] {
        g.bench_function(&format!("compress_4k_{name}"), |b| {
            b.iter(|| zrle::compress(black_box(data)))
        });
        let buf = zrle::compress(data);
        g.bench_function(&format!("decompress_4k_{name}"), |b| {
            b.iter(|| zrle::decompress(black_box(&buf)).unwrap())
        });
    }
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xABu8; 4096];
    c.bench_function("crc32_4k", |b| b.iter(|| crc32(black_box(&data))));
}

criterion_group!(benches, bench_diff, bench_twin, bench_vc, bench_zrle, bench_crc);
criterion_main!(benches);
