//! Quantitative Table 1 reproduction on the virtual clock.
//!
//! With the per-kernel FLOP-calibrated `CostModel` charging compute at
//! every worksharing chunk boundary and the §5.1 wire model charging
//! communication, the simulated runtimes at 1/4/8 processes yield
//! *speedup values* — not just orderings — that must land on the pinned
//! paper-shaped targets below (tolerance ±15%; see `docs/TIME.md` for
//! the calibration table and how the targets were derived).
//!
//! Two apps cover the paper's two regimes:
//! * **Jacobi** — the regular, compute-dominated stencil: near-linear
//!   scaling (the paper's headline Table 1 behavior);
//! * **NBF** — the irregular kernel: scattered partner reads turn into
//!   page traffic, so scaling is clearly sub-linear, again matching the
//!   paper's shape for the irregular application.

use nowmp_apps::{jacobi::Jacobi, nbf::Nbf, with_kernel_costs, Kernel};
use nowmp_bench::measure;
use nowmp_core::ClusterConfig;
use nowmp_net::{CostModel, NetModel};
use nowmp_tmk::{CollectiveConfig, DataPlaneConfig, DsmConfig};
use nowmp_util::Clock;

/// Tolerance on speedup values, as stated in the acceptance criteria.
const TOL: f64 = 0.15;

fn simulated_secs(kernel: &dyn Kernel, procs: usize, iters: usize) -> f64 {
    // The 1999 system under reproduction used the flat fork
    // broadcast with flat write-notice payloads and strict demand
    // paging; the targets below calibrate against exactly those
    // wire sizes and fault round-trips. The tree/RLE and overlap
    // redesigns are measured separately (whatif_scale --broadcast /
    // --dataplane).
    let cfg = ClusterConfig::test(procs, procs)
        .with_net_model(NetModel::paper_1999())
        .with_cost_model(with_kernel_costs(CostModel::paper_1999(), kernel))
        .with_dsm(DsmConfig::default_4k())
        .with_collectives(CollectiveConfig::all_flat())
        .with_dataplane(DataPlaneConfig::demand())
        .with_clock(Clock::new_virtual());
    measure(kernel, cfg, iters, true, |_, _| {}, false).secs
}

fn assert_speedup(app: &str, procs: usize, measured: f64, target: f64) {
    let rel = (measured - target).abs() / target;
    println!(
        "{app} S({procs}) = {measured:.3} (target {target:.2}, delta {:.1}%)",
        rel * 100.0
    );
    assert!(
        rel <= TOL,
        "{app} speedup at {procs} procs: measured {measured:.3}, target {target:.2} \
         (off by {:.1}% > {:.0}%)",
        rel * 100.0,
        TOL * 100.0
    );
}

#[test]
fn jacobi_reproduces_table1_speedups() {
    let k = Jacobi::new(1536);
    let iters = 4;
    let t1 = simulated_secs(&k, 1, iters);
    let t4 = simulated_secs(&k, 4, iters);
    let t8 = simulated_secs(&k, 8, iters);
    println!("Jacobi 1536²: T1={t1:.3}s T4={t4:.3}s T8={t8:.3}s");
    assert_speedup("Jacobi", 4, t1 / t4, 3.4);
    assert_speedup("Jacobi", 8, t1 / t8, 5.2);
}

#[test]
fn nbf_reproduces_table1_speedups() {
    let k = Nbf::new(4096, 64);
    let iters = 2;
    let t1 = simulated_secs(&k, 1, iters);
    let t4 = simulated_secs(&k, 4, iters);
    let t8 = simulated_secs(&k, 8, iters);
    println!("NBF 4096x64: T1={t1:.3}s T4={t4:.3}s T8={t8:.3}s");
    assert_speedup("NBF", 4, t1 / t4, 3.0);
    assert_speedup("NBF", 8, t1 / t8, 4.5);
}
