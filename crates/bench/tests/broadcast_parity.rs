//! Flat-vs-tree collective parity and win checks under `VirtualClock`.
//!
//! The acceptance bar for the treed collectives — the ISSUE 5 fork
//! broadcast *and* the ISSUE 6 join reduce / barrier release — is that
//! they must be *semantically invisible*: identical results and
//! identical adaptation event orderings against the flat 1999
//! baseline, while measurably unloading the master's link (outbound
//! for the fork tree, inbound for the reduce tree). The flat side runs
//! the legacy wire (flat fan-out, flat collection, flat notices); the
//! tree side runs the redesign; both on the unscaled paper network
//! model at zero wall cost.

use nowmp_apps::jacobi::Jacobi;
use nowmp_bench::{measure, RunResult};
use nowmp_core::{ClusterConfig, EventKind, LeaveSel, LogEntry};
use nowmp_net::NetModel;
use nowmp_omp::OmpSystem;
use nowmp_tmk::{Broadcast, CollectiveConfig, DsmConfig};
use nowmp_util::Clock;
use std::time::Duration;

fn cfg(hosts: usize, procs: usize, collectives: CollectiveConfig) -> ClusterConfig {
    ClusterConfig::test(hosts, procs)
        .with_net_model(NetModel::paper_1999())
        .with_dsm(DsmConfig::default_4k())
        .with_collectives(collectives)
        .with_clock(Clock::new_virtual())
}

/// The ordering-relevant fingerprint of a log: event kinds plus the
/// team-shape fields, with all durations/timestamps dropped (those
/// legitimately differ between the two broadcast shapes).
fn shape(log: &[LogEntry]) -> Vec<String> {
    log.iter()
        .map(|e| match &e.kind {
            EventKind::JoinRequested { host } => format!("join_requested@{host}"),
            EventKind::JoinReady { .. } => "join_ready".into(),
            EventKind::JoinCommitted { pid, .. } => format!("join_committed:pid{pid}"),
            EventKind::LeaveRequested { .. } => "leave_requested".into(),
            EventKind::NormalLeave { .. } => "normal_leave".into(),
            EventKind::UrgentMigrationStart { from, to, .. } => {
                format!("urgent_start:{from}->{to}")
            }
            EventKind::UrgentMigrationDone { .. } => "urgent_done".into(),
            EventKind::Adaptation {
                joins,
                leaves,
                nprocs,
                ..
            } => format!("adapt:+{joins}-{leaves}->{nprocs}"),
            EventKind::Checkpoint { .. } => "checkpoint".into(),
            // Scheduler events never appear in a single-job run.
            other => format!("{other:?}"),
        })
        .collect()
}

/// One adaptive run (join mid-flight, then a normal leave) under the
/// given collective configuration, with verification on.
fn adaptive_run(collectives: CollectiveConfig) -> RunResult {
    let app = Jacobi::new(48);
    let events = |sys: &mut OmpSystem, it: usize| {
        if it == 2 {
            sys.join_ready().expect("free host available");
        }
        if it == 5 {
            sys.adapt()
                .leave(LeaveSel::Pid(3), Some(Duration::from_secs(30)))
                .expect("slave can leave");
        }
    };
    measure(&app, cfg(6, 4, collectives), 8, true, events, true)
}

#[test]
fn flat_and_tree_broadcasts_order_events_identically() {
    let flat = adaptive_run(CollectiveConfig::all_flat());
    let tree = adaptive_run(CollectiveConfig::all_tree());
    assert_eq!(flat.err, 0.0, "flat run must verify bit-exact");
    assert_eq!(tree.err, 0.0, "tree run must verify bit-exact");
    assert_eq!(
        shape(&flat.log),
        shape(&tree.log),
        "collective shape must not change adaptation event ordering"
    );
    assert!(
        !shape(&tree.log).is_empty(),
        "the schedule must actually adapt"
    );
}

#[test]
fn flat_and_tree_reduce_order_events_identically() {
    // The ISSUE 6 collection-side parity: with the fork tree held
    // fixed, flat collection (every slave straight to the master) and
    // the binomial join reduce + tree barrier release must produce
    // bit-exact results and the same adaptation event ordering.
    let base = CollectiveConfig::default().with_fork(Broadcast::Tree);
    let flat = adaptive_run(
        base.with_join_reduce(Broadcast::Flat)
            .with_barrier_release(Broadcast::Flat),
    );
    let tree = adaptive_run(
        base.with_join_reduce(Broadcast::Tree)
            .with_barrier_release(Broadcast::Tree),
    );
    assert_eq!(flat.err, 0.0, "flat-reduce run must verify bit-exact");
    assert_eq!(tree.err, 0.0, "tree-reduce run must verify bit-exact");
    assert_eq!(
        shape(&flat.log),
        shape(&tree.log),
        "reduce shape must not change adaptation event ordering"
    );
    assert!(
        !shape(&tree.log).is_empty(),
        "the schedule must actually adapt"
    );
}

#[test]
fn tree_broadcast_unloads_the_master_link() {
    // Steady state (no adaptation), 8 processes: the flat fork
    // broadcast serializes n-1 notice-bearing sends on the master's
    // link every region; the tree sends O(log n) and the interval-run
    // notices shrink each payload.
    let app = Jacobi::new(128);
    let reduce_flat = CollectiveConfig::all_flat();
    let flat = measure(&app, cfg(8, 8, reduce_flat), 4, false, |_, _| {}, false);
    let tree = measure(
        &app,
        cfg(8, 8, reduce_flat.with_fork(Broadcast::Tree)),
        4,
        false,
        |_, _| {},
        false,
    );

    let master_out = |r: &RunResult| r.net.links[0].bytes_out;
    let master_msgs = |r: &RunResult| r.net.links[0].msgs_out;
    assert!(
        master_out(&tree) < master_out(&flat),
        "tree master link {} bytes must undercut flat {} bytes",
        master_out(&tree),
        master_out(&flat)
    );
    assert!(
        master_msgs(&tree) < master_msgs(&flat),
        "tree master link {} msgs must undercut flat {} msgs",
        master_msgs(&tree),
        master_msgs(&flat)
    );
    // And the virtual timeline must not get slower for it (the relay
    // hops cost, but off the master's serialized link they overlap).
    assert!(
        tree.secs <= flat.secs * 1.02,
        "tree {:.6}s vs flat {:.6}s",
        tree.secs,
        flat.secs
    );
}

#[test]
fn tree_reduce_unloads_the_master_inbound() {
    // Steady state, 8 processes, fork tree on both sides: flat
    // collection converges n-1 JoinArrive/BarrierArrive streams on the
    // master's inbound wire every region; the reduce tree delivers the
    // same records in O(log n) aggregates.
    let app = Jacobi::new(128);
    let base = CollectiveConfig::default().with_fork(Broadcast::Tree);
    let flat = measure(
        &app,
        cfg(
            8,
            8,
            base.with_join_reduce(Broadcast::Flat)
                .with_barrier_release(Broadcast::Flat),
        ),
        4,
        false,
        |_, _| {},
        false,
    );
    let tree = measure(
        &app,
        cfg(
            8,
            8,
            base.with_join_reduce(Broadcast::Tree)
                .with_barrier_release(Broadcast::Tree),
        ),
        4,
        false,
        |_, _| {},
        false,
    );

    let master_in = |r: &RunResult| r.net.links[0].msgs_in;
    assert!(
        master_in(&tree) < master_in(&flat),
        "tree reduce master inbound {} msgs must undercut flat {} msgs",
        master_in(&tree),
        master_in(&flat)
    );
    // At the paper's 8-host scale the aggregation hops cost a couple
    // percent of virtual timeline (depth x latency is not yet
    // amortized); the reduce tree must stay within that band here —
    // its win is at scale-out, gated at 32 hosts in `whatif_scale`.
    assert!(
        tree.secs <= flat.secs * 1.05,
        "tree {:.6}s vs flat {:.6}s",
        tree.secs,
        flat.secs
    );
}
