//! Flat-vs-tree broadcast parity and win checks under `VirtualClock`.
//!
//! The ISSUE 5 acceptance bar for the tree/RLE fork broadcast: it must
//! be *semantically invisible* — identical results and identical
//! adaptation event orderings against the flat 1999 baseline — while
//! measurably unloading the master's link. The flat side runs the
//! legacy wire (flat fan-out + flat notices); the tree side runs the
//! redesign; both on the unscaled paper network model at zero wall
//! cost.

use nowmp_apps::jacobi::Jacobi;
use nowmp_bench::{measure, RunResult};
use nowmp_core::{ClusterConfig, EventKind, LogEntry};
use nowmp_net::NetModel;
use nowmp_omp::OmpSystem;
use nowmp_tmk::{Broadcast, DsmConfig};
use nowmp_util::Clock;
use std::time::Duration;

fn cfg(hosts: usize, procs: usize, broadcast: Broadcast) -> ClusterConfig {
    ClusterConfig {
        net_model: NetModel::paper_1999(),
        dsm: DsmConfig {
            fork_broadcast: broadcast,
            ..DsmConfig::default_4k()
        },
        clock: Clock::new_virtual(),
        ..ClusterConfig::test(hosts, procs)
    }
}

/// The ordering-relevant fingerprint of a log: event kinds plus the
/// team-shape fields, with all durations/timestamps dropped (those
/// legitimately differ between the two broadcast shapes).
fn shape(log: &[LogEntry]) -> Vec<String> {
    log.iter()
        .map(|e| match &e.kind {
            EventKind::JoinRequested { host } => format!("join_requested@{host}"),
            EventKind::JoinReady { .. } => "join_ready".into(),
            EventKind::JoinCommitted { pid, .. } => format!("join_committed:pid{pid}"),
            EventKind::LeaveRequested { .. } => "leave_requested".into(),
            EventKind::NormalLeave { .. } => "normal_leave".into(),
            EventKind::UrgentMigrationStart { from, to, .. } => {
                format!("urgent_start:{from}->{to}")
            }
            EventKind::UrgentMigrationDone { .. } => "urgent_done".into(),
            EventKind::Adaptation {
                joins,
                leaves,
                nprocs,
                ..
            } => format!("adapt:+{joins}-{leaves}->{nprocs}"),
            EventKind::Checkpoint { .. } => "checkpoint".into(),
        })
        .collect()
}

/// One adaptive run (join mid-flight, then a normal leave) under the
/// given broadcast mode, with verification on.
fn adaptive_run(broadcast: Broadcast) -> RunResult {
    let app = Jacobi::new(48);
    let events = |sys: &mut OmpSystem, it: usize| {
        if it == 2 {
            sys.request_join_ready().expect("free host available");
        }
        if it == 5 {
            sys.request_leave_pid(3, Some(Duration::from_secs(30)))
                .expect("slave can leave");
        }
    };
    measure(&app, cfg(6, 4, broadcast), 8, true, events, true)
}

#[test]
fn flat_and_tree_broadcasts_order_events_identically() {
    let flat = adaptive_run(Broadcast::Flat);
    let tree = adaptive_run(Broadcast::Tree);
    assert_eq!(flat.err, 0.0, "flat run must verify bit-exact");
    assert_eq!(tree.err, 0.0, "tree run must verify bit-exact");
    assert_eq!(
        shape(&flat.log),
        shape(&tree.log),
        "broadcast shape must not change adaptation event ordering"
    );
    assert!(
        !shape(&tree.log).is_empty(),
        "the schedule must actually adapt"
    );
}

#[test]
fn tree_broadcast_unloads_the_master_link() {
    // Steady state (no adaptation), 8 processes: the flat fork
    // broadcast serializes n-1 notice-bearing sends on the master's
    // link every region; the tree sends O(log n) and the interval-run
    // notices shrink each payload.
    let app = Jacobi::new(128);
    let flat = measure(&app, cfg(8, 8, Broadcast::Flat), 4, false, |_, _| {}, false);
    let tree = measure(&app, cfg(8, 8, Broadcast::Tree), 4, false, |_, _| {}, false);

    let master_out = |r: &RunResult| r.net.links[0].bytes_out;
    let master_msgs = |r: &RunResult| r.net.links[0].msgs_out;
    assert!(
        master_out(&tree) < master_out(&flat),
        "tree master link {} bytes must undercut flat {} bytes",
        master_out(&tree),
        master_out(&flat)
    );
    assert!(
        master_msgs(&tree) < master_msgs(&flat),
        "tree master link {} msgs must undercut flat {} msgs",
        master_msgs(&tree),
        master_msgs(&flat)
    );
    // And the virtual timeline must not get slower for it (the relay
    // hops cost, but off the master's serialized link they overlap).
    assert!(
        tree.secs <= flat.secs * 1.02,
        "tree {:.6}s vs flat {:.6}s",
        tree.secs,
        flat.secs
    );
}
