//! Demand-vs-overlap data-plane parity checks under `VirtualClock`.
//!
//! The acceptance bar for the overlapped data plane — ISSUE 7's
//! pipelined faults, release-phase prefetch, and piggybacked hot diffs
//! — is that it must be *semantically invisible*: identical computed
//! results, identical adaptation event orderings, and an identical
//! final DSM memory image against the faithful 1999 demand-paging
//! baseline. Overlap may only move fetches earlier in time, never
//! change what they install.

use nowmp_apps::jacobi::Jacobi;
use nowmp_apps::Kernel;
use nowmp_core::{ClusterConfig, EventKind, LeaveSel, LogEntry};
use nowmp_net::NetModel;
use nowmp_omp::OmpSystem;
use nowmp_tmk::{DataPlaneConfig, DsmConfig};
use nowmp_util::Clock;
use std::time::Duration;

fn cfg(hosts: usize, procs: usize, dataplane: DataPlaneConfig) -> ClusterConfig {
    ClusterConfig::test(hosts, procs)
        .with_net_model(NetModel::paper_1999())
        .with_dsm(DsmConfig::default_4k())
        .with_dataplane(dataplane)
        .with_clock(Clock::new_virtual())
}

/// The ordering-relevant fingerprint of a log: event kinds plus the
/// team-shape fields, with all durations/timestamps dropped (those
/// legitimately differ between the two data planes).
fn shape(log: &[LogEntry]) -> Vec<String> {
    log.iter()
        .map(|e| match &e.kind {
            EventKind::JoinRequested { host } => format!("join_requested@{host}"),
            EventKind::JoinReady { .. } => "join_ready".into(),
            EventKind::JoinCommitted { pid, .. } => format!("join_committed:pid{pid}"),
            EventKind::LeaveRequested { .. } => "leave_requested".into(),
            EventKind::NormalLeave { .. } => "normal_leave".into(),
            EventKind::UrgentMigrationStart { from, to, .. } => {
                format!("urgent_start:{from}->{to}")
            }
            EventKind::UrgentMigrationDone { .. } => "urgent_done".into(),
            EventKind::Adaptation {
                joins,
                leaves,
                nprocs,
                ..
            } => format!("adapt:+{joins}-{leaves}->{nprocs}"),
            EventKind::Checkpoint { .. } => "checkpoint".into(),
            // Scheduler events never appear in a single-job run.
            other => format!("{other:?}"),
        })
        .collect()
}

/// One adaptive run (join mid-flight, then a normal leave) under the
/// given data plane, verified against the serial reference, ending in
/// a checkpoint whose bytes capture the final DSM memory image.
fn adaptive_run(dataplane: DataPlaneConfig, ckpt: &std::path::Path) -> (f64, Vec<String>, Vec<u8>) {
    let app = Jacobi::new(48);
    let c = cfg(6, 4, dataplane)
        .with_adaptive(true)
        .with_ckpt_path(ckpt.to_path_buf());
    let program = nowmp_apps::build_program(&[&app as &dyn Kernel]);
    let mut sys = OmpSystem::new(c, program);
    app.setup(&mut sys);
    for it in 0..8 {
        if it == 2 {
            sys.join_ready().expect("free host available");
        }
        if it == 5 {
            sys.adapt()
                .leave(LeaveSel::Pid(3), Some(Duration::from_secs(30)))
                .expect("slave can leave");
        }
        app.step(&mut sys, it);
    }
    let err = app.verify(&mut sys, 8);
    // Checkpoint = GC + collect_all_pages + export_image: the on-disk
    // bytes are the canonical final DSM page state.
    sys.checkpoint_now();
    let log = shape(&sys.log().entries());
    sys.shutdown();
    let image = std::fs::read(ckpt).expect("checkpoint written");
    (err, log, image)
}

#[test]
fn demand_and_overlap_dataplanes_agree_bit_exactly() {
    let dir = std::env::temp_dir();
    let demand_path = dir.join("nowmp_parity_demand.ckpt");
    let overlap_path = dir.join("nowmp_parity_overlap.ckpt");
    let (derr, dshape, dimage) = adaptive_run(DataPlaneConfig::demand(), &demand_path);
    let (oerr, oshape, oimage) = adaptive_run(DataPlaneConfig::overlap(), &overlap_path);
    let _ = std::fs::remove_file(&demand_path);
    let _ = std::fs::remove_file(&overlap_path);
    assert_eq!(derr, 0.0, "demand run must verify bit-exact");
    assert_eq!(oerr, 0.0, "overlap run must verify bit-exact");
    assert_eq!(
        dshape, oshape,
        "the data plane must not change adaptation event ordering"
    );
    assert!(!oshape.is_empty(), "the schedule must actually adapt");
    assert_eq!(
        dimage, oimage,
        "final DSM memory images must be byte-identical: overlap may move \
         fetches earlier, never change what they install"
    );
}

/// Steady-state run (no adaptation) with calibrated compute charged —
/// the regime overlap is for: prefetch can only win by moving
/// round-trips off the critical path into the compute the worker was
/// doing anyway. Every prefetch and piggyback pays full modeled
/// wire/CPU cost.
fn costed_run(
    kernel: &dyn Kernel,
    procs: usize,
    iters: usize,
    dataplane: DataPlaneConfig,
) -> nowmp_bench::RunResult {
    use nowmp_apps::with_kernel_costs;
    use nowmp_net::CostModel;
    let c = cfg(procs, procs, dataplane)
        .with_cost_model(with_kernel_costs(CostModel::paper_1999(), kernel));
    nowmp_bench::measure(kernel, c, iters, false, |_, _| {}, false)
}

/// The no-silent-waste ledger: every page a prefetch covered ends as
/// exactly one of hit or wasted, so neither side can exceed what was
/// issued.
fn assert_ledger(d: &nowmp_tmk::DsmSnapshot) {
    assert!(
        d.prefetch_issued > 0,
        "the overlap lane must actually prefetch in steady state"
    );
    assert!(
        d.prefetch_hits + d.prefetch_wasted <= d.prefetch_issued,
        "hits {} + wasted {} must not exceed issued {}",
        d.prefetch_hits,
        d.prefetch_wasted,
        d.prefetch_issued
    );
}

#[test]
fn overlap_never_slows_the_virtual_timeline() {
    // Regular nearest-neighbour Jacobi at the paper's 8-process scale:
    // few faults, single-creator, collective-dominated. Overlap has
    // little to move here — the assertion is that its admission
    // overhead never costs more than noise, and that the prefetcher's
    // accounting stays honest (it reaches 100% hit rate: Jacobi's
    // boundary re-fault set is perfectly predictable).
    let app = Jacobi::new(384);
    let demand = costed_run(&app, 8, 6, DataPlaneConfig::demand());
    let overlap = costed_run(&app, 8, 6, DataPlaneConfig::overlap());
    assert!(
        overlap.secs <= demand.secs * 1.05,
        "overlap {:.6}s vs demand {:.6}s on Jacobi/8",
        overlap.secs,
        demand.secs
    );
    assert_ledger(&overlap.dsm);
}

#[test]
fn overlap_beats_demand_on_the_irregular_kernel() {
    // NBF reads 16 scattered partner positions per atom, so every rank
    // re-faults the whole multi-writer position array every iteration
    // — the data plane *is* the critical path. Pipelined multi-creator
    // faults and release-phase prefetch must beat demand paging
    // outright here (whatif_scale --smoke measures 1.5x+ at 32 hosts;
    // this CI-sized point asserts a conservative slice of that win).
    let app = nowmp_apps::nbf::Nbf::new(2048, 16);
    let demand = costed_run(&app, 8, 4, DataPlaneConfig::demand());
    let overlap = costed_run(&app, 8, 4, DataPlaneConfig::overlap());
    assert!(
        overlap.secs < demand.secs * 0.97,
        "the overlapped data plane must outrun demand paging on NBF: \
         overlap {:.6}s vs demand {:.6}s",
        overlap.secs,
        demand.secs
    );
    assert_ledger(&overlap.dsm);
}
