//! Thread-backed vs task-backed engine parity under `VirtualClock`.
//!
//! ISSUE 9's acceptance bar for the event-driven engine: with the same
//! adaptation script, the task engine must be **event-order-identical**
//! to the faithful thread-per-host engine and must produce a
//! **byte-identical** final checkpoint image. The worker pool, the
//! resumable-state parking, and the simulated data plane may change
//! *when* things execute on the wall clock — never what the simulated
//! run observes.
//!
//! Two scripts:
//! * Jacobi at 32 processes / 34 workstations (the scale the thread
//!   engine tops out at — the whole point of the refactor);
//! * NBF at 8 processes, exercising the reduction scratch protocol so
//!   even the `__omp_red` residue in the image must match.

use nowmp_apps::jacobi::Jacobi;
use nowmp_apps::nbf::Nbf;
use nowmp_apps::tasks::{TaskJacobi, TaskNbf};
use nowmp_apps::Kernel;
use nowmp_core::{ClusterConfig, EventKind, LeaveSel, LogEntry, TaskApp, TaskSystem};
use nowmp_net::NetModel;
use nowmp_omp::OmpSystem;
use nowmp_tmk::DsmConfig;
use nowmp_util::Clock;
use std::path::Path;
use std::time::Duration;

fn cfg(hosts: usize, procs: usize) -> ClusterConfig {
    ClusterConfig::test(hosts, procs)
        .with_net_model(NetModel::paper_1999())
        .with_dsm(DsmConfig::default_4k())
        .with_clock(Clock::new_virtual())
        .with_adaptive(true)
}

/// Ordering-relevant fingerprint: event kinds plus team-shape fields,
/// durations/timestamps dropped (virtual time legitimately differs —
/// the task engine charges an approximate data-plane cost).
fn shape(log: &[LogEntry]) -> Vec<String> {
    log.iter()
        .map(|e| match &e.kind {
            EventKind::JoinRequested { host } => format!("join_requested@{host}"),
            EventKind::JoinReady { .. } => "join_ready".into(),
            EventKind::JoinCommitted { pid, .. } => format!("join_committed:pid{pid}"),
            EventKind::LeaveRequested { .. } => "leave_requested".into(),
            EventKind::NormalLeave { .. } => "normal_leave".into(),
            EventKind::UrgentMigrationStart { from, to, .. } => {
                format!("urgent_start:{from}->{to}")
            }
            EventKind::UrgentMigrationDone { .. } => "urgent_done".into(),
            EventKind::Adaptation {
                joins,
                leaves,
                nprocs,
                ..
            } => format!("adapt:+{joins}-{leaves}->{nprocs}"),
            EventKind::Checkpoint { .. } => "checkpoint".into(),
            // Scheduler events never appear in a single-job run.
            other => format!("{other:?}"),
        })
        .collect()
}

/// Adaptation script shared by both engines: join before iteration
/// `join_at`, graceful leave of `leave_pid` before `leave_at`, then a
/// final checkpoint capturing the full DSM image.
struct Script {
    iters: usize,
    join_at: usize,
    leave_at: usize,
    leave_pid: usize,
}

fn thread_run(
    kernel: &dyn Kernel,
    c: ClusterConfig,
    s: &Script,
    ckpt: &Path,
) -> (f64, Vec<String>, Vec<u8>) {
    let c = c.with_ckpt_path(ckpt.to_path_buf());
    let program = nowmp_apps::build_program(&[kernel]);
    let mut sys = OmpSystem::new(c, program);
    kernel.setup(&mut sys);
    for it in 0..s.iters {
        if it == s.join_at {
            sys.join_ready().expect("free host available");
        }
        if it == s.leave_at {
            sys.adapt()
                .leave(
                    LeaveSel::Pid(s.leave_pid as u16),
                    Some(Duration::from_secs(30)),
                )
                .expect("slave can leave");
        }
        kernel.step(&mut sys, it);
    }
    let err = kernel.verify(&mut sys, s.iters);
    sys.checkpoint_now();
    let log = shape(&sys.log().entries());
    sys.shutdown();
    let image = std::fs::read(ckpt).expect("checkpoint written");
    (err, log, image)
}

fn task_run(
    app: &dyn TaskApp,
    c: ClusterConfig,
    s: &Script,
    ckpt: &Path,
) -> (f64, Vec<String>, Vec<u8>, usize, usize) {
    let c = c.with_ckpt_path(ckpt.to_path_buf());
    let mut sys = TaskSystem::new(c);
    app.setup(&mut sys);
    for it in 0..s.iters {
        if it == s.join_at {
            sys.adapt().join_ready().expect("free host available");
        }
        if it == s.leave_at {
            sys.adapt()
                .leave(
                    LeaveSel::Pid(s.leave_pid as u16),
                    Some(Duration::from_secs(30)),
                )
                .expect("slave can leave");
        }
        app.step(&mut sys, it);
    }
    let err = app.verify(&sys, s.iters);
    sys.checkpoint_now();
    let log = shape(&sys.log().entries());
    let image = std::fs::read(ckpt).expect("checkpoint written");
    (err, log, image, sys.peak_workers(), sys.pool())
}

#[test]
fn task_engine_matches_thread_engine_at_32_hosts_jacobi() {
    let dir = std::env::temp_dir();
    let tpath = dir.join("nowmp_engine_parity_thread_j.ckpt");
    let kpath = dir.join("nowmp_engine_parity_task_j.ckpt");
    let script = Script {
        iters: 6,
        join_at: 2,
        leave_at: 4,
        leave_pid: 3,
    };
    let (terr, tshape, timage) = thread_run(&Jacobi::new(96), cfg(34, 32), &script, &tpath);
    let (kerr, kshape, kimage, peak, pool) =
        task_run(&TaskJacobi::new(96), cfg(34, 32), &script, &kpath);
    let _ = std::fs::remove_file(&tpath);
    let _ = std::fs::remove_file(&kpath);
    assert_eq!(terr, 0.0, "thread engine must verify bit-exact");
    assert_eq!(kerr, 0.0, "task engine must verify bit-exact");
    assert!(!tshape.is_empty(), "the schedule must actually adapt");
    assert_eq!(
        tshape, kshape,
        "task engine must be event-order-identical to the thread engine"
    );
    assert_eq!(
        timage, kimage,
        "final checkpoint images must be byte-identical across engines"
    );
    assert!(
        peak <= pool,
        "task engine workers ({peak}) must stay within the pool ({pool})"
    );
}

#[test]
fn task_engine_matches_thread_engine_on_nbf_reduction() {
    let dir = std::env::temp_dir();
    let tpath = dir.join("nowmp_engine_parity_thread_n.ckpt");
    let kpath = dir.join("nowmp_engine_parity_task_n.ckpt");
    let script = Script {
        iters: 4,
        join_at: 1,
        leave_at: 2,
        leave_pid: 5,
    };
    let (terr, tshape, timage) = thread_run(&Nbf::new(256, 8), cfg(10, 8), &script, &tpath);
    let (kerr, kshape, kimage, _, _) = task_run(&TaskNbf::new(256, 8), cfg(10, 8), &script, &kpath);
    let _ = std::fs::remove_file(&tpath);
    let _ = std::fs::remove_file(&kpath);
    assert_eq!(terr, 0.0, "thread engine must verify bit-exact");
    assert_eq!(kerr, 0.0, "task engine must verify bit-exact");
    assert_eq!(
        tshape, kshape,
        "reduction protocol must not change adaptation event ordering"
    );
    assert_eq!(
        timage, kimage,
        "images (including __omp_red scratch residue) must be byte-identical"
    );
}
