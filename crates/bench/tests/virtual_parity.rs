//! Real-vs-virtual clock parity for the Figure 2 scenarios.
//!
//! The acceptance bar for the virtual-time refactor: the three
//! adaptation shapes of `fig2_timeline` (join, normal leave, urgent
//! leave) must produce *identical event orderings* under the wall-clock
//! backend and the discrete-event backend. The real side runs the paper
//! model time-scaled (so the test stays fast); the virtual side runs
//! the *unscaled* paper model — 0.7 s spawns and all — at zero wall
//! cost.

use nowmp_apps::jacobi::Jacobi;
use nowmp_bench::measure;
use nowmp_core::{ClusterConfig, EventKind, LeaveSel, LogEntry};
use nowmp_net::NetModel;
use nowmp_omp::OmpSystem;
use nowmp_tmk::DsmConfig;
use nowmp_util::Clock;
use std::time::Duration;

fn cfg(hosts: usize, procs: usize, model: NetModel, clock: Clock) -> ClusterConfig {
    ClusterConfig::test(hosts, procs)
        .with_net_model(model)
        .with_dsm(DsmConfig::default_4k())
        .with_clock(clock)
}

/// The ordering-relevant fingerprint of a log: event kinds plus the
/// team-shape fields, with all durations/timestamps dropped (those
/// legitimately differ between wall and simulated time).
fn shape(log: &[LogEntry]) -> Vec<String> {
    log.iter()
        .map(|e| match &e.kind {
            EventKind::JoinRequested { host } => format!("join_requested@{host}"),
            EventKind::JoinReady { .. } => "join_ready".into(),
            EventKind::JoinCommitted { pid, .. } => format!("join_committed:pid{pid}"),
            EventKind::LeaveRequested { .. } => "leave_requested".into(),
            EventKind::NormalLeave { .. } => "normal_leave".into(),
            EventKind::UrgentMigrationStart { from, to, .. } => {
                format!("urgent_start:{from}->{to}")
            }
            EventKind::UrgentMigrationDone { .. } => "urgent_done".into(),
            EventKind::Adaptation {
                joins,
                leaves,
                nprocs,
                ..
            } => format!("adapt:+{joins}-{leaves}->{nprocs}"),
            EventKind::Checkpoint { .. } => "checkpoint".into(),
            // Scheduler events never appear in a single-job run.
            other => format!("{other:?}"),
        })
        .collect()
}

/// Run the three Figure 2 scenarios on the given model/clock factory and
/// return each scenario's event-ordering fingerprint.
fn fig2_shapes(model: &NetModel, mk_clock: impl Fn() -> Clock) -> Vec<Vec<String>> {
    let app = Jacobi::new(48);
    let iters = 8;
    let mut shapes = Vec::new();

    // (a) Join: requested mid-run, committed at the next adaptation point.
    let join = |sys: &mut OmpSystem, it: usize| {
        if it == 3 {
            sys.join_ready().expect("free host available");
        }
    };
    let run = measure(
        &app,
        cfg(5, 4, model.clone(), mk_clock()),
        iters,
        true,
        join,
        false,
    );
    shapes.push(shape(&run.log));

    // (b) Normal leave: generous grace, the adaptation point wins.
    let leave = |sys: &mut OmpSystem, it: usize| {
        if it == 3 {
            sys.adapt()
                .leave(LeaveSel::Pid(3), Some(Duration::from_secs(30)))
                .expect("slave can leave");
        }
    };
    let run = measure(
        &app,
        cfg(4, 4, model.clone(), mk_clock()),
        iters,
        true,
        leave,
        false,
    );
    shapes.push(shape(&run.log));

    // (c) Urgent leave: the grace period deterministically expires first.
    let urgent = |sys: &mut OmpSystem, it: usize| {
        if it == 3 {
            let g = sys
                .adapt()
                .leave(LeaveSel::Pid(3), None)
                .expect("slave can leave");
            assert!(sys.shared().force_urgent(g));
        }
    };
    let run = measure(
        &app,
        cfg(4, 4, model.clone(), mk_clock()),
        iters,
        true,
        urgent,
        false,
    );
    shapes.push(shape(&run.log));

    shapes
}

#[test]
fn fig2_event_ordering_matches_across_backends() {
    // Real backend: paper constants scaled 50× down so the wall cost
    // stays test-sized (spawn 14 ms instead of 0.7 s).
    let real = fig2_shapes(&NetModel::paper_scaled(0.02), Clock::real);
    // Virtual backend: the full 1999 constants, free of wall time.
    let wall = std::time::Instant::now();
    let virt = fig2_shapes(&NetModel::paper_1999(), Clock::new_virtual);
    assert_eq!(
        real, virt,
        "event ordering must be identical under real and virtual clocks"
    );
    // And the virtual side must not have paid for its 0.7 s spawns.
    assert!(
        wall.elapsed() < Duration::from_secs(30),
        "virtual fig2 scenarios took {:?}",
        wall.elapsed()
    );
    for (i, s) in virt.iter().enumerate() {
        assert!(!s.is_empty(), "scenario {i} logged nothing");
    }
}

#[test]
fn virtual_run_reports_simulated_seconds() {
    // A run under the unscaled paper model reports `secs` on the
    // virtual timeline: it includes the modeled delays (so ratios are
    // paper-faithful) while the wall cost stays test-sized.
    let app = Jacobi::new(32);
    let wall = std::time::Instant::now();
    let run = measure(
        &app,
        cfg(3, 3, NetModel::paper_1999(), Clock::new_virtual()),
        4,
        true,
        |_, _| {},
        true,
    );
    assert_eq!(run.err, 0.0);
    assert!(run.secs > 0.0, "simulated time must accumulate");
    assert!(
        wall.elapsed().as_secs_f64() < run.secs + 30.0,
        "sanity: wall {:?} vs simulated {:.3}s",
        wall.elapsed(),
        run.secs
    );
}
