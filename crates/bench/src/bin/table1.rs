//! **Table 1** — "Execution times and network traffic on non-adaptive
//! and adaptive system with no adapt events. Network traffic is
//! identical on both systems."
//!
//! For each kernel × {8, 4, 1} processes we run the *standard* system
//! (adaptivity switch off — the paper's base TreadMarks 1.1.0) and the
//! *adaptive* system with zero adapt events, and report runtime plus
//! traffic (full pages, MB, messages, diffs). The key claims to check:
//!
//! 1. adaptive ≈ standard runtime (no cost for adaptivity);
//! 2. traffic identical between the two systems;
//! 3. per-kernel traffic signatures: Jacobi moves diffs; Gauss/FFT/NBF
//!    are dominated by full pages.

use nowmp_apps::Kernel;
use nowmp_bench::{bench_cfg, mb, measure, print_table, BenchApps};

fn main() {
    nowmp_bench::smoke_from_args();
    let apps: Vec<(Box<dyn Kernel>, usize)> = vec![
        (Box::new(BenchApps::jacobi()), BenchApps::jacobi_iters()),
        (Box::new(BenchApps::gauss()), BenchApps::gauss_iters()),
        (Box::new(BenchApps::fft()), BenchApps::fft_iters()),
        (Box::new(BenchApps::nbf()), BenchApps::nbf_iters()),
    ];

    let mut rows = Vec::new();
    for (app, iters) in &apps {
        for &procs in &[8usize, 4, 1] {
            let std_run = measure(
                app.as_ref(),
                bench_cfg(procs, procs),
                *iters,
                false,
                |_, _| {},
                false,
            );
            let ada_run = measure(
                app.as_ref(),
                bench_cfg(procs, procs),
                *iters,
                true,
                |_, _| {},
                true,
            );
            assert_eq!(ada_run.err, 0.0, "{} must verify", app.name());
            // Two *separate* runs race independently: when an exclusive
            // page is served mid-interval, the snapshot/diff split is
            // timing-dependent, so bytes can differ slightly between
            // runs even of the *same* system. Compare with tolerance.
            let db = (std_run.net.total_bytes as f64 - ada_run.net.total_bytes as f64).abs()
                / std_run.net.total_bytes.max(1) as f64;
            rows.push(vec![
                app.name().to_string(),
                format!("{}", nowmp_util::fmt_bytes(app.shared_bytes())),
                iters.to_string(),
                procs.to_string(),
                format!("{:.2}", std_run.secs),
                format!("{:.2}", ada_run.secs),
                ada_run.dsm.pages_fetched.to_string(),
                mb(std_run.net.total_bytes),
                mb(ada_run.net.total_bytes),
                ada_run.net.total_msgs.to_string(),
                ada_run.dsm.diffs_fetched.to_string(),
                format!("{:.1}%", db * 100.0),
            ]);
        }
    }

    print_table(
        "Table 1: execution time and network traffic, no adapt events",
        &[
            "App",
            "Shared",
            "Iters",
            "Nodes",
            "Std(s)",
            "Adaptive(s)",
            "Pages(4k)",
            "MB(std)",
            "MB(ada)",
            "Messages",
            "Diffs",
            "dTraffic",
        ],
        &rows,
    );
    println!(
        "\nPaper shape check: adaptive ~= standard in time AND traffic (dTraffic ~ 0;\n\
         the protocol paths are identical by construction — residual deltas are\n\
         run-to-run races in exclusive-page serving), Jacobi is the diff-mover,\n\
         Gauss moves only full pages; 1-node rows show zero traffic."
    );
}
