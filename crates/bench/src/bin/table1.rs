//! **Table 1** — "Execution times and network traffic on non-adaptive
//! and adaptive system with no adapt events. Network traffic is
//! identical on both systems."
//!
//! For each kernel × {8, 4, 1} processes we run the *standard* system
//! (adaptivity switch off — the paper's base TreadMarks 1.1.0) and the
//! *adaptive* system with zero adapt events, and report runtime plus
//! traffic (full pages, MB, messages, diffs). The key claims to check:
//!
//! 1. adaptive ≈ standard runtime (no cost for adaptivity);
//! 2. traffic identical between the two systems;
//! 3. per-kernel traffic signatures: Jacobi moves diffs; Gauss/FFT/NBF
//!    are dominated by full pages.
//!
//! **Virtual mode** (`--virtual` or `NOWMP_CLOCK=virtual`): each
//! kernel's calibrated per-iteration compute costs are charged to the
//! simulated clock, so the reported seconds are *quantitative*
//! predictions on the §5.1 testbed model and the speedup column becomes
//! comparable to the paper's Table 1 values (see `docs/TIME.md` for the
//! calibration and the pinned targets asserted by
//! `crates/bench/tests/table1_virtual.rs`). The run also emits a
//! machine-readable `BENCH_table1.json` (speedup per nprocs) for CI's
//! perf-trajectory artifact.

use nowmp_apps::Kernel;
use nowmp_bench::{bench_cfg_for, mb, measure, print_table, table1_json, virtual_mode, BenchApps};

fn main() {
    nowmp_bench::smoke_from_args();
    nowmp_bench::virtual_from_args();
    let apps: Vec<(Box<dyn Kernel>, usize)> = vec![
        (Box::new(BenchApps::jacobi()), BenchApps::jacobi_iters()),
        (Box::new(BenchApps::gauss()), BenchApps::gauss_iters()),
        (Box::new(BenchApps::fft()), BenchApps::fft_iters()),
        (Box::new(BenchApps::nbf()), BenchApps::nbf_iters()),
    ];

    let mut rows = Vec::new();
    let mut samples: Vec<(String, Vec<(usize, f64)>)> = Vec::new();
    for (app, iters) in &apps {
        let mut app_samples: Vec<(usize, f64)> = Vec::new();
        for &procs in &[8usize, 4, 1] {
            let std_run = measure(
                app.as_ref(),
                bench_cfg_for(app.as_ref(), procs, procs),
                *iters,
                false,
                |_, _| {},
                false,
            );
            let ada_run = measure(
                app.as_ref(),
                bench_cfg_for(app.as_ref(), procs, procs),
                *iters,
                true,
                |_, _| {},
                true,
            );
            assert_eq!(ada_run.err, 0.0, "{} must verify", app.name());
            // Two *separate* runs race independently: when an exclusive
            // page is served mid-interval, the snapshot/diff split is
            // timing-dependent, so bytes can differ slightly between
            // runs even of the *same* system. Compare with tolerance.
            let db = (std_run.net.total_bytes as f64 - ada_run.net.total_bytes as f64).abs()
                / std_run.net.total_bytes.max(1) as f64;
            app_samples.push((procs, ada_run.secs));
            rows.push(vec![
                app.name().to_string(),
                format!("{}", nowmp_util::fmt_bytes(app.shared_bytes())),
                iters.to_string(),
                procs.to_string(),
                format!("{:.2}", std_run.secs),
                format!("{:.2}", ada_run.secs),
                ada_run.dsm.pages_fetched.to_string(),
                mb(std_run.net.total_bytes),
                mb(ada_run.net.total_bytes),
                ada_run.net.total_msgs.to_string(),
                ada_run.dsm.diffs_fetched.to_string(),
                format!("{:.1}%", db * 100.0),
            ]);
        }
        samples.push((app.name().to_string(), app_samples));
    }

    print_table(
        "Table 1: execution time and network traffic, no adapt events",
        &[
            "App",
            "Shared",
            "Iters",
            "Nodes",
            "Std(s)",
            "Adaptive(s)",
            "Pages(4k)",
            "MB(std)",
            "MB(ada)",
            "Messages",
            "Diffs",
            "dTraffic",
        ],
        &rows,
    );
    println!(
        "\nPaper shape check: adaptive ~= standard in time AND traffic (dTraffic ~ 0;\n\
         the protocol paths are identical by construction — residual deltas are\n\
         run-to-run races in exclusive-page serving), Jacobi is the diff-mover,\n\
         Gauss moves only full pages; 1-node rows show zero traffic."
    );

    if virtual_mode() {
        // Speedup table on the simulated timeline (compute charged).
        let mut sp_rows = Vec::new();
        for (name, app_samples) in &samples {
            let t1 = app_samples
                .iter()
                .find(|(p, _)| *p == 1)
                .map(|&(_, s)| s)
                .unwrap_or(f64::NAN);
            for &(p, s) in app_samples {
                sp_rows.push(vec![
                    name.clone(),
                    p.to_string(),
                    format!("{s:.3}"),
                    format!("{:.2}", if s > 0.0 { t1 / s } else { f64::NAN }),
                ]);
            }
        }
        print_table(
            "Table 1 (virtual): simulated seconds and speedup, compute charged",
            &["App", "Nodes", "Sim(s)", "Speedup"],
            &sp_rows,
        );
        let json = table1_json(&samples);
        std::fs::write("BENCH_table1.json", &json).expect("write BENCH_table1.json");
        println!("\nwrote BENCH_table1.json ({} bytes)", json.len());
        println!(
            "Paper shape check (virtual): speedups grow with nodes for the\n\
             compute-dominated kernels at full size; smoke sizes are\n\
             communication-bound and deliberately under-scale — the pinned\n\
             quantitative targets live in crates/bench/tests/table1_virtual.rs."
        );
    }
}
