//! **What-if scaling sweep** — scenarios no 1999 machine room could
//! run.
//!
//! The paper's testbed was eight homogeneous 300 MHz Pentium IIs. With
//! the `CostModel` charging calibrated compute to the virtual clock,
//! the same application binaries can be "run" on NOWs that never
//! existed, in seconds of wall time:
//!
//! * **scale-out** — 2..32 workstations (the paper stopped at 8);
//! * **heterogeneous** — every odd-numbered workstation at half speed
//!   (a mixed-generation machine room). Static schedules stretch to
//!   the stragglers: the measured curve shows exactly the flattening
//!   the paper's §7 future work anticipates;
//! * **loaded host** — one workstation with a competing background
//!   process (load 1.0 ⇒ effective speed ½): the classic "someone sat
//!   down at their workstation" scenario from §1, *without* the owner
//!   asking the process to leave.
//!
//! Every run uses the virtual clock regardless of `NOWMP_CLOCK`; the
//! sweep completes in well under a minute of wall time (`--smoke` in
//! CI).

use nowmp_apps::{jacobi::Jacobi, with_kernel_costs, Kernel};
use nowmp_bench::{bench_net_model, measure, print_table, quick};
use nowmp_core::ClusterConfig;
use nowmp_net::{CostModel, HostId};
use nowmp_tmk::DsmConfig;
use nowmp_util::Clock;
use std::time::Instant;

/// Scenario family: how the pool's hosts differ from the reference.
#[derive(Clone, Copy)]
enum Scenario {
    Homogeneous,
    /// Odd-numbered hosts run at half speed.
    Heterogeneous,
    /// Host 1 carries one competing background process.
    LoadedHost,
}

impl Scenario {
    fn name(&self) -> &'static str {
        match self {
            Scenario::Homogeneous => "homogeneous",
            Scenario::Heterogeneous => "heterogeneous",
            Scenario::LoadedHost => "loaded-host",
        }
    }

    fn apply(&self, mut cost: CostModel, hosts: usize) -> CostModel {
        match self {
            Scenario::Homogeneous => {}
            Scenario::Heterogeneous => {
                for h in (1..hosts).step_by(2) {
                    cost = cost.with_host_speed(HostId(h as u16), 0.5);
                }
            }
            Scenario::LoadedHost => {
                if hosts > 1 {
                    cost = cost.with_host_load(HostId(1), 1.0);
                }
            }
        }
        cost
    }
}

fn cfg(kernel: &dyn Kernel, scenario: Scenario, procs: usize) -> ClusterConfig {
    let cost = scenario.apply(with_kernel_costs(CostModel::paper_1999(), kernel), procs);
    ClusterConfig {
        hosts: procs,
        initial_procs: procs,
        net_model: bench_net_model(),
        cost_model: cost,
        dsm: DsmConfig::default_4k(),
        clock: Clock::new_virtual(),
        ..ClusterConfig::test(procs, procs)
    }
}

fn main() {
    nowmp_bench::smoke_from_args();
    let wall = Instant::now();
    // Big enough that compute dominates at small node counts (the
    // scaling story needs a compute-bound regime to roll over from),
    // small enough that the real work behind the virtual charge stays
    // cheap.
    let (jacobi, iters) = if quick() {
        (Jacobi::new(384), 2usize)
    } else {
        (Jacobi::new(1024), 4usize)
    };
    // Smoke keeps the 2–32 span but drops the 16-node column (the
    // large-team runs dominate wall time via real condvar handoffs).
    let scales: &[usize] = if quick() {
        &[2, 4, 8, 32]
    } else {
        &[2, 4, 8, 16, 32]
    };

    // Serial baseline on one reference workstation (scenarios only
    // differ in hosts the serial run never touches).
    let t1 = measure(
        &jacobi,
        cfg(&jacobi, Scenario::Homogeneous, 1),
        iters,
        false,
        |_, _| {},
        false,
    )
    .secs;

    let mut rows = Vec::new();
    for &scenario in &[
        Scenario::Homogeneous,
        Scenario::Heterogeneous,
        Scenario::LoadedHost,
    ] {
        for &procs in scales {
            let run = measure(
                &jacobi,
                cfg(&jacobi, scenario, procs),
                iters,
                false,
                |_, _| {},
                false,
            );
            let speedup = t1 / run.secs.max(1e-12);
            rows.push(vec![
                scenario.name().to_string(),
                procs.to_string(),
                format!("{:.3}", run.secs),
                format!("{speedup:.2}"),
                format!("{:.0}%", 100.0 * speedup / procs as f64),
            ]);
        }
    }

    print_table(
        &format!(
            "What-if scaling sweep: Jacobi {n}x{n}, {iters} iters, virtual clock (T1 = {t1:.3}s)",
            n = jacobi.n
        ),
        &["Scenario", "Nodes", "Sim(s)", "Speedup", "Efficiency"],
        &rows,
    );
    println!(
        "\nShape check: homogeneous speedup grows with nodes until the fixed\n\
         per-fork communication dominates the shrinking block; heterogeneous\n\
         flattens hard (static schedules stretch to the half-speed stragglers,\n\
         so adding slow hosts barely helps); loaded-host tracks homogeneous\n\
         minus one effective node — quantifying the paper's motivating\n\
         scenario without the leave. Wall time: {:.1}s for {} virtual runs.",
        wall.elapsed().as_secs_f64(),
        rows.len() + 1
    );
    assert!(
        wall.elapsed().as_secs_f64() < 60.0 || !quick(),
        "smoke sweep must finish under a minute of wall time"
    );
}
