//! **What-if scaling sweep** — scenarios no 1999 machine room could
//! run.
//!
//! The paper's testbed was eight homogeneous 300 MHz Pentium IIs. With
//! the `CostModel` charging calibrated compute to the virtual clock,
//! the same application binaries can be "run" on NOWs that never
//! existed, in seconds of wall time:
//!
//! * **scale-out** — 2..32 workstations (the paper stopped at 8);
//! * **heterogeneous** — every odd-numbered workstation at half speed
//!   (a mixed-generation machine room). Static schedules stretch to
//!   the stragglers: the measured curve shows exactly the flattening
//!   the paper's §7 future work anticipates;
//! * **loaded host** — one workstation with a competing background
//!   process (load 1.0 ⇒ effective speed ½): the classic "someone sat
//!   down at their workstation" scenario from §1, *without* the owner
//!   asking the process to leave.
//!
//! **`--broadcast {flat,tree}`** A/Bs the fork *dissemination*:
//! `flat` is the 1999 system (master-serialized fork sends, flat
//! write-notice payloads), `tree` is the binomial relay redesign.
//! **`--reduce {flat,tree}`** A/Bs the *collection* side: `flat` has
//! every slave send its `JoinArrive` (and barrier arrival) straight to
//! the master — n−1 converging streams serializing on the master's
//! inbound wire — while `tree` aggregates join records up the same
//! binomial tree and relays barrier releases down it (see
//! `docs/BROADCAST.md`). The default sweeps the three system
//! generations: `flat/flat` (1999), `tree/flat` (dissemination
//! redesign), `tree/tree` (both sides treed); passing both flags pins
//! a single lane.
//!
//! The run doubles as the **CI scaling gate**: it fails if the
//! tree/tree 16-host homogeneous speedup, the tree/tree-over-flat/flat
//! advantage at 32 hosts, or the tree/tree 32-host speedup drops below
//! the floors pinned in `crates/bench/baselines.toml`.
//!
//! Every run uses the virtual clock regardless of `NOWMP_CLOCK`; the
//! sweep completes in well under two minutes of wall time (`--smoke`
//! in CI).

use nowmp_apps::{jacobi::Jacobi, with_kernel_costs, Kernel};
use nowmp_bench::{bench_net_model, load_baselines, measure, print_table, quick, whatif_json};
use nowmp_core::ClusterConfig;
use nowmp_net::{CostModel, HostId};
use nowmp_tmk::{Broadcast, CollectiveConfig, DsmConfig};
use nowmp_util::Clock;
use std::time::Instant;

/// Scenario family: how the pool's hosts differ from the reference.
#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Homogeneous,
    /// Odd-numbered hosts run at half speed.
    Heterogeneous,
    /// Host 1 carries one competing background process.
    LoadedHost,
}

impl Scenario {
    fn name(&self) -> &'static str {
        match self {
            Scenario::Homogeneous => "homogeneous",
            Scenario::Heterogeneous => "heterogeneous",
            Scenario::LoadedHost => "loaded-host",
        }
    }

    fn apply(&self, mut cost: CostModel, hosts: usize) -> CostModel {
        match self {
            Scenario::Homogeneous => {}
            Scenario::Heterogeneous => {
                for h in (1..hosts).step_by(2) {
                    cost = cost.with_host_speed(HostId(h as u16), 0.5);
                }
            }
            Scenario::LoadedHost => {
                if hosts > 1 {
                    cost = cost.with_host_load(HostId(1), 1.0);
                }
            }
        }
        cost
    }
}

/// One collective lane of the sweep: fork dissemination × join/barrier
/// collection.
#[derive(Clone, Copy, PartialEq)]
struct Mode {
    fork: Broadcast,
    reduce: Broadcast,
}

impl Mode {
    fn collectives(&self) -> CollectiveConfig {
        CollectiveConfig::default()
            .with_fork(self.fork)
            .with_join_reduce(self.reduce)
            .with_barrier_release(self.reduce)
    }
}

fn bname(b: Broadcast) -> &'static str {
    match b {
        Broadcast::Flat => "flat",
        Broadcast::Tree => "tree",
    }
}

fn cfg(kernel: &dyn Kernel, scenario: Scenario, procs: usize, mode: Mode) -> ClusterConfig {
    let cost = scenario.apply(with_kernel_costs(CostModel::paper_1999(), kernel), procs);
    ClusterConfig {
        hosts: procs,
        initial_procs: procs,
        net_model: bench_net_model(),
        cost_model: cost,
        dsm: DsmConfig {
            collectives: mode.collectives(),
            ..DsmConfig::default_4k()
        },
        clock: Clock::new_virtual(),
        ..ClusterConfig::test(procs, procs)
    }
}

fn axis_from_args(flag: &str) -> Option<Broadcast> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return match args.get(i + 1).map(String::as_str) {
                Some("flat") => Some(Broadcast::Flat),
                Some("tree") => Some(Broadcast::Tree),
                other => panic!("{flag} expects flat|tree, got {other:?}"),
            };
        }
    }
    None
}

/// `--broadcast` / `--reduce` pin one lane each; with neither given
/// the sweep A/Bs the three system generations.
fn modes_from_args() -> Vec<Mode> {
    let fork = axis_from_args("--broadcast");
    let reduce = axis_from_args("--reduce");
    match (fork, reduce) {
        (Some(f), Some(r)) => vec![Mode { fork: f, reduce: r }],
        (Some(f), None) => vec![
            Mode {
                fork: f,
                reduce: Broadcast::Tree,
            },
            Mode {
                fork: f,
                reduce: Broadcast::Flat,
            },
        ],
        (None, Some(r)) => vec![Mode {
            fork: Broadcast::Tree,
            reduce: r,
        }],
        (None, None) => vec![
            Mode {
                fork: Broadcast::Tree,
                reduce: Broadcast::Tree,
            },
            Mode {
                fork: Broadcast::Tree,
                reduce: Broadcast::Flat,
            },
            Mode {
                fork: Broadcast::Flat,
                reduce: Broadcast::Flat,
            },
        ],
    }
}

/// Node counts for one (scenario, mode) lane. Smoke trims the
/// off-diagonal lanes so the sweep stays CI-sized while keeping every
/// column the scaling gates and the A/B ratios need.
fn scales(scenario: Scenario, mode: Mode) -> &'static [usize] {
    if !quick() {
        return &[2, 4, 8, 16, 32];
    }
    match (scenario, bname(mode.fork), bname(mode.reduce)) {
        // The gate lane: tree/tree homogeneous needs the full curve
        // (16-host floor, the 32-host floor, both A/B numerators).
        (Scenario::Homogeneous, "tree", "tree") => &[2, 4, 8, 16, 32],
        // A/B baselines at the ceiling end: tree/flat isolates the
        // collection side, flat/flat is the 1999 system.
        (Scenario::Homogeneous, _, _) => &[8, 16, 32],
        // What-if color: both ends plus the paper scale.
        (_, _, "tree") => &[2, 8, 32],
        (_, _, _) => &[8, 32],
    }
}

fn main() {
    nowmp_bench::smoke_from_args();
    let modes = modes_from_args();
    let wall = Instant::now();
    // Big enough that compute dominates at small node counts (the
    // scaling story needs a compute-bound regime to roll over from),
    // small enough that the real work behind the virtual charge stays
    // cheap.
    let (jacobi, iters) = if quick() {
        (Jacobi::new(384), 2usize)
    } else {
        (Jacobi::new(1024), 4usize)
    };

    // Serial baseline on one reference workstation (scenarios only
    // differ in hosts the serial run never touches; a 1-process run
    // exchanges nothing, so the mode is irrelevant too).
    let t1 = measure(
        &jacobi,
        cfg(
            &jacobi,
            Scenario::Homogeneous,
            1,
            Mode {
                fork: Broadcast::Tree,
                reduce: Broadcast::Tree,
            },
        ),
        iters,
        false,
        |_, _| {},
        false,
    )
    .secs;

    // One measurement per (scenario, mode, nprocs); the table, the
    // JSON, and the gates all derive from this single collection so
    // they can never disagree.
    let mut results: Vec<(Scenario, Mode, usize, f64)> = Vec::new();
    for &scenario in &[
        Scenario::Homogeneous,
        Scenario::Heterogeneous,
        Scenario::LoadedHost,
    ] {
        for &mode in &modes {
            for &procs in scales(scenario, mode) {
                let run = measure(
                    &jacobi,
                    cfg(&jacobi, scenario, procs, mode),
                    iters,
                    false,
                    |_, _| {},
                    false,
                );
                results.push((scenario, mode, procs, run.secs));
            }
        }
    }
    let speedup = |secs: f64| t1 / secs.max(1e-12);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(scenario, mode, procs, secs)| {
            vec![
                scenario.name().to_string(),
                bname(mode.fork).to_string(),
                bname(mode.reduce).to_string(),
                procs.to_string(),
                format!("{secs:.3}"),
                format!("{:.2}", speedup(secs)),
                format!("{:.0}%", 100.0 * speedup(secs) / procs as f64),
            ]
        })
        .collect();

    let mut groups: Vec<(String, String, String, Vec<(usize, f64)>)> = Vec::new();
    for &(scenario, mode, procs, secs) in &results {
        let key = (
            scenario.name().to_string(),
            bname(mode.fork).to_string(),
            bname(mode.reduce).to_string(),
        );
        match groups.last_mut() {
            Some((s, b, r, samples)) if (*s == key.0) && (*b == key.1) && (*r == key.2) => {
                samples.push((procs, secs))
            }
            _ => groups.push((key.0, key.1, key.2, vec![(procs, secs)])),
        }
    }

    print_table(
        &format!(
            "What-if scaling sweep: Jacobi {n}x{n}, {iters} iters, virtual clock (T1 = {t1:.3}s)",
            n = jacobi.n
        ),
        &[
            "Scenario",
            "Broadcast",
            "Reduce",
            "Nodes",
            "Sim(s)",
            "Speedup",
            "Efficiency",
        ],
        &rows,
    );

    let json = whatif_json(t1, &groups);
    std::fs::write("BENCH_whatif.json", &json).expect("write BENCH_whatif.json");
    println!("\nwrote BENCH_whatif.json ({} bytes)", json.len());

    let speedup_of = |s: Scenario, m: Mode, procs: usize| {
        results
            .iter()
            .find(|&&(ls, lm, lp, _)| ls == s && lm == m && lp == procs)
            .map(|&(_, _, _, secs)| speedup(secs))
    };
    let tt = Mode {
        fork: Broadcast::Tree,
        reduce: Broadcast::Tree,
    };
    let tf = Mode {
        fork: Broadcast::Tree,
        reduce: Broadcast::Flat,
    };
    let ff = Mode {
        fork: Broadcast::Flat,
        reduce: Broadcast::Flat,
    };

    // The A/B headlines at the ceiling end: what the fork tree bought
    // (ISSUE 5), and what treeing the collection side buys on top
    // (ISSUE 6).
    if let (Some(tree32), Some(flat32)) = (
        speedup_of(Scenario::Homogeneous, tt, 32),
        speedup_of(Scenario::Homogeneous, ff, 32),
    ) {
        println!(
            "\nCollective A/B at 32 homogeneous hosts: tree/tree {tree32:.2}x vs \
             flat/flat {flat32:.2}x ({:.2}x improvement)",
            tree32 / flat32
        );
    }
    if let (Some(tt32), Some(tf32)) = (
        speedup_of(Scenario::Homogeneous, tt, 32),
        speedup_of(Scenario::Homogeneous, tf, 32),
    ) {
        println!(
            "Reduce A/B at 32 homogeneous hosts (tree fork both): tree reduce {tt32:.2}x vs \
             flat reduce {tf32:.2}x ({:.2}x improvement)",
            tt32 / tf32
        );
    }

    // --- CI scaling gate -------------------------------------------------
    // Floors live in crates/bench/baselines.toml; a regression in the
    // broadcast or collection path fails the build here instead of
    // silently flattening the curve.
    let floors = load_baselines();
    if quick() {
        if let Some(s16) = speedup_of(Scenario::Homogeneous, tt, 16) {
            let floor = floors["tree_homogeneous_16_min_speedup"];
            println!("gate: tree/tree homogeneous S(16) = {s16:.2} (floor {floor:.2})");
            assert!(
                s16 >= floor,
                "CI scaling gate: 16-host homogeneous speedup {s16:.2} fell below \
                 the pinned floor {floor:.2} (crates/bench/baselines.toml)"
            );
        }
        if let Some(s32) = speedup_of(Scenario::Homogeneous, tt, 32) {
            let floor = floors["tree_reduce_homogeneous_32_min_speedup"];
            println!("gate: tree/tree homogeneous S(32) = {s32:.2} (floor {floor:.2})");
            assert!(
                s32 >= floor,
                "CI scaling gate: 32-host tree-reduce speedup {s32:.2} fell below \
                 the pinned floor {floor:.2} (crates/bench/baselines.toml)"
            );
        }
        if let (Some(tree32), Some(flat32)) = (
            speedup_of(Scenario::Homogeneous, tt, 32),
            speedup_of(Scenario::Homogeneous, ff, 32),
        ) {
            let ratio = tree32 / flat32;
            let floor = floors["tree_over_flat_32_min_ratio"];
            println!("gate: tree/flat ratio at 32 hosts = {ratio:.2} (floor {floor:.2})");
            assert!(
                ratio >= floor,
                "CI scaling gate: treed collectives are only {ratio:.2}x the 1999 flat \
                 system at 32 homogeneous hosts, below the pinned {floor:.2}x floor"
            );
        }
    }

    println!(
        "\nShape check: homogeneous speedup grows with nodes until the fixed\n\
         per-fork communication dominates the shrinking block — under flat\n\
         collectives that rollover is the master's serialized fork sends plus\n\
         the n-1 join streams converging on its inbound wire; the binomial\n\
         tree on both sides pushes it past 32 nodes. Heterogeneous flattens\n\
         hard (static schedules stretch to the half-speed stragglers);\n\
         loaded-host tracks homogeneous minus one effective node. Wall time:\n\
         {:.1}s for {} virtual runs.",
        wall.elapsed().as_secs_f64(),
        rows.len() + 1
    );
    assert!(
        wall.elapsed().as_secs_f64() < 120.0 || !quick(),
        "smoke sweep must finish under two minutes of wall time"
    );
}
