//! **What-if scaling sweep** — scenarios no 1999 machine room could
//! run.
//!
//! The paper's testbed was eight homogeneous 300 MHz Pentium IIs. With
//! the `CostModel` charging calibrated compute to the virtual clock,
//! the same application binaries can be "run" on NOWs that never
//! existed, in seconds of wall time:
//!
//! * **scale-out** — 2..32 workstations (the paper stopped at 8);
//! * **heterogeneous** — every odd-numbered workstation at half speed
//!   (a mixed-generation machine room). Static schedules stretch to
//!   the stragglers: the measured curve shows exactly the flattening
//!   the paper's §7 future work anticipates;
//! * **loaded host** — one workstation with a competing background
//!   process (load 1.0 ⇒ effective speed ½): the classic "someone sat
//!   down at their workstation" scenario from §1, *without* the owner
//!   asking the process to leave.
//!
//! **`--broadcast {flat,tree}`** A/Bs the fork *dissemination*:
//! `flat` is the 1999 system (master-serialized fork sends, flat
//! write-notice payloads), `tree` is the binomial relay redesign.
//! **`--reduce {flat,tree}`** A/Bs the *collection* side: `flat` has
//! every slave send its `JoinArrive` (and barrier arrival) straight to
//! the master while `tree` aggregates up / relays down the same
//! binomial tree (see `docs/BROADCAST.md`).
//! **`--dataplane {demand,overlap}`** A/Bs the *data plane*: `demand`
//! is faithful 1999 demand paging (every fault a blocking sequential
//! round-trip), `overlap` turns on pipelined multi-creator faults,
//! release-phase prefetch, and piggybacked hot diffs (see
//! `docs/DATAPLANE.md`). The default sweeps the four system
//! generations: `flat/flat/demand` (1999), `tree/flat/demand` (fork
//! redesign), `tree/tree/demand` (both collectives treed),
//! `tree/tree/overlap` (the full overlapped system); passing flags
//! pins lanes.
//!
//! The data plane binds on *irregular* access patterns, so after the
//! Jacobi generation sweep the run A/Bs demand vs overlap on **NBF**
//! (the paper's irregular kernel: every atom reads 80 scattered
//! partner positions, so its pages are multi-writer and every rank
//! re-faults the whole position array each iteration). On regular
//! nearest-neighbour Jacobi the collectives dominate at this scale and
//! overlap is ≈ neutral; on NBF it is the headline win this sweep
//! gates.
//!
//! After the protocol-accurate sweeps, a **task-engine scale section**
//! runs Jacobi and NBF at 256 and 1024 homogeneous hosts on the
//! event-driven engine (`nowmp_core::TaskSystem`: resumable host tasks
//! over an `NOWMP_POOL`-wide worker pool — see `docs/TIME.md`), host
//! counts thread-per-host could never carry. It records wall seconds,
//! simulated seconds, and the peak process-wide OS thread count
//! (sampled from `/proc/self/status`) into the artifact.
//! **`--nprocs N`** pins the section to a single host count.
//!
//! The run doubles as the **CI scaling gate**: it fails if the
//! tree/tree 16-host homogeneous speedup, the tree/tree-over-flat/flat
//! advantage at 32 hosts, the tree/tree 32-host speedup, the NBF
//! overlapped-data-plane 32-host speedup, or the NBF overlap-over-
//! demand ratio at 32 hosts drops below the floors pinned in
//! `crates/bench/baselines.toml` — and if the 1024-host task-engine
//! run either exceeds its wall-time budget or leaks OS threads beyond
//! O(pool) (`task_scale_1024_max_*`).
//!
//! Every run uses the virtual clock regardless of `NOWMP_CLOCK`; the
//! sweep completes in well under two minutes of wall time (`--smoke`
//! in CI).

use nowmp_apps::tasks::{TaskJacobi, TaskNbf};
use nowmp_apps::{jacobi::Jacobi, nbf::Nbf, with_kernel_costs, Kernel};
use nowmp_bench::{
    bench_net_model, load_baselines, measure, print_table, quick, whatif_json, TaskScaleLane,
    WhatifLane,
};
use nowmp_core::{run_task_app, ClusterConfig, TaskApp};
use nowmp_net::{CostModel, HostId, NetModel};
use nowmp_tmk::{Broadcast, CollectiveConfig, DataPlaneConfig, DsmConfig};
use nowmp_util::Clock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Scenario family: how the pool's hosts differ from the reference.
#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Homogeneous,
    /// Odd-numbered hosts run at half speed.
    Heterogeneous,
    /// Host 1 carries one competing background process.
    LoadedHost,
}

impl Scenario {
    fn name(&self) -> &'static str {
        match self {
            Scenario::Homogeneous => "homogeneous",
            Scenario::Heterogeneous => "heterogeneous",
            Scenario::LoadedHost => "loaded-host",
        }
    }

    fn apply(&self, mut cost: CostModel, hosts: usize) -> CostModel {
        match self {
            Scenario::Homogeneous => {}
            Scenario::Heterogeneous => {
                for h in (1..hosts).step_by(2) {
                    cost = cost.with_host_speed(HostId(h as u16), 0.5);
                }
            }
            Scenario::LoadedHost => {
                if hosts > 1 {
                    cost = cost.with_host_load(HostId(1), 1.0);
                }
            }
        }
        cost
    }
}

/// The data-plane lane of the sweep.
#[derive(Clone, Copy, PartialEq)]
enum DataPlane {
    /// Faithful 1999 demand paging.
    Demand,
    /// Pipelined faults + release-phase prefetch + piggybacked diffs.
    Overlap,
}

impl DataPlane {
    fn config(&self) -> DataPlaneConfig {
        match self {
            DataPlane::Demand => DataPlaneConfig::demand(),
            DataPlane::Overlap => DataPlaneConfig::overlap(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            DataPlane::Demand => "demand",
            DataPlane::Overlap => "overlap",
        }
    }
}

/// One lane of the sweep: fork dissemination × join/barrier collection
/// × data plane.
#[derive(Clone, Copy, PartialEq)]
struct Mode {
    fork: Broadcast,
    reduce: Broadcast,
    dataplane: DataPlane,
}

impl Mode {
    fn collectives(&self) -> CollectiveConfig {
        CollectiveConfig::default()
            .with_fork(self.fork)
            .with_join_reduce(self.reduce)
            .with_barrier_release(self.reduce)
    }
}

fn bname(b: Broadcast) -> &'static str {
    match b {
        Broadcast::Flat => "flat",
        Broadcast::Tree => "tree",
    }
}

fn cfg(kernel: &dyn Kernel, scenario: Scenario, procs: usize, mode: Mode) -> ClusterConfig {
    let cost = scenario.apply(with_kernel_costs(CostModel::paper_1999(), kernel), procs);
    ClusterConfig::test(procs, procs)
        .with_net_model(bench_net_model())
        .with_cost_model(cost)
        .with_dsm(DsmConfig::default_4k())
        .with_collectives(mode.collectives())
        .with_dataplane(mode.dataplane.config())
        .with_clock(Clock::new_virtual())
}

fn axis_from_args(flag: &str) -> Option<Broadcast> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return match args.get(i + 1).map(String::as_str) {
                Some("flat") => Some(Broadcast::Flat),
                Some("tree") => Some(Broadcast::Tree),
                other => panic!("{flag} expects flat|tree, got {other:?}"),
            };
        }
    }
    None
}

/// `--nprocs N` pins the task-engine scale section to one host count.
fn nprocs_from_args() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--nprocs" {
            return match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => Some(n),
                other => panic!("--nprocs expects a positive host count, got {other:?}"),
            };
        }
    }
    None
}

/// Current process-wide OS thread count (`/proc/self/status`).
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1)
}

/// Run one task-engine kernel at `procs` hosts, sampling the process's
/// OS thread count from a side thread while it runs. The sampler is
/// itself one of the threads it counts, so `os_threads_peak` includes
/// it (and the main thread) on top of the scoped worker pool.
fn task_scale_run(kernel: &str, app: &dyn TaskApp, procs: usize, iters: usize) -> TaskScaleLane {
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak = os_threads();
            while !stop.load(Ordering::Relaxed) {
                peak = peak.max(os_threads());
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            peak
        })
    };
    let cfg = ClusterConfig::test(procs, procs)
        .with_net_model(NetModel::paper_1999())
        .with_dsm(DsmConfig::default_4k())
        .with_clock(Clock::new_virtual());
    let wall = Instant::now();
    let (err, sys) = run_task_app(app, cfg, iters);
    let wall_secs = wall.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let os_threads_peak = sampler.join().expect("sampler thread");
    assert_eq!(err, 0.0, "{kernel} at {procs} hosts must verify bit-exact");
    assert!(
        sys.peak_workers() <= sys.pool(),
        "task engine workers ({}) must stay within the pool ({})",
        sys.peak_workers(),
        sys.pool()
    );
    TaskScaleLane {
        kernel: kernel.into(),
        nprocs: procs,
        wall_secs,
        sim_secs: sys.now().as_nanos() as f64 / 1e9,
        peak_workers: sys.peak_workers(),
        pool: sys.pool(),
        os_threads_peak,
    }
}

fn dataplane_from_args() -> Option<DataPlane> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--dataplane" {
            return match args.get(i + 1).map(String::as_str) {
                Some("demand") => Some(DataPlane::Demand),
                Some("overlap") => Some(DataPlane::Overlap),
                other => panic!("--dataplane expects demand|overlap, got {other:?}"),
            };
        }
    }
    None
}

/// `--broadcast` / `--reduce` / `--dataplane` pin one lane each; with
/// none given the sweep A/Bs the four system generations.
fn modes_from_args() -> Vec<Mode> {
    let fork = axis_from_args("--broadcast");
    let reduce = axis_from_args("--reduce");
    let dataplane = dataplane_from_args();
    if fork.is_none() && reduce.is_none() && dataplane.is_none() {
        // The four generations, newest first.
        return vec![
            Mode {
                fork: Broadcast::Tree,
                reduce: Broadcast::Tree,
                dataplane: DataPlane::Overlap,
            },
            Mode {
                fork: Broadcast::Tree,
                reduce: Broadcast::Tree,
                dataplane: DataPlane::Demand,
            },
            Mode {
                fork: Broadcast::Tree,
                reduce: Broadcast::Flat,
                dataplane: DataPlane::Demand,
            },
            Mode {
                fork: Broadcast::Flat,
                reduce: Broadcast::Flat,
                dataplane: DataPlane::Demand,
            },
        ];
    }
    // Any pinned flag narrows its axis; unpinned collective axes keep
    // their A/B pairs so the pinned lane still has a comparison.
    let forks = fork.map(|f| vec![f]).unwrap_or(vec![Broadcast::Tree]);
    let reduces = reduce
        .map(|r| vec![r])
        .unwrap_or(vec![Broadcast::Tree, Broadcast::Flat]);
    let dataplanes = dataplane
        .map(|d| vec![d])
        .unwrap_or(vec![DataPlane::Overlap, DataPlane::Demand]);
    let mut out = Vec::new();
    for &f in &forks {
        for &r in &reduces {
            for &d in &dataplanes {
                out.push(Mode {
                    fork: f,
                    reduce: r,
                    dataplane: d,
                });
            }
        }
    }
    out
}

/// Node counts for one (scenario, mode) lane. Smoke trims the
/// off-diagonal lanes so the sweep stays CI-sized while keeping every
/// column the scaling gates and the A/B ratios need.
fn scales(scenario: Scenario, mode: Mode) -> &'static [usize] {
    if !quick() {
        return &[2, 4, 8, 16, 32];
    }
    match (scenario, mode.fork, mode.reduce, mode.dataplane) {
        // The gate lanes: tree/tree homogeneous needs the full curve
        // for both data planes (16-host floor, 32-host floors, every
        // A/B numerator and denominator).
        (Scenario::Homogeneous, Broadcast::Tree, Broadcast::Tree, _) => &[2, 4, 8, 16, 32],
        // A/B baselines at the ceiling end: tree/flat isolates the
        // collection side, flat/flat is the 1999 system.
        (Scenario::Homogeneous, _, _, _) => &[8, 16, 32],
        // What-if color rides the newest lane only; the demand lanes
        // exist for the gates and A/Bs above.
        (_, _, Broadcast::Tree, DataPlane::Overlap) => &[2, 8, 32],
        (_, _, Broadcast::Tree, DataPlane::Demand) => &[32],
        (_, _, _, _) => &[8, 32],
    }
}

fn main() {
    nowmp_bench::smoke_from_args();
    let modes = modes_from_args();
    let wall = Instant::now();
    // Big enough that compute dominates at small node counts (the
    // scaling story needs a compute-bound regime to roll over from),
    // small enough that the real work behind the virtual charge stays
    // cheap.
    let (jacobi, iters) = if quick() {
        (Jacobi::new(384), 2usize)
    } else {
        (Jacobi::new(1024), 4usize)
    };

    // Serial baseline on one reference workstation (scenarios only
    // differ in hosts the serial run never touches; a 1-process run
    // exchanges nothing, so the mode is irrelevant too).
    let t1 = measure(
        &jacobi,
        cfg(
            &jacobi,
            Scenario::Homogeneous,
            1,
            Mode {
                fork: Broadcast::Tree,
                reduce: Broadcast::Tree,
                dataplane: DataPlane::Demand,
            },
        ),
        iters,
        false,
        |_, _| {},
        false,
    )
    .secs;

    // One measurement per (scenario, mode, nprocs); the table, the
    // JSON, and the gates all derive from this single collection so
    // they can never disagree.
    let mut results: Vec<(Scenario, Mode, usize, f64)> = Vec::new();
    let mut overlap32: Option<nowmp_tmk::DsmSnapshot> = None;
    for &scenario in &[
        Scenario::Homogeneous,
        Scenario::Heterogeneous,
        Scenario::LoadedHost,
    ] {
        for &mode in &modes {
            for &procs in scales(scenario, mode) {
                let run = measure(
                    &jacobi,
                    cfg(&jacobi, scenario, procs, mode),
                    iters,
                    false,
                    |_, _| {},
                    false,
                );
                if scenario == Scenario::Homogeneous
                    && mode.dataplane == DataPlane::Overlap
                    && procs == 32
                {
                    overlap32 = Some(run.dsm);
                }
                results.push((scenario, mode, procs, run.secs));
            }
        }
    }
    let speedup = |secs: f64| t1 / secs.max(1e-12);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(scenario, mode, procs, secs)| {
            vec![
                scenario.name().to_string(),
                bname(mode.fork).to_string(),
                bname(mode.reduce).to_string(),
                mode.dataplane.name().to_string(),
                procs.to_string(),
                format!("{secs:.3}"),
                format!("{:.2}", speedup(secs)),
                format!("{:.0}%", 100.0 * speedup(secs) / procs as f64),
            ]
        })
        .collect();

    let mut lanes: Vec<WhatifLane> = Vec::new();
    for &(scenario, mode, procs, secs) in &results {
        let key = (
            scenario.name().to_string(),
            bname(mode.fork).to_string(),
            bname(mode.reduce).to_string(),
            mode.dataplane.name().to_string(),
        );
        match lanes.last_mut() {
            Some(lane)
                if (lane.scenario == key.0)
                    && (lane.broadcast == key.1)
                    && (lane.reduce == key.2)
                    && (lane.dataplane == key.3) =>
            {
                lane.samples.push((procs, secs))
            }
            _ => lanes.push(WhatifLane {
                scenario: key.0,
                broadcast: key.1,
                reduce: key.2,
                dataplane: key.3,
                t1,
                samples: vec![(procs, secs)],
            }),
        }
    }

    print_table(
        &format!(
            "What-if scaling sweep: Jacobi {n}x{n}, {iters} iters, virtual clock (T1 = {t1:.3}s)",
            n = jacobi.n
        ),
        &[
            "Scenario",
            "Broadcast",
            "Reduce",
            "Dataplane",
            "Nodes",
            "Sim(s)",
            "Speedup",
            "Efficiency",
        ],
        &rows,
    );

    // Data-plane counters at the Jacobi headline point (32 homogeneous
    // hosts, overlap lane): how much the prefetcher moved and how much
    // of it was actually claimed by a fault.
    if let Some(d) = &overlap32 {
        println!(
            "\nData plane, Jacobi at 32 homogeneous hosts (overlap): prefetch issued {} \
             pages, hit {} ({:.0}%), wasted {}; piggybacked {} diff bytes",
            d.prefetch_issued,
            d.prefetch_hits,
            100.0 * d.prefetch_hits as f64 / (d.prefetch_issued.max(1)) as f64,
            d.prefetch_wasted,
            d.piggyback_bytes,
        );
        assert!(
            d.prefetch_wasted <= d.prefetch_issued,
            "no silent waste: every wasted prefetch page must have been issued \
             (wasted {} > issued {})",
            d.prefetch_wasted,
            d.prefetch_issued
        );
    }

    // --- Data-plane A/B on the irregular kernel --------------------------
    // Jacobi's nearest-neighbour faults are few, single-creator, and
    // dwarfed by the collectives at this scale, so the sweep above
    // shows overlap ≈ demand. NBF is where the data plane binds: the
    // position array is read scattered by every rank and multi-written
    // every iteration, so demand paging pays thousands of sequential
    // round-trips that pipeline + prefetch take off the critical path.
    // This section always runs both planes — it *is* the A/B the gate
    // below pins (the lane flags only narrow the Jacobi sweep).
    let (nbf, nbf_iters) = if quick() {
        (Nbf::new(2048, 16), 4usize)
    } else {
        (Nbf::new(4096, 64), 6usize)
    };
    let ttd = Mode {
        fork: Broadcast::Tree,
        reduce: Broadcast::Tree,
        dataplane: DataPlane::Demand,
    };
    let tto = Mode {
        fork: Broadcast::Tree,
        reduce: Broadcast::Tree,
        dataplane: DataPlane::Overlap,
    };
    let nbf_t1 = measure(
        &nbf,
        cfg(&nbf, Scenario::Homogeneous, 1, ttd),
        nbf_iters,
        false,
        |_, _| {},
        false,
    )
    .secs;
    let nbf_scales: &[usize] = if quick() { &[8, 32] } else { &[2, 8, 32] };
    let mut nbf_results: Vec<(DataPlane, usize, f64)> = Vec::new();
    let mut nbf_overlap32: Option<nowmp_tmk::DsmSnapshot> = None;
    for &mode in &[ttd, tto] {
        let mut samples = Vec::new();
        for &procs in nbf_scales {
            let run = measure(
                &nbf,
                cfg(&nbf, Scenario::Homogeneous, procs, mode),
                nbf_iters,
                false,
                |_, _| {},
                false,
            );
            if mode.dataplane == DataPlane::Overlap && procs == 32 {
                nbf_overlap32 = Some(run.dsm);
            }
            nbf_results.push((mode.dataplane, procs, run.secs));
            samples.push((procs, run.secs));
        }
        lanes.push(WhatifLane {
            scenario: "nbf-homogeneous".into(),
            broadcast: "tree".into(),
            reduce: "tree".into(),
            dataplane: mode.dataplane.name().into(),
            t1: nbf_t1,
            samples,
        });
    }
    let nbf_speedup = |dp: DataPlane, procs: usize| {
        nbf_results
            .iter()
            .find(|&&(d, p, _)| d == dp && p == procs)
            .map(|&(_, _, secs)| nbf_t1 / secs.max(1e-12))
    };
    let nbf_rows: Vec<Vec<String>> = nbf_results
        .iter()
        .map(|&(dp, procs, secs)| {
            vec![
                dp.name().to_string(),
                procs.to_string(),
                format!("{secs:.3}"),
                format!("{:.2}", nbf_t1 / secs.max(1e-12)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Data-plane A/B: NBF {a} atoms x {p} partners, {nbf_iters} iters, tree \
             collectives, homogeneous (T1 = {nbf_t1:.3}s)",
            a = nbf.atoms,
            p = nbf.partners
        ),
        &["Dataplane", "Nodes", "Sim(s)", "Speedup"],
        &nbf_rows,
    );
    if let Some(d) = &nbf_overlap32 {
        println!(
            "\nData plane, NBF at 32 homogeneous hosts (overlap): prefetch issued {} \
             pages, hit {} ({:.0}%), wasted {}; piggybacked {} diff bytes",
            d.prefetch_issued,
            d.prefetch_hits,
            100.0 * d.prefetch_hits as f64 / (d.prefetch_issued.max(1)) as f64,
            d.prefetch_wasted,
            d.piggyback_bytes,
        );
        assert!(
            d.prefetch_wasted <= d.prefetch_issued,
            "no silent waste: every wasted prefetch page must have been issued \
             (wasted {} > issued {})",
            d.prefetch_wasted,
            d.prefetch_issued
        );
    }
    if let (Some(ov32), Some(dm32)) = (
        nbf_speedup(DataPlane::Overlap, 32),
        nbf_speedup(DataPlane::Demand, 32),
    ) {
        println!(
            "Dataplane A/B, NBF at 32 homogeneous hosts: overlap {ov32:.2}x vs demand \
             {dm32:.2}x ({:.2}x improvement)",
            ov32 / dm32
        );
    }

    // --- Task-engine scale: host counts threads could never carry --------
    // The protocol-accurate sweeps above top out at 32 hosts because
    // the thread engine parks one OS thread per simulated host. The
    // event-driven engine (resumable host tasks on an O(pool) worker
    // pool) carries 256 and 1024 hosts; this section proves *capacity*
    // — wall seconds within the CI budget, OS threads bounded by the
    // pool, results still bit-exact — not protocol timings.
    let base_threads = os_threads();
    let scale_counts: Vec<usize> = nprocs_from_args()
        .map(|n| vec![n])
        .unwrap_or(vec![256, 1024]);
    let mut task_lanes: Vec<TaskScaleLane> = Vec::new();
    for &procs in &scale_counts {
        // Jacobi needs >= one grid row per rank; NBF >= one atom.
        let jn = procs.max(if quick() { 256 } else { 512 });
        let (atoms, partners) = if quick() { (2048, 8) } else { (4096, 16) };
        let it = if quick() { 2 } else { 3 };
        task_lanes.push(task_scale_run("jacobi", &TaskJacobi::new(jn), procs, it));
        task_lanes.push(task_scale_run(
            "nbf",
            &TaskNbf::new(atoms.max(procs), partners),
            procs,
            it,
        ));
    }
    let task_rows: Vec<Vec<String>> = task_lanes
        .iter()
        .map(|l| {
            vec![
                l.kernel.clone(),
                l.nprocs.to_string(),
                format!("{:.2}", l.wall_secs),
                format!("{:.3}", l.sim_secs),
                format!("{}/{}", l.peak_workers, l.pool),
                l.os_threads_peak.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Task-engine scale (event-driven, worker pool of {}, {} OS threads at rest)",
            task_lanes.first().map(|l| l.pool).unwrap_or(0),
            base_threads
        ),
        &[
            "Kernel",
            "Hosts",
            "Wall(s)",
            "Sim(s)",
            "Workers",
            "OS threads",
        ],
        &task_rows,
    );

    let json = whatif_json(t1, &lanes, &task_lanes);
    std::fs::write("BENCH_whatif.json", &json).expect("write BENCH_whatif.json");
    println!("\nwrote BENCH_whatif.json ({} bytes)", json.len());

    let speedup_of = |s: Scenario, m: Mode, procs: usize| {
        results
            .iter()
            .find(|&&(ls, lm, lp, _)| ls == s && lm == m && lp == procs)
            .map(|&(_, _, _, secs)| speedup(secs))
    };
    let tfd = Mode {
        fork: Broadcast::Tree,
        reduce: Broadcast::Flat,
        dataplane: DataPlane::Demand,
    };
    let ffd = Mode {
        fork: Broadcast::Flat,
        reduce: Broadcast::Flat,
        dataplane: DataPlane::Demand,
    };

    // The A/B headlines at the ceiling end: what the fork tree bought
    // (ISSUE 5), what treeing the collection side buys on top (ISSUE
    // 6), and what overlapping the data plane buys on top of both
    // (ISSUE 7).
    if let (Some(tree32), Some(flat32)) = (
        speedup_of(Scenario::Homogeneous, ttd, 32),
        speedup_of(Scenario::Homogeneous, ffd, 32),
    ) {
        println!(
            "\nCollective A/B at 32 homogeneous hosts: tree/tree {tree32:.2}x vs \
             flat/flat {flat32:.2}x ({:.2}x improvement)",
            tree32 / flat32
        );
    }
    if let (Some(tt32), Some(tf32)) = (
        speedup_of(Scenario::Homogeneous, ttd, 32),
        speedup_of(Scenario::Homogeneous, tfd, 32),
    ) {
        println!(
            "Reduce A/B at 32 homogeneous hosts (tree fork both): tree reduce {tt32:.2}x vs \
             flat reduce {tf32:.2}x ({:.2}x improvement)",
            tt32 / tf32
        );
    }
    if let (Some(ov32), Some(dm32)) = (
        speedup_of(Scenario::Homogeneous, tto, 32),
        speedup_of(Scenario::Homogeneous, ttd, 32),
    ) {
        println!(
            "Dataplane A/B, Jacobi at 32 homogeneous hosts (tree collectives both): \
             overlap {ov32:.2}x vs demand {dm32:.2}x ({:.2}x) — regular nearest-neighbour \
             faults are collective-bound at this scale; see the NBF table for where the \
             data plane binds",
            ov32 / dm32
        );
    }

    // --- CI scaling gate -------------------------------------------------
    // Floors live in crates/bench/baselines.toml; a regression in the
    // broadcast, collection, or data-plane path fails the build here
    // instead of silently flattening the curve.
    let floors = load_baselines();
    if quick() {
        if let Some(s16) = speedup_of(Scenario::Homogeneous, ttd, 16) {
            let floor = floors["tree_homogeneous_16_min_speedup"];
            println!("gate: tree/tree homogeneous S(16) = {s16:.2} (floor {floor:.2})");
            assert!(
                s16 >= floor,
                "CI scaling gate: 16-host homogeneous speedup {s16:.2} fell below \
                 the pinned floor {floor:.2} (crates/bench/baselines.toml)"
            );
        }
        if let Some(s32) = speedup_of(Scenario::Homogeneous, ttd, 32) {
            let floor = floors["tree_reduce_homogeneous_32_min_speedup"];
            println!("gate: tree/tree homogeneous S(32) = {s32:.2} (floor {floor:.2})");
            assert!(
                s32 >= floor,
                "CI scaling gate: 32-host tree-reduce speedup {s32:.2} fell below \
                 the pinned floor {floor:.2} (crates/bench/baselines.toml)"
            );
        }
        if let (Some(tree32), Some(flat32)) = (
            speedup_of(Scenario::Homogeneous, ttd, 32),
            speedup_of(Scenario::Homogeneous, ffd, 32),
        ) {
            let ratio = tree32 / flat32;
            let floor = floors["tree_over_flat_32_min_ratio"];
            println!("gate: tree/flat ratio at 32 hosts = {ratio:.2} (floor {floor:.2})");
            assert!(
                ratio >= floor,
                "CI scaling gate: treed collectives are only {ratio:.2}x the 1999 flat \
                 system at 32 homogeneous hosts, below the pinned {floor:.2}x floor"
            );
        }
        if let Some(ov32) = nbf_speedup(DataPlane::Overlap, 32) {
            let floor = floors["overlap_homogeneous_32_min_speedup"];
            println!("gate: NBF overlap homogeneous S(32) = {ov32:.2} (floor {floor:.2})");
            assert!(
                ov32 >= floor,
                "CI scaling gate: NBF 32-host overlapped-data-plane speedup {ov32:.2} \
                 fell below the pinned floor {floor:.2} (crates/bench/baselines.toml)"
            );
        }
        if let (Some(ov32), Some(dm32)) = (
            nbf_speedup(DataPlane::Overlap, 32),
            nbf_speedup(DataPlane::Demand, 32),
        ) {
            let ratio = ov32 / dm32;
            let floor = floors["overlap_over_demand_32_min_ratio"];
            println!("gate: NBF overlap/demand ratio at 32 hosts = {ratio:.2} (floor {floor:.2})");
            assert!(
                ratio >= floor,
                "CI scaling gate: the overlapped data plane is only {ratio:.2}x demand \
                 paging on NBF at 32 homogeneous hosts, below the pinned {floor:.2}x floor"
            );
        }
        // The 1024-host task-engine lane: completes within the CI job
        // budget, and its OS thread footprint is O(pool), not O(hosts)
        // — the ISSUE 9 acceptance bar.
        let wall_max = floors["task_scale_1024_max_wall_secs"];
        let extra_max = floors["task_scale_1024_max_extra_threads"];
        for l in task_lanes.iter().filter(|l| l.nprocs == 1024) {
            let extra = l.os_threads_peak.saturating_sub(base_threads);
            println!(
                "gate: task-engine {} at 1024 hosts = {:.2}s wall (budget {wall_max:.0}s), \
                 {extra} OS threads over rest (max {extra_max:.0})",
                l.kernel, l.wall_secs
            );
            assert!(
                l.wall_secs <= wall_max,
                "CI scaling gate: task-engine {} at 1024 hosts took {:.2}s of wall time, \
                 over the {wall_max:.0}s budget (crates/bench/baselines.toml)",
                l.kernel,
                l.wall_secs
            );
            assert!(
                (extra as f64) <= extra_max,
                "CI scaling gate: task-engine {} at 1024 hosts raised the process to \
                 {} OS threads ({extra} over the at-rest {base_threads}) — the pool is \
                 {}, so the engine is leaking threads with host count",
                l.kernel,
                l.os_threads_peak,
                l.pool
            );
        }
    }

    println!(
        "\nShape check: homogeneous speedup grows with nodes until the fixed\n\
         per-fork communication dominates the shrinking block — under flat\n\
         collectives that rollover is the master's serialized fork sends plus\n\
         the n-1 join streams converging on its inbound wire; the binomial\n\
         tree on both sides pushes it past 32 nodes, and overlapping the\n\
         data plane (pipelined faults, release-phase prefetch, piggybacked\n\
         hot diffs) takes the remaining per-fault round-trips off the\n\
         critical path. Heterogeneous flattens hard (static schedules\n\
         stretch to the half-speed stragglers); loaded-host tracks\n\
         homogeneous minus one effective node. Wall time: {:.1}s for {}\n\
         virtual runs.",
        wall.elapsed().as_secs_f64(),
        rows.len() + nbf_rows.len() + 2
    );
    assert!(
        wall.elapsed().as_secs_f64() < 120.0 || !quick(),
        "smoke sweep must finish under two minutes of wall time"
    );
}
