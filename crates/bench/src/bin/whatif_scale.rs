//! **What-if scaling sweep** — scenarios no 1999 machine room could
//! run.
//!
//! The paper's testbed was eight homogeneous 300 MHz Pentium IIs. With
//! the `CostModel` charging calibrated compute to the virtual clock,
//! the same application binaries can be "run" on NOWs that never
//! existed, in seconds of wall time:
//!
//! * **scale-out** — 2..32 workstations (the paper stopped at 8);
//! * **heterogeneous** — every odd-numbered workstation at half speed
//!   (a mixed-generation machine room). Static schedules stretch to
//!   the stragglers: the measured curve shows exactly the flattening
//!   the paper's §7 future work anticipates;
//! * **loaded host** — one workstation with a competing background
//!   process (load 1.0 ⇒ effective speed ½): the classic "someone sat
//!   down at their workstation" scenario from §1, *without* the owner
//!   asking the process to leave.
//!
//! **`--broadcast {flat,tree}`** A/Bs the fork dissemination: `flat` is
//! the 1999 system (master-serialized fork sends, flat write-notice
//! payloads — the broadcast ceiling this sweep exposed), `tree` is the
//! redesign (binomial relay tree + interval-run notice encoding, see
//! `docs/BROADCAST.md`). The default runs both and emits the A/B into
//! `BENCH_whatif.json`.
//!
//! The run doubles as the **CI scaling gate**: it fails if the tree
//! 16-host homogeneous speedup drops below the floor pinned in
//! `crates/bench/baselines.toml`, or if the tree's advantage over flat
//! at 32 homogeneous hosts falls under the pinned ratio.
//!
//! Every run uses the virtual clock regardless of `NOWMP_CLOCK`; the
//! sweep completes in well under two minutes of wall time (`--smoke`
//! in CI).

use nowmp_apps::{jacobi::Jacobi, with_kernel_costs, Kernel};
use nowmp_bench::{bench_net_model, load_baselines, measure, print_table, quick, whatif_json};
use nowmp_core::ClusterConfig;
use nowmp_net::{CostModel, HostId};
use nowmp_tmk::{Broadcast, DsmConfig};
use nowmp_util::Clock;
use std::time::Instant;

/// Scenario family: how the pool's hosts differ from the reference.
#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Homogeneous,
    /// Odd-numbered hosts run at half speed.
    Heterogeneous,
    /// Host 1 carries one competing background process.
    LoadedHost,
}

impl Scenario {
    fn name(&self) -> &'static str {
        match self {
            Scenario::Homogeneous => "homogeneous",
            Scenario::Heterogeneous => "heterogeneous",
            Scenario::LoadedHost => "loaded-host",
        }
    }

    fn apply(&self, mut cost: CostModel, hosts: usize) -> CostModel {
        match self {
            Scenario::Homogeneous => {}
            Scenario::Heterogeneous => {
                for h in (1..hosts).step_by(2) {
                    cost = cost.with_host_speed(HostId(h as u16), 0.5);
                }
            }
            Scenario::LoadedHost => {
                if hosts > 1 {
                    cost = cost.with_host_load(HostId(1), 1.0);
                }
            }
        }
        cost
    }
}

fn bname(b: Broadcast) -> &'static str {
    match b {
        Broadcast::Flat => "flat",
        Broadcast::Tree => "tree",
    }
}

fn cfg(
    kernel: &dyn Kernel,
    scenario: Scenario,
    procs: usize,
    broadcast: Broadcast,
) -> ClusterConfig {
    let cost = scenario.apply(with_kernel_costs(CostModel::paper_1999(), kernel), procs);
    ClusterConfig {
        hosts: procs,
        initial_procs: procs,
        net_model: bench_net_model(),
        cost_model: cost,
        dsm: DsmConfig {
            fork_broadcast: broadcast,
            ..DsmConfig::default_4k()
        },
        clock: Clock::new_virtual(),
        ..ClusterConfig::test(procs, procs)
    }
}

/// `--broadcast flat|tree` restricts the sweep to one dissemination
/// mode; the default A/Bs both.
fn broadcast_from_args() -> Vec<Broadcast> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--broadcast" {
            return match args.get(i + 1).map(String::as_str) {
                Some("flat") => vec![Broadcast::Flat],
                Some("tree") => vec![Broadcast::Tree],
                other => panic!("--broadcast expects flat|tree, got {other:?}"),
            };
        }
    }
    vec![Broadcast::Tree, Broadcast::Flat]
}

/// Node counts for one (scenario, broadcast) lane. Smoke trims the
/// off-diagonal lanes so the sweep stays CI-sized while keeping every
/// column the scaling gate and the A/B ratio need.
fn scales(scenario: Scenario, broadcast: Broadcast) -> &'static [usize] {
    if !quick() {
        return &[2, 4, 8, 16, 32];
    }
    match (scenario, broadcast) {
        // The gate lane: tree homogeneous needs the full curve
        // (16-host floor + the 32-host A/B numerator).
        (Scenario::Homogeneous, Broadcast::Tree) => &[2, 4, 8, 16, 32],
        // The A/B baseline: flat homogeneous at the ceiling end.
        (Scenario::Homogeneous, Broadcast::Flat) => &[8, 16, 32],
        // What-if color: both ends plus the paper scale.
        (_, Broadcast::Tree) => &[2, 8, 32],
        (_, Broadcast::Flat) => &[8, 32],
    }
}

fn main() {
    nowmp_bench::smoke_from_args();
    let broadcasts = broadcast_from_args();
    let wall = Instant::now();
    // Big enough that compute dominates at small node counts (the
    // scaling story needs a compute-bound regime to roll over from),
    // small enough that the real work behind the virtual charge stays
    // cheap.
    let (jacobi, iters) = if quick() {
        (Jacobi::new(384), 2usize)
    } else {
        (Jacobi::new(1024), 4usize)
    };

    // Serial baseline on one reference workstation (scenarios only
    // differ in hosts the serial run never touches; a 1-process run
    // broadcasts nothing, so the mode is irrelevant too).
    let t1 = measure(
        &jacobi,
        cfg(&jacobi, Scenario::Homogeneous, 1, Broadcast::Tree),
        iters,
        false,
        |_, _| {},
        false,
    )
    .secs;

    // One measurement per (scenario, broadcast, nprocs); the table,
    // the JSON, and the gate all derive from this single collection so
    // they can never disagree.
    let mut results: Vec<(Scenario, Broadcast, usize, f64)> = Vec::new();
    for &scenario in &[
        Scenario::Homogeneous,
        Scenario::Heterogeneous,
        Scenario::LoadedHost,
    ] {
        for &broadcast in &broadcasts {
            for &procs in scales(scenario, broadcast) {
                let run = measure(
                    &jacobi,
                    cfg(&jacobi, scenario, procs, broadcast),
                    iters,
                    false,
                    |_, _| {},
                    false,
                );
                results.push((scenario, broadcast, procs, run.secs));
            }
        }
    }
    let speedup = |secs: f64| t1 / secs.max(1e-12);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|&(scenario, broadcast, procs, secs)| {
            vec![
                scenario.name().to_string(),
                bname(broadcast).to_string(),
                procs.to_string(),
                format!("{secs:.3}"),
                format!("{:.2}", speedup(secs)),
                format!("{:.0}%", 100.0 * speedup(secs) / procs as f64),
            ]
        })
        .collect();

    let mut groups: Vec<(String, String, Vec<(usize, f64)>)> = Vec::new();
    for &(scenario, broadcast, procs, secs) in &results {
        let key = (scenario.name().to_string(), bname(broadcast).to_string());
        match groups.last_mut() {
            Some((s, b, samples)) if (*s == key.0) && (*b == key.1) => samples.push((procs, secs)),
            _ => groups.push((key.0, key.1, vec![(procs, secs)])),
        }
    }

    print_table(
        &format!(
            "What-if scaling sweep: Jacobi {n}x{n}, {iters} iters, virtual clock (T1 = {t1:.3}s)",
            n = jacobi.n
        ),
        &[
            "Scenario",
            "Broadcast",
            "Nodes",
            "Sim(s)",
            "Speedup",
            "Efficiency",
        ],
        &rows,
    );

    let json = whatif_json(t1, &groups);
    std::fs::write("BENCH_whatif.json", &json).expect("write BENCH_whatif.json");
    println!("\nwrote BENCH_whatif.json ({} bytes)", json.len());

    let speedup_of = |s: Scenario, b: Broadcast, procs: usize| {
        results
            .iter()
            .find(|&&(ls, lb, lp, _)| ls == s && lb == b && lp == procs)
            .map(|&(_, _, _, secs)| speedup(secs))
    };

    // The A/B headline: how much virtual-timeline speedup the tree
    // broadcast buys where the flat broadcast ceiling bit hardest.
    if let (Some(tree32), Some(flat32)) = (
        speedup_of(Scenario::Homogeneous, Broadcast::Tree, 32),
        speedup_of(Scenario::Homogeneous, Broadcast::Flat, 32),
    ) {
        println!(
            "\nBroadcast A/B at 32 homogeneous hosts: tree {tree32:.2}x vs flat {flat32:.2}x \
             ({:.2}x improvement)",
            tree32 / flat32
        );
    }

    // --- CI scaling gate -------------------------------------------------
    // Floors live in crates/bench/baselines.toml; a regression in the
    // broadcast path fails the build here instead of silently flattening
    // the curve.
    let floors = load_baselines();
    if quick() {
        if let Some(s16) = speedup_of(Scenario::Homogeneous, Broadcast::Tree, 16) {
            let floor = floors["tree_homogeneous_16_min_speedup"];
            println!("gate: tree homogeneous S(16) = {s16:.2} (floor {floor:.2})");
            assert!(
                s16 >= floor,
                "CI scaling gate: 16-host homogeneous speedup {s16:.2} fell below \
                 the pinned floor {floor:.2} (crates/bench/baselines.toml)"
            );
        }
        if let (Some(tree32), Some(flat32)) = (
            speedup_of(Scenario::Homogeneous, Broadcast::Tree, 32),
            speedup_of(Scenario::Homogeneous, Broadcast::Flat, 32),
        ) {
            let ratio = tree32 / flat32;
            let floor = floors["tree_over_flat_32_min_ratio"];
            println!("gate: tree/flat ratio at 32 hosts = {ratio:.2} (floor {floor:.2})");
            assert!(
                ratio >= floor,
                "CI scaling gate: tree broadcast is only {ratio:.2}x flat at 32 \
                 homogeneous hosts, below the pinned {floor:.2}x floor"
            );
        }
    }

    println!(
        "\nShape check: homogeneous speedup grows with nodes until the fixed\n\
         per-fork communication dominates the shrinking block — under the flat\n\
         broadcast that rollover is the master's serialized fork sends; the\n\
         tree broadcast pushes it past 32 nodes. Heterogeneous flattens hard\n\
         (static schedules stretch to the half-speed stragglers); loaded-host\n\
         tracks homogeneous minus one effective node. Wall time: {:.1}s for {}\n\
         virtual runs.",
        wall.elapsed().as_secs_f64(),
        rows.len() + 1
    );
    assert!(
        wall.elapsed().as_secs_f64() < 120.0 || !quick(),
        "smoke sweep must finish under two minutes of wall time"
    );
}
