//! `whatif_tenancy` — trace-driven what-if for the multi-tenant
//! cluster scheduler (NOW as a service).
//!
//! Generates a synthetic job trace the way cluster workloads actually
//! look and replays it through [`nowmp_omp::jobs::Scheduler`] on a
//! 32-workstation pool under the global virtual timeline:
//!
//! * **Poisson arrivals** — exponential inter-arrival gaps via inverse
//!   CDF on a deterministic splitmix64 stream (no rand crate in the
//!   offline vendor set; the trace is bit-reproducible across runs).
//! * **Heavy-tailed job sizes** — step counts drawn from a bounded
//!   Pareto (`alpha = 1.5`): many short jobs, a few order-of-magnitude
//!   stragglers, the shape every cluster trace study reports.
//! * **Diurnal load** — the arrival rate is modulated by a sinusoidal
//!   day curve (peak 1.75x, trough 0.25x of the base rate), so the
//!   scheduler sees both a rush hour and an idle valley.
//! * **Priority mix** — one job in five is "interactive" (priority 5,
//!   narrow `min == max` team) and preempts the batch tier (priority
//!   1, elastic `min << max` teams) through the grace-leave path.
//!
//! Reports makespan, the p99 queueing wait, mean turnaround, pool
//! utilization, peak tenant concurrency, and per-job accounting into
//! `BENCH_tenancy.json`. With `--smoke` the trace shrinks to CI size
//! and the floors in `crates/bench/baselines.toml` (`[tenancy]`) are
//! enforced: pool utilization must stay above `tenancy_util_min` and
//! the p99 wait below `tenancy_p99_wait_max` virtual seconds — a
//! placement or preemption regression shows up as idle granted hosts
//! (utilization collapses) or as queue buildup (the wait tail grows).

use nowmp_bench::{load_baselines, print_table, quick, smoke_from_args};
use nowmp_core::ClusterConfig;
use nowmp_net::CostModel;
use nowmp_omp::jobs::Scheduler;
use nowmp_omp::{JobSpec, OmpProgram, TenancyReport};
use std::time::Duration;

/// Pool size: the scale target of the scheduler redesign.
const HOSTS: usize = 32;

/// Deterministic splitmix64 stream — the trace must not depend on a
/// rand crate (offline vendor set) nor on run-to-run entropy.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with the given rate (events per second).
    fn exp(&mut self, rate: f64) -> f64 {
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Bounded Pareto: `xmin`-floored power law with tail index
    /// `alpha`, clipped at `cap`.
    fn pareto(&mut self, xmin: f64, alpha: f64, cap: f64) -> f64 {
        (xmin / (1.0 - self.next_f64()).powf(1.0 / alpha)).min(cap)
    }
}

/// The diurnal modulation of the arrival rate at trace time `t`:
/// sinusoidal over `day`, swinging between 0.25x and 1.75x base load.
fn diurnal(t: f64, day: f64) -> f64 {
    1.0 + 0.75 * (std::f64::consts::TAU * t / day).sin()
}

/// The tenant workload: every step runs one "work" region whose
/// modeled compute cost (per worksharing iteration) is what fills the
/// virtual timeline; the array is small so the bin's *wall* cost stays
/// CI-sized while the *virtual* load is whatever the cost model says.
fn work_program() -> OmpProgram {
    OmpProgram::new().region("work", |ctx| {
        let data = ctx.f64vec("data");
        let n = data.len();
        ctx.for_static(0..n as u64, |c, i| {
            data.set(c.dsm(), i as usize, i as f64);
        });
    })
}

/// Iterations per step — with the per-iteration region cost below, a
/// step costs `WORK_ITERS * PER_ITER / procs` of virtual time.
const WORK_ITERS: u64 = 32;
const PER_ITER: Duration = Duration::from_millis(25);

struct TraceJob {
    arrival: f64,
    steps: u64,
    min_procs: usize,
    max_procs: usize,
    priority: u8,
    interactive: bool,
}

/// Draw the synthetic trace: `n` jobs, Poisson arrivals at `base_rate`
/// jobs/sec thinned by the diurnal curve, bounded-Pareto step counts.
fn draw_trace(n: usize, base_rate: f64, day: f64, steps_cap: f64, seed: u64) -> Vec<TraceJob> {
    let mut rng = Rng(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += rng.exp(base_rate * diurnal(t, day));
            let interactive = rng.next_f64() < 0.2;
            let (min_procs, max_procs, priority) = if interactive {
                // Interactive tier: rigid small team, preempts batch.
                let p = 1 << (rng.next_u64() % 2); // 1 or 2
                (p, p, 5u8)
            } else {
                // Batch tier: elastic, shrinks gracefully under load.
                let max = 1 << (1 + rng.next_u64() % 3); // 2, 4, 8
                (1, max, 1u8)
            };
            TraceJob {
                arrival: t,
                steps: rng.pareto(3.0, 1.5, steps_cap) as u64,
                min_procs,
                max_procs,
                priority,
                interactive,
            }
        })
        .collect()
}

fn spec_for(idx: usize, j: &TraceJob) -> JobSpec {
    let tier = if j.interactive { "int" } else { "batch" };
    JobSpec::new(format!("{tier}{idx}"), work_program())
        .with_procs(j.min_procs, j.max_procs)
        .with_priority(j.priority)
        .arriving_at(Duration::from_secs_f64(j.arrival))
        .with_setup(|sys| sys.alloc_f64("data", WORK_ITERS))
        .with_steps(j.steps, |sys, _| sys.parallel("work", &[]))
}

fn json(report: &TenancyReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"quick\": {},\n  \"hosts\": {HOSTS},\n  \"makespan_secs\": {:.3},\n  \
         \"utilization\": {:.4},\n  \"p99_wait_secs\": {:.3},\n  \
         \"mean_turnaround_secs\": {:.3},\n  \"max_concurrency\": {},\n  \"jobs\": [\n",
        quick(),
        report.makespan.as_secs_f64(),
        report.utilization,
        report.p99_wait().as_secs_f64(),
        report.mean_turnaround().as_secs_f64(),
        report.max_concurrency,
    ));
    for (i, j) in report.jobs.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"id\": {}, \"name\": \"{}\", \"priority\": {}, \"min_procs\": {}, \
             \"max_procs\": {}, \"arrival_secs\": {:.3}, \"wait_secs\": {:.3}, \
             \"turnaround_secs\": {:.3}, \"preemptions\": {}, \"net_msgs\": {}, \
             \"net_bytes\": {} }}{}\n",
            j.id.0,
            j.name,
            j.params.priority,
            j.params.min_procs,
            j.params.max_procs,
            j.params.arrival.as_secs_f64(),
            j.wait.as_secs_f64(),
            j.turnaround.as_secs_f64(),
            j.preemptions,
            j.traffic.msgs,
            j.traffic.bytes,
            if i + 1 < report.jobs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    smoke_from_args();
    // Smoke: a rush-hour-sized burst that still exercises preemption
    // and >= 8-way tenancy in seconds of wall time. Full: a longer day
    // with a deeper Pareto tail.
    let (n_jobs, base_rate, day, steps_cap) = if quick() {
        (24, 4.0, 6.0, 24.0)
    } else {
        (96, 3.0, 30.0, 96.0)
    };

    println!(
        "whatif_tenancy: {n_jobs} jobs on {HOSTS} hosts (virtual clock, {} mode)\n",
        if quick() { "smoke" } else { "full" }
    );

    let trace = draw_trace(n_jobs, base_rate, day, steps_cap, 0x5EED_1999);
    let base = ClusterConfig::test(HOSTS, 1)
        .with_cost_model(CostModel::disabled().with_region_cost("work", PER_ITER));
    let mut sched = Scheduler::new(base).with_net_contention(0.02);
    let handles: Vec<_> = trace
        .iter()
        .enumerate()
        .map(|(i, j)| sched.submit(spec_for(i, j)))
        .collect();
    let report = sched.run();
    assert_eq!(handles.len(), report.jobs.len());

    let mut rows = Vec::new();
    for j in &report.jobs {
        rows.push(vec![
            format!("{}", j.id),
            j.name.clone(),
            format!("p{}", j.params.priority),
            format!("{}-{}", j.params.min_procs, j.params.max_procs),
            format!("{:.2}", j.params.arrival.as_secs_f64()),
            format!("{:.2}", j.wait.as_secs_f64()),
            format!("{:.2}", j.turnaround.as_secs_f64()),
            j.preemptions.to_string(),
        ]);
    }
    print_table(
        &format!("Tenancy trace on {HOSTS} hosts (virtual seconds)"),
        &[
            "job",
            "name",
            "prio",
            "procs",
            "arrive",
            "wait",
            "turnaround",
            "preempted",
        ],
        &rows,
    );
    println!(
        "\nmakespan {:.2}s  utilization {:.1}%  p99 wait {:.2}s  mean turnaround {:.2}s  peak tenancy {}",
        report.makespan.as_secs_f64(),
        report.utilization * 100.0,
        report.p99_wait().as_secs_f64(),
        report.mean_turnaround().as_secs_f64(),
        report.max_concurrency,
    );

    let preempted: u64 = report.jobs.iter().map(|j| j.preemptions).sum();
    println!("preemptions across the trace: {preempted}");

    let out = json(&report);
    std::fs::write("BENCH_tenancy.json", &out).expect("write BENCH_tenancy.json");
    println!("wrote BENCH_tenancy.json ({} bytes)", out.len());

    // --- CI floors (enforced in the --smoke configuration CI runs) ----
    if quick() {
        assert!(
            report.max_concurrency >= 8,
            "the smoke trace must exercise real multi-tenancy, peaked at {}",
            report.max_concurrency
        );
        assert!(
            preempted > 0,
            "the smoke trace must exercise the preemption path"
        );
        let floors = load_baselines();
        let util_min = floors["tenancy_util_min"];
        println!(
            "gate: utilization = {:.3} (floor {util_min:.3})",
            report.utilization
        );
        assert!(
            report.utilization >= util_min,
            "CI tenancy gate: pool utilization {:.3} fell below the pinned floor \
             {util_min:.3} (crates/bench/baselines.toml)",
            report.utilization
        );
        let p99_max = floors["tenancy_p99_wait_max"];
        let p99 = report.p99_wait().as_secs_f64();
        println!("gate: p99 wait = {p99:.2}s (ceiling {p99_max:.2}s)");
        assert!(
            p99 <= p99_max,
            "CI tenancy gate: p99 queueing wait {p99:.2}s exceeded the pinned ceiling \
             {p99_max:.2}s (crates/bench/baselines.toml)"
        );
    }
}
