//! `hotpath` — real-clock throughput of the DSM data-plane hot path,
//! with CI floors.
//!
//! Two lane families (see `docs/HOTPATH.md`):
//!
//! * **pipeline** — single-thread pages/sec through the full
//!   consistency pipeline one page takes on a diff fetch: twin/current
//!   compare (`Diff::create_from_words`), wire encode, wire decode,
//!   apply into a `PageBuf`, plus the checkpoint-style zero-run encode
//!   (`zrle`) of the same page. This is the path the wide-scan rewrite
//!   accelerated; the floor pins it against regressions that criterion
//!   deltas alone would only report, not fail.
//! * **contention** — 1/4/8 threads doing page-state transitions on
//!   disjoint pages, once against the sharded [`PageTable`] (spin-lock
//!   shards) and once against a coarse `Mutex<Vec<PageMeta>>` — the
//!   pre-sharding design. The 1-thread lane is pure lock overhead; the
//!   4- and 8-thread lanes dedicate one thread to the *server role*:
//!   it repeatedly holds page 0's lock across a long serve (under the
//!   coarse design that lock is the global one — exactly how the old
//!   core mutex was held while snapshotting and replying), while the
//!   remaining threads fault on disjoint pages. Each lane reports two
//!   sharded/coarse ratios — fault throughput (worker ops/s) and
//!   serve throughput (server cycles/s) — because the coarse lock
//!   loses on whichever side the scheduler favours less: on multicore
//!   the workers serialize behind the server's holds (fault ratio
//!   shows it), while on a single-core runner the *server* starves —
//!   barging workers win every futex race and remote page requests
//!   sit unserved for whole scheduler rotations (serve ratio shows
//!   it, ~10x here). The gate takes the max of the two: both are the
//!   same pathology, one global lock coupling the fault path to the
//!   service path, which the shard layout removes.
//! * **interval** — 4/8 threads of write-fault *dirty enrollment*
//!   (the open interval's write-set bookkeeping) racing one closer
//!   thread that cycles interval closes. Sharded variant: enrollment
//!   rides the shard lock (`PageGuard::mark_dirty`) and the closer
//!   drains per-shard lists, holding nothing the writers need while
//!   it turns twins into diffs. Core-list variant (the old design):
//!   enrollment pushes onto one core-side `Mutex<Vec<PageId>>` that
//!   the closer holds across the whole close. The gated number is
//!   *fault-path progress during an active close*: ops/sec counted
//!   only while the closer is inside a close. Shard-local lists let
//!   writers keep faulting straight through a close (the closer holds
//!   nothing they need); the core list stalls every writer at its
//!   first post-reset write until the close finishes. Raw throughput
//!   ratios are scheduler-noisy on small runners (closes are rare
//!   events), but this during-close window is the direct signal of
//!   the coupling the shard layout removes, and it separates by an
//!   order of magnitude on every core count.
//!
//! Emits a human table plus `BENCH_hotpath.json`; with `--smoke` the
//! floors in `crates/bench/baselines.toml` (`[hotpath]`) are enforced
//! and a violation exits nonzero.

use nowmp_bench::{load_baselines, quick, smoke_from_args};
use nowmp_tmk::diff::Diff;
use nowmp_tmk::page::{PageBuf, PageMeta, PageState};
use nowmp_tmk::PageTable;
use nowmp_util::wire::Wire;
use nowmp_util::zrle;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// 4 KB pages, like the protocol default.
const SLOTS: usize = 512;

/// Pages/sec through create → wire → decode → apply → zrle.
fn pipeline_lane(pages: usize) -> f64 {
    let twin: Vec<u64> = (0..SLOTS as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
        .collect();
    let mut cur = twin.clone();
    for k in 0..64usize {
        // 64 scattered dirty words — the hot diff shape (every 8th).
        cur[k * 8] ^= 0xDEAD_BEEF ^ k as u64;
    }
    // A sparse page for the checkpoint-style encode: zeros plus the
    // 64 dirty values (what an early-run scientific array looks like).
    let mut sparse = vec![0u64; SLOTS];
    for k in 0..64usize {
        sparse[k * 8] = cur[k * 8];
    }
    let target = PageBuf::from_words(&twin);
    let mut sink = 0u64;
    let t0 = Instant::now();
    for _ in 0..pages {
        let diff = Diff::create_from_words(&twin, &cur, 0);
        let bytes = diff.to_wire();
        let got = Diff::from_wire(&bytes).expect("diff round-trips");
        got.apply(&target);
        let z = zrle::compress(&sparse);
        sink = sink.wrapping_add(bytes.len() as u64 + z.len() as u64);
    }
    let secs = t0.elapsed().as_secs_f64();
    assert!(sink != 0, "work not elided");
    assert_eq!(target.load(8), cur[8], "apply really landed");
    pages as f64 / secs
}

/// The per-page transition both contention variants perform: the
/// fault-path state flip a worksharing loop does per touched page.
#[inline]
fn touch(meta: &mut PageMeta, round: u64) {
    meta.state = PageState::Write;
    meta.dirty = !meta.dirty;
    meta.zero_lent = round.is_multiple_of(2);
    meta.state = PageState::Read;
}

/// The out-of-lock share of a fault: the word-copy/diff work a page
/// access does *without* holding any table lock (the new design only
/// takes the shard lock for the metadata flip; the coarse baseline is
/// given the same structure so the comparison is lock-vs-lock, not
/// workload-vs-workload). ~100 ns of unelidable compute.
#[inline]
fn fault_work(p: u32, round: u64) -> u64 {
    let mut x = u64::from(p).wrapping_add(round) | 1;
    for _ in 0..64 {
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17) ^ u64::from(p);
    }
    std::hint::black_box(x)
}

/// The server's per-cycle lock hold: the wall time the old design
/// pinned the core mutex per service burst (snapshot + reply + the
/// transport hop it waited out while holding). Held at millisecond
/// scale so the measurement is scheduler-robust on small runners.
const SERVE_HOLD: std::time::Duration = std::time::Duration::from_millis(1);
/// Gap between serves (the service thread's recv/decode time).
const SERVE_GAP: std::time::Duration = std::time::Duration::from_micros(300);

/// Pages worker `w` faults on: its own 64-page region, skipping the
/// blocks that share a shard with page 0 (the page being served), so
/// under the *sharded* table a fault never needs the server's lock —
/// the very property the layout exists to provide.
fn worker_pages(w: usize) -> Vec<u32> {
    ((w * 64)..(w * 64 + 64))
        .filter(|p| !(p / nowmp_tmk::table::RANGE).is_multiple_of(nowmp_tmk::table::SHARDS))
        .map(|p| p as u32)
        .collect()
}

/// (fault ops/sec, serves/sec) of `threads` total threads against the
/// sharded table: `threads - 1` fault workers plus a server holding
/// page 0's shard across each serve — or a single uncontended worker
/// when `threads == 1`.
fn contention_sharded(threads: usize, secs: f64) -> (f64, f64) {
    let table = Arc::new(PageTable::new());
    table.ensure(threads.max(2) * 64, nowmp_net::Gpid(1));
    let t2 = Arc::clone(&table);
    let t3 = Arc::clone(&table);
    run_lane(
        threads,
        secs,
        move |w, round| {
            let mut ops = 0;
            for &p in &worker_pages(w) {
                fault_work(p, round);
                let mut g = t2.guard(p);
                touch(&mut g, round);
                ops += 1;
            }
            ops
        },
        move || {
            let g = t3.guard(0);
            std::thread::sleep(SERVE_HOLD);
            drop(g);
            std::thread::sleep(SERVE_GAP);
        },
    )
}

/// Same workload against one coarse mutex around the whole page
/// vector — the pre-sharding design, kept as the baseline the CI
/// ratio is measured against. The server holds *the* lock across each
/// serve, exactly as the old core mutex was held.
fn contention_coarse(threads: usize, secs: f64) -> (f64, f64) {
    let pages: Arc<Mutex<Vec<PageMeta>>> = Arc::new(Mutex::new(
        (0..threads.max(2) * 64)
            .map(|_| PageMeta::new(nowmp_net::Gpid(1)))
            .collect(),
    ));
    let p2 = Arc::clone(&pages);
    let p3 = Arc::clone(&pages);
    run_lane(
        threads,
        secs,
        move |w, round| {
            let mut ops = 0;
            for &p in &worker_pages(w) {
                fault_work(p, round);
                let mut v = p2.lock();
                touch(&mut v[p as usize], round);
                ops += 1;
            }
            ops
        },
        move || {
            let g = p3.lock();
            std::thread::sleep(SERVE_HOLD);
            drop(g);
            std::thread::sleep(SERVE_GAP);
        },
    )
}

/// How long a close holds whatever lock it holds: twin→diff creation
/// over the interval's write set (the dominant close cost).
const CLOSE_HOLD: std::time::Duration = std::time::Duration::from_millis(1);
/// Gap between interval closes (the region body between sync points).
const CLOSE_GAP: std::time::Duration = std::time::Duration::from_micros(300);

/// One interval lane: `threads - 1` write-fault workers plus one
/// closer cycling interval closes for ~`secs` wall seconds. Returns
/// (fault ops/sec counted while `closing` was raised, closes/sec).
///
/// `enroll(worker, page, round)` performs the state flip + dirty
/// enrollment; `close()` performs one close (reset flags, diff work)
/// and must raise/lower `closing` around exactly the diff-work
/// window — the part of the close whose lock footprint the two
/// variants disagree about. (The flag-reset sweeps are excluded: they
/// serialize on shard spinlocks identically in both variants, and on
/// a 1-core runner they dominate the close's wall time, which would
/// drown the signal.)
fn interval_lane(
    threads: usize,
    secs: f64,
    closing: Arc<AtomicBool>,
    enroll: impl Fn(usize, u32, u64) + Send + Sync + 'static,
    close: impl Fn() + Send + 'static,
) -> (f64, f64) {
    let enroll = Arc::new(enroll);
    let stop = Arc::new(AtomicBool::new(false));
    let workers = threads.saturating_sub(1).max(1);
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let enroll = Arc::clone(&enroll);
            let stop = Arc::clone(&stop);
            let closing = Arc::clone(&closing);
            std::thread::spawn(move || {
                let mut during = 0usize;
                let mut round = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for &p in &worker_pages(w) {
                        fault_work(p, round);
                        enroll(w, p, round);
                        if closing.load(Ordering::Relaxed) {
                            during += 1;
                        }
                    }
                    round += 1;
                }
                during
            })
        })
        .collect();
    let closer = {
        let stop = Arc::clone(&stop);
        let closing = Arc::clone(&closing);
        std::thread::spawn(move || {
            let _ = &closing; // the close() closure raises/lowers it
            let mut closes = 0usize;
            while !stop.load(Ordering::Acquire) {
                close();
                closes += 1;
                std::thread::sleep(CLOSE_GAP);
            }
            closes
        })
    };
    let t0 = Instant::now();
    std::thread::sleep(std::time::Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Release);
    let during: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = t0.elapsed().as_secs_f64();
    let closes = closer.join().unwrap();
    (during as f64 / elapsed, closes as f64 / elapsed)
}

/// Interval lane with the write set in the page-table shards: writers
/// enroll via [`PageGuard::mark_dirty`] under the shard lock they
/// already hold for the state flip; the closer drains the shard
/// lists, resets the per-page flags, then does the diff work holding
/// nothing the writers need — faults stream straight through closes.
fn interval_sharded(threads: usize, secs: f64) -> (f64, f64) {
    let table = Arc::new(PageTable::new());
    table.ensure(threads.max(2) * 64, nowmp_net::Gpid(1));
    let t2 = Arc::clone(&table);
    let t3 = Arc::clone(&table);
    let closing = Arc::new(AtomicBool::new(false));
    let c2 = Arc::clone(&closing);
    interval_lane(
        threads,
        secs,
        closing,
        move |_, p, _| {
            let mut g = t2.guard(p);
            g.state = PageState::Write;
            g.mark_dirty();
            g.state = PageState::Read;
        },
        move || {
            for p in t3.drain_dirty() {
                t3.guard(p).dirty = false;
            }
            // Diff creation happens outside every lock a writer needs.
            c2.store(true, Ordering::Release);
            std::thread::sleep(CLOSE_HOLD);
            c2.store(false, Ordering::Release);
        },
    )
}

/// Same workload with the old core-side write set: one
/// `Mutex<Vec<PageId>>` that every first-write enrollment pushes onto
/// and that the closer holds across the whole close (flag resets +
/// diff creation) — every writer stalls at its first post-reset write
/// until the close finishes, exactly as under the core mutex.
fn interval_core_list(threads: usize, secs: f64) -> (f64, f64) {
    let table = Arc::new(PageTable::new());
    table.ensure(threads.max(2) * 64, nowmp_net::Gpid(1));
    let list: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let (t2, l2) = (Arc::clone(&table), Arc::clone(&list));
    let (t3, l3) = (Arc::clone(&table), Arc::clone(&list));
    let closing = Arc::new(AtomicBool::new(false));
    let c2 = Arc::clone(&closing);
    interval_lane(
        threads,
        secs,
        closing,
        move |_, p, _| {
            let first = {
                let mut g = t2.guard(p);
                g.state = PageState::Write;
                let first = !g.dirty;
                g.dirty = true;
                g.state = PageState::Read;
                first
            };
            if first {
                l2.lock().push(p);
            }
        },
        move || {
            let mut held = l3.lock();
            for p in held.drain(..) {
                t3.guard(p).dirty = false;
            }
            // Diff creation under the same lock enrollment needs.
            c2.store(true, Ordering::Release);
            std::thread::sleep(CLOSE_HOLD);
            c2.store(false, Ordering::Release);
            drop(held);
        },
    )
}

/// Run one contention lane for ~`secs` wall seconds: with
/// `threads == 1`, a single fault worker; otherwise `threads - 1`
/// fault workers plus one server thread cycling `serve`. Returns
/// (aggregate fault ops/sec, server serves/sec).
fn run_lane(
    threads: usize,
    secs: f64,
    work: impl Fn(usize, u64) -> usize + Send + Sync + 'static,
    serve: impl Fn() + Send + 'static,
) -> (f64, f64) {
    let work = Arc::new(work);
    let stop = Arc::new(AtomicBool::new(false));
    let workers = if threads == 1 { 1 } else { threads - 1 };
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let work = Arc::clone(&work);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ops = 0usize;
                let mut round = 0u64;
                while !stop.load(Ordering::Acquire) {
                    ops += work(w, round);
                    round += 1;
                }
                ops
            })
        })
        .collect();
    let server = (threads > 1).then(|| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut serves = 0usize;
            while !stop.load(Ordering::Acquire) {
                serve();
                serves += 1;
            }
            serves
        })
    });
    let t0 = Instant::now();
    std::thread::sleep(std::time::Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Release);
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = t0.elapsed().as_secs_f64();
    let serves = server.map_or(0, |s| s.join().unwrap());
    (total as f64 / elapsed, serves as f64 / elapsed)
}

struct Lane {
    threads: usize,
    sharded: (f64, f64),
    coarse: (f64, f64),
}

impl Lane {
    /// sharded/coarse fault-throughput ratio.
    fn fault_ratio(&self) -> f64 {
        self.sharded.0 / self.coarse.0
    }
    /// sharded/coarse serve-throughput ratio (0 when the lane has no
    /// server, i.e. threads == 1).
    fn serve_ratio(&self) -> f64 {
        if self.coarse.1 > 0.0 {
            self.sharded.1 / self.coarse.1
        } else {
            0.0
        }
    }
    /// The gated number: the stronger of the two faces of the coarse
    /// lock's loss (see the module docs).
    fn gate_ratio(&self) -> f64 {
        self.fault_ratio().max(self.serve_ratio())
    }

    /// sharded/coarse ratio with the denominator floored at 1 op/s:
    /// the interval lanes' core-list side is regularly *zero* (every
    /// writer is blocked for the whole measured window), which would
    /// print/serialize as `inf`.
    fn floored_ratio(&self) -> f64 {
        self.sharded.0 / self.coarse.0.max(1.0)
    }
}

fn json(pipeline: f64, lanes: &[Lane], intervals: &[Lane]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"quick\": {},\n  \"pipeline_pages_per_sec\": {pipeline:.1},\n  \"contention\": [\n",
        quick()
    ));
    for (i, l) in lanes.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"threads\": {}, \"sharded_ops_per_sec\": {:.1}, \
             \"coarse_ops_per_sec\": {:.1}, \"fault_ratio\": {:.3}, \
             \"sharded_serves_per_sec\": {:.1}, \"coarse_serves_per_sec\": {:.1}, \
             \"serve_ratio\": {:.3} }}{}\n",
            l.threads,
            l.sharded.0,
            l.coarse.0,
            l.fault_ratio(),
            l.sharded.1,
            l.coarse.1,
            l.serve_ratio(),
            if i + 1 < lanes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"interval\": [\n");
    for (i, l) in intervals.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"threads\": {}, \"sharded_during_close_ops_per_sec\": {:.1}, \
             \"core_list_during_close_ops_per_sec\": {:.1}, \"during_close_ratio\": {:.3}, \
             \"sharded_closes_per_sec\": {:.1}, \"core_list_closes_per_sec\": {:.1} }}{}\n",
            l.threads,
            l.sharded.0,
            l.coarse.0,
            l.floored_ratio(),
            l.sharded.1,
            l.coarse.1,
            if i + 1 < intervals.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    smoke_from_args();
    let (pipe_pages, lane_secs) = if quick() {
        (20_000, 0.3)
    } else {
        (200_000, 2.0)
    };

    println!(
        "hotpath: DSM data-plane throughput (real clock, {} mode)\n",
        if quick() { "smoke" } else { "full" }
    );

    let pipeline = pipeline_lane(pipe_pages);
    println!(
        "pipeline  create->wire->decode->apply->zrle  {:>10.0} pages/s  ({} pages, 4 KB, 64 dirty words)",
        pipeline, pipe_pages
    );

    let mut lanes = Vec::new();
    for &threads in &[1usize, 4, 8] {
        let lane = Lane {
            threads,
            sharded: contention_sharded(threads, lane_secs),
            coarse: contention_coarse(threads, lane_secs),
        };
        if threads == 1 {
            println!(
                "contention {threads}t  sharded {:>12.0} ops/s   coarse {:>12.0} ops/s   fault ratio {:>5.2}x",
                lane.sharded.0,
                lane.coarse.0,
                lane.fault_ratio()
            );
        } else {
            println!(
                "contention {threads}t  sharded {:>12.0} ops/s   coarse {:>12.0} ops/s   fault ratio {:>5.2}x   serves {:>5.0}/s vs {:>5.0}/s  serve ratio {:>5.2}x",
                lane.sharded.0,
                lane.coarse.0,
                lane.fault_ratio(),
                lane.sharded.1,
                lane.coarse.1,
                lane.serve_ratio()
            );
        }
        lanes.push(lane);
    }

    let mut intervals = Vec::new();
    for &threads in &[4usize, 8] {
        let lane = Lane {
            threads,
            sharded: interval_sharded(threads, lane_secs),
            coarse: interval_core_list(threads, lane_secs),
        };
        println!(
            "interval   {threads}t  during-close faults: sharded {:>12.0} ops/s   core-list {:>10.0} ops/s   ratio {:>6.1}x   closes {:>4.0}/s vs {:>4.0}/s",
            lane.sharded.0,
            lane.coarse.0,
            lane.floored_ratio(),
            lane.sharded.1,
            lane.coarse.1,
        );
        intervals.push(lane);
    }

    let out = json(pipeline, &lanes, &intervals);
    std::fs::write("BENCH_hotpath.json", &out).expect("write BENCH_hotpath.json");
    println!("\nwrote BENCH_hotpath.json ({} bytes)", out.len());

    // --- CI floors (enforced in the --smoke configuration CI runs) ----
    if quick() {
        let floors = load_baselines();
        let lane8 = &lanes[2];
        let ratio8 = lane8.gate_ratio();
        let ratio_floor = floors["hotpath_contention_8t_min_ratio"];
        println!(
            "gate: 8-thread sharded/coarse ratio = {ratio8:.2} (fault {:.2}x, serve {:.2}x; floor {ratio_floor:.2})",
            lane8.fault_ratio(),
            lane8.serve_ratio()
        );
        assert!(
            ratio8 >= ratio_floor,
            "CI hotpath gate: 8-thread page-table contention ratio {ratio8:.2} fell below \
             the pinned floor {ratio_floor:.2} (crates/bench/baselines.toml)"
        );
        let pipe_floor = floors["hotpath_pipeline_min_pages_per_sec"];
        println!("gate: pipeline = {pipeline:.0} pages/s (floor {pipe_floor:.0})");
        assert!(
            pipeline >= pipe_floor,
            "CI hotpath gate: pipeline throughput {pipeline:.0} pages/s fell below \
             the pinned floor {pipe_floor:.0} (crates/bench/baselines.toml)"
        );
        let iv8 = intervals[1].floored_ratio();
        let iv_floor = floors["hotpath_interval_8t_min_ratio"];
        println!("gate: 8-thread during-close fault ratio = {iv8:.1} (floor {iv_floor:.1})");
        assert!(
            iv8 >= iv_floor,
            "CI hotpath gate: 8-thread during-close fault-progress ratio {iv8:.1} fell \
             below the pinned floor {iv_floor:.1} (crates/bench/baselines.toml)"
        );
    }
}
