//! **Ablations** — the design choices DESIGN.md calls out:
//!
//! 1. **eager vs lazy diffing** (TreadMarks is lazy; our default is
//!    eager): traffic and runtime on Jacobi;
//! 2. **leaver-page sink**: `ViaMaster` (the paper) vs `Scatter` (the
//!    paper's §7 future-work idea) — max per-link bytes during the
//!    adaptation;
//! 3. **pid reassignment**: `CompactKeepOrder` vs `FillGaps` on a
//!    simultaneous join+leave — post-adaptation redistribution traffic;
//! 4. **grace period sweep**: how the normal/urgent mix changes.

use nowmp_apps::jacobi::Jacobi;
use nowmp_bench::{bench_cfg, measure, print_table};
use nowmp_core::{EventKind, LeaveSel, LeaveStrategy, ReassignPolicy};
use std::time::Duration;

fn main() {
    nowmp_bench::smoke_from_args();
    let n_grid = if nowmp_bench::quick() { 96 } else { 192 };
    let iters = 8;
    let app = Jacobi::new(n_grid);

    // 1. Eager vs lazy diffing.
    let mut rows = Vec::new();
    for (label, lazy) in [("eager (ours)", false), ("lazy (TreadMarks)", true)] {
        let cfg = bench_cfg(4, 4).tune_dsm(|d| d.lazy_diffs = lazy);
        let run = measure(&app, cfg, iters, true, |_, _| {}, true);
        assert_eq!(run.err, 0.0, "{label} run must verify");
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", run.secs),
            run.dsm.diffs_fetched.to_string(),
            nowmp_util::fmt_bytes(run.net.total_bytes),
            run.dsm.twins_created.to_string(),
        ]);
    }
    print_table(
        "Ablation 1: eager vs lazy diff creation (Jacobi, 4 procs)",
        &["mode", "Time(s)", "Diffs", "Bytes", "Twins"],
        &rows,
    );
    println!("Shape: identical diff counts (demand is identical); lazy defers the\ncompute but must retain twins longer.");

    // 2. Leaver-page sink. The leaver's own uplink bottlenecks the
    // adaptation either way; the §7 win is that ViaMaster parks the
    // pages on the master, which must then re-serve them during the
    // lazy redistribution — so measure the MASTER's link (host 0) from
    // the leave to the end of the run.
    let mut rows = Vec::new();
    for (label, strat) in [
        ("ViaMaster (paper)", LeaveStrategy::ViaMaster),
        ("Scatter (§7)", LeaveStrategy::Scatter),
    ] {
        let cfg = bench_cfg(8, 8).with_leave_strategy(strat);
        let mut at_leave = None;
        let mut at_end = None;
        let run = measure(
            &app,
            cfg,
            iters,
            true,
            |sys, it| {
                if it == 4 {
                    at_leave = Some(sys.net_stats());
                    let _ = sys.adapt().leave(LeaveSel::Pid(4), None);
                }
                if it == iters - 1 {
                    at_end = Some(sys.net_stats());
                }
            },
            false,
        );
        let before = at_leave.expect("leave happened");
        let end = at_end.expect("end snapshot");
        let master_from_leave = end.links[0]
            .bytes_total()
            .saturating_sub(before.links[0].bytes_total());
        let (took, bytes) = run
            .log
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Adaptation {
                    took, bytes_moved, ..
                } => Some((took.as_secs_f64(), bytes_moved)),
                _ => None,
            })
            .expect("one adaptation");
        rows.push(vec![
            label.to_string(),
            format!("{took:.3}"),
            nowmp_util::fmt_bytes(bytes),
            nowmp_util::fmt_bytes(master_from_leave),
        ]);
    }
    print_table(
        "Ablation 2: leaver-page sink (Jacobi middle-leave, 8 procs)",
        &[
            "strategy",
            "AdaptTime(s)",
            "AdaptBytes",
            "MasterLinkFromLeave",
        ],
        &rows,
    );
    println!("Shape: ViaMaster funnels the leaver's pages through the master, which then\nre-serves them during redistribution; Scatter cuts the master-link load,\nconfirming the paper's §7 improvement hypothesis.");

    // 3. Pid reassignment on simultaneous join+leave.
    let mut rows = Vec::new();
    for (label, policy) in [
        ("CompactKeepOrder (paper)", ReassignPolicy::CompactKeepOrder),
        ("FillGaps (ablation)", ReassignPolicy::FillGaps),
    ] {
        let cfg = bench_cfg(9, 8).with_reassign(policy);
        let mut post_adapt_net = None;
        let run = measure(
            &app,
            cfg,
            iters,
            true,
            |sys, it| {
                if it == 3 {
                    // middle leave + join, committed at the same point
                    let _ = sys.adapt().leave(LeaveSel::Pid(4), None);
                    let _ = sys.join_ready();
                }
                if it == 5 {
                    post_adapt_net = Some(sys.net_stats());
                }
            },
            true,
        );
        assert_eq!(run.err, 0.0);
        // Redistribution = traffic between adaptation and iteration 5.
        let adapt_at = run
            .log
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Adaptation { bytes_moved, .. } => Some(bytes_moved),
                _ => None,
            })
            .unwrap_or(0);
        let total_to_5 = post_adapt_net.map(|s| s.total_bytes).unwrap_or(0);
        rows.push(vec![
            label.to_string(),
            nowmp_util::fmt_bytes(adapt_at),
            nowmp_util::fmt_bytes(total_to_5),
        ]);
    }
    print_table(
        "Ablation 3: pid reassignment under simultaneous join+leave (Jacobi, 8 procs)",
        &["policy", "AdaptBytes", "BytesThruIter5"],
        &rows,
    );
    println!("Shape: FillGaps slots the joiner into the leaver's position, so the other\nprocesses' blocks stay put and redistribution shrinks.");

    // 4. Grace period sweep.
    let mut rows = Vec::new();
    for (label, grace) in [
        ("0 ms (always urgent)", Some(Duration::ZERO)),
        ("50 ms", Some(Duration::from_millis(50))),
        ("unbounded (always normal)", None),
    ] {
        let run = measure(
            &app,
            bench_cfg(8, 8),
            iters,
            true,
            |sys, it| {
                if it == 4 {
                    let _ = sys.adapt().leave(LeaveSel::Pid(7), grace);
                    // The owner's return lands mid-computation: give the
                    // grace timer its chance before the next adaptation
                    // point (otherwise the point always wins instantly).
                    if let Some(g) = grace {
                        std::thread::sleep(g + Duration::from_millis(60));
                    }
                }
            },
            true,
        );
        assert_eq!(run.err, 0.0);
        let urgent = run
            .log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::UrgentMigrationDone { .. }))
            .count();
        let normal = run
            .log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::NormalLeave { .. }))
            .count();
        rows.push(vec![
            label.to_string(),
            urgent.to_string(),
            normal.to_string(),
            format!("{:.2}", run.secs),
        ]);
    }
    print_table(
        "Ablation 4: grace period sweep (Jacobi end-leave, 8 procs)",
        &["grace", "UrgentMigrations", "NormalLeaves", "Time(s)"],
        &rows,
    );
    println!(
        "Shape: with zero grace the leave migrates (urgent); with adaptation points\n\
         arriving every fraction of a second, even small grace periods make leaves\n\
         normal — the paper's 'urgent leaves are typically not needed'."
    );
}
