//! **§5.3 what-if** — "The cost of adaptation by migration alone is
//! substantially higher."
//!
//! > "Two components determine the direct cost of migration: (i) the
//! > cost to create a new process on the new host (approximately 0.6 to
//! > 0.8 seconds), and (ii) the cost to move the process's image (at a
//! > rate of approx. 8.1 MByte/s). For Jacobi, this cost is about 6.7
//! > seconds, for 3D-FFT 6.13 seconds, for Gauss 6.9 seconds, and for
//! > NBF 7.66 seconds."
//!
//! For each kernel we run a few iterations on 8 processes, then force
//! an urgent leave and measure the actual migration stall, comparing it
//! against the spawn + image/8.1 MB/s model and against the cost of a
//! normal leave of the same process.

use nowmp_apps::Kernel;
use nowmp_bench::{bench_cfg, bench_cost_model, measure, print_table, BenchApps};
use nowmp_core::{EventKind, LeaveSel};

fn main() {
    nowmp_bench::smoke_from_args();
    let apps: Vec<(Box<dyn Kernel>, usize)> = vec![
        (Box::new(BenchApps::jacobi()), BenchApps::jacobi_iters()),
        (Box::new(BenchApps::gauss()), BenchApps::gauss_iters()),
        (Box::new(BenchApps::fft()), BenchApps::fft_iters()),
        (Box::new(BenchApps::nbf()), BenchApps::nbf_iters()),
    ];
    let cost = bench_cost_model();

    let mut rows = Vec::new();
    for (app, iters) in &apps {
        let mid = iters / 2;
        // Urgent leave (migration) run.
        let urgent = measure(
            app.as_ref(),
            bench_cfg(8, 8),
            *iters,
            true,
            |sys, it| {
                if it == mid {
                    let g = sys.adapt().leave(LeaveSel::Pid(7), None).unwrap();
                    assert!(sys.shared().force_urgent(g));
                }
            },
            true,
        );
        assert_eq!(urgent.err, 0.0);
        let (mig_bytes, mig_secs) = urgent
            .log
            .iter()
            .find_map(|e| match e.kind {
                EventKind::UrgentMigrationStart { image_bytes, .. } => Some(image_bytes),
                _ => None,
            })
            .zip(urgent.log.iter().find_map(|e| match e.kind {
                EventKind::UrgentMigrationDone { took, .. } => Some(took.as_secs_f64()),
                _ => None,
            }))
            .expect("urgent migration must be logged");
        let modeled =
            cost.spawn_time().as_secs_f64() + cost.migration_time(mig_bytes).as_secs_f64();

        // Normal leave of the same pid for comparison.
        let normal = measure(
            app.as_ref(),
            bench_cfg(8, 8),
            *iters,
            true,
            |sys, it| {
                if it == mid {
                    let _ = sys.adapt().leave(LeaveSel::Pid(7), None);
                }
            },
            true,
        );
        assert_eq!(normal.err, 0.0);
        let normal_adapt = normal
            .log
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Adaptation { took, .. } => Some(took.as_secs_f64()),
                _ => None,
            })
            .unwrap_or(0.0);

        rows.push(vec![
            app.name().to_string(),
            nowmp_util::fmt_bytes(mig_bytes as u64),
            format!("{modeled:.2}"),
            format!("{mig_secs:.2}"),
            format!("{normal_adapt:.3}"),
            format!("{:.1}x", mig_secs / normal_adapt.max(1e-9)),
        ]);
    }

    print_table(
        "§5.3 what-if: urgent-leave migration vs normal leave",
        &[
            "App",
            "Image",
            "Model spawn+xfer(s)",
            "Measured migration(s)",
            "Normal leave(s)",
            "Urgent/Normal",
        ],
        &rows,
    );
    println!(
        "\nPaper shape check: migration alone costs several times a normal leave\n\
         (paper: 6-8 s migration vs 1-9 s normal adaptations on full-size problems),\n\
         and the measured stall matches spawn + image/8.1MB/s. On top of the stall,\n\
         multiplexing idles the team until the next adaptation point (Figure 2c)."
    );
}
