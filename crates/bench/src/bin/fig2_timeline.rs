//! **Figure 2** — the three adaptation shapes as live timelines:
//!
//! * (a) a **join**: requested mid-computation, the new process
//!   connects asynchronously, and enters at the next adaptation point;
//! * (b) a **normal leave**: the computation reaches an adaptation
//!   point within the grace period, the process is terminated there;
//! * (c) an **urgent leave**: the grace period expires first, the
//!   process migrates (spawn + image transfer at 8.1 MB/s) and
//!   multiplexes on its new host until the next adaptation point.
//!
//! The event log renders each run as a timestamped timeline.

use nowmp_apps::jacobi::Jacobi;
use nowmp_bench::{bench_cfg, measure};
use nowmp_core::LeaveSel;

fn main() {
    nowmp_bench::smoke_from_args();
    let app = if nowmp_bench::quick() {
        Jacobi::new(64)
    } else {
        Jacobi::new(128)
    };
    let iters = 10;

    // (a) Join.
    println!("--- Figure 2(a): join event ---");
    let run = measure(
        &app,
        bench_cfg(5, 4),
        iters,
        true,
        |sys, it| {
            if it == 3 {
                sys.join_ready().expect("free host available");
            }
        },
        true,
    );
    assert_eq!(run.err, 0.0);
    print!("{}", render(&run.log));

    // (b) Normal leave: generous grace period, adaptation point wins.
    println!("\n--- Figure 2(b): normal leave (grace period honored) ---");
    let run = measure(
        &app,
        bench_cfg(4, 4),
        iters,
        true,
        |sys, it| {
            if it == 3 {
                sys.adapt()
                    .leave(LeaveSel::Pid(3), Some(std::time::Duration::from_secs(30)))
                    .expect("slave can leave");
            }
        },
        true,
    );
    assert_eq!(run.err, 0.0);
    print!("{}", render(&run.log));

    // (c) Urgent leave: grace expires before the adaptation point.
    println!("\n--- Figure 2(c): urgent leave (migration + multiplexing) ---");
    let run = measure(
        &app,
        bench_cfg(4, 4),
        iters,
        true,
        |sys, it| {
            if it == 3 {
                let g = sys
                    .adapt()
                    .leave(LeaveSel::Pid(3), None)
                    .expect("slave can leave");
                // Deterministically expire the grace period now.
                assert!(sys.shared().force_urgent(g));
            }
        },
        true,
    );
    assert_eq!(run.err, 0.0);
    print!("{}", render(&run.log));

    println!(
        "\nShape check vs Figure 2: (a) join takes effect at an adaptation point after\n\
         async connect; (b) the leave resolves at an adaptation point without any\n\
         migration; (c) migration precedes a normal leave at the following point, and\n\
         the migrated process multiplexes in between."
    );
}

fn render(log: &[nowmp_core::LogEntry]) -> String {
    let l = nowmp_core::EventLog::new();
    // Re-render from the recorded entries: EventLog::render_timeline
    // works on its own entries, so rebuild the text manually.
    let _ = l;
    let mut out = String::new();
    for e in log {
        out.push_str(&format!("[{:9.4}s] {:?}\n", e.at.as_secs_f64(), e.kind));
    }
    out
}
