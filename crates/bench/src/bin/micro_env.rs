//! **§5.1 micro-costs** — the experimental-environment table:
//!
//! > "The roundtrip latency for a 1-byte message is 126 microseconds.
//! > The time to acquire a lock varies between 178 and 272 microseconds.
//! > The time for getting a diff varies between 313 and 1,544
//! > microseconds, depending on the size of the diff. A full page
//! > transfer takes 1,308 microseconds."
//!
//! We measure the same five quantities on the simulated NOW with the
//! paper's cost model and report them side by side.

use bytes::Bytes;
use nowmp_bench::{bench_net_model, print_table};
use nowmp_net::{HostId, Network};
use nowmp_tmk::shared::SharedF64Vec;
use nowmp_tmk::system::{DsmSystem, RegionRunner};
use nowmp_tmk::{DsmConfig, TmkCtx};
use std::sync::Arc;
use std::time::Instant;

struct Toggle;
impl RegionRunner for Toggle {
    fn run(&self, region: u32, ctx: &mut TmkCtx) {
        let v = SharedF64Vec::lookup(ctx, "v");
        match region {
            // Write a prefix of the array: the diff size knob.
            0 => {
                let mut p = nowmp_util::wire::Dec::new(ctx.params());
                let words = p.get_u64().unwrap() as usize;
                if ctx.pid() == 1 {
                    for i in 0..words {
                        let cur = v.get(ctx, i);
                        v.set(ctx, i, cur + 1.0);
                    }
                }
            }
            // Touch the first element (diff/page fetch on the reader).
            1 => {
                if ctx.pid() == 0 {
                    let _ = v.get(ctx, 0);
                }
            }
            // Lock/unlock once per process.
            2 => {
                ctx.lock(5);
                ctx.unlock(5);
            }
            _ => unreachable!(),
        }
    }
}

fn main() {
    nowmp_bench::smoke_from_args();
    let model = bench_net_model();
    let reps = 50;

    // --- 1-byte roundtrip on the raw transport ---
    let net = Network::new(2, 1, model.clone());
    let a = net.register(HostId(0));
    let b = net.register(HostId(1));
    let bg = b.gpid();
    let server = std::thread::spawn(move || {
        while let Ok(inc) = b.recv() {
            match inc.replier {
                Some(r) => r.reply(Bytes::from_static(b"y")),
                None => break,
            }
        }
    });
    let t0 = Instant::now();
    for _ in 0..reps {
        a.call(bg, Bytes::from_static(b"x")).unwrap();
    }
    let rtt_us = t0.elapsed().as_secs_f64() / reps as f64 * 1e6;
    a.send(bg, Bytes::new()).unwrap();
    server.join().unwrap();

    // --- DSM-level costs on a 2-process system ---
    let net = Network::new(2, 1, model);
    let sys = DsmSystem::new(net, DsmConfig::default_4k(), Arc::new(Toggle));
    let mut master = sys.start_master(HostId(0));
    let w = sys.spawn_worker(HostId(1), master.gpid(), vec![]);
    master.alloc("v", 4096, nowmp_tmk::ElemKind::F64);
    master.init_team(&[w]);

    // Lock acquisition (manager on master, acquirer = both).
    let t0 = Instant::now();
    for _ in 0..reps {
        master.parallel(2, &[]);
    }
    let lock_region_us = t0.elapsed().as_secs_f64() / reps as f64 * 1e6;

    // Full page transfer: worker writes a whole page; master reads it.
    let mut page_us = 0.0;
    let mut diff_us = Vec::new();
    for (words, label_full) in [(512usize, true), (16, false), (256, false), (511, false)] {
        let mut total = 0.0;
        for _ in 0..reps {
            let mut e = nowmp_util::wire::Enc::new();
            e.put_u64(words as u64);
            master.parallel(0, &e.finish()); // worker writes `words` words

            // Master's read triggers diff fetch (it holds a stale copy
            // after the first iteration) or a page fetch the first time.
            let t0 = Instant::now();
            master.parallel(1, &[]);
            total += t0.elapsed().as_secs_f64();
        }
        let us = total / reps as f64 * 1e6;
        if label_full {
            page_us = us;
        } else {
            diff_us.push((words, us));
        }
    }
    master.shutdown();

    let lock_us_paper = "178-272";
    let rows = vec![
        vec![
            "1-byte roundtrip".into(),
            "126 us".into(),
            format!("{rtt_us:.0} us"),
        ],
        vec![
            "lock acquire (region incl. fork/join)".into(),
            format!("{lock_us_paper} us"),
            format!("{lock_region_us:.0} us"),
        ],
        vec![
            format!("diff fetch ({} words)", diff_us[0].0),
            "313-1544 us".into(),
            format!("{:.0} us", diff_us[0].1),
        ],
        vec![
            format!("diff fetch ({} words)", diff_us[1].0),
            "313-1544 us".into(),
            format!("{:.0} us", diff_us[1].1),
        ],
        vec![
            format!("diff fetch ({} words)", diff_us[2].0),
            "313-1544 us".into(),
            format!("{:.0} us", diff_us[2].1),
        ],
        vec![
            "full 4K page transfer".into(),
            "1308 us".into(),
            format!("{page_us:.0} us"),
        ],
    ];
    print_table(
        "§5.1 micro-costs: paper vs simulated NOW",
        &["quantity", "paper", "ours"],
        &rows,
    );
    println!(
        "\nNote: 'ours' for lock/diff/page includes one fork/join pair around the probe\n\
         (the DSM has no standalone probe), so compare growth with diff size and the\n\
         relative ordering (roundtrip < lock < small diff < large diff ~ page)."
    );
}
