//! **Figure 3** — "Effect of process id of leaving node: node 7 (a) and
//! node 3 (b) require different data re-distribution. Up to 50% of the
//! data space is moved for node 7, up to 30% for node 3."
//!
//! Two views:
//!
//! 1. **analytic** — the closed-form block-partition overlap
//!    ([`nowmp_core::moved_fraction_on_leave`]) for every leaver pid in
//!    an 8-process team;
//! 2. **measured** — a live Jacobi run on 8 processes: one process
//!    leaves, and we measure the bytes that move during the adaptation
//!    plus the first post-adaptation iteration (the paper's lazy
//!    re-distribution through page faults), as a fraction of the shared
//!    data size.

use nowmp_apps::{jacobi::Jacobi, Kernel};
use nowmp_bench::{bench_cfg, measure, print_table};
use nowmp_core::{moved_fraction_on_leave, LeaveSel};

fn main() {
    nowmp_bench::smoke_from_args();
    // Analytic table for n = 8.
    let mut rows = Vec::new();
    for leaver in 1..8usize {
        rows.push(vec![
            leaver.to_string(),
            format!("{:.1}%", moved_fraction_on_leave(8, leaver) * 100.0),
        ]);
    }
    print_table(
        "Figure 3 (analytic): fraction of block-partitioned data space moved on leave, n=8",
        &["LeaverPid", "Moved"],
        &rows,
    );
    println!("Paper check: pid 7 (end) -> 50.0%; pid 3 (middle) -> ~28.6% ('up to 30%').");

    // Measured on a live system.
    let app = if nowmp_bench::quick() {
        Jacobi::new(96)
    } else {
        Jacobi::new(192)
    };
    let shared = app.shared_bytes();
    let mut rows = Vec::new();
    // Baseline: traffic of the same window with NO leave (steady state).
    let steady = {
        let mut at4 = None;
        let mut at6 = None;
        let run = measure(
            &app,
            bench_cfg(8, 8),
            8,
            true,
            |sys, it| {
                if it == 4 {
                    at4 = Some(sys.net_stats());
                }
                if it == 6 {
                    at6 = Some(sys.net_stats());
                }
            },
            false,
        );
        let _ = run;
        at6.unwrap().total_bytes - at4.unwrap().total_bytes
    };
    for leaver in [7u16, 3, 1] {
        let mut at_leave = None;
        let mut after2 = None;
        let run = measure(
            &app,
            bench_cfg(8, 8),
            8,
            true,
            |sys, it| {
                if it == 4 {
                    at_leave = Some(sys.net_stats());
                    let _ = sys.adapt().leave(LeaveSel::Pid(leaver), None);
                }
                if it == 6 {
                    after2 = Some(sys.net_stats());
                }
            },
            true,
        );
        assert_eq!(run.err, 0.0);
        // Bytes moved by the adaptation itself (GC + leaver pages).
        let adapt_bytes: u64 = run
            .log
            .iter()
            .filter_map(|e| match e.kind {
                nowmp_core::EventKind::Adaptation { bytes_moved, .. } => Some(bytes_moved),
                _ => None,
            })
            .sum();
        // Lazy redistribution: the leave-to-(+2 iterations) window minus
        // what the same window costs in steady state. This is the
        // pid-dependent quantity Figure 3 shades.
        let window = after2.unwrap().total_bytes - at_leave.unwrap().total_bytes;
        let redist = window.saturating_sub(steady) as f64;
        rows.push(vec![
            leaver.to_string(),
            nowmp_util::fmt_bytes(adapt_bytes),
            nowmp_util::fmt_bytes(redist as u64),
            format!("{:.1}%", redist / shared as f64 * 100.0),
            format!(
                "{:.1}%",
                moved_fraction_on_leave(8, leaver as usize) * 100.0
            ),
        ]);
    }
    print_table(
        "Figure 3 (measured): Jacobi on 8 procs, one leave at iteration 4",
        &[
            "LeaverPid",
            "AdaptBytes",
            "RedistBytes",
            "Redist/Shared",
            "AnalyticMoved",
        ],
        &rows,
    );
    println!(
        "\nShape check vs Figure 3: measured redistribution tracks the analytic overlap\n\
         ordering — end (pid 7) > early-middle (pid 1) > middle (pid 3) — with a\n\
         constant offset from protocol headers, twins/diffs and boundary re-fetches.\n\
         AdaptBytes (the GC + leaver-page phase) is pid-independent, exactly as the\n\
         paper describes: the pid-dependent cost is the lazy re-distribution."
    );
}
