//! **Table 2** — "Average cost of repeated adaptations between n and
//! n−1 processes for n = 8 and n = 6", leaver = "end" (highest pid) or
//! "middle" (pid 4 / 3).
//!
//! The paper's method (§5.3): run with alternating leave/join events
//! (one per adaptation point), measure total runtime, compute the
//! time-weighted average node count, interpolate the non-adaptive
//! runtime at that average from runs at n and n−1, and divide the
//! excess by the number of adaptations. We report that, plus the
//! directly measured per-adaptation latency from the event log.
//!
//! **Virtual mode** (`--virtual` or `NOWMP_CLOCK=virtual`): calibrated
//! per-iteration compute costs are charged to the simulated clock, so
//! the interpolation baselines and the excess-per-adaptation figures
//! become quantitative predictions on the §5.1 testbed model instead of
//! wall-time artifacts of the (compute-free) emulation.

use nowmp_apps::Kernel;
use nowmp_bench::{avg_nodes, bench_cfg_for, interpolate_runtime, measure, print_table, BenchApps};
use nowmp_core::{EventKind, LeaveSel};
use std::time::Duration;

fn main() {
    nowmp_bench::smoke_from_args();
    nowmp_bench::virtual_from_args();
    let apps: Vec<(Box<dyn Kernel>, usize)> = vec![
        (Box::new(BenchApps::jacobi()), BenchApps::jacobi_iters()),
        (Box::new(BenchApps::gauss()), BenchApps::gauss_iters()),
        (Box::new(BenchApps::fft()), BenchApps::fft_iters()),
        (Box::new(BenchApps::nbf()), BenchApps::nbf_iters()),
    ];

    let mut rows = Vec::new();
    for (app, iters) in &apps {
        for &n in &[8usize, 6] {
            // Non-adaptive baselines at n and n-1 for interpolation.
            let t_n = measure(
                app.as_ref(),
                bench_cfg_for(app.as_ref(), n, n),
                *iters,
                false,
                |_, _| {},
                false,
            )
            .secs;
            let t_n1 = measure(
                app.as_ref(),
                bench_cfg_for(app.as_ref(), n, n - 1),
                *iters,
                false,
                |_, _| {},
                false,
            )
            .secs;

            for leaver in ["end", "middle"] {
                // Alternate leave / join at evenly spaced iterations.
                let events = 4usize.min(iters / 2);
                let every = (iters / (events + 1)).max(1);
                let leave_pid = move |nprocs: usize| -> u16 {
                    match leaver {
                        "end" => (nprocs - 1) as u16,
                        _ => (nprocs / 2) as u16,
                    }
                };
                let mut pending = 0usize;
                let run = measure(
                    app.as_ref(),
                    bench_cfg_for(app.as_ref(), n + 1, n), // a spare host for re-joins
                    *iters,
                    true,
                    |sys, it| {
                        if it > 0 && it % every == 0 && pending < events {
                            if pending.is_multiple_of(2) {
                                let pid = leave_pid(sys.nprocs());
                                let _ = sys.adapt().leave(LeaveSel::Pid(pid), None);
                            } else {
                                let _ = sys.join_ready();
                            }
                            pending += 1;
                        }
                    },
                    true,
                );
                assert_eq!(run.err, 0.0, "{} must verify", app.name());

                let adapts: Vec<&nowmp_core::LogEntry> = run
                    .log
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::Adaptation { .. }))
                    .collect();
                let n_adapt = adapts.len().max(1);
                let direct: f64 = adapts
                    .iter()
                    .map(|e| match e.kind {
                        EventKind::Adaptation { took, .. } => took.as_secs_f64(),
                        _ => 0.0,
                    })
                    .sum::<f64>()
                    / n_adapt as f64;
                let avg_n = avg_nodes(&run.log, n, Duration::from_secs_f64(run.secs));
                let t_ref = interpolate_runtime(t_n1, (n - 1) as f64, t_n, n as f64, avg_n);
                let per_adapt = (run.secs - t_ref) / n_adapt as f64;

                rows.push(vec![
                    app.name().to_string(),
                    n.to_string(),
                    leaver.to_string(),
                    n_adapt.to_string(),
                    format!("{avg_n:.2}"),
                    format!("{:.2}", run.secs),
                    format!("{t_ref:.2}"),
                    format!("{:.3}", per_adapt.max(0.0)),
                    format!("{direct:.3}"),
                ])
            }
        }
    }

    print_table(
        "Table 2: average cost per adaptation (alternating leave/join, n <-> n-1)",
        &[
            "App",
            "n",
            "Leaver",
            "Adapts",
            "AvgNodes",
            "T_adapt(s)",
            "T_interp(s)",
            "Cost/adapt(s)",
            "DirectLat(s)",
        ],
        &rows,
    );
    println!(
        "\nPaper shape check (Table 2): costs land in a small band of seconds per\n\
         adaptation (scaled); the paper reports MIDDLE leaves costlier than END in\n\
         this repeated alternating-leave/join protocol (Gauss 5.13 vs 4.19 s, Jacobi\n\
         6.25 vs 2.77 s at 8 procs) because each middle cycle reshuffles more\n\
         cumulative block state, and 8-process adaptations cheaper than 6-process\n\
         ones (more links share the re-distribution)."
    );
}
