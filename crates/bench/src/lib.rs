//! # nowmp-bench — harness library behind the table/figure binaries
//!
//! One binary per paper artifact (see DESIGN.md §8):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — no-adaptation overhead + traffic |
//! | `table2` | Table 2 — average adaptation cost, end/middle leaver |
//! | `fig2_timeline` | Figure 2 — join / normal leave / urgent leave timelines |
//! | `fig3_redistribution` | Figure 3 — data moved vs leaving pid |
//! | `micro_env` | §5.1 — network/lock/diff/page micro-costs |
//! | `migration_whatif` | §5.3 — migration-only adaptation costs |
//! | `micro_adapt` | §5.4 — adaptation cost micro-analysis series |
//! | `ablation` | design-choice ablations (lazy diffs, scatter, fill-gaps, grace) |
//!
//! Sizes are scaled down from the paper's 1999 testbed (laptop-scale,
//! see `EXPERIMENTS.md`); the network cost model defaults to the
//! paper's measured constants. Environment knobs:
//!
//! * `NOWMP_QUICK=1` — smaller sizes / fewer iterations;
//! * `NOWMP_TIME_SCALE=x` — scale every emulated delay (default 1.0);
//! * `NOWMP_NO_EMULATE=1` — disable the time emulation (counters only).

#![warn(missing_docs)]

use nowmp_apps::{fft3d::Fft3d, gauss::Gauss, jacobi::Jacobi, nbf::Nbf, Kernel};
use nowmp_core::{ClusterConfig, EventKind, LogEntry};
use nowmp_net::{CostModel, NetModel};
use nowmp_omp::OmpSystem;
use nowmp_tmk::{CollectiveConfig, DataPlaneConfig, DsmConfig};
use std::time::Duration;

/// Scaled-down benchmark instances of the four kernels.
pub struct BenchApps;

impl BenchApps {
    /// Jacobi instance (paper: 2500², 1000 iters).
    pub fn jacobi() -> Jacobi {
        if quick() {
            Jacobi::new(96)
        } else {
            Jacobi::new(256)
        }
    }

    /// Jacobi iteration count for benches.
    pub fn jacobi_iters() -> usize {
        if quick() {
            10
        } else {
            40
        }
    }

    /// Gauss instance (paper: 3072², 3072 iters).
    pub fn gauss() -> Gauss {
        if quick() {
            Gauss::new(64)
        } else {
            Gauss::new(160)
        }
    }

    /// Gauss iteration count (full elimination).
    pub fn gauss_iters() -> usize {
        Self::gauss().default_iters()
    }

    /// 3D-FFT instance (paper: 128×64×64, 100 iters).
    pub fn fft() -> Fft3d {
        if quick() {
            Fft3d::new(8, 8, 8)
        } else {
            Fft3d::new(16, 16, 16)
        }
    }

    /// FFT iteration count.
    pub fn fft_iters() -> usize {
        if quick() {
            2
        } else {
            5
        }
    }

    /// NBF instance (paper: 131072 atoms × 80 partners).
    pub fn nbf() -> Nbf {
        if quick() {
            Nbf::new(512, 8)
        } else {
            Nbf::new(2048, 16)
        }
    }

    /// NBF iteration count.
    pub fn nbf_iters() -> usize {
        if quick() {
            3
        } else {
            8
        }
    }
}

/// `NOWMP_QUICK=1`?
pub fn quick() -> bool {
    std::env::var("NOWMP_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Is the simulation clock virtual (`NOWMP_CLOCK=virtual`)?
pub fn virtual_mode() -> bool {
    std::env::var("NOWMP_CLOCK")
        .map(|v| v == "virtual")
        .unwrap_or(false)
}

/// Handle a `--virtual` command-line flag: force the virtual clock
/// (equivalent to `NOWMP_CLOCK=virtual`), under which the reproducers
/// charge calibrated per-iteration compute costs and report *simulated*
/// seconds — the quantitative Table 1/2 mode. Call at the top of a
/// bin's `main`, before any system is constructed.
pub fn virtual_from_args() {
    if std::env::args().any(|a| a == "--virtual") {
        std::env::set_var("NOWMP_CLOCK", "virtual");
    }
}

/// Handle a `--smoke` command-line flag: force quick mode (equivalent
/// to `NOWMP_QUICK=1`) so CI can exercise a reproducer binary in a
/// couple of seconds. Call at the top of every bin's `main`.
pub fn smoke_from_args() {
    if std::env::args().any(|a| a == "--smoke") {
        std::env::set_var("NOWMP_QUICK", "1");
    }
}

/// `NOWMP_NO_EMULATE=1`? (counters only, no modeled delays)
fn no_emulate() -> bool {
    std::env::var("NOWMP_NO_EMULATE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The `NOWMP_TIME_SCALE` knob (default 1.0 = paper speed).
fn env_time_scale() -> f64 {
    std::env::var("NOWMP_TIME_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// The benchmark network model (paper constants, env-scaled).
pub fn bench_net_model() -> NetModel {
    if no_emulate() {
        return NetModel::disabled();
    }
    NetModel::paper_scaled(env_time_scale())
}

/// The benchmark host cost model (paper constants, env-scaled; no
/// kernel compute profile yet — see [`bench_cfg_for`]).
pub fn bench_cost_model() -> CostModel {
    if no_emulate() {
        return CostModel::disabled();
    }
    CostModel::paper_scaled(env_time_scale())
}

/// Cluster configuration for benches: paper network + host cost
/// models, 4 KB pages.
///
/// The paper reproducers model the *1999 system*, so the fork broadcast
/// pins [`CollectiveConfig::all_flat`] here (flat fan-out, flat write-notice
/// payloads — what the Table 1/2 calibration pins assume), and the data
/// plane pins [`DataPlaneConfig::demand`] (sequential demand paging,
/// no prefetch or piggybacking). The tree/RLE broadcast redesign and
/// the overlapped data plane are A/B'd explicitly by `whatif_scale
/// --broadcast` / `--dataplane` against this baseline.
pub fn bench_cfg(hosts: usize, procs: usize) -> ClusterConfig {
    ClusterConfig::test(hosts, procs)
        .with_net_model(bench_net_model())
        .with_cost_model(bench_cost_model())
        .with_dsm(DsmConfig::default_4k())
        .with_collectives(CollectiveConfig::all_flat())
        .with_dataplane(DataPlaneConfig::demand())
}

/// [`bench_cfg`] specialized to `kernel`: under the virtual clock
/// ([`virtual_mode`]) the kernel's calibrated per-iteration compute
/// costs are installed, so worksharing loops charge modeled compute to
/// the simulated timeline and reported seconds become quantitative
/// Table 1/2 predictions. On the real clock the profile is left out —
/// charging modeled FLOPs as wall sleeps would only slow the bench.
pub fn bench_cfg_for(kernel: &dyn Kernel, hosts: usize, procs: usize) -> ClusterConfig {
    let cfg = bench_cfg(hosts, procs);
    if virtual_mode() {
        let cost = nowmp_apps::with_kernel_costs(cfg.cost_model.clone(), kernel);
        cfg.with_cost_model(cost)
    } else {
        cfg
    }
}

/// Serialize `(nprocs, secs)` samples per app into the machine-readable
/// `BENCH_table1.json` artifact: speedup per nprocs, seeding the perf
/// trajectory CI tracks across PRs. Hand-rolled JSON (no serde in the
/// offline vendor set).
pub fn table1_json(apps: &[(String, Vec<(usize, f64)>)]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"clock\": \"{}\",\n  \"quick\": {},\n  \"apps\": [\n",
        if virtual_mode() { "virtual" } else { "real" },
        quick()
    ));
    for (ai, (name, samples)) in apps.iter().enumerate() {
        let t1 = samples
            .iter()
            .find(|(p, _)| *p == 1)
            .map(|&(_, s)| s)
            .unwrap_or(f64::NAN);
        out.push_str(&format!("    {{\"name\": \"{name}\", \"secs\": {{"));
        for (i, (p, s)) in samples.iter().enumerate() {
            out.push_str(&format!(
                "\"{p}\": {s:.6}{}",
                if i + 1 < samples.len() { ", " } else { "" }
            ));
        }
        out.push_str("}, \"speedup\": {");
        for (i, (p, s)) in samples.iter().enumerate() {
            // Degenerate samples (zero-length runs, missing 1-proc
            // baseline) must not leak a bare NaN into the artifact —
            // that is not valid JSON.
            let sp = if *s > 0.0 { t1 / s } else { f64::NAN };
            let cell = if sp.is_finite() {
                format!("{sp:.4}")
            } else {
                "null".to_owned()
            };
            out.push_str(&format!(
                "\"{p}\": {cell}{}",
                if i + 1 < samples.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!(
            "}}}}{}\n",
            if ai + 1 < apps.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One lane of the `whatif_scale` sweep: a scenario × collective ×
/// data-plane combination with its serial baseline and the
/// `(nprocs, simulated seconds)` samples measured along it. Lanes from
/// different kernels (the Jacobi generation sweep, the NBF data-plane
/// A/B) carry their own `t1`, so every speedup in the artifact is
/// against the right serial run.
pub struct WhatifLane {
    /// Scenario label (e.g. `homogeneous`, `nbf-homogeneous`).
    pub scenario: String,
    /// Fork dissemination (`flat` / `tree`).
    pub broadcast: String,
    /// Join/barrier collection (`flat` / `tree`).
    pub reduce: String,
    /// Data plane (`demand` / `overlap`).
    pub dataplane: String,
    /// Serial baseline for this lane's kernel, simulated seconds.
    pub t1: f64,
    /// `(nprocs, simulated seconds)` along the lane.
    pub samples: Vec<(usize, f64)>,
}

/// One task-engine scale sample: the event-driven engine carrying a
/// host count no thread-per-host run could. The lane proves *capacity*
/// — wall seconds and OS-thread footprint at 256/1024 hosts — so it
/// records real-clock and thread numbers, not virtual speedups.
pub struct TaskScaleLane {
    /// Kernel label (`jacobi` / `nbf`).
    pub kernel: String,
    /// Simulated host count.
    pub nprocs: usize,
    /// Wall seconds for the whole run (setup + iterations + verify).
    pub wall_secs: f64,
    /// Simulated seconds on the engine's virtual timeline.
    pub sim_secs: f64,
    /// Engine-tracked peak concurrent scoped workers.
    pub peak_workers: usize,
    /// Worker-pool width the engine ran with (`NOWMP_POOL`).
    pub pool: usize,
    /// Peak process-wide OS thread count sampled during the run
    /// (`/proc/self/status` `Threads:`).
    pub os_threads_peak: usize,
}

/// Serialize the `whatif_scale` sweep into the machine-readable
/// `BENCH_whatif.json` artifact: simulated seconds and speedup per
/// `scenario × broadcast × reduce × dataplane × nprocs`, plus each
/// lane's serial baseline, plus the task-engine scale samples
/// (`task_scale`: wall seconds and thread footprint at 256/1024
/// hosts). The CI scaling gate reads the same numbers in-process (see
/// [`load_baselines`]); the artifact preserves them across PRs.
pub fn whatif_json(t1: f64, lanes: &[WhatifLane], task_scale: &[TaskScaleLane]) -> String {
    let cell = |v: f64| {
        if v.is_finite() {
            format!("{v:.4}")
        } else {
            "null".to_owned()
        }
    };
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"clock\": \"virtual\",\n  \"quick\": {},\n  \"t1_secs\": {},\n  \"results\": [\n",
        quick(),
        cell(t1)
    ));
    for (gi, lane) in lanes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"broadcast\": \"{}\", \"reduce\": \"{}\", \"dataplane\": \"{}\", \"t1_secs\": {}, \"secs\": {{",
            lane.scenario,
            lane.broadcast,
            lane.reduce,
            lane.dataplane,
            cell(lane.t1)
        ));
        for (i, (p, s)) in lane.samples.iter().enumerate() {
            out.push_str(&format!(
                "\"{p}\": {}{}",
                cell(*s),
                if i + 1 < lane.samples.len() { ", " } else { "" }
            ));
        }
        out.push_str("}, \"speedup\": {");
        for (i, (p, s)) in lane.samples.iter().enumerate() {
            let sp = if *s > 0.0 { lane.t1 / s } else { f64::NAN };
            out.push_str(&format!(
                "\"{p}\": {}{}",
                cell(sp),
                if i + 1 < lane.samples.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!(
            "}}}}{}\n",
            if gi + 1 < lanes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"task_scale\": [\n");
    for (i, l) in task_scale.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"nprocs\": {}, \"wall_secs\": {}, \"sim_secs\": {}, \
             \"peak_workers\": {}, \"pool\": {}, \"os_threads_peak\": {}}}{}\n",
            l.kernel,
            l.nprocs,
            cell(l.wall_secs),
            cell(l.sim_secs),
            l.peak_workers,
            l.pool,
            l.os_threads_peak,
            if i + 1 < task_scale.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse the miniature `key = number` dialect of
/// `crates/bench/baselines.toml` (no TOML crate in the offline vendor
/// set): `#` comments and `[section]` headers are skipped; everything
/// else must be `name = <f64>`.
pub fn parse_baselines(text: &str) -> std::collections::HashMap<String, f64> {
    let mut out = std::collections::HashMap::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with('[') {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            if let Ok(v) = v.trim().parse::<f64>() {
                out.insert(k.trim().to_owned(), v);
            }
        }
    }
    out
}

/// Load the checked-in CI gate floors from `crates/bench/baselines.toml`.
/// The default path is baked at compile time (`CARGO_MANIFEST_DIR`),
/// which covers CI and any unmoved checkout; a relocated binary can
/// point elsewhere with `NOWMP_BASELINES=/path/to/baselines.toml`.
pub fn load_baselines() -> std::collections::HashMap<String, f64> {
    let path = std::env::var("NOWMP_BASELINES")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/baselines.toml").to_owned());
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read CI baselines at {path}: {e}"));
    parse_baselines(&text)
}

/// Result of one measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Runtime of the iteration loop on the system clock: wall seconds
    /// on the real backend, simulated seconds under a virtual clock.
    pub secs: f64,
    /// DSM counters over the loop (setup excluded).
    pub dsm: nowmp_tmk::DsmSnapshot,
    /// Network counters over the loop (setup excluded).
    pub net: nowmp_net::StatsSnapshot,
    /// Event log entries.
    pub log: Vec<LogEntry>,
    /// Verification error vs the serial reference.
    pub err: f64,
}

/// Run `kernel` for `iters` iterations on a fresh system built from
/// `cfg`. `adaptive` toggles the §4.4 switch; `events(sys, iter)` is
/// called before every iteration to inject adapt events; `verify`
/// controls whether the (traffic-polluting) verification runs.
pub fn measure(
    kernel: &dyn Kernel,
    cfg: ClusterConfig,
    iters: usize,
    adaptive: bool,
    mut events: impl FnMut(&mut OmpSystem, usize),
    verify: bool,
) -> RunResult {
    let program = nowmp_apps::build_program(&[kernel]);
    let mut sys = OmpSystem::new(cfg.with_adaptive(adaptive), program);
    kernel.setup(&mut sys);
    let dsm0 = sys.dsm_stats();
    let net0 = sys.net_stats();
    let clock = sys.clock().clone();
    let t0 = clock.now();
    for it in 0..iters {
        events(&mut sys, it);
        kernel.step(&mut sys, it);
    }
    let secs = clock.elapsed_since(t0).as_secs_f64();
    let dsm = sys.dsm_stats().since(&dsm0);
    let net = sys.net_stats().since(&net0);
    let log = sys.log().entries();
    let err = if verify {
        kernel.verify(&mut sys, iters)
    } else {
        0.0
    };
    sys.shutdown();
    RunResult {
        secs,
        dsm,
        net,
        log,
        err,
    }
}

/// Time-weighted average team size over a run (the paper's §5.3
/// interpolation basis: "the average number of nodes is always an
/// integer in the non-adaptive case (but the average is a real number
/// with adaptivity)").
pub fn avg_nodes(log: &[LogEntry], initial: usize, total: Duration) -> f64 {
    let mut last_t = Duration::ZERO;
    let mut n = initial as f64;
    let mut acc = 0.0;
    for e in log {
        if let EventKind::Adaptation { nprocs, .. } = e.kind {
            let dt = e.at.saturating_sub(last_t);
            acc += n * dt.as_secs_f64();
            last_t = e.at;
            n = nprocs as f64;
        }
    }
    acc += n * total.saturating_sub(last_t).as_secs_f64();
    if total.as_secs_f64() > 0.0 {
        acc / total.as_secs_f64()
    } else {
        initial as f64
    }
}

/// Linear interpolation of non-adaptive runtime at a fractional node
/// count, from measurements at the two bracketing integers.
pub fn interpolate_runtime(t_lo: f64, n_lo: f64, t_hi: f64, n_hi: f64, n: f64) -> f64 {
    if (n_hi - n_lo).abs() < f64::EPSILON {
        return t_lo;
    }
    t_lo + (t_hi - t_lo) * (n - n_lo) / (n_hi - n_lo)
}

/// Fixed-width table printer.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        s
    };
    println!("{}", line(headers.iter().map(|h| h.to_string()).collect()));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Megabytes with 2 decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_basics() {
        // Runtime shrinks with more nodes: t(4) = 100, t(8) = 60.
        let t = interpolate_runtime(100.0, 4.0, 60.0, 8.0, 6.0);
        assert!((t - 80.0).abs() < 1e-12);
        assert_eq!(interpolate_runtime(50.0, 4.0, 60.0, 4.0, 4.0), 50.0);
    }

    #[test]
    fn avg_nodes_weighted() {
        use nowmp_core::EventKind;
        let log = vec![LogEntry {
            at: Duration::from_secs(5),
            job: None,
            kind: EventKind::Adaptation {
                fork_no: 1,
                joins: 0,
                leaves: 1,
                took: Duration::ZERO,
                bytes_moved: 0,
                max_link_bytes: 0,
                nprocs: 7,
            },
        }];
        // 8 procs for 5 s, then 7 procs for 5 s -> 7.5 average.
        let avg = avg_nodes(&log, 8, Duration::from_secs(10));
        assert!((avg - 7.5).abs() < 1e-9, "avg={avg}");
    }

    #[test]
    fn baselines_parser_and_checked_in_file() {
        let parsed =
            parse_baselines("# comment\n[whatif_scale]\nfoo = 1.5 # trailing\n\nbar=2\njunk\n");
        assert_eq!(parsed["foo"], 1.5);
        assert_eq!(parsed["bar"], 2.0);
        assert_eq!(parsed.len(), 2);
        // The checked-in floors the CI gate depends on must exist.
        let floors = load_baselines();
        assert!(floors.contains_key("tree_homogeneous_16_min_speedup"));
        assert!(floors.contains_key("tree_over_flat_32_min_ratio"));
        assert!(floors.contains_key("tree_reduce_homogeneous_32_min_speedup"));
        assert!(floors.contains_key("overlap_homogeneous_32_min_speedup"));
        assert!(floors.contains_key("overlap_over_demand_32_min_ratio"));
        assert!(floors.contains_key("hotpath_contention_8t_min_ratio"));
        assert!(floors.contains_key("hotpath_pipeline_min_pages_per_sec"));
        assert!(floors.contains_key("hotpath_interval_8t_min_ratio"));
        assert!(floors.contains_key("task_scale_1024_max_wall_secs"));
        assert!(floors.contains_key("task_scale_1024_max_extra_threads"));
        assert!(floors.contains_key("tenancy_util_min"));
        assert!(floors.contains_key("tenancy_p99_wait_max"));
    }

    #[test]
    fn whatif_json_is_well_formed() {
        let j = whatif_json(
            2.0,
            &[
                WhatifLane {
                    scenario: "homogeneous".into(),
                    broadcast: "tree".into(),
                    reduce: "tree".into(),
                    dataplane: "overlap".into(),
                    t1: 2.0,
                    samples: vec![(2, 1.0), (32, 0.1)],
                },
                WhatifLane {
                    scenario: "nbf-homogeneous".into(),
                    broadcast: "flat".into(),
                    reduce: "flat".into(),
                    dataplane: "demand".into(),
                    t1: 6.0,
                    samples: vec![(32, 0.4)],
                },
            ],
            &[TaskScaleLane {
                kernel: "jacobi".into(),
                nprocs: 1024,
                wall_secs: 3.25,
                sim_secs: 0.75,
                peak_workers: 8,
                pool: 8,
                os_threads_peak: 11,
            }],
        );
        assert!(j.contains("\"broadcast\": \"tree\""));
        assert!(j.contains("\"reduce\": \"tree\""));
        assert!(j.contains("\"reduce\": \"flat\""));
        assert!(j.contains("\"dataplane\": \"overlap\""));
        assert!(j.contains("\"dataplane\": \"demand\""));
        assert!(j.contains("\"scenario\": \"nbf-homogeneous\""));
        // Speedups come from each lane's own baseline: 2.0/0.1 for the
        // first lane, 6.0/0.4 — not 2.0/0.4 — for the second.
        assert!(j.contains("\"32\": 20.0000"));
        assert!(j.contains("\"32\": 15.0000"));
        assert!(!j.contains("\"32\": 5.0000"));
        assert!(j.contains("\"t1_secs\": 6.0000"));
        assert!(!j.contains("NaN"));
        // Task-engine scale samples ride the same artifact.
        assert!(j.contains("\"task_scale\""));
        assert!(j.contains("\"kernel\": \"jacobi\", \"nprocs\": 1024"));
        assert!(j.contains("\"os_threads_peak\": 11"));
    }

    #[test]
    fn measure_smoke() {
        let k = nowmp_apps::jacobi::Jacobi::new(16);
        let cfg = ClusterConfig::test(3, 2);
        let r = measure(&k, cfg, 2, true, |_, _| {}, true);
        assert_eq!(r.err, 0.0);
        assert!(r.net.total_msgs > 0);
    }
}
