//! # nowmp-ckpt — checkpointing substrate (the `libckpt` substitute)
//!
//! The paper uses a modified `libckpt` [Plank et al. 1995] twice:
//!
//! 1. **Fault tolerance** (§4.3): periodically, at an adaptation point,
//!    the master garbage-collects, collects every page it lacks, and
//!    checkpoints itself to disk. Slaves have no private state at
//!    adaptation points, so no coordination is needed.
//! 2. **Urgent-leave migration** (§4.2): the leaving process's heap and
//!    stack are written to a newly created process on another node.
//!
//! Rust cannot portably dump its own thread stacks, so this crate
//! checkpoints exactly the state that is *semantically* present at an
//! adaptation point (DESIGN.md §1): the shared pages, allocator and
//! registry state, the fork counter (replay fast-forward index), and an
//! application-provided master blob. The file format is hand-rolled,
//! zero-run compressed, and CRC-32 protected.
//!
//! For migration, [`migration_image_bytes`] sizes the process image the
//! way `libckpt` would (resident pages + stack), which the adaptive
//! layer charges over the 8.1 MB/s migration stream.

#![warn(missing_docs)]

use nowmp_tmk::system::MemoryImage;
use nowmp_util::crc::Crc32;
use nowmp_util::wire::{Dec, Enc, WireError};
use nowmp_util::zrle;
use std::fmt;
use std::fs;
use std::io::{Read, Write as IoWrite};
use std::path::Path;

/// File magic: "NOWMPCKP".
pub const MAGIC: &[u8; 8] = b"NOWMPCKP";
/// Format version.
pub const VERSION: u32 = 1;

/// Errors surfaced by checkpoint I/O.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Not a checkpoint file / wrong version.
    BadFormat(String),
    /// CRC mismatch: the file is corrupt.
    Corrupt {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// Wire-level decode failure.
    Wire(WireError),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CkptError::BadFormat(s) => write!(f, "bad checkpoint format: {s}"),
            CkptError::Corrupt { stored, computed } => {
                write!(
                    f,
                    "checkpoint corrupt: crc stored {stored:#x} != computed {computed:#x}"
                )
            }
            CkptError::Wire(e) => write!(f, "checkpoint decode error: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

impl From<WireError> for CkptError {
    fn from(e: WireError) -> Self {
        CkptError::Wire(e)
    }
}

/// A complete checkpoint: the DSM memory image plus the master's
/// private blob (application-defined; empty by default).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Shared-memory image exported by the master.
    pub image: MemoryImage,
    /// Master-private state (the app's save/restore hook payload).
    pub master_blob: Vec<u8>,
}

impl Checkpoint {
    /// Serialize to bytes (magic + version + payload + CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Enc::with_capacity(4096);
        body.put_u64(self.image.fork_no);
        body.put_u64(self.image.alloc_slots);
        body.put_seq(&self.image.registry);
        body.put_u32(self.image.pages.len() as u32);
        for (pid, words) in &self.image.pages {
            body.put_u32(*pid);
            zrle::encode_words(words, &mut body);
        }
        body.put_bytes(&self.master_blob);
        let body = body.finish();

        let mut crc = Crc32::new();
        crc.update(&body);

        let mut out = Enc::with_capacity(body.len() + 24);
        out.put_raw(MAGIC);
        out.put_u32(VERSION);
        out.put_u32(crc.finish());
        out.put_bytes(&body);
        out.finish()
    }

    /// Deserialize, verifying magic, version and CRC.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CkptError> {
        let mut d = Dec::new(buf);
        let magic = d.get_raw(8)?;
        if magic != MAGIC {
            return Err(CkptError::BadFormat("bad magic".into()));
        }
        let version = d.get_u32()?;
        if version != VERSION {
            return Err(CkptError::BadFormat(format!(
                "unsupported version {version}"
            )));
        }
        let stored = d.get_u32()?;
        let body = d.get_bytes()?;
        d.expect_done()?;
        let mut crc = Crc32::new();
        crc.update(body);
        let computed = crc.finish();
        if computed != stored {
            return Err(CkptError::Corrupt { stored, computed });
        }

        let mut b = Dec::new(body);
        let fork_no = b.get_u64()?;
        let alloc_slots = b.get_u64()?;
        let registry = b.get_seq()?;
        let npages = b.get_u32()? as usize;
        if npages > 1 << 26 {
            return Err(CkptError::BadFormat(format!("absurd page count {npages}")));
        }
        let mut pages = Vec::with_capacity(npages.min(65536));
        for _ in 0..npages {
            let pid = b.get_u32()?;
            let words = zrle::decode_words(&mut b)?;
            pages.push((pid, words));
        }
        let master_blob = b.get_bytes()?.to_vec();
        b.expect_done()?;
        Ok(Checkpoint {
            image: MemoryImage {
                fork_no,
                alloc_slots,
                registry,
                pages,
            },
            master_blob,
        })
    }

    /// Write to `path` atomically (tmp file + rename).
    pub fn write_file(&self, path: &Path) -> Result<u64, CkptError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }

    /// Read and verify from `path`.
    pub fn read_file(path: &Path) -> Result<Self, CkptError> {
        let mut buf = Vec::new();
        fs::File::open(path)?.read_to_end(&mut buf)?;
        Self::from_bytes(&buf)
    }
}

/// Size of a migrating process's image as `libckpt` would write it:
/// resident pages plus a stack/metadata allowance. The paper measured
/// 0.6–0.8 s process creation plus image transfer at 8.1 MB/s; this is
/// the byte count that transfer is charged for.
pub fn migration_image_bytes(resident_pages: usize, page_size: usize) -> usize {
    const STACK_AND_METADATA: usize = 256 * 1024;
    resident_pages * page_size + STACK_AND_METADATA
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            image: MemoryImage {
                fork_no: 42,
                alloc_slots: 4096,
                registry: vec![],
                pages: vec![
                    (0, vec![0u64; 512]),
                    (1, (0..512u64).collect()),
                    (7, vec![0, 0, 9, 0, 0, 0, 0, 0]),
                ],
            },
            master_blob: b"master state".to_vec(),
        }
    }

    #[test]
    fn roundtrip_bytes() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn zero_pages_compress() {
        let c = Checkpoint {
            image: MemoryImage {
                fork_no: 0,
                alloc_slots: 512 * 64,
                registry: vec![],
                pages: (0..64).map(|i| (i, vec![0u64; 512])).collect(),
            },
            master_blob: vec![],
        };
        let bytes = c.to_bytes();
        assert!(
            bytes.len() < 64 * 64,
            "64 zero pages should compress to < 4 KB, got {}",
            bytes.len()
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("nowmp-ckpt-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t1.ckpt");
        let c = sample();
        let n = c.write_file(&path).unwrap();
        assert!(n > 0);
        let back = Checkpoint::read_file(&path).unwrap();
        assert_eq!(c, back);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let c = sample();
        let mut bytes = c.to_bytes();
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0xFF;
        match Checkpoint::from_bytes(&bytes) {
            Err(CkptError::Corrupt { .. }) | Err(CkptError::Wire(_)) => {}
            other => panic!("corruption must be detected, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CkptError::BadFormat(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 8, 12, 20, bytes.len() - 1] {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn migration_image_sizing() {
        // 1000 resident 4 KB pages ≈ 4 MB + 256 KB stack allowance.
        let b = migration_image_bytes(1000, 4096);
        assert_eq!(b, 1000 * 4096 + 256 * 1024);
    }
}
