//! NBF — non-bonded force kernel of a molecular dynamics program
//! (paper §5.2: 131072 atoms, 80 partners each, 52 MB shared).
//!
//! "It is included as an example of an irregular application (i.e., an
//! application in which the array indices are not linear expressions in
//! the loop variables)": every atom reads the positions of 80
//! pseudo-random partner atoms scattered across the whole position
//! array, computes a Lennard-Jones-style pair force, and accumulates
//! into its own force slot. A reduction produces the total energy.
//!
//! Force and position updates are bit-exact against the serial
//! reference for any team size; the energy reduction's floating-point
//! grouping depends on the team size, so it is checked with a tolerance.

use crate::Kernel;
use nowmp_omp::{OmpProgram, OmpSystem, Params};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The NBF kernel.
#[derive(Debug, Clone)]
pub struct Nbf {
    /// Number of atoms.
    pub atoms: usize,
    /// Partners per atom.
    pub partners: usize,
    /// Integration step used by `nbf_update`.
    pub dt: f64,
}

impl Nbf {
    /// New kernel with `atoms` atoms and `partners` partners per atom.
    pub fn new(atoms: usize, partners: usize) -> Self {
        assert!(atoms >= 2);
        Nbf {
            atoms,
            partners,
            dt: 1e-4,
        }
    }

    /// Paper-scale instance (131072 atoms × 80 partners).
    pub fn paper() -> Self {
        Self::new(131072, 80)
    }

    /// Deterministic position of atom `a` on a jittered lattice.
    /// Seeded **per atom**, so any process can materialize any block
    /// independently (parallel first-touch init, replay-safe recovery).
    pub fn atom_pos(atoms: usize, a: usize) -> [f64; 3] {
        let mut rng = StdRng::seed_from_u64(0x5EED_0001 ^ (a as u64).wrapping_mul(0x9E37_79B9));
        let side = (atoms as f64).cbrt().ceil() as usize;
        let (x, y, z) = (a % side, (a / side) % side, a / (side * side));
        [
            x as f64 + rng.gen_range(-0.3..0.3),
            y as f64 + rng.gen_range(-0.3..0.3),
            z as f64 + rng.gen_range(-0.3..0.3),
        ]
    }

    /// Deterministic partner list of atom `a` (irregular indices),
    /// seeded per atom.
    pub fn atom_partners(atoms: usize, partners: usize, a: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(0x5EED_0002 ^ (a as u64).wrapping_mul(0x517C_C1B7));
        let mut list = Vec::with_capacity(partners);
        for _ in 0..partners {
            loop {
                let p = rng.gen_range(0..atoms) as u64;
                if p != a as u64 {
                    list.push(p);
                    break;
                }
            }
        }
        list
    }

    fn init_pos(&self) -> Vec<f64> {
        (0..self.atoms)
            .flat_map(|a| Self::atom_pos(self.atoms, a))
            .collect()
    }

    fn init_partners(&self) -> Vec<u64> {
        (0..self.atoms)
            .flat_map(|a| Self::atom_partners(self.atoms, self.partners, a))
            .collect()
    }

    /// The pair interaction: softened Lennard-Jones force and energy.
    #[inline]
    pub(crate) fn pair(dx: f64, dy: f64, dz: f64) -> (f64, f64) {
        let r2 = (dx * dx + dy * dy + dz * dz).max(1e-4);
        let inv2 = 1.0 / r2;
        let inv6 = inv2 * inv2 * inv2;
        // force magnitude / r and pair energy
        let fmag = (12.0 * inv6 * inv6 - 6.0 * inv6) * inv2;
        let energy = inv6 * inv6 - inv6;
        (fmag, energy)
    }

    /// Serial reference: `iters` force+update steps; returns
    /// `(positions, forces, energy_of_last_step)`.
    pub fn reference(&self, iters: usize) -> (Vec<f64>, Vec<f64>, f64) {
        let n = self.atoms;
        let mut pos = self.init_pos();
        let partners = self.init_partners();
        let mut force = vec![0.0; n * 3];
        let mut energy = 0.0;
        for _ in 0..iters {
            energy = 0.0;
            for a in 0..n {
                let (ax, ay, az) = (pos[a * 3], pos[a * 3 + 1], pos[a * 3 + 2]);
                let (mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0);
                for s in 0..self.partners {
                    let b = partners[a * self.partners + s] as usize;
                    let dx = ax - pos[b * 3];
                    let dy = ay - pos[b * 3 + 1];
                    let dz = az - pos[b * 3 + 2];
                    let (fmag, e) = Self::pair(dx, dy, dz);
                    fx += fmag * dx;
                    fy += fmag * dy;
                    fz += fmag * dz;
                    energy += e;
                }
                force[a * 3] = fx;
                force[a * 3 + 1] = fy;
                force[a * 3 + 2] = fz;
            }
            for a in 0..n {
                pos[a * 3] += self.dt * force[a * 3];
                pos[a * 3 + 1] += self.dt * force[a * 3 + 1];
                pos[a * 3 + 2] += self.dt * force[a * 3 + 2];
            }
        }
        (pos, force, energy)
    }
}

impl Kernel for Nbf {
    fn name(&self) -> &'static str {
        "NBF"
    }

    fn add_regions(&self, p: OmpProgram) -> OmpProgram {
        p.region("nbf_init", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let partners_per = p.u64() as usize;
            let pos = ctx.f64vec("nbf_pos");
            let plists = ctx.u64vec("nbf_partners");
            ctx.for_static(0..n, |ctx, a| {
                let a = a as usize;
                let xyz = Nbf::atom_pos(n as usize, a);
                let ps = Nbf::atom_partners(n as usize, partners_per, a);
                let d = ctx.dsm();
                pos.write_from(d, a * 3, &xyz);
                plists.write_from(d, a * partners_per, &ps);
            });
        })
        .region("nbf_forces", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let partners_per = p.u64() as usize;
            let pos = ctx.f64vec("nbf_pos");
            let force = ctx.f64vec("nbf_force");
            let partners = ctx.u64vec("nbf_partners");
            let out = ctx.f64vec("nbf_out");
            let mut local_energy = 0.0;
            let mut plist = vec![0u64; partners_per];
            ctx.for_static(0..n, |ctx, a| {
                let a = a as usize;
                let d = ctx.dsm();
                let ax = pos.get(d, a * 3);
                let ay = pos.get(d, a * 3 + 1);
                let az = pos.get(d, a * 3 + 2);
                partners.read_into(d, a * partners_per, &mut plist);
                let (mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0);
                for &b in &plist {
                    let b = b as usize;
                    let dx = ax - pos.get(d, b * 3);
                    let dy = ay - pos.get(d, b * 3 + 1);
                    let dz = az - pos.get(d, b * 3 + 2);
                    let (fmag, e) = Nbf::pair(dx, dy, dz);
                    fx += fmag * dx;
                    fy += fmag * dy;
                    fz += fmag * dz;
                    local_energy += e;
                }
                force.set(d, a * 3, fx);
                force.set(d, a * 3 + 1, fy);
                force.set(d, a * 3 + 2, fz);
            });
            // reduction(+: energy)
            let total = ctx.reduce_sum_f64(local_energy);
            ctx.master(|c| {
                out.set(c.dsm(), 0, total);
            });
        })
        .region("nbf_update", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let dt = p.f64();
            let pos = ctx.f64vec("nbf_pos");
            let force = ctx.f64vec("nbf_force");
            ctx.for_static(0..n, |ctx, a| {
                let a = a as usize;
                let d = ctx.dsm();
                for dim in 0..3 {
                    let cur = pos.get(d, a * 3 + dim);
                    let f = force.get(d, a * 3 + dim);
                    pos.set(d, a * 3 + dim, cur + dt * f);
                }
            });
        })
    }

    fn setup(&self, sys: &mut OmpSystem) {
        let n = self.atoms as u64;
        sys.alloc_f64("nbf_pos", n * 3);
        sys.alloc_f64("nbf_force", n * 3);
        sys.alloc_u64("nbf_partners", n * self.partners as u64);
        sys.alloc_f64("nbf_out", 1);
        sys.parallel(
            "nbf_init",
            &Params::new().u64(n).u64(self.partners as u64).build(),
        );
    }

    fn step(&self, sys: &mut OmpSystem, _iter: usize) {
        let n = self.atoms as u64;
        sys.parallel(
            "nbf_forces",
            &Params::new().u64(n).u64(self.partners as u64).build(),
        );
        sys.parallel("nbf_update", &Params::new().u64(n).f64(self.dt).build());
    }

    fn default_iters(&self) -> usize {
        100
    }

    fn verify(&self, sys: &mut OmpSystem, iters: usize) -> f64 {
        let (rpos, rforce, renergy) = self.reference(iters);
        let n = self.atoms;
        sys.seq(|ctx| {
            let pos = ctx.f64vec("nbf_pos");
            let force = ctx.f64vec("nbf_force");
            let out = ctx.f64vec("nbf_out");
            let mut lp = vec![0.0; n * 3];
            let mut lf = vec![0.0; n * 3];
            pos.read_into(ctx.dsm(), 0, &mut lp);
            force.read_into(ctx.dsm(), 0, &mut lf);
            let mut err = 0.0f64;
            for i in 0..n * 3 {
                err = err.max((lp[i] - rpos[i]).abs());
                err = err.max((lf[i] - rforce[i]).abs());
            }
            // Energy: FP grouping differs with team size; relative check.
            let e = out.get(ctx.dsm(), 0);
            let rel = ((e - renergy) / renergy.abs().max(1e-12)).abs();
            err.max(if rel < 1e-9 { 0.0 } else { rel })
        })
    }

    fn shared_bytes(&self) -> u64 {
        (self.atoms * 3 * 2 + self.atoms * self.partners + 1) as u64 * 8
    }

    fn cost_profile(&self) -> Vec<(&'static str, f64)> {
        // One iteration = one atom. The pair interaction is ~30 flops
        // (distance, softened LJ force + energy, accumulation) per
        // partner; the update is 2 flops per dimension; the init is
        // dominated by the per-atom RNG draws (~5 equivalents per
        // partner slot).
        let p = self.partners as f64;
        vec![
            ("nbf_init", 5.0 * p + 10.0),
            ("nbf_forces", 30.0 * p),
            ("nbf_update", 6.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_kernel;
    use nowmp_core::{ClusterConfig, LeaveSel};

    #[test]
    fn reference_is_deterministic() {
        let k = Nbf::new(64, 8);
        let (p1, f1, e1) = k.reference(3);
        let (p2, f2, e2) = k.reference(3);
        assert_eq!(p1, p2);
        assert_eq!(f1, f2);
        assert_eq!(e1, e2);
        assert!(e1.is_finite());
    }

    #[test]
    fn pair_force_is_repulsive_up_close() {
        let (fmag, _) = Nbf::pair(0.5, 0.0, 0.0);
        assert!(fmag > 0.0, "close atoms repel");
    }

    #[test]
    fn parallel_matches_reference() {
        for procs in [1, 2, 4] {
            let k = Nbf::new(64, 8);
            let (sys, err) = run_kernel(&k, ClusterConfig::test(procs + 1, procs), 3);
            assert_eq!(
                err, 0.0,
                "procs={procs}: forces/positions must be bit-exact"
            );
            sys.shutdown();
        }
    }

    #[test]
    fn nbf_under_adaptation_stays_exact() {
        let k = Nbf::new(64, 8);
        let program = crate::build_program(&[&k]);
        let mut sys = nowmp_omp::OmpSystem::new(ClusterConfig::test(5, 4), program);
        k.setup(&mut sys);
        for it in 0..4 {
            if it == 1 {
                sys.adapt().leave(LeaveSel::Pid(2), None).unwrap();
            }
            if it == 2 {
                sys.join_ready().unwrap();
            }
            k.step(&mut sys, it);
        }
        let err = k.verify(&mut sys, 4);
        assert_eq!(err, 0.0);
        sys.shutdown();
    }
}
