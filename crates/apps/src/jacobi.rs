//! Jacobi — iterative 2D Laplace solver (paper §5.2: "simple numerical
//! code", 2500×2500, 1000 iterations, 47.8 MB shared).
//!
//! Two shared grids; each iteration averages the four neighbors into
//! the scratch grid, then swaps roles. Block row partitioning: each
//! process reads two boundary rows owned by neighbors per iteration —
//! the classic producer of *diff* traffic (Table 1 shows Jacobi as the
//! only kernel moving diffs).
//!
//! OpenMP shape: the sweep and the copy-back are two parallel `for`
//! constructs per iteration, so adaptation points arrive at twice the
//! iteration rate.

use crate::Kernel;
use nowmp_omp::{OmpProgram, OmpSystem, Params};

/// The Jacobi kernel.
#[derive(Debug, Clone)]
pub struct Jacobi {
    /// Grid side (n×n including fixed boundary).
    pub n: usize,
}

impl Jacobi {
    /// Jacobi on an `n`×`n` grid.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "grid must have an interior");
        Jacobi { n }
    }

    /// Paper-scale instance (2500×2500).
    pub fn paper() -> Self {
        Self::new(2500)
    }

    /// Initial grid: hot top edge, cold other boundaries, and a
    /// deterministic non-trivial interior (so every sweep changes every
    /// row — a uniform interior would make boundary diffs empty and
    /// hide the paper's Jacobi traffic signature).
    pub(crate) fn init_value(n: usize, r: usize, c: usize) -> f64 {
        if r == 0 {
            100.0
        } else if r == n - 1 || c == 0 || c == n - 1 {
            0.0
        } else {
            ((r.wrapping_mul(31).wrapping_add(c.wrapping_mul(17))) % 100) as f64
        }
    }

    /// Serial reference: `iters` Jacobi sweeps.
    pub fn reference(&self, iters: usize) -> Vec<f64> {
        let n = self.n;
        let mut grid: Vec<f64> = (0..n * n)
            .map(|i| Self::init_value(n, i / n, i % n))
            .collect();
        let mut next = grid.clone();
        for _ in 0..iters {
            for r in 1..n - 1 {
                for c in 1..n - 1 {
                    next[r * n + c] = 0.25
                        * (grid[(r - 1) * n + c]
                            + grid[(r + 1) * n + c]
                            + grid[r * n + c - 1]
                            + grid[r * n + c + 1]);
                }
            }
            for r in 1..n - 1 {
                for c in 1..n - 1 {
                    grid[r * n + c] = next[r * n + c];
                }
            }
        }
        grid
    }
}

impl Kernel for Jacobi {
    fn name(&self) -> &'static str {
        "Jacobi"
    }

    fn add_regions(&self, p: OmpProgram) -> OmpProgram {
        p.region("jacobi_init", |ctx| {
            // Parallel first-touch initialization (replay-safe on
            // recovery: forks fast-forward, sequential code does not).
            let mut p = ctx.params();
            let n = p.u64();
            let grid = ctx.f64mat("jacobi_grid", n, n);
            let next = ctx.f64mat("jacobi_next", n, n);
            let mut row = vec![0.0; n as usize];
            ctx.for_static(0..n, |ctx, r| {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = Jacobi::init_value(n as usize, r as usize, c);
                }
                let d = ctx.dsm();
                grid.write_row(d, r as usize, &row);
                next.write_row(d, r as usize, &row);
            });
        })
        .region("jacobi_sweep", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let grid = ctx.f64mat("jacobi_grid", n, n);
            let next = ctx.f64mat("jacobi_next", n, n);
            // #pragma omp for schedule(static) over interior rows
            let mut above = vec![0.0; n as usize];
            let mut here = vec![0.0; n as usize];
            let mut below = vec![0.0; n as usize];
            let mut out = vec![0.0; n as usize];
            ctx.for_static(1..n - 1, |ctx, r| {
                let d = ctx.dsm();
                grid.read_row(d, (r - 1) as usize, &mut above);
                grid.read_row(d, r as usize, &mut here);
                grid.read_row(d, (r + 1) as usize, &mut below);
                out[0] = here[0];
                out[n as usize - 1] = here[n as usize - 1];
                for c in 1..n as usize - 1 {
                    out[c] = 0.25 * (above[c] + below[c] + here[c - 1] + here[c + 1]);
                }
                next.write_row(d, r as usize, &out);
            });
        })
        .region("jacobi_copy", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let grid = ctx.f64mat("jacobi_grid", n, n);
            let next = ctx.f64mat("jacobi_next", n, n);
            let mut row = vec![0.0; n as usize];
            ctx.for_static(1..n - 1, |ctx, r| {
                let d = ctx.dsm();
                next.read_row(d, r as usize, &mut row);
                grid.write_row(d, r as usize, &row);
            });
        })
    }

    fn setup(&self, sys: &mut OmpSystem) {
        let n = self.n;
        sys.alloc_f64("jacobi_grid", (n * n) as u64);
        sys.alloc_f64("jacobi_next", (n * n) as u64);
        sys.parallel("jacobi_init", &Params::new().u64(n as u64).build());
    }

    fn step(&self, sys: &mut OmpSystem, _iter: usize) {
        let params = Params::new().u64(self.n as u64).build();
        sys.parallel("jacobi_sweep", &params);
        sys.parallel("jacobi_copy", &params);
    }

    fn default_iters(&self) -> usize {
        1000
    }

    fn verify(&self, sys: &mut OmpSystem, iters: usize) -> f64 {
        let n = self.n;
        let reference = self.reference(iters);
        sys.seq(|ctx| {
            let grid = ctx.f64mat("jacobi_grid", n as u64, n as u64);
            let mut row = vec![0.0; n];
            let mut err = 0.0f64;
            for r in 0..n {
                grid.read_row(ctx.dsm(), r, &mut row);
                for c in 0..n {
                    err = err.max((row[c] - reference[r * n + c]).abs());
                }
            }
            err
        })
    }

    fn shared_bytes(&self) -> u64 {
        2 * (self.n * self.n) as u64 * 8
    }

    fn cost_profile(&self) -> Vec<(&'static str, f64)> {
        // One iteration = one grid row. The sweep is the classic
        // 4-flop stencil per point; the copy and the first-touch init
        // are memory-bound at ~1 flop-equivalent per point.
        let n = self.n as f64;
        vec![
            ("jacobi_init", n),
            ("jacobi_sweep", 4.0 * n),
            ("jacobi_copy", n),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_kernel;
    use nowmp_core::{ClusterConfig, LeaveSel};

    #[test]
    // Indices are written `row * stride + col`; keep the row factor
    // even when it is 0 or 1.
    #[allow(clippy::identity_op, clippy::erasing_op)]
    fn serial_reference_converges_from_hot_edge() {
        let j = Jacobi::new(8);
        let g = j.reference(50);
        // Interior points near the hot edge warm up.
        assert!(g[1 * 8 + 4] > 10.0);
        // Boundary stays fixed.
        assert_eq!(g[0 * 8 + 3], 100.0);
        assert_eq!(g[7 * 8 + 3], 0.0);
    }

    #[test]
    fn parallel_matches_reference_exactly() {
        for procs in [1, 2, 4] {
            let j = Jacobi::new(24);
            let (sys, err) = run_kernel(&j, ClusterConfig::test(procs + 1, procs), 10);
            assert_eq!(err, 0.0, "procs={procs}: Jacobi must be bit-exact");
            sys.shutdown();
        }
    }

    #[test]
    fn jacobi_produces_diff_traffic_on_multiple_procs() {
        let j = Jacobi::new(32);
        let program = crate::build_program(&[&j]);
        let mut sys = nowmp_omp::OmpSystem::new(ClusterConfig::test(5, 4), program);
        j.setup(&mut sys);
        for it in 0..6 {
            j.step(&mut sys, it);
        }
        let s = sys.dsm_stats(); // snapshot BEFORE verification traffic
        assert!(s.diffs_fetched > 0, "boundary rows must move as diffs");
        let err = j.verify(&mut sys, 6);
        assert_eq!(err, 0.0);
        sys.shutdown();
    }

    #[test]
    fn jacobi_under_adaptation_stays_exact() {
        let j = Jacobi::new(24);
        let program = crate::build_program(&[&j]);
        let mut sys = nowmp_omp::OmpSystem::new(ClusterConfig::test(5, 4), program);
        j.setup(&mut sys);
        for it in 0..8 {
            if it == 2 {
                sys.adapt().leave(LeaveSel::Pid(3), None).unwrap();
            }
            if it == 5 {
                sys.join_ready().unwrap();
            }
            j.step(&mut sys, it);
        }
        let err = j.verify(&mut sys, 8);
        assert_eq!(err, 0.0, "adaptation must not change results");
        sys.shutdown();
    }
}
