//! Gauss — Gaussian elimination without pivoting (paper §5.2: 3072×3072,
//! 3072 iterations, 48 MB shared).
//!
//! Iteration `k` eliminates column `k` below the diagonal: every process
//! reads pivot row `k` (owned by one process — the others *full-page
//! fetch* it, never having held those pages, which is why Table 1 shows
//! Gauss moving pages but **zero diffs**) and updates its own block of
//! rows below `k`.
//!
//! Layout notes reproducing that signature:
//! * the right-hand side is stored as column `n` of an **augmented
//!   matrix**, so pivot `b[k]` travels with the pivot row instead of
//!   creating a falsely-shared `b` page;
//! * rows are **padded to page boundaries** — rows of different owners
//!   never share a page, so no diffs flow (exactly the paper's Gauss
//!   behavior; see EXPERIMENTS.md).
//!
//! The matrix is generated diagonally dominant so elimination is stable
//! without pivoting.

use crate::Kernel;
use nowmp_omp::{OmpProgram, OmpSystem, Params};

/// The Gauss kernel.
#[derive(Debug, Clone)]
pub struct Gauss {
    /// Matrix dimension.
    pub n: usize,
}

impl Gauss {
    /// Gaussian elimination on an `n`×`n` system.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        Gauss { n }
    }

    /// Paper-scale instance (3072×3072).
    pub fn paper() -> Self {
        Self::new(3072)
    }

    /// Row stride in slots: the augmented row (`n + 1` values) padded to
    /// whole pages of `page_slots` slots.
    pub fn stride(&self, page_slots: usize) -> usize {
        (self.n + 1).div_ceil(page_slots) * page_slots
    }

    /// Deterministic diagonally-dominant matrix entry.
    fn a0(n: usize, r: usize, c: usize) -> f64 {
        if r == c {
            2.0 * n as f64
        } else {
            let h = (r.wrapping_mul(31).wrapping_add(c.wrapping_mul(17))) % 1000;
            (h as f64 / 500.0) - 1.0
        }
    }

    /// Deterministic RHS entry.
    fn b0(r: usize) -> f64 {
        (r % 13) as f64 + 1.0
    }

    /// Serial reference: the eliminated augmented matrix after `iters`
    /// pivot steps, unpadded (row-major, `n + 1` columns).
    pub fn reference(&self, iters: usize) -> Vec<f64> {
        let n = self.n;
        let w = n + 1;
        let mut ab: Vec<f64> = (0..n * w)
            .map(|i| {
                let (r, c) = (i / w, i % w);
                if c == n {
                    Self::b0(r)
                } else {
                    Self::a0(n, r, c)
                }
            })
            .collect();
        for k in 0..iters.min(n - 1) {
            for r in k + 1..n {
                let f = ab[r * w + k] / ab[k * w + k];
                for c in k..w {
                    ab[r * w + c] -= f * ab[k * w + c];
                }
            }
        }
        ab
    }

    /// Solve the system serially (full elimination + back substitution).
    pub fn solve_reference(&self) -> Vec<f64> {
        let n = self.n;
        let w = n + 1;
        let ab = self.reference(n - 1);
        let mut x = vec![0.0; n];
        for r in (0..n).rev() {
            let mut s = ab[r * w + n];
            for c in r + 1..n {
                s -= ab[r * w + c] * x[c];
            }
            x[r] = s / ab[r * w + r];
        }
        x
    }
}

impl Kernel for Gauss {
    fn name(&self) -> &'static str {
        "Gauss"
    }

    fn add_regions(&self, p: OmpProgram) -> OmpProgram {
        p.region("gauss_init", |ctx| {
            // Parallel first-touch initialization: each process writes
            // its own block's rows, so no process ever holds stale
            // copies of foreign rows (the natural OpenMP idiom, and the
            // reason pivot rows later travel as whole pages, not diffs).
            let mut p = ctx.params();
            let n = p.u64() as usize;
            let stride = p.u64() as usize;
            let ab = ctx.f64vec("gauss_ab");
            let mut row = vec![0.0; n + 1];
            ctx.for_static(0..n as u64, |ctx, r| {
                let r = r as usize;
                for (c, v) in row.iter_mut().enumerate() {
                    *v = if c == n {
                        Gauss::b0(r)
                    } else {
                        Gauss::a0(n, r, c)
                    };
                }
                ab.write_from(ctx.dsm(), r * stride, &row);
            });
        })
        .region("gauss_elim", |ctx| {
            let mut p = ctx.params();
            let n = p.u64() as usize;
            let k = p.u64() as usize;
            let stride = p.u64() as usize;
            let ab = ctx.f64vec("gauss_ab");
            let w = n + 1 - k; // active row width from column k

            // Everyone reads the pivot row once (bulk, page-granular).
            let mut pivot = vec![0.0; w];
            let d = ctx.dsm();
            d.read_f64s(ab.addr + (k * stride + k) as u64, &mut pivot);
            let akk = pivot[0];
            // Static block over ALL rows; each process updates the rows
            // of its block that lie below k (the paper's block layout —
            // what Figure 3's redistribution analysis assumes).
            let mut row = vec![0.0; w];
            let mut rows_eliminated = 0u64;
            ctx.for_static(0..n as u64, |ctx, r| {
                let r = r as usize;
                if r <= k {
                    return;
                }
                let d = ctx.dsm();
                let base = ab.addr + (r * stride + k) as u64;
                d.read_f64s(base, &mut row);
                let f = row[0] / akk;
                for c in 0..w {
                    row[c] -= f * pivot[c];
                }
                d.write_f64s(base, &row);
                rows_eliminated += 1;
            });
            // The per-row work shrinks as the pivot advances (and rows
            // above k are skipped entirely), so charge exact FLOPs —
            // one multiply-subtract pair per active element — rather
            // than a uniform per-index cost. This is what exposes the
            // block layout's growing tail-end load imbalance on the
            // virtual timeline, exactly as on the real testbed.
            ctx.charge_flops(rows_eliminated as f64 * w as f64 * 2.0);
        })
    }

    fn setup(&self, sys: &mut OmpSystem) {
        let n = self.n;
        let stride = self.stride(sys.page_slots());
        sys.alloc_f64("gauss_ab", (n * stride) as u64);
        sys.parallel(
            "gauss_init",
            &Params::new().u64(n as u64).u64(stride as u64).build(),
        );
    }

    fn step(&self, sys: &mut OmpSystem, iter: usize) {
        if iter >= self.n - 1 {
            return; // elimination complete
        }
        let stride = self.stride(sys.page_slots());
        let params = Params::new()
            .u64(self.n as u64)
            .u64(iter as u64)
            .u64(stride as u64)
            .build();
        sys.parallel("gauss_elim", &params);
    }

    fn default_iters(&self) -> usize {
        self.n - 1
    }

    fn verify(&self, sys: &mut OmpSystem, iters: usize) -> f64 {
        let n = self.n;
        let stride = self.stride(sys.page_slots());
        let reference = self.reference(iters);
        let w = n + 1;
        sys.seq(|ctx| {
            let ab = ctx.f64vec("gauss_ab");
            let mut row = vec![0.0; w];
            let mut err = 0.0f64;
            for r in 0..n {
                ab.read_into(ctx.dsm(), r * stride, &mut row);
                for c in 0..w {
                    err = err.max((row[c] - reference[r * w + c]).abs());
                }
            }
            err
        })
    }

    fn shared_bytes(&self) -> u64 {
        // Unpadded logical size (padding is a layout artifact).
        (self.n * (self.n + 1)) as u64 * 8
    }

    fn cost_profile(&self) -> Vec<(&'static str, f64)> {
        // Only the first-touch init is uniform per index (one row of
        // n+1 writes); `gauss_elim` charges exact FLOPs in-region.
        vec![("gauss_init", self.n as f64 + 1.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_kernel;
    use nowmp_core::{ClusterConfig, LeaveSel};

    #[test]
    fn serial_solution_satisfies_system() {
        let g = Gauss::new(24);
        let x = g.solve_reference();
        let n = g.n;
        let mut max_res = 0.0f64;
        for r in 0..n {
            let mut s = 0.0;
            for c in 0..n {
                s += Gauss::a0(n, r, c) * x[c];
            }
            max_res = max_res.max((s - Gauss::b0(r)).abs());
        }
        assert!(max_res < 1e-9, "residual {max_res}");
    }

    #[test]
    fn stride_is_page_multiple() {
        let g = Gauss::new(20);
        assert_eq!(g.stride(32) % 32, 0);
        assert!(g.stride(32) >= 21);
        assert_eq!(g.stride(512), 512, "21 slots fit one 4K page");
    }

    #[test]
    fn parallel_elimination_matches_reference_exactly() {
        for procs in [1, 2, 4] {
            let g = Gauss::new(20);
            let iters = g.default_iters();
            let (sys, err) = run_kernel(&g, ClusterConfig::test(procs + 1, procs), iters);
            assert_eq!(err, 0.0, "procs={procs}: elimination must be bit-exact");
            sys.shutdown();
        }
    }

    #[test]
    fn gauss_moves_pages_not_diffs() {
        // Table 1's signature for Gauss: pivot rows travel as full
        // pages (readers never held them); diff count stays 0.
        let g = Gauss::new(32);
        let program = crate::build_program(&[&g]);
        let mut sys = nowmp_omp::OmpSystem::new(ClusterConfig::test(5, 4), program);
        g.setup(&mut sys);
        for it in 0..g.default_iters() {
            g.step(&mut sys, it);
        }
        let s = sys.dsm_stats(); // snapshot BEFORE verification traffic
        assert!(s.pages_fetched > 0, "pivot rows must travel");
        assert_eq!(s.diffs_fetched, 0, "Gauss moves no diffs (Table 1)");
        let err = g.verify(&mut sys, g.default_iters());
        assert_eq!(err, 0.0);
        sys.shutdown();
    }

    #[test]
    fn gauss_under_adaptation_stays_exact() {
        let g = Gauss::new(20);
        let program = crate::build_program(&[&g]);
        let mut sys = nowmp_omp::OmpSystem::new(ClusterConfig::test(5, 3), program);
        g.setup(&mut sys);
        for it in 0..g.default_iters() {
            if it == 4 {
                sys.adapt().leave(LeaveSel::Pid(2), None).unwrap();
            }
            if it == 10 {
                sys.join_ready().unwrap();
            }
            g.step(&mut sys, it);
        }
        let err = g.verify(&mut sys, g.default_iters());
        assert_eq!(err, 0.0);
        sys.shutdown();
    }
}
