//! # nowmp-apps — the paper's application kernels
//!
//! The four programs of the PPoPP'99 evaluation (§5.2), written against
//! the OpenMP-style API exactly as their OpenMP sources would compile:
//! one outlined region per parallel construct, iteration partitioning
//! re-derived from `(pid, nprocs)` at every fork, **zero
//! adaptivity-specific code**:
//!
//! | kernel | paper size | character |
//! |---|---|---|
//! | [`jacobi::Jacobi`] | 2500², 1000 iters | regular stencil; neighbor diffs |
//! | [`gauss::Gauss`] | 3072², 3072 iters | pivot-row broadcast; full pages, no diffs |
//! | [`fft3d::Fft3d`] | 128×64×64, 100 iters | transpose all-to-all |
//! | [`nbf::Nbf`] | 131072 atoms × 80 partners | irregular access, reduction |
//!
//! Every kernel implements [`Kernel`]: the benches drive them uniformly
//! and each carries a serial reference for verification. Problem sizes
//! are parameters; tests run laptop-scale instances.

#![warn(missing_docs)]

pub mod fft3d;
pub mod gauss;
pub mod jacobi;
pub mod nbf;
pub mod tasks;

use nowmp_net::CostModel;
use nowmp_omp::{OmpProgram, OmpSystem};

/// A benchmark kernel: registers its regions, initializes shared data,
/// steps iterations, and verifies against a serial reference.
pub trait Kernel: Send + Sync {
    /// Short name ("Jacobi", "Gauss", "3D-FFT", "NBF").
    fn name(&self) -> &'static str;

    /// Register this kernel's parallel regions.
    fn add_regions(&self, p: OmpProgram) -> OmpProgram;

    /// Allocate and initialize shared data (master, before the loop).
    fn setup(&self, sys: &mut OmpSystem);

    /// Execute one outer iteration (one or more parallel constructs).
    fn step(&self, sys: &mut OmpSystem, iter: usize);

    /// Default outer iteration count for a full run.
    fn default_iters(&self) -> usize;

    /// Maximum absolute error against the serial reference after
    /// `iters` iterations (0.0 = exact).
    fn verify(&self, sys: &mut OmpSystem, iters: usize) -> f64;

    /// Shared memory the kernel allocates, in bytes.
    fn shared_bytes(&self) -> u64;

    /// Calibrated per-iteration compute cost of each *uniform* region,
    /// in FLOPs (one iteration = one index of the region's worksharing
    /// loop). Converted to time through the cost model's
    /// `flops_per_sec` by [`with_kernel_costs`], so profile-driven and
    /// in-region (`charge_flops`) charges share one calibration.
    /// Regions whose per-index work varies (e.g. the shrinking Gauss
    /// elimination step) charge exact FLOPs in-region via
    /// [`nowmp_omp::OmpCtx::charge_flops`] and are absent here.
    fn cost_profile(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// Install `kernel`'s calibrated compute costs into `cost`, switching
/// compute charging on — the virtual-clock what-if entry point. The
/// profile's FLOP counts convert through `cost.flops_per_sec`, so a
/// what-if model with a faster/slower CPU rescales every kernel
/// consistently.
pub fn with_kernel_costs(mut cost: CostModel, kernel: &dyn Kernel) -> CostModel {
    for (region, flops) in kernel.cost_profile() {
        let per_iter = cost.flops_time(flops);
        cost = cost.with_region_cost(region, per_iter);
    }
    // Kernels that charge FLOPs in-region may have an empty profile;
    // charging must still switch on for them.
    cost.emulate_compute = true;
    cost
}

/// Build the complete program for a set of kernels (regions of all four
/// can coexist; names are prefixed per kernel).
pub fn build_program(kernels: &[&dyn Kernel]) -> OmpProgram {
    let mut p = OmpProgram::new();
    for k in kernels {
        p = k.add_regions(p);
    }
    p
}

/// Convenience: run `kernel` for `iters` iterations on a fresh system.
pub fn run_kernel(
    kernel: &dyn Kernel,
    cfg: nowmp_core::ClusterConfig,
    iters: usize,
) -> (OmpSystem, f64) {
    let program = build_program(&[kernel]);
    let mut sys = OmpSystem::new(cfg, program);
    kernel.setup(&mut sys);
    for it in 0..iters {
        kernel.step(&mut sys, it);
    }
    let err = kernel.verify(&mut sys, iters);
    (sys, err)
}
