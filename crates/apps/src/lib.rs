//! # nowmp-apps — the paper's application kernels
//!
//! The four programs of the PPoPP'99 evaluation (§5.2), written against
//! the OpenMP-style API exactly as their OpenMP sources would compile:
//! one outlined region per parallel construct, iteration partitioning
//! re-derived from `(pid, nprocs)` at every fork, **zero
//! adaptivity-specific code**:
//!
//! | kernel | paper size | character |
//! |---|---|---|
//! | [`jacobi::Jacobi`] | 2500², 1000 iters | regular stencil; neighbor diffs |
//! | [`gauss::Gauss`] | 3072², 3072 iters | pivot-row broadcast; full pages, no diffs |
//! | [`fft3d::Fft3d`] | 128×64×64, 100 iters | transpose all-to-all |
//! | [`nbf::Nbf`] | 131072 atoms × 80 partners | irregular access, reduction |
//!
//! Every kernel implements [`Kernel`]: the benches drive them uniformly
//! and each carries a serial reference for verification. Problem sizes
//! are parameters; tests run laptop-scale instances.

#![warn(missing_docs)]

pub mod fft3d;
pub mod gauss;
pub mod jacobi;
pub mod nbf;

use nowmp_omp::{OmpProgram, OmpSystem};

/// A benchmark kernel: registers its regions, initializes shared data,
/// steps iterations, and verifies against a serial reference.
pub trait Kernel: Send + Sync {
    /// Short name ("Jacobi", "Gauss", "3D-FFT", "NBF").
    fn name(&self) -> &'static str;

    /// Register this kernel's parallel regions.
    fn add_regions(&self, p: OmpProgram) -> OmpProgram;

    /// Allocate and initialize shared data (master, before the loop).
    fn setup(&self, sys: &mut OmpSystem);

    /// Execute one outer iteration (one or more parallel constructs).
    fn step(&self, sys: &mut OmpSystem, iter: usize);

    /// Default outer iteration count for a full run.
    fn default_iters(&self) -> usize;

    /// Maximum absolute error against the serial reference after
    /// `iters` iterations (0.0 = exact).
    fn verify(&self, sys: &mut OmpSystem, iters: usize) -> f64;

    /// Shared memory the kernel allocates, in bytes.
    fn shared_bytes(&self) -> u64;
}

/// Build the complete program for a set of kernels (regions of all four
/// can coexist; names are prefixed per kernel).
pub fn build_program(kernels: &[&dyn Kernel]) -> OmpProgram {
    let mut p = OmpProgram::new();
    for k in kernels {
        p = k.add_regions(p);
    }
    p
}

/// Convenience: run `kernel` for `iters` iterations on a fresh system.
pub fn run_kernel(
    kernel: &dyn Kernel,
    cfg: nowmp_core::ClusterConfig,
    iters: usize,
) -> (OmpSystem, f64) {
    let program = build_program(&[kernel]);
    let mut sys = OmpSystem::new(cfg, program);
    kernel.setup(&mut sys);
    for it in 0..iters {
        kernel.step(&mut sys, it);
    }
    let err = kernel.verify(&mut sys, iters);
    (sys, err)
}
