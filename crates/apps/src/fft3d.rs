//! 3D-FFT — from the NAS benchmark suite (paper §5.2: 128×64×64, 100
//! iterations, 42 MB shared).
//!
//! "It performs a 3-dimensional FFT transform using a sequence of 3
//! 1-dimensional transforms, with a transposition of the matrix between
//! the second and the third transform." The transposes are the
//! all-to-all phases that make 3D-FFT the paper's most traffic-hungry
//! kernel per byte of shared memory (Table 1: 779 MB moved over a 42 MB
//! problem).
//!
//! Pipeline per iteration (6 parallel constructs):
//!
//! 1. `evolve` — pointwise phase multiply (the NAS time-evolution);
//! 2. `fft_dim3` — 1D FFTs along the contiguous axis;
//! 3. `fft_dim2` — 1D FFTs along the middle axis;
//! 4. `transpose` A→B (axes 1↔3);
//! 5. `fft_dim3` on B — transforms the original first axis;
//! 6. `transpose` B→A — restore layout.
//!
//! Complex data is stored as separate shared `re`/`im` arrays. All
//! arithmetic is performed in the same order serially and in parallel,
//! so verification is bit-exact.

use crate::Kernel;
use nowmp_omp::{OmpProgram, OmpSystem, Params};

/// Iterative radix-2 Cooley-Tukey FFT, in place. `n` must be a power
/// of two. Deterministic operation order (bit-exact across processes).
pub fn fft1d(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert!(n.is_power_of_two(), "fft length {n} not a power of two");
    assert_eq!(im.len(), n);
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for k in 0..n {
            re[k] *= inv;
            im[k] *= inv;
        }
    }
}

/// The 3D-FFT kernel on an `n1`×`n2`×`n3` complex grid.
#[derive(Debug, Clone)]
pub struct Fft3d {
    /// First (outer) dimension.
    pub n1: usize,
    /// Middle dimension.
    pub n2: usize,
    /// Contiguous dimension.
    pub n3: usize,
}

impl Fft3d {
    /// New kernel; all dimensions must be powers of two.
    pub fn new(n1: usize, n2: usize, n3: usize) -> Self {
        assert!(n1.is_power_of_two() && n2.is_power_of_two() && n3.is_power_of_two());
        Fft3d { n1, n2, n3 }
    }

    /// Paper-scale instance (128×64×64).
    pub fn paper() -> Self {
        Self::new(128, 64, 64)
    }

    fn total(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    /// Deterministic initial field.
    fn init(idx: usize) -> (f64, f64) {
        let h = (idx.wrapping_mul(2654435761)) % 1000;
        ((h as f64 / 500.0) - 1.0, ((999 - h) as f64 / 500.0) - 1.0)
    }

    /// Phase factor applied by `evolve` at flat index `idx`.
    fn phase(idx: usize, iter: usize) -> (f64, f64) {
        let ang = (idx % 97) as f64 * 1e-3 * (iter as f64 + 1.0);
        (ang.cos(), ang.sin())
    }

    /// Serial reference: the same 6-phase pipeline on plain vectors.
    pub fn reference(&self, iters: usize) -> (Vec<f64>, Vec<f64>) {
        let (n1, n2, n3) = (self.n1, self.n2, self.n3);
        let total = self.total();
        let mut are: Vec<f64> = (0..total).map(|i| Self::init(i).0).collect();
        let mut aim: Vec<f64> = (0..total).map(|i| Self::init(i).1).collect();
        let mut bre = vec![0.0; total];
        let mut bim = vec![0.0; total];
        for it in 0..iters {
            // evolve
            for idx in 0..total {
                let (pr, pi) = Self::phase(idx, it);
                let (r, i) = (are[idx], aim[idx]);
                are[idx] = r * pr - i * pi;
                aim[idx] = r * pi + i * pr;
            }
            // fft dim3
            for i in 0..n1 {
                for j in 0..n2 {
                    let off = i * n2 * n3 + j * n3;
                    fft1d(&mut are[off..off + n3], &mut aim[off..off + n3], false);
                }
            }
            // fft dim2 (strided)
            let mut lr = vec![0.0; n2];
            let mut li = vec![0.0; n2];
            for i in 0..n1 {
                for k in 0..n3 {
                    for j in 0..n2 {
                        lr[j] = are[i * n2 * n3 + j * n3 + k];
                        li[j] = aim[i * n2 * n3 + j * n3 + k];
                    }
                    fft1d(&mut lr, &mut li, false);
                    for j in 0..n2 {
                        are[i * n2 * n3 + j * n3 + k] = lr[j];
                        aim[i * n2 * n3 + j * n3 + k] = li[j];
                    }
                }
            }
            // transpose A(i,j,k) -> B(k,j,i)
            for k in 0..n3 {
                for j in 0..n2 {
                    for i in 0..n1 {
                        bre[k * n2 * n1 + j * n1 + i] = are[i * n2 * n3 + j * n3 + k];
                        bim[k * n2 * n1 + j * n1 + i] = aim[i * n2 * n3 + j * n3 + k];
                    }
                }
            }
            // fft dim3 of B (length n1): transforms original axis 1
            for k in 0..n3 {
                for j in 0..n2 {
                    let off = k * n2 * n1 + j * n1;
                    fft1d(&mut bre[off..off + n1], &mut bim[off..off + n1], false);
                }
            }
            // transpose back B(k,j,i) -> A(i,j,k)
            for i in 0..n1 {
                for j in 0..n2 {
                    for k in 0..n3 {
                        are[i * n2 * n3 + j * n3 + k] = bre[k * n2 * n1 + j * n1 + i];
                        aim[i * n2 * n3 + j * n3 + k] = bim[k * n2 * n1 + j * n1 + i];
                    }
                }
            }
        }
        (are, aim)
    }
}

impl Kernel for Fft3d {
    fn name(&self) -> &'static str {
        "3D-FFT"
    }

    fn add_regions(&self, p: OmpProgram) -> OmpProgram {
        p.region("fft_init", |ctx| {
            let mut p = ctx.params();
            let total = p.u64();
            let re = ctx.f64vec("fft_are");
            let im = ctx.f64vec("fft_aim");
            ctx.for_static_block(0..total, |ctx, block| {
                let len = (block.end - block.start) as usize;
                if len == 0 {
                    return;
                }
                let mut lr = vec![0.0; len];
                let mut li = vec![0.0; len];
                for (off, idx) in (block.start as usize..block.end as usize).enumerate() {
                    let (r, i) = Fft3d::init(idx);
                    lr[off] = r;
                    li[off] = i;
                }
                let d = ctx.dsm();
                re.write_from(d, block.start as usize, &lr);
                im.write_from(d, block.start as usize, &li);
            });
        })
        .region("fft_evolve", |ctx| {
            let mut p = ctx.params();
            let total = p.u64();
            let iter = p.u64() as usize;
            let re = ctx.f64vec("fft_are");
            let im = ctx.f64vec("fft_aim");
            ctx.for_static_block(0..total, |ctx, block| {
                let len = (block.end - block.start) as usize;
                if len == 0 {
                    return;
                }
                let d = ctx.dsm();
                let mut lr = vec![0.0; len];
                let mut li = vec![0.0; len];
                re.read_into(d, block.start as usize, &mut lr);
                im.read_into(d, block.start as usize, &mut li);
                for (off, idx) in (block.start as usize..block.end as usize).enumerate() {
                    let (pr, pi) = Fft3d::phase(idx, iter);
                    let (r, i) = (lr[off], li[off]);
                    lr[off] = r * pr - i * pi;
                    li[off] = r * pi + i * pr;
                }
                re.write_from(d, block.start as usize, &lr);
                im.write_from(d, block.start as usize, &li);
            });
        })
        .region("fft_dim3", |ctx| {
            // params: which array (0=A,1=B), d1, d2, d3
            let mut p = ctx.params();
            let which = p.u64();
            let d1 = p.u64() as usize;
            let d2 = p.u64() as usize;
            let d3 = p.u64() as usize;
            let (re, im) = if which == 0 {
                (ctx.f64vec("fft_are"), ctx.f64vec("fft_aim"))
            } else {
                (ctx.f64vec("fft_bre"), ctx.f64vec("fft_bim"))
            };
            let mut lr = vec![0.0; d3];
            let mut li = vec![0.0; d3];
            let mut planes_done = 0u64;
            ctx.for_static(0..d1 as u64, |ctx, i| {
                for j in 0..d2 {
                    let off = i as usize * d2 * d3 + j * d3;
                    let d = ctx.dsm();
                    re.read_into(d, off, &mut lr);
                    im.read_into(d, off, &mut li);
                    fft1d(&mut lr, &mut li, false);
                    re.write_from(d, off, &lr);
                    im.write_from(d, off, &li);
                }
                planes_done += 1;
            });
            // Per-plane work depends on the orientation this call runs
            // in (d2 × an FFT of length d3), so charge exact FLOPs:
            // 5·n·log2(n) per complex radix-2 transform.
            let fft_flops = 5.0 * d3 as f64 * (d3 as f64).log2().max(1.0);
            ctx.charge_flops(planes_done as f64 * d2 as f64 * fft_flops);
        })
        .region("fft_dim2", |ctx| {
            let mut p = ctx.params();
            let d1 = p.u64() as usize;
            let d2 = p.u64() as usize;
            let d3 = p.u64() as usize;
            let re = ctx.f64vec("fft_are");
            let im = ctx.f64vec("fft_aim");
            let mut lr = vec![0.0; d2];
            let mut li = vec![0.0; d2];
            let mut planes_done = 0u64;
            ctx.for_static(0..d1 as u64, |ctx, i| {
                for k in 0..d3 {
                    let d = ctx.dsm();
                    for j in 0..d2 {
                        let idx = i as usize * d2 * d3 + j * d3 + k;
                        lr[j] = re.get(d, idx);
                        li[j] = im.get(d, idx);
                    }
                    fft1d(&mut lr, &mut li, false);
                    for j in 0..d2 {
                        let idx = i as usize * d2 * d3 + j * d3 + k;
                        re.set(d, idx, lr[j]);
                        im.set(d, idx, li[j]);
                    }
                }
                planes_done += 1;
            });
            // d3 strided transforms of length d2 per plane, plus the
            // gather/scatter (2 mem-equivalents per element).
            let fft_flops = 5.0 * d2 as f64 * (d2 as f64).log2().max(1.0);
            ctx.charge_flops(planes_done as f64 * d3 as f64 * (fft_flops + 2.0 * d2 as f64));
        })
        .region("fft_transpose", |ctx| {
            // params: dir (0: A(i,j,k)->B(k,j,i), 1: B(k,j,i)->A(i,j,k)), n1, n2, n3
            let mut p = ctx.params();
            let dir = p.u64();
            let n1 = p.u64() as usize;
            let n2 = p.u64() as usize;
            let n3 = p.u64() as usize;
            let are = ctx.f64vec("fft_are");
            let aim = ctx.f64vec("fft_aim");
            let bre = ctx.f64vec("fft_bre");
            let bim = ctx.f64vec("fft_bim");
            if dir == 0 {
                // Partition over OUTPUT planes of B (index k).
                let mut lr = vec![0.0; n1];
                let mut li = vec![0.0; n1];
                let mut planes_done = 0u64;
                ctx.for_static(0..n3 as u64, |ctx, k| {
                    for j in 0..n2 {
                        let d = ctx.dsm();
                        for (i, (r, m)) in lr.iter_mut().zip(li.iter_mut()).enumerate() {
                            let src = i * n2 * n3 + j * n3 + k as usize;
                            *r = are.get(d, src);
                            *m = aim.get(d, src);
                        }
                        let off = k as usize * n2 * n1 + j * n1;
                        bre.write_from(d, off, &lr);
                        bim.write_from(d, off, &li);
                    }
                    planes_done += 1;
                });
                // Pure data movement: 2 mem-equivalents per complex
                // element of the output plane (n2 × n1 of them).
                ctx.charge_flops(planes_done as f64 * (n2 * n1) as f64 * 2.0);
            } else {
                // Partition over OUTPUT planes of A (index i).
                let mut lr = vec![0.0; n3];
                let mut li = vec![0.0; n3];
                let mut planes_done = 0u64;
                ctx.for_static(0..n1 as u64, |ctx, i| {
                    for j in 0..n2 {
                        let d = ctx.dsm();
                        for (k, (r, m)) in lr.iter_mut().zip(li.iter_mut()).enumerate() {
                            let src = k * n2 * n1 + j * n1 + i as usize;
                            *r = bre.get(d, src);
                            *m = bim.get(d, src);
                        }
                        let off = i as usize * n2 * n3 + j * n3;
                        are.write_from(d, off, &lr);
                        aim.write_from(d, off, &li);
                    }
                    planes_done += 1;
                });
                ctx.charge_flops(planes_done as f64 * (n2 * n3) as f64 * 2.0);
            }
        })
    }

    fn setup(&self, sys: &mut OmpSystem) {
        let total = self.total() as u64;
        sys.alloc_f64("fft_are", total);
        sys.alloc_f64("fft_aim", total);
        sys.alloc_f64("fft_bre", total);
        sys.alloc_f64("fft_bim", total);
        sys.parallel("fft_init", &Params::new().u64(total).build());
    }

    fn step(&self, sys: &mut OmpSystem, iter: usize) {
        let (n1, n2, n3) = (self.n1 as u64, self.n2 as u64, self.n3 as u64);
        let total = self.total() as u64;
        sys.parallel(
            "fft_evolve",
            &Params::new().u64(total).u64(iter as u64).build(),
        );
        sys.parallel(
            "fft_dim3",
            &Params::new().u64(0).u64(n1).u64(n2).u64(n3).build(),
        );
        sys.parallel("fft_dim2", &Params::new().u64(n1).u64(n2).u64(n3).build());
        sys.parallel(
            "fft_transpose",
            &Params::new().u64(0).u64(n1).u64(n2).u64(n3).build(),
        );
        sys.parallel(
            "fft_dim3",
            &Params::new().u64(1).u64(n3).u64(n2).u64(n1).build(),
        );
        sys.parallel(
            "fft_transpose",
            &Params::new().u64(1).u64(n1).u64(n2).u64(n3).build(),
        );
    }

    fn default_iters(&self) -> usize {
        100
    }

    fn verify(&self, sys: &mut OmpSystem, iters: usize) -> f64 {
        let (rre, rim) = self.reference(iters);
        let total = self.total();
        sys.seq(|ctx| {
            let re = ctx.f64vec("fft_are");
            let im = ctx.f64vec("fft_aim");
            let mut lr = vec![0.0; total];
            let mut li = vec![0.0; total];
            re.read_into(ctx.dsm(), 0, &mut lr);
            im.read_into(ctx.dsm(), 0, &mut li);
            let mut err = 0.0f64;
            for idx in 0..total {
                err = err.max((lr[idx] - rre[idx]).abs());
                err = err.max((li[idx] - rim[idx]).abs());
            }
            err
        })
    }

    fn shared_bytes(&self) -> u64 {
        4 * self.total() as u64 * 8
    }

    fn cost_profile(&self) -> Vec<(&'static str, f64)> {
        // Uniform regions only: init (2 writes) and evolve (a complex
        // multiply: 6 flops + 2 mem-equivalents) per flat element. The
        // FFT passes and transposes charge exact FLOPs in-region
        // because their per-plane work depends on the orientation the
        // call runs in.
        vec![("fft_init", 2.0), ("fft_evolve", 8.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_kernel;
    use nowmp_core::{ClusterConfig, LeaveSel};

    /// O(n^2) reference DFT.
    fn dft(re: &[f64], im: &[f64], inverse: bool) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut or_ = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                or_[k] += re[t] * ang.cos() - im[t] * ang.sin();
                oi[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
            if inverse {
                or_[k] /= n as f64;
                oi[k] /= n as f64;
            }
        }
        (or_, oi)
    }

    #[test]
    fn fft1d_matches_naive_dft() {
        let n = 16;
        let re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let im: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).cos()).collect();
        let (dre, dim_) = dft(&re, &im, false);
        let mut fr = re.clone();
        let mut fi = im.clone();
        fft1d(&mut fr, &mut fi, false);
        for k in 0..n {
            assert!((fr[k] - dre[k]).abs() < 1e-9, "re[{k}]");
            assert!((fi[k] - dim_[k]).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn fft1d_inverse_roundtrip() {
        let n = 64;
        let re: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) / 7.0).collect();
        let im: Vec<f64> = (0..n).map(|i| ((i * 7 % 31) as f64) / 11.0).collect();
        let mut fr = re.clone();
        let mut fi = im.clone();
        fft1d(&mut fr, &mut fi, false);
        fft1d(&mut fr, &mut fi, true);
        for k in 0..n {
            assert!((fr[k] - re[k]).abs() < 1e-10);
            assert!((fi[k] - im[k]).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn fft1d_rejects_non_power_of_two() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft1d(&mut re, &mut im, false);
    }

    #[test]
    fn parallel_matches_reference_exactly() {
        for procs in [1, 2, 4] {
            let f = Fft3d::new(8, 4, 4);
            let (sys, err) = run_kernel(&f, ClusterConfig::test(procs + 1, procs), 2);
            assert_eq!(err, 0.0, "procs={procs}: FFT pipeline must be bit-exact");
            sys.shutdown();
        }
    }

    #[test]
    fn fft_under_adaptation_stays_exact() {
        let f = Fft3d::new(8, 4, 4);
        let program = crate::build_program(&[&f]);
        let mut sys = nowmp_omp::OmpSystem::new(ClusterConfig::test(5, 4), program);
        f.setup(&mut sys);
        for it in 0..3 {
            if it == 1 {
                sys.adapt().leave(LeaveSel::Pid(3), None).unwrap();
                sys.join_ready().unwrap();
            }
            f.step(&mut sys, it);
        }
        let err = f.verify(&mut sys, 3);
        assert_eq!(err, 0.0);
        sys.shutdown();
    }
}
