//! Task-engine mirrors of the paper kernels.
//!
//! Each outlined OpenMP region from [`crate::Jacobi`] / [`crate::Nbf`]
//! is re-expressed as a resumable [`RegionTask`] state machine for the
//! event-driven engine ([`nowmp_core::TaskSystem`]): the rank's
//! position between synchronization points is an explicit `phase`
//! field, not a parked stack. The arithmetic — iteration partitioning,
//! read/accumulate order, reduction grouping — is kept *identical* to
//! the thread-backed region bodies so that results are bit-exact and
//! the two engines produce byte-identical checkpoint images (the
//! 32-host parity test in `crates/bench` holds them to it).

use nowmp_core::{TaskApp, TaskSystem};
use nowmp_omp::sched::static_block;
use nowmp_omp::{Params, ParamsReader};
use nowmp_tmk::engine::{RegionTask, Step, TaskCtx};
use nowmp_tmk::types::{Addr, Pid};

use crate::jacobi::Jacobi;
use crate::nbf::Nbf;

// ---------------------------------------------------------------- Jacobi

/// Jacobi on the task engine. Same regions, same math, same shared
/// array names as [`Jacobi`].
#[derive(Debug, Clone)]
pub struct TaskJacobi {
    inner: Jacobi,
}

impl TaskJacobi {
    /// Jacobi on an `n`×`n` grid.
    pub fn new(n: usize) -> Self {
        TaskJacobi {
            inner: Jacobi::new(n),
        }
    }
}

/// `jacobi_init`: first-touch both grids with the deterministic
/// initial field. One phase, block-partitioned over all rows.
struct JInit {
    n: usize,
    lo: u64,
    hi: u64,
    grid: Addr,
    next: Addr,
}

impl RegionTask for JInit {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let n = self.n;
        for r in self.lo..self.hi {
            for c in 0..n {
                let v = Jacobi::init_value(n, r as usize, c);
                ctx.write_f64(self.grid + r * n as u64 + c as u64, v);
                ctx.write_f64(self.next + r * n as u64 + c as u64, v);
            }
        }
        ctx.charge_compute(self.hi - self.lo);
        Step::Done
    }
}

/// `jacobi_sweep`: stencil interior rows of `grid` into `next`.
struct JSweep {
    n: usize,
    lo: u64,
    hi: u64,
    grid: Addr,
    next: Addr,
}

impl RegionTask for JSweep {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let n = self.n;
        let mut above = vec![0.0; n];
        let mut here = vec![0.0; n];
        let mut below = vec![0.0; n];
        let mut out = vec![0.0; n];
        for r in self.lo..self.hi {
            for c in 0..n as u64 {
                above[c as usize] = ctx.read_f64(self.grid + (r - 1) * n as u64 + c);
            }
            for c in 0..n as u64 {
                here[c as usize] = ctx.read_f64(self.grid + r * n as u64 + c);
            }
            for c in 0..n as u64 {
                below[c as usize] = ctx.read_f64(self.grid + (r + 1) * n as u64 + c);
            }
            out[0] = here[0];
            out[n - 1] = here[n - 1];
            for c in 1..n - 1 {
                out[c] = 0.25 * (above[c] + below[c] + here[c - 1] + here[c + 1]);
            }
            for c in 0..n as u64 {
                ctx.write_f64(self.next + r * n as u64 + c, out[c as usize]);
            }
        }
        ctx.charge_compute(self.hi - self.lo);
        Step::Done
    }
}

/// `jacobi_copy`: copy interior rows of `next` back into `grid`.
struct JCopy {
    n: usize,
    lo: u64,
    hi: u64,
    grid: Addr,
    next: Addr,
}

impl RegionTask for JCopy {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        let n = self.n as u64;
        for r in self.lo..self.hi {
            for c in 0..n {
                let v = ctx.read_f64(self.next + r * n + c);
                ctx.write_f64(self.grid + r * n + c, v);
            }
        }
        ctx.charge_compute(self.hi - self.lo);
        Step::Done
    }
}

impl TaskApp for TaskJacobi {
    fn name(&self) -> &'static str {
        "Jacobi"
    }

    fn setup(&self, sys: &mut TaskSystem) {
        let n = self.inner.n;
        sys.alloc_f64("jacobi_grid", (n * n) as u64);
        sys.alloc_f64("jacobi_next", (n * n) as u64);
        sys.parallel(self, "jacobi_init", &Params::new().u64(n as u64).build());
    }

    fn step(&self, sys: &mut TaskSystem, _iter: usize) {
        let params = Params::new().u64(self.inner.n as u64).build();
        sys.parallel(self, "jacobi_sweep", &params);
        sys.parallel(self, "jacobi_copy", &params);
    }

    fn verify(&self, sys: &TaskSystem, iters: usize) -> f64 {
        let n = self.inner.n;
        let reference = self.inner.reference(iters);
        let mut err = 0.0f64;
        for r in 0..n {
            for c in 0..n {
                let got = sys.get_f64("jacobi_grid", r * n + c);
                err = err.max((got - reference[r * n + c]).abs());
            }
        }
        err
    }

    fn kernel(
        &self,
        sys: &TaskSystem,
        region: &str,
        params: &[u8],
        pid: Pid,
        nprocs: usize,
    ) -> Box<dyn RegionTask> {
        let mut p = ParamsReader::new(params);
        let n = p.u64();
        let grid = sys.addr_of("jacobi_grid");
        let next = sys.addr_of("jacobi_next");
        match region {
            "jacobi_init" => {
                let b = static_block(0..n, pid as usize, nprocs);
                Box::new(JInit {
                    n: n as usize,
                    lo: b.start,
                    hi: b.end,
                    grid,
                    next,
                })
            }
            "jacobi_sweep" => {
                let b = static_block(1..n - 1, pid as usize, nprocs);
                Box::new(JSweep {
                    n: n as usize,
                    lo: b.start,
                    hi: b.end,
                    grid,
                    next,
                })
            }
            "jacobi_copy" => {
                let b = static_block(1..n - 1, pid as usize, nprocs);
                Box::new(JCopy {
                    n: n as usize,
                    lo: b.start,
                    hi: b.end,
                    grid,
                    next,
                })
            }
            other => panic!("unknown Jacobi region {other:?}"),
        }
    }
}

// ------------------------------------------------------------------ NBF

/// NBF on the task engine. Same regions, same math, same shared array
/// names as [`Nbf`]; the energy reduction mirrors the OpenMP layer's
/// scratch-array protocol (`__omp_red`) so even the scratch residue in
/// checkpoint images matches the thread engine.
#[derive(Debug, Clone)]
pub struct TaskNbf {
    inner: Nbf,
}

impl TaskNbf {
    /// NBF with `atoms` atoms and `partners` partners per atom.
    pub fn new(atoms: usize, partners: usize) -> Self {
        TaskNbf {
            inner: Nbf::new(atoms, partners),
        }
    }
}

/// `nbf_init`: materialize positions and partner lists per atom.
struct NInit {
    n: usize,
    partners: usize,
    lo: u64,
    hi: u64,
    pos: Addr,
    plists: Addr,
}

impl RegionTask for NInit {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        for a in self.lo..self.hi {
            let xyz = Nbf::atom_pos(self.n, a as usize);
            let ps = Nbf::atom_partners(self.n, self.partners, a as usize);
            for (d, v) in xyz.iter().enumerate() {
                ctx.write_f64(self.pos + a * 3 + d as u64, *v);
            }
            for (s, v) in ps.iter().enumerate() {
                ctx.write_u64(self.plists + a * self.partners as u64 + s as u64, *v);
            }
        }
        ctx.charge_compute(self.hi - self.lo);
        Step::Done
    }
}

/// `nbf_forces` as a three-phase state machine:
///
/// * phase 0 — force accumulation over the rank's block, then the
///   reduction's scratch write (`red[pid] = local_energy`) → barrier
///   (the reduce's first barrier);
/// * phase 1 — fold the scratch in pid order → barrier (the reduce's
///   second barrier, protecting the scratch from the next reduction);
/// * phase 2 — `master`: pid 0 writes the total to `nbf_out[0]`.
struct NForces {
    partners: usize,
    lo: u64,
    hi: u64,
    pos: Addr,
    force: Addr,
    plists: Addr,
    out: Addr,
    red: Addr,
    pid: Pid,
    phase: u8,
    total: f64,
}

impl RegionTask for NForces {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        match self.phase {
            0 => {
                let mut local_energy = 0.0;
                let mut plist = vec![0u64; self.partners];
                for a in self.lo..self.hi {
                    let ax = ctx.read_f64(self.pos + a * 3);
                    let ay = ctx.read_f64(self.pos + a * 3 + 1);
                    let az = ctx.read_f64(self.pos + a * 3 + 2);
                    for s in 0..self.partners as u64 {
                        plist[s as usize] =
                            ctx.read_u64(self.plists + a * self.partners as u64 + s);
                    }
                    let (mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0);
                    for &b in &plist {
                        let dx = ax - ctx.read_f64(self.pos + b * 3);
                        let dy = ay - ctx.read_f64(self.pos + b * 3 + 1);
                        let dz = az - ctx.read_f64(self.pos + b * 3 + 2);
                        let (fmag, e) = Nbf::pair(dx, dy, dz);
                        fx += fmag * dx;
                        fy += fmag * dy;
                        fz += fmag * dz;
                        local_energy += e;
                    }
                    ctx.write_f64(self.force + a * 3, fx);
                    ctx.write_f64(self.force + a * 3 + 1, fy);
                    ctx.write_f64(self.force + a * 3 + 2, fz);
                }
                ctx.charge_compute(self.hi - self.lo);
                ctx.write_f64(self.red + self.pid as u64, local_energy);
                self.phase = 1;
                Step::Barrier
            }
            1 => {
                let mut acc = 0.0;
                for p in 0..ctx.nprocs() as u64 {
                    acc += ctx.read_f64(self.red + p);
                }
                self.total = acc;
                self.phase = 2;
                Step::Barrier
            }
            _ => {
                if self.pid == 0 {
                    ctx.write_f64(self.out, self.total);
                }
                Step::Done
            }
        }
    }
}

/// `nbf_update`: integrate positions by `dt × force`.
struct NUpdate {
    dt: f64,
    lo: u64,
    hi: u64,
    pos: Addr,
    force: Addr,
}

impl RegionTask for NUpdate {
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
        for a in self.lo..self.hi {
            for dim in 0..3u64 {
                let cur = ctx.read_f64(self.pos + a * 3 + dim);
                let f = ctx.read_f64(self.force + a * 3 + dim);
                ctx.write_f64(self.pos + a * 3 + dim, cur + self.dt * f);
            }
        }
        ctx.charge_compute(self.hi - self.lo);
        Step::Done
    }
}

impl TaskApp for TaskNbf {
    fn name(&self) -> &'static str {
        "NBF"
    }

    fn setup(&self, sys: &mut TaskSystem) {
        let n = self.inner.atoms as u64;
        sys.alloc_f64("nbf_pos", n * 3);
        sys.alloc_f64("nbf_force", n * 3);
        sys.alloc_u64("nbf_partners", n * self.inner.partners as u64);
        sys.alloc_f64("nbf_out", 1);
        sys.parallel(
            self,
            "nbf_init",
            &Params::new().u64(n).u64(self.inner.partners as u64).build(),
        );
    }

    fn step(&self, sys: &mut TaskSystem, _iter: usize) {
        let n = self.inner.atoms as u64;
        sys.parallel(
            self,
            "nbf_forces",
            &Params::new().u64(n).u64(self.inner.partners as u64).build(),
        );
        sys.parallel(
            self,
            "nbf_update",
            &Params::new().u64(n).f64(self.inner.dt).build(),
        );
    }

    fn verify(&self, sys: &TaskSystem, iters: usize) -> f64 {
        let (rpos, rforce, renergy) = self.inner.reference(iters);
        let n = self.inner.atoms;
        let mut err = 0.0f64;
        for i in 0..n * 3 {
            err = err.max((sys.get_f64("nbf_pos", i) - rpos[i]).abs());
            err = err.max((sys.get_f64("nbf_force", i) - rforce[i]).abs());
        }
        let e = sys.get_f64("nbf_out", 0);
        let rel = ((e - renergy) / renergy.abs().max(1e-12)).abs();
        err.max(if rel < 1e-9 { 0.0 } else { rel })
    }

    fn kernel(
        &self,
        sys: &TaskSystem,
        region: &str,
        params: &[u8],
        pid: Pid,
        nprocs: usize,
    ) -> Box<dyn RegionTask> {
        let mut p = ParamsReader::new(params);
        let pos = sys.addr_of("nbf_pos");
        let force = sys.addr_of("nbf_force");
        match region {
            "nbf_init" => {
                let n = p.u64();
                let partners = p.u64() as usize;
                let b = static_block(0..n, pid as usize, nprocs);
                Box::new(NInit {
                    n: n as usize,
                    partners,
                    lo: b.start,
                    hi: b.end,
                    pos,
                    plists: sys.addr_of("nbf_partners"),
                })
            }
            "nbf_forces" => {
                let n = p.u64();
                let partners = p.u64() as usize;
                let b = static_block(0..n, pid as usize, nprocs);
                Box::new(NForces {
                    partners,
                    lo: b.start,
                    hi: b.end,
                    pos,
                    force,
                    plists: sys.addr_of("nbf_partners"),
                    out: sys.addr_of("nbf_out"),
                    red: sys.addr_of(nowmp_core::engine::RED_ARRAY),
                    pid,
                    phase: 0,
                    total: 0.0,
                })
            }
            "nbf_update" => {
                let n = p.u64();
                let dt = p.f64();
                let b = static_block(0..n, pid as usize, nprocs);
                Box::new(NUpdate {
                    dt,
                    lo: b.start,
                    hi: b.end,
                    pos,
                    force,
                })
            }
            other => panic!("unknown NBF region {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowmp_core::{run_task_app, ClusterConfig, LeaveSel};
    use nowmp_util::Clock;

    fn cfg(hosts: usize, procs: usize) -> ClusterConfig {
        ClusterConfig::test(hosts, procs)
            .with_clock(Clock::new_virtual())
            .with_adaptive(true)
    }

    #[test]
    fn task_jacobi_matches_reference_exactly() {
        for procs in [1, 2, 4] {
            let j = TaskJacobi::new(24);
            let (err, _) = run_task_app(&j, cfg(procs + 1, procs), 10);
            assert_eq!(err, 0.0, "procs={procs}: Jacobi must be bit-exact");
        }
    }

    #[test]
    fn task_nbf_matches_reference() {
        for procs in [1, 2, 4] {
            let k = TaskNbf::new(64, 8);
            let (err, _) = run_task_app(&k, cfg(procs + 1, procs), 3);
            assert_eq!(err, 0.0, "procs={procs}: forces/positions bit-exact");
        }
    }

    #[test]
    fn task_jacobi_under_adaptation_stays_exact() {
        let j = TaskJacobi::new(24);
        let mut sys = nowmp_core::TaskSystem::new(cfg(5, 4));
        j.setup(&mut sys);
        for it in 0..8 {
            if it == 2 {
                sys.adapt().join_ready().unwrap();
            }
            if it == 5 {
                sys.adapt().leave(LeaveSel::Pid(3), None).unwrap();
            }
            j.step(&mut sys, it);
        }
        let err = j.verify(&sys, 8);
        assert_eq!(err, 0.0, "adaptation must not change results");
    }

    #[test]
    fn task_nbf_under_adaptation_stays_exact() {
        let k = TaskNbf::new(64, 8);
        let mut sys = nowmp_core::TaskSystem::new(cfg(5, 4));
        k.setup(&mut sys);
        for it in 0..4 {
            if it == 1 {
                sys.adapt().leave(LeaveSel::Pid(2), None).unwrap();
            }
            if it == 2 {
                sys.adapt().join_ready().unwrap();
            }
            k.step(&mut sys, it);
        }
        let err = k.verify(&sys, 4);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn task_engine_scales_past_thread_limits() {
        // 256 simulated hosts — far beyond what thread-per-host could
        // run in a unit test — on an O(pool) worker pool.
        let j = TaskJacobi::new(512);
        let (err, sys) = run_task_app(&j, cfg(256, 256), 2);
        assert_eq!(err, 0.0);
        assert!(sys.peak_workers() <= sys.pool());
        assert_eq!(sys.nprocs(), 256);
    }
}
