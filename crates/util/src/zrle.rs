//! Zero-run-length encoding of word buffers.
//!
//! Checkpoints and migration images carry whole shared-memory pages.
//! Scientific arrays are overwhelmingly zero early in a run (and often
//! stay sparse), so a trivial zero-run codec buys large, predictable
//! compression with no dependencies.
//!
//! Format (all little-endian `u32` counts):
//!
//! ```text
//! total_words: u32
//! repeat {
//!     zero_run_words: u32        // may be 0
//!     literal_words:  u32        // may be 0
//!     literal data:   u64 * literal_words
//! } until total consumed
//! ```

use crate::wire::{Dec, Enc, WireError};

/// Encode `words` with zero-run compression into `e`.
pub fn encode_words(words: &[u64], e: &mut Enc) {
    e.put_u32(words.len() as u32);
    let mut i = 0;
    while i < words.len() {
        // Count zeros.
        let zstart = i;
        while i < words.len() && words[i] == 0 {
            i += 1;
        }
        let zeros = i - zstart;
        // Count literals: stop when we see a run of >= 4 zeros (threshold
        // below which emitting a run header is not worth it).
        let lstart = i;
        let mut zrun = 0usize;
        while i < words.len() {
            if words[i] == 0 {
                zrun += 1;
                if zrun >= 4 {
                    i -= zrun - 1; // back up to start of the zero run
                    break;
                }
            } else {
                zrun = 0;
            }
            i += 1;
        }
        let mut lend = i;
        // Trim trailing zeros we may have swallowed (when the loop ended at
        // the buffer end inside a short zero run, keep them as literals —
        // simpler and still correct).
        if lend > lstart && i == words.len() {
            // keep as-is
        }
        if lend < lstart {
            lend = lstart;
        }
        let lits = &words[lstart..lend];
        e.put_u32(zeros as u32);
        e.put_u32(lits.len() as u32);
        for &w in lits {
            e.put_u64(w);
        }
        if zeros == 0 && lits.is_empty() {
            // Cannot happen (outer loop guarantees progress), but guard
            // against an infinite loop if the invariant is ever broken.
            debug_assert!(false, "zrle made no progress");
            break;
        }
    }
}

/// Decode a zero-run-compressed word buffer from `d`.
pub fn decode_words(d: &mut Dec<'_>) -> Result<Vec<u64>, WireError> {
    let total = d.get_u32()? as usize;
    if total > (1 << 28) {
        return Err(WireError::BadLength {
            what: "zrle total",
            len: total,
        });
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let zeros = d.get_u32()? as usize;
        let lits = d.get_u32()? as usize;
        if out.len() + zeros + lits > total {
            return Err(WireError::BadLength {
                what: "zrle run",
                len: zeros + lits,
            });
        }
        out.resize(out.len() + zeros, 0);
        for _ in 0..lits {
            out.push(d.get_u64()?);
        }
        if zeros == 0 && lits == 0 {
            return Err(WireError::BadLength {
                what: "zrle empty run",
                len: 0,
            });
        }
    }
    Ok(out)
}

/// Convenience: encode to a fresh buffer.
pub fn compress(words: &[u64]) -> Vec<u8> {
    let mut e = Enc::with_capacity(words.len() / 4 + 16);
    encode_words(words, &mut e);
    e.finish()
}

/// Convenience: decode from a complete buffer.
pub fn decompress(buf: &[u8]) -> Result<Vec<u64>, WireError> {
    let mut d = Dec::new(buf);
    let v = decode_words(&mut d)?;
    d.expect_done()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_zero_page_compresses_hard() {
        let words = vec![0u64; 512]; // one 4 KB page
        let buf = compress(&words);
        assert!(
            buf.len() <= 16,
            "4KB of zeros should encode in <= 16 bytes, got {}",
            buf.len()
        );
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn dense_page_roundtrips() {
        let words: Vec<u64> = (0..512u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
            .collect();
        let buf = compress(&words);
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn empty_buffer() {
        let words: Vec<u64> = vec![];
        let buf = compress(&words);
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn mixed_runs() {
        let mut words = vec![0u64; 100];
        words.extend_from_slice(&[1, 2, 3]);
        words.extend(vec![0u64; 50]);
        words.push(9);
        words.extend(vec![0u64; 7]);
        let buf = compress(&words);
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn short_zero_runs_stay_literal() {
        // 0 interleaved singly should not explode into many run headers.
        let words: Vec<u64> = (0..64).map(|i| if i % 2 == 0 { 0 } else { i }).collect();
        let buf = compress(&words);
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn corrupt_run_rejected() {
        let words = vec![1u64, 2, 3];
        let mut buf = compress(&words);
        // Claim more total words than runs provide -> decoder must error, not hang.
        buf[0] = 0xFF;
        assert!(decompress(&buf).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(words in proptest::collection::vec(prop_oneof![Just(0u64), any::<u64>()], 0..600)) {
            let buf = compress(&words);
            prop_assert_eq!(decompress(&buf).unwrap(), words);
        }

        #[test]
        fn prop_sparse_compresses(density in 0usize..8) {
            let words: Vec<u64> = (0..512usize)
                .map(|i| if density > 0 && i % (512 / density.max(1)).max(1) == 0 { i as u64 + 1 } else { 0 })
                .collect();
            let buf = compress(&words);
            // Sparse pages must compress below raw size.
            prop_assert!(buf.len() < 512 * 8);
            prop_assert_eq!(decompress(&buf).unwrap(), words);
        }
    }
}
