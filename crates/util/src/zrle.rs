//! Zero-run-length encoding of word buffers.
//!
//! Checkpoints and migration images carry whole shared-memory pages.
//! Scientific arrays are overwhelmingly zero early in a run (and often
//! stay sparse), so a trivial zero-run codec buys large, predictable
//! compression with no dependencies.
//!
//! Format (all little-endian `u32` counts):
//!
//! ```text
//! total_words: u32
//! repeat {
//!     zero_run_words: u32        // may be 0
//!     literal_words:  u32        // may be 0
//!     literal data:   u64 * literal_words
//! } until total consumed
//! ```

use crate::wire::{Dec, Enc, WireError};

/// Encode `words` with zero-run compression into `e`.
///
/// Word-wide scanning, byte-for-byte identical output to the original
/// per-word loop (pinned by `prop_matches_reference` below): zero runs
/// are skipped eight words per OR-fold, literal stretches leap four
/// words per all-nonzero test, and the per-word state machine only
/// runs near run boundaries. Literal payloads go out through the bulk
/// [`Enc::put_u64_words`] path.
pub fn encode_words(words: &[u64], e: &mut Enc) {
    let n = words.len();
    e.put_u32(n as u32);
    let mut i = 0;
    while i < n {
        // Count zeros: wide skip (one OR-fold per 8 words — a couple
        // of 128-bit lanes), then the word tail.
        let zstart = i;
        while i + 8 <= n && or_fold8(&words[i..i + 8]) == 0 {
            i += 8;
        }
        if i + 4 <= n && words[i] | words[i + 1] | words[i + 2] | words[i + 3] == 0 {
            i += 4;
        }
        while i < n && words[i] == 0 {
            i += 1;
        }
        let zeros = i - zstart;
        // Count literals: stop where a run of >= 4 zeros begins (below
        // that threshold a run header costs more than the literal
        // words). Each step looks at a 4-word window as a zero
        // bitmask: all clear leaps 4 (a zero run can only *start* at a
        // zero word), all set is the stop position, otherwise skip to
        // the window's first zero (earlier positions are nonzero and
        // cannot start a run). Fewer than 4 words left can never form
        // a run, so the tail stays literal — same as the byte loop.
        let lstart = i;
        loop {
            if i + 4 > n {
                i = n;
                break;
            }
            let m = (words[i] == 0) as u32
                | (((words[i + 1] == 0) as u32) << 1)
                | (((words[i + 2] == 0) as u32) << 2)
                | (((words[i + 3] == 0) as u32) << 3);
            if m == 0 {
                i += 4;
            } else if m == 0xF {
                break; // 4-zero run starts exactly here
            } else {
                i += (m.trailing_zeros() as usize).max(1);
            }
        }
        // A literal stretch ending at the buffer end keeps any short
        // trailing zero run as literals — simpler and still correct.
        let lits = &words[lstart..i];
        e.put_u32(zeros as u32);
        e.put_u32(lits.len() as u32);
        e.put_u64_words(lits);
        if zeros == 0 && lits.is_empty() {
            // Cannot happen (outer loop guarantees progress), but guard
            // against an infinite loop if the invariant is ever broken.
            debug_assert!(false, "zrle made no progress");
            break;
        }
    }
}

/// OR of 8 words — zero iff all are zero. A fixed-size fold the
/// autovectorizer reduces in two 128-bit (or one 512-bit) lanes.
#[inline]
fn or_fold8(w: &[u64]) -> u64 {
    w[0] | w[1] | w[2] | w[3] | w[4] | w[5] | w[6] | w[7]
}

/// Decode a zero-run-compressed word buffer from `d`.
pub fn decode_words(d: &mut Dec<'_>) -> Result<Vec<u64>, WireError> {
    let total = d.get_u32()? as usize;
    if total > (1 << 28) {
        return Err(WireError::BadLength {
            what: "zrle total",
            len: total,
        });
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let zeros = d.get_u32()? as usize;
        let lits = d.get_u32()? as usize;
        if out.len() + zeros + lits > total {
            return Err(WireError::BadLength {
                what: "zrle run",
                len: zeros + lits,
            });
        }
        out.resize(out.len() + zeros, 0);
        d.get_u64_words_into(&mut out, lits)?;
        if zeros == 0 && lits == 0 {
            return Err(WireError::BadLength {
                what: "zrle empty run",
                len: 0,
            });
        }
    }
    Ok(out)
}

/// Convenience: encode to a fresh buffer.
pub fn compress(words: &[u64]) -> Vec<u8> {
    let mut e = Enc::with_capacity(words.len() / 4 + 16);
    encode_words(words, &mut e);
    e.finish()
}

/// Convenience: decode from a complete buffer.
pub fn decompress(buf: &[u8]) -> Result<Vec<u64>, WireError> {
    let mut d = Dec::new(buf);
    let v = decode_words(&mut d)?;
    d.expect_done()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original per-word encoder, kept verbatim as the semantic
    /// reference: the widened [`encode_words`] must produce
    /// byte-identical output (`prop_matches_reference`), so the wire
    /// format is pinned by construction, not by sampled round-trips
    /// alone.
    fn encode_words_reference(words: &[u64], e: &mut Enc) {
        e.put_u32(words.len() as u32);
        let mut i = 0;
        while i < words.len() {
            let zstart = i;
            while i < words.len() && words[i] == 0 {
                i += 1;
            }
            let zeros = i - zstart;
            let lstart = i;
            let mut zrun = 0usize;
            while i < words.len() {
                if words[i] == 0 {
                    zrun += 1;
                    if zrun >= 4 {
                        i -= zrun - 1;
                        break;
                    }
                } else {
                    zrun = 0;
                }
                i += 1;
            }
            let lits = &words[lstart..i];
            e.put_u32(zeros as u32);
            e.put_u32(lits.len() as u32);
            for &w in lits {
                e.put_u64(w);
            }
            if zeros == 0 && lits.is_empty() {
                break;
            }
        }
    }

    fn compress_reference(words: &[u64]) -> Vec<u8> {
        let mut e = Enc::with_capacity(words.len() / 4 + 16);
        encode_words_reference(words, &mut e);
        e.finish()
    }

    #[test]
    fn all_zero_page_compresses_hard() {
        let words = vec![0u64; 512]; // one 4 KB page
        let buf = compress(&words);
        assert!(
            buf.len() <= 16,
            "4KB of zeros should encode in <= 16 bytes, got {}",
            buf.len()
        );
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn dense_page_roundtrips() {
        let words: Vec<u64> = (0..512u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
            .collect();
        let buf = compress(&words);
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn empty_buffer() {
        let words: Vec<u64> = vec![];
        let buf = compress(&words);
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn mixed_runs() {
        let mut words = vec![0u64; 100];
        words.extend_from_slice(&[1, 2, 3]);
        words.extend(vec![0u64; 50]);
        words.push(9);
        words.extend(vec![0u64; 7]);
        let buf = compress(&words);
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn short_zero_runs_stay_literal() {
        // 0 interleaved singly should not explode into many run headers.
        let words: Vec<u64> = (0..64).map(|i| if i % 2 == 0 { 0 } else { i }).collect();
        let buf = compress(&words);
        assert_eq!(decompress(&buf).unwrap(), words);
    }

    #[test]
    fn corrupt_run_rejected() {
        let words = vec![1u64, 2, 3];
        let mut buf = compress(&words);
        // Claim more total words than runs provide -> decoder must error, not hang.
        buf[0] = 0xFF;
        assert!(decompress(&buf).is_err());
    }

    #[test]
    fn adversarial_patterns_roundtrip_and_match_reference() {
        // Deterministic adversarial corpus aimed at the wide-scan
        // boundaries: run lengths straddling the 8-word zero-skip and
        // 4-word literal-leap chunks, alternating single words, and
        // short trailing zero runs that must stay literal.
        let mut cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0; 512],
            (1..=512u64).collect(),
            (0..512u64).map(|i| u64::from(i % 2 == 0)).collect(),
            (0..512u64).map(|i| u64::from(i % 2 == 1)).collect(),
        ];
        // Every (zero-run, literal-run) length pair around the chunk
        // widths, repeated to cross block boundaries, with and without
        // a trailing zero tail of every sub-threshold length.
        for z in [1usize, 3, 4, 5, 7, 8, 9, 15, 16, 17] {
            for l in [1usize, 3, 4, 5, 7, 8, 9] {
                for tail in 0..4usize {
                    let mut v = Vec::new();
                    for rep in 0..6 {
                        v.extend(std::iter::repeat_n(0u64, z));
                        v.extend((0..l).map(|k| (rep * 100 + k + 1) as u64));
                    }
                    v.extend(std::iter::repeat_n(0u64, tail));
                    cases.push(v);
                }
            }
        }
        for words in cases {
            let buf = compress(&words);
            assert_eq!(
                buf,
                compress_reference(&words),
                "encoding diverged from the byte-loop reference for {} words",
                words.len()
            );
            assert_eq!(decompress(&buf).unwrap(), words);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(words in proptest::collection::vec(prop_oneof![Just(0u64), any::<u64>()], 0..600)) {
            let buf = compress(&words);
            prop_assert_eq!(decompress(&buf).unwrap(), words);
        }

        /// The widened encoder is pinned against the byte-loop
        /// semantics: identical bytes out, for zero-biased inputs whose
        /// run lengths hit every alignment of the wide chunks.
        #[test]
        fn prop_matches_reference(
            words in proptest::collection::vec(
                prop_oneof![Just(0u64), Just(0u64), Just(0u64), 1u64..u64::MAX], 0..700),
        ) {
            prop_assert_eq!(compress(&words), compress_reference(&words));
        }

        /// Adversarial run-structured inputs: explicit (zeros, lits)
        /// segment lists exercise header emission at every boundary.
        #[test]
        fn prop_segments_match_reference(
            segs in proptest::collection::vec((0usize..20, 0usize..12), 0..20),
            tail in 0usize..9,
        ) {
            let mut words = Vec::new();
            for (zi, &(z, l)) in segs.iter().enumerate() {
                words.extend(std::iter::repeat_n(0u64, z));
                words.extend((0..l).map(|k| (zi * 37 + k + 1) as u64));
            }
            words.extend(std::iter::repeat_n(0u64, tail));
            let buf = compress(&words);
            prop_assert_eq!(&buf, &compress_reference(&words));
            prop_assert_eq!(decompress(&buf).unwrap(), words);
        }

        #[test]
        fn prop_sparse_compresses(density in 0usize..8) {
            let words: Vec<u64> = (0..512usize)
                .map(|i| if density > 0 && i % (512 / density.max(1)).max(1) == 0 { i as u64 + 1 } else { 0 })
                .collect();
            let buf = compress(&words);
            // Sparse pages must compress below raw size.
            prop_assert!(buf.len() < 512 * 8);
            prop_assert_eq!(decompress(&buf).unwrap(), words);
        }
    }
}
