//! Real vs. virtual time — the [`Clock`] every layer tells time by.
//!
//! The network emulation charges the paper's measured delays (63 µs
//! latencies, 0.7 s process creation, 8.1 MB/s migration streams). With
//! the [`RealClock`] backend those delays cost wall time (hybrid
//! sleep + spin, as before). The [`VirtualClock`] backend instead keeps
//! a *discrete-event* time source shared by every thread of one
//! simulation: when every participating thread is blocked — sleeping on
//! the clock, parked in a clock-visible wait, and no message is in
//! flight — the clock advances instantly to the earliest pending
//! deadline. Emulated delays then cost zero wall time while preserving
//! every ratio and ordering the paper reports.
//!
//! ## How threads become visible to the virtual clock
//!
//! * [`Clock::sleep`] / [`Clock::sleep_until`] — the sleeper is blocked
//!   until its deadline; the deadline is what the clock advances to.
//! * [`Clock::blocked`] — wraps an *external* wait (a channel `recv`, a
//!   contended lock) so the clock knows the thread is not running.
//! * [`Clock::participant`] — registers a long-lived thread (service
//!   loops, worker application threads, the master). While a registered
//!   thread is *running*, virtual time holds still, exactly like wall
//!   time holds still for no one — registration is what keeps a pending
//!   3 s grace timer from firing while the master is between two forks.
//! * [`Clock::msg_sent`] / [`Clock::msg_received`] — in-flight message
//!   accounting: a receiver blocked on an empty mailbox is quiescent,
//!   but one with a queued message is about to run, so the clock must
//!   not skip ahead of it.
//!
//! Threads that never register are invisible while running: the clock
//! may advance underneath a long computation on such a thread. That is
//! the intended semantic for harness/test threads — compute costs zero
//! virtual time — and a 250 ms stall fallback guarantees that even a
//! mis-accounted wait can only delay, never deadlock, the simulation.

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::timing::precise_sleep;

/// A point on a [`Clock`]'s timeline: nanoseconds since clock creation.
///
/// Ticks from the same clock (and its clones) are totally ordered;
/// comparing ticks from different clocks is meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(u64);

impl Tick {
    /// The clock's creation instant.
    pub const ZERO: Tick = Tick(0);

    /// Construct from nanoseconds since clock creation.
    pub const fn from_nanos(n: u64) -> Tick {
        Tick(n)
    }

    /// Nanoseconds since clock creation.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// `self - earlier` as a [`Duration`] (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: Tick) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<Duration> for Tick {
    type Output = Tick;

    fn add(self, d: Duration) -> Tick {
        // u64 nanoseconds cover ~584 years of simulated time; saturate
        // rather than panic on absurd durations.
        Tick(
            self.0
                .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }
}

impl std::fmt::Display for Tick {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.0 as f64 / 1e9)
    }
}

/// Condvar re-check period for virtual sleepers. Short enough that the
/// (rare) bookkeeping gaps cost microseconds, long enough not to spin.
const SHORT_WAIT: Duration = Duration::from_micros(200);

/// If a virtual sleeper sees no progress for this long in real time —
/// a registered participant is stuck in a wait the clock cannot see —
/// it force-advances to the earliest deadline. Guarantees liveness at
/// the price of (bounded) wall time; correct accounting never hits it.
const STALL_ADVANCE: Duration = Duration::from_millis(250);

/// An in-flight message pins virtual time only this long (real time).
/// The pin exists for the handoff race — a receiver blocked on the
/// very channel the message sits in, not yet woken — which resolves in
/// microseconds. A message parked for longer belongs to a receiver that
/// is blocked *elsewhere* (e.g. a barrier arrival queued behind the
/// master's in-progress page fetch) and cannot be consumed until time
/// moves; holding the clock for it would only buy a stall.
const INFLIGHT_GRACE: Duration = Duration::from_micros(500);

/// Per-thread view of the virtual clock it is currently interacting
/// with. One virtual clock per thread at a time; switching clocks
/// (sequential tests) resets the slate for the new clock.
#[derive(Clone, Copy)]
struct ThreadClockTls {
    clock_id: u64,
    registered: bool,
    blocked_depth: u32,
}

thread_local! {
    static TLS: Cell<ThreadClockTls> = const {
        Cell::new(ThreadClockTls {
            clock_id: 0,
            registered: false,
            blocked_depth: 0,
        })
    };
}

fn tls_for(clock_id: u64) -> ThreadClockTls {
    let t = TLS.get();
    if t.clock_id == clock_id {
        t
    } else {
        ThreadClockTls {
            clock_id,
            registered: false,
            blocked_depth: 0,
        }
    }
}

static NEXT_CLOCK_ID: AtomicU64 = AtomicU64::new(1);

/// Shared state of one virtual time source.
#[derive(Debug)]
struct VState {
    /// Virtual now, in nanoseconds.
    now: u64,
    /// Pending deadlines (sleepers + armed alarms), with multiplicity.
    deadlines: BTreeMap<u64, usize>,
    /// Threads whose *running* state must hold virtual time still:
    /// registered participants plus transient ones (sleepers and
    /// `blocked` scopes of unregistered threads).
    participants: usize,
    /// How many of the participants are currently blocked.
    blocked: usize,
    /// Messages sent but not yet picked up by their receiver.
    inflight: usize,
    /// Real instant of the last change to `inflight` (see
    /// [`INFLIGHT_GRACE`]).
    inflight_changed: Instant,
}

impl VState {
    fn add_deadline(&mut self, t: u64) {
        *self.deadlines.entry(t).or_insert(0) += 1;
    }

    fn remove_deadline(&mut self, t: u64) {
        if let Some(c) = self.deadlines.get_mut(&t) {
            *c -= 1;
            if *c == 0 {
                self.deadlines.remove(&t);
            }
        }
    }

    fn earliest(&self) -> Option<u64> {
        self.deadlines.keys().next().copied()
    }

    /// Every thread the clock can see is blocked.
    fn runnable_quiescent(&self) -> bool {
        self.participants > 0 && self.blocked >= self.participants
    }

    /// Nobody is running and nothing is in flight: the simulation can
    /// only make progress by moving time forward.
    fn quiescent(&self) -> bool {
        self.runnable_quiescent() && self.inflight == 0
    }

    /// Advance to the earliest pending deadline if quiescent.
    /// Returns whether `now` moved.
    fn advance_if_quiescent(&mut self) -> bool {
        if !self.quiescent() {
            return false;
        }
        match self.earliest() {
            Some(e) if e > self.now => {
                self.now = e;
                true
            }
            _ => false,
        }
    }
}

#[derive(Debug)]
struct VirtualCore {
    id: u64,
    state: Mutex<VState>,
    cv: Condvar,
}

impl VirtualCore {
    fn new() -> Arc<Self> {
        Arc::new(VirtualCore {
            id: NEXT_CLOCK_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(VState {
                now: 0,
                deadlines: BTreeMap::new(),
                participants: 0,
                blocked: 0,
                inflight: 0,
                inflight_changed: Instant::now(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Enter a blocked scope for the calling thread (outermost only).
    /// Returns `(marked, transient)` for the matching exit.
    fn enter_blocked(&self, st: &mut VState) -> (bool, bool) {
        let mut t = tls_for(self.id);
        t.blocked_depth += 1;
        TLS.set(t);
        if t.blocked_depth > 1 {
            return (false, false);
        }
        let transient = !t.registered;
        if transient {
            st.participants += 1;
        }
        st.blocked += 1;
        if st.advance_if_quiescent() {
            self.cv.notify_all();
        }
        (true, transient)
    }

    fn exit_blocked(&self, st: &mut VState, marked: bool, transient: bool) {
        let mut t = tls_for(self.id);
        t.blocked_depth = t.blocked_depth.saturating_sub(1);
        TLS.set(t);
        if !marked {
            return;
        }
        st.blocked = st.blocked.saturating_sub(1);
        if transient {
            st.participants = st.participants.saturating_sub(1);
            // The departing transient participant may have been the
            // last runnable one from the clock's point of view.
            if st.advance_if_quiescent() {
                self.cv.notify_all();
            }
        }
    }

    /// Block until virtual `now >= deadline` or `cancelled` flips.
    /// Returns `true` when the deadline was reached. `owns_slot`:
    /// whether this call should add/remove the deadline entry itself
    /// (alarms pre-register theirs at creation).
    fn wait_deadline(
        &self,
        deadline: u64,
        cancelled: Option<&AtomicBool>,
        owns_slot: bool,
    ) -> bool {
        let mut st = self.state.lock();
        if st.now >= deadline {
            return true;
        }
        if let Some(c) = cancelled {
            if c.load(Ordering::Acquire) {
                return false;
            }
        }
        if owns_slot {
            st.add_deadline(deadline);
        }
        let (marked, transient) = self.enter_blocked(&mut st);
        let mut seen = st.now;
        let mut stall = Instant::now();
        let fired = loop {
            if st.now >= deadline {
                break true;
            }
            if let Some(c) = cancelled {
                if c.load(Ordering::Acquire) {
                    break false;
                }
            }
            if st.advance_if_quiescent() {
                self.cv.notify_all();
                continue;
            }
            let timed_out = self.cv.wait_for(&mut st, SHORT_WAIT).timed_out();
            if st.now != seen {
                seen = st.now;
                stall = Instant::now();
                continue;
            }
            if !timed_out {
                continue;
            }
            // Everyone is blocked but a message is parked for a
            // receiver that is blocked elsewhere: after the handoff
            // grace, the message cannot move until time does.
            let stale_inflight = st.runnable_quiescent()
                && st.inflight > 0
                && st.inflight_changed.elapsed() >= INFLIGHT_GRACE;
            // Liveness fallback: somebody the clock can see is in a
            // wait it cannot see. Step to the earliest deadline.
            if stale_inflight || stall.elapsed() >= STALL_ADVANCE {
                if let Some(e) = st.earliest() {
                    if e > st.now {
                        st.now = e;
                        self.cv.notify_all();
                    }
                }
                seen = st.now;
                stall = Instant::now();
            }
        };
        if owns_slot {
            st.remove_deadline(deadline);
        }
        self.exit_blocked(&mut st, marked, transient);
        fired
    }

    /// Remove a pre-registered deadline (cancelled alarm) and let any
    /// quiescent sleepers re-evaluate the earliest deadline.
    fn release_slot(&self, deadline: u64) {
        let mut st = self.state.lock();
        st.remove_deadline(deadline);
        st.advance_if_quiescent();
        self.cv.notify_all();
    }
}

#[derive(Debug, Clone)]
enum Backend {
    /// Wall time: an `Instant` origin plus `precise_sleep`.
    Real(Instant),
    /// Shared discrete-event time source.
    Virtual(Arc<VirtualCore>),
}

/// A time source handle. Cheap to clone; clones share the timeline.
///
/// See the [module docs](self) for the virtual backend's semantics.
#[derive(Debug, Clone)]
pub struct Clock {
    backend: Backend,
}

impl Clock {
    /// A wall-clock backend (the pre-existing hybrid sleep+spin
    /// behavior). The default everywhere.
    pub fn real() -> Clock {
        Clock {
            backend: Backend::Real(Instant::now()),
        }
    }

    /// A fresh virtual (discrete-event) time source starting at
    /// [`Tick::ZERO`].
    pub fn new_virtual() -> Clock {
        Clock {
            backend: Backend::Virtual(VirtualCore::new()),
        }
    }

    /// Pick a backend from the `NOWMP_CLOCK` environment variable:
    /// `virtual` (or `sim`) yields a fresh virtual clock, anything else
    /// the real clock. Each call makes a *new* clock — share one
    /// simulation's clock by cloning the handle, not by calling this
    /// twice.
    pub fn from_env() -> Clock {
        match std::env::var("NOWMP_CLOCK").as_deref() {
            Ok("virtual") | Ok("sim") => Clock::new_virtual(),
            _ => Clock::real(),
        }
    }

    /// Is this the virtual backend?
    pub fn is_virtual(&self) -> bool {
        matches!(self.backend, Backend::Virtual(_))
    }

    /// Current time on this clock's timeline.
    pub fn now(&self) -> Tick {
        match &self.backend {
            Backend::Real(origin) => Tick(origin.elapsed().as_nanos().min(u64::MAX as u128) as u64),
            Backend::Virtual(core) => Tick(core.state.lock().now),
        }
    }

    /// Time elapsed since `earlier` (zero if `earlier` is in the future).
    pub fn elapsed_since(&self, earlier: Tick) -> Duration {
        self.now().saturating_since(earlier)
    }

    /// Sleep for `d` on this clock's timeline.
    pub fn sleep(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        match &self.backend {
            Backend::Real(_) => precise_sleep(d),
            Backend::Virtual(core) => {
                let deadline = self.now() + d;
                core.wait_deadline(deadline.0, None, true);
            }
        }
    }

    /// Sleep until `deadline` on this clock's timeline (no-op if past).
    pub fn sleep_until(&self, deadline: Tick) {
        match &self.backend {
            Backend::Real(origin) => {
                let now = origin.elapsed();
                let target = Duration::from_nanos(deadline.0);
                if target > now {
                    precise_sleep(target - now);
                }
            }
            Backend::Virtual(core) => {
                core.wait_deadline(deadline.0, None, true);
            }
        }
    }

    /// Register the calling thread as a long-lived simulation
    /// participant: while it runs, virtual time holds still. Returns a
    /// guard; drop it (on the same thread) to deregister. No-op on the
    /// real backend, and idempotent per thread.
    pub fn participant(&self) -> ParticipantGuard {
        if let Backend::Virtual(core) = &self.backend {
            let mut t = tls_for(core.id);
            if !t.registered {
                t.registered = true;
                TLS.set(t);
                core.state.lock().participants += 1;
                return ParticipantGuard {
                    core: Some(Arc::clone(core)),
                };
            }
        }
        ParticipantGuard { core: None }
    }

    /// Run `f` — an external wait the clock cannot see (channel recv,
    /// contended lock) — with the calling thread marked blocked, so a
    /// quiescent simulation can advance past it. No-op wrapper on the
    /// real backend.
    pub fn blocked<R>(&self, f: impl FnOnce() -> R) -> R {
        let Backend::Virtual(core) = &self.backend else {
            return f();
        };
        let (marked, transient) = {
            let mut st = core.state.lock();
            core.enter_blocked(&mut st)
        };
        let r = f();
        {
            let mut st = core.state.lock();
            core.exit_blocked(&mut st, marked, transient);
        }
        r
    }

    /// Account one message handed to a channel: the clock must not
    /// advance past a receiver that has work queued. Pair with
    /// [`Clock::msg_received`]. No-op on the real backend.
    pub fn msg_sent(&self) {
        if let Backend::Virtual(core) = &self.backend {
            let mut st = core.state.lock();
            st.inflight += 1;
            st.inflight_changed = Instant::now();
        }
    }

    /// Account one message taken off a channel (see [`Clock::msg_sent`]).
    pub fn msg_received(&self) {
        if let Backend::Virtual(core) = &self.backend {
            let mut st = core.state.lock();
            st.inflight = st.inflight.saturating_sub(1);
            st.inflight_changed = Instant::now();
            if st.advance_if_quiescent() {
                core.cv.notify_all();
            }
        }
    }

    /// Raise virtual `now` to `target` (never backwards) and wake any
    /// quiescent sleepers. This is the bridge an *event-driven* engine
    /// uses: a [`TaskScheduler`] owns the authoritative simulated time
    /// of its hosts, and mirrors it onto the shared clock so that
    /// timestamps taken through [`Clock::now`] (event logs, stopwatch
    /// spans) track engine time. No-op on the real backend.
    pub fn advance_to(&self, target: Tick) {
        if let Backend::Virtual(core) = &self.backend {
            let mut st = core.state.lock();
            if target.0 > st.now {
                st.now = target.0;
                core.cv.notify_all();
            }
        }
    }

    /// Arm a cancellable deadline `after` from now. The alarm's
    /// deadline is pending from this moment (it holds back virtual
    /// advance past it) even before anyone waits on it.
    pub fn alarm(&self, after: Duration) -> Alarm {
        let deadline = self.now() + after;
        if let Backend::Virtual(core) = &self.backend {
            core.state.lock().add_deadline(deadline.0);
        }
        Alarm {
            inner: Arc::new(AlarmInner {
                clock: self.clone(),
                deadline,
                cancelled: AtomicBool::new(false),
                slot_released: AtomicBool::new(false),
                real: Mutex::new(()),
                cv: Condvar::new(),
            }),
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

/// Guard from [`Clock::participant`]; deregisters on drop.
#[derive(Debug)]
pub struct ParticipantGuard {
    core: Option<Arc<VirtualCore>>,
}

impl Drop for ParticipantGuard {
    fn drop(&mut self) {
        if let Some(core) = self.core.take() {
            let mut t = tls_for(core.id);
            if t.registered {
                t.registered = false;
                TLS.set(t);
            }
            let mut st = core.state.lock();
            st.participants = st.participants.saturating_sub(1);
            if st.advance_if_quiescent() {
                core.cv.notify_all();
            }
        }
    }
}

struct AlarmInner {
    clock: Clock,
    deadline: Tick,
    cancelled: AtomicBool,
    /// Virtual backend: whoever flips this releases the heap slot.
    slot_released: AtomicBool,
    real: Mutex<()>,
    cv: Condvar,
}

impl Drop for AlarmInner {
    fn drop(&mut self) {
        // An alarm dropped without `wait`/`cancel` must still release
        // its pre-registered deadline slot: a stale entry at or before
        // `now` would otherwise pin `earliest()` and wedge every future
        // virtual advance.
        if let Backend::Virtual(core) = &self.clock.backend {
            if !self.slot_released.swap(true, Ordering::AcqRel) {
                core.release_slot(self.deadline.0);
            }
        }
    }
}

/// A waitable, cancellable deadline from [`Clock::alarm`] — the shape
/// of a grace-period timer. Clone freely; clones share the deadline.
#[derive(Clone)]
pub struct Alarm {
    inner: Arc<AlarmInner>,
}

impl Alarm {
    /// The armed deadline.
    pub fn deadline(&self) -> Tick {
        self.inner.deadline
    }

    /// Has [`Alarm::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Block until the deadline passes (returns `true`) or the alarm is
    /// cancelled (returns `false`).
    pub fn wait(&self) -> bool {
        let inner = &*self.inner;
        match &inner.clock.backend {
            Backend::Real(origin) => {
                let mut g = inner.real.lock();
                loop {
                    if inner.cancelled.load(Ordering::Acquire) {
                        return false;
                    }
                    let now = origin.elapsed();
                    let target = Duration::from_nanos(inner.deadline.0);
                    if now >= target {
                        return true;
                    }
                    inner.cv.wait_for(&mut g, target - now);
                }
            }
            Backend::Virtual(core) => {
                let fired = core.wait_deadline(inner.deadline.0, Some(&inner.cancelled), false);
                if !inner.slot_released.swap(true, Ordering::AcqRel) {
                    core.release_slot(inner.deadline.0);
                }
                fired
            }
        }
    }

    /// Cancel the alarm: wakes any waiter (which returns `false`) and —
    /// on the virtual backend — withdraws the pending deadline so the
    /// clock no longer advances toward it. Idempotent.
    pub fn cancel(&self) {
        let inner = &*self.inner;
        if inner.cancelled.swap(true, Ordering::AcqRel) {
            return;
        }
        match &inner.clock.backend {
            Backend::Real(_) => {
                let _g = inner.real.lock();
                inner.cv.notify_all();
            }
            Backend::Virtual(core) => {
                if !inner.slot_released.swap(true, Ordering::AcqRel) {
                    core.release_slot(inner.deadline.0);
                } else {
                    core.cv.notify_all();
                }
            }
        }
    }
}

impl std::fmt::Debug for Alarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Alarm")
            .field("deadline", &self.inner.deadline)
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// Identity of one schedulable task in a [`TaskScheduler`] — typically
/// one simulated host. Dense small integers; the engine owns the
/// mapping to host state.
pub type TaskId = usize;

/// The run-queue companion to the deadline set: a single-owner
/// discrete-event scheduler for *resumable tasks* instead of parked
/// threads.
///
/// The virtual [`Clock`] advances time for **threads** — each sleeper
/// is a stack parked in `wait_deadline`, and quiescence detection must
/// reason about what every OS thread is doing. A `TaskScheduler`
/// inverts that: host state lives in plain data (the engine's resumable
/// state enums), and this structure only decides *which task runs next
/// and what time it is*. No threads, no condvars, no liveness
/// heuristics — the owner calls [`TaskScheduler::next`] in a loop.
///
/// Two pools, one discipline:
///
/// * the **run queue** holds tasks runnable *now* (a delivery landed, a
///   barrier released them) — FIFO, so same-tick wakeups resume in the
///   order they were made ready, which is what keeps event order
///   deterministic;
/// * the **deadline set** holds tasks parked until a future tick
///   (compute charges, grace timers) — ordered by `(tick, arm order)`,
///   so simultaneous deadlines also fire in arm order.
///
/// [`TaskScheduler::next`] drains the run queue before it ever moves
/// time; only when no task is runnable does `now` jump to the earliest
/// deadline. Liveness rule: every parked task is in exactly one pool,
/// so the loop terminates iff every task eventually reaches a state
/// with no pending wakeup — a stuck simulation surfaces as
/// [`TaskScheduler::next`] returning `None` with tasks still parked,
/// which the engine can assert on, rather than as a hung thread.
#[derive(Debug, Default)]
pub struct TaskScheduler {
    /// Simulated now. Only [`TaskScheduler::next`] moves it forward.
    now: Tick,
    /// Tasks runnable at `now`, in wakeup order.
    run: VecDeque<TaskId>,
    /// Tasks parked until a tick: `(deadline, arm-seq) -> task`.
    deadlines: BTreeMap<(u64, u64), TaskId>,
    /// Monotonic arm counter breaking same-tick ties by arm order.
    seq: u64,
}

impl TaskScheduler {
    /// An empty scheduler at [`Tick::ZERO`].
    pub fn new() -> TaskScheduler {
        TaskScheduler::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Make `task` runnable now (appended to the run queue).
    pub fn ready(&mut self, task: TaskId) {
        self.run.push_back(task);
    }

    /// Park `task` until `deadline`. A deadline at or before `now` is
    /// *not* promoted to the run queue — it still fires after every
    /// currently-runnable task, keeping "ready now" and "due now"
    /// distinguishable (delivery wakeups beat expiring timers).
    /// Returns a key for [`TaskScheduler::cancel`].
    pub fn park_until(&mut self, task: TaskId, deadline: Tick) -> (u64, u64) {
        let key = (deadline.0, self.seq);
        self.seq += 1;
        self.deadlines.insert(key, task);
        key
    }

    /// Withdraw a parked deadline (a cancelled grace timer). Returns
    /// whether the entry was still pending.
    pub fn cancel(&mut self, key: (u64, u64)) -> bool {
        self.deadlines.remove(&key).is_some()
    }

    /// Next task to resume, advancing `now` if the run queue is empty:
    /// run-queue FIFO first, then the earliest `(tick, arm-seq)`
    /// deadline with `now` raised to its tick. `None` means no task is
    /// runnable or parked — the simulation is finished (or wedged, if
    /// the engine still holds tasks it believes are waiting).
    ///
    /// Deliberately *not* `Iterator::next`: advancing simulated time as
    /// a side effect has no business in `for` loops or adapters.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Tick, TaskId)> {
        if let Some(t) = self.run.pop_front() {
            return Some((self.now, t));
        }
        let (&key, &task) = self.deadlines.iter().next()?;
        self.deadlines.remove(&key);
        if key.0 > self.now.0 {
            self.now = Tick(key.0);
        }
        Some((self.now, task))
    }

    /// Earliest pending deadline, if any (the run queue not included).
    pub fn earliest_deadline(&self) -> Option<Tick> {
        self.deadlines.keys().next().map(|&(t, _)| Tick(t))
    }

    /// Nothing runnable and nothing parked.
    pub fn is_idle(&self) -> bool {
        self.run.is_empty() && self.deadlines.is_empty()
    }

    /// Runnable + parked task count (with multiplicity).
    pub fn pending(&self) -> usize {
        self.run.len() + self.deadlines.len()
    }

    /// Raise `now` directly (never backwards) — used when the engine
    /// accounts time outside the deadline set, e.g. a barrier
    /// completion computed as a max over arrivals.
    pub fn advance_to(&mut self, target: Tick) {
        if target > self.now {
            self.now = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn real_clock_tracks_wall_time() {
        let c = Clock::real();
        let t0 = c.now();
        c.sleep(Duration::from_micros(300));
        let e = c.elapsed_since(t0);
        assert!(e >= Duration::from_micros(300), "{e:?}");
    }

    #[test]
    fn virtual_sleep_is_exact_and_instant() {
        let c = Clock::new_virtual();
        let wall = Instant::now();
        let t0 = c.now();
        c.sleep(Duration::from_secs(3600)); // one simulated hour
        assert_eq!(c.elapsed_since(t0), Duration::from_secs(3600));
        assert!(
            wall.elapsed() < Duration::from_millis(200),
            "virtual hour took {:?} of wall time",
            wall.elapsed()
        );
    }

    /// The single-shot oversleep budget that wall time could never
    /// guarantee (see the note in `crate::timing`'s tests): on the
    /// virtual backend the 2 ms budget holds by construction — a
    /// virtual sleep is *exact*.
    #[test]
    fn virtual_sleep_single_shot_strict() {
        let c = Clock::new_virtual();
        for &us in &[100u64, 500, 1500] {
            let d = Duration::from_micros(us);
            let t = c.now();
            c.sleep(d);
            let e = c.elapsed_since(t);
            assert!(e >= d, "slept {e:?} < requested {d:?}");
            assert!(
                e < d + Duration::from_millis(2),
                "slept {e:?} for request {d:?}"
            );
            assert_eq!(e, d, "virtual sleep is exact");
        }
    }

    /// Same single-shot strictness for [`Clock::alarm`]: a waited
    /// alarm fires at *exactly* its deadline (the 2 ms oversleep
    /// budget holds as equality), a cancelled alarm neither fires nor
    /// drags time forward to its deadline, and a dropped alarm
    /// releases its pre-registered slot instead of wedging advance.
    #[test]
    fn virtual_alarm_single_shot_strict() {
        let c = Clock::new_virtual();
        for &us in &[100u64, 500, 1500] {
            let d = Duration::from_micros(us);
            let t = c.now();
            let a = c.alarm(d);
            assert!(a.wait(), "uncancelled alarm must fire");
            let e = c.elapsed_since(t);
            assert!(
                e < d + Duration::from_millis(2),
                "alarm overslept: {e:?} for request {d:?}"
            );
            assert_eq!(e, d, "virtual alarm fires exactly at its deadline");
        }
        // Cancellation: the waiter reports it, and the withdrawn
        // deadline no longer pulls the clock forward.
        let t = c.now();
        let a = c.alarm(Duration::from_secs(3600));
        a.cancel();
        assert!(!a.wait(), "cancelled alarm must not fire");
        assert!(a.is_cancelled());
        assert_eq!(c.elapsed_since(t), Duration::ZERO);
        // Drop without wait/cancel: the slot is released, so a later
        // sleep past the abandoned deadline still advances.
        drop(c.alarm(Duration::from_micros(50)));
        let t = c.now();
        c.sleep(Duration::from_micros(200));
        assert_eq!(c.elapsed_since(t), Duration::from_micros(200));
    }

    #[test]
    fn tick_arithmetic() {
        let t = Tick::from_nanos(500);
        let u = t + Duration::from_nanos(250);
        assert_eq!(u.as_nanos(), 750);
        assert_eq!(u.saturating_since(t), Duration::from_nanos(250));
        assert_eq!(t.saturating_since(u), Duration::ZERO);
        assert_eq!(format!("{}", Tick::from_nanos(1_500_000_000)), "1.500000s");
    }

    #[test]
    fn concurrent_virtual_sleepers_wake_in_deadline_order() {
        let c = Clock::new_virtual();
        let order = Arc::new(Mutex::new(Vec::new()));
        // All sleepers register before any of them sleeps (the barrier
        // models long-lived simulation threads that exist before the
        // first deadline); otherwise an early solo sleeper is already a
        // quiescent simulation and legitimately advances on its own.
        let barrier = Arc::new(std::sync::Barrier::new(3));
        let mut handles = Vec::new();
        for (label, ms) in [(2u32, 20u64), (0, 5), (1, 10)] {
            let c = c.clone();
            let order = Arc::clone(&order);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let _p = c.participant();
                barrier.wait();
                c.sleep(Duration::from_millis(ms));
                order.lock().push(label);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn blocked_scope_lets_time_advance() {
        let c = Clock::new_virtual();
        let (tx, rx) = crossbeam_channel::bounded::<u64>(1);
        let c2 = c.clone();
        // A registered receiver parked in a clock-visible wait.
        let h = std::thread::spawn(move || {
            let _p = c2.participant();
            let v = c2.blocked(|| rx.recv().unwrap());
            c2.msg_received();
            v
        });
        // The sleeper advances instantly because the receiver is
        // visibly blocked and nothing is in flight.
        let wall = Instant::now();
        let t0 = c.now();
        c.sleep(Duration::from_secs(5));
        assert_eq!(c.elapsed_since(t0), Duration::from_secs(5));
        assert!(wall.elapsed() < Duration::from_millis(200));
        c.msg_sent();
        tx.send(c.now().as_nanos()).unwrap();
        assert!(h.join().unwrap() >= 5_000_000_000);
    }

    #[test]
    fn inflight_message_blocks_advance() {
        let c = Clock::new_virtual();
        let (tx, rx) = crossbeam_channel::bounded::<()>(1);
        // One queued, unclaimed message: the clock must not advance.
        c.msg_sent();
        tx.send(()).unwrap();
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            let _p = c2.participant();
            c2.blocked(|| ())
        });
        h.join().unwrap();
        {
            let Backend::Virtual(core) = &c.backend else {
                unreachable!()
            };
            let mut st = core.state.lock();
            st.add_deadline(1_000);
            assert!(
                !st.advance_if_quiescent(),
                "in-flight message must pin time"
            );
            st.remove_deadline(1_000);
        }
        rx.recv().unwrap();
        c.msg_received();
    }

    #[test]
    fn registered_running_thread_pins_time_until_stall() {
        // A registered participant that is running (not blocked) holds
        // virtual time still; the sleeper only gets released by the
        // stall fallback. This is the liveness guarantee.
        let c = Clock::new_virtual();
        let c2 = c.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let ready = Arc::new(AtomicBool::new(false));
        let ready2 = Arc::clone(&ready);
        let h = std::thread::spawn(move || {
            let _p = c2.participant();
            ready2.store(true, Ordering::Release);
            while !stop2.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        });
        // The sleep below must observe a *registered* runner, or it
        // advances instantly against an empty participant set.
        while !ready.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        let wall = Instant::now();
        c.sleep(Duration::from_millis(1));
        // The 1 ms virtual sleep had to ride the stall fallback.
        assert!(wall.elapsed() >= STALL_ADVANCE, "{:?}", wall.elapsed());
        stop.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }

    #[test]
    fn alarm_fires_at_deadline() {
        let c = Clock::new_virtual();
        let a = c.alarm(Duration::from_secs(3));
        let fired = Arc::new(AtomicUsize::new(0));
        let (a2, f2) = (a.clone(), Arc::clone(&fired));
        let h = std::thread::spawn(move || {
            if a2.wait() {
                f2.store(1, Ordering::SeqCst);
            }
        });
        h.join().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(c.now(), Tick::ZERO + Duration::from_secs(3));
    }

    #[test]
    fn alarm_cancel_wakes_waiter_and_releases_deadline() {
        let c = Clock::new_virtual();
        // Register this thread: while it runs, virtual time holds
        // still, so the waiter cannot see the alarm fire before the
        // cancel lands (the master-thread situation in the cluster).
        let _p = c.participant();
        let a = c.alarm(Duration::from_secs(30));
        let a2 = a.clone();
        let h = std::thread::spawn(move || a2.wait());
        // Give the waiter a moment to park, then cancel.
        std::thread::sleep(Duration::from_millis(5));
        a.cancel();
        assert!(!h.join().unwrap(), "cancelled alarm must not fire");
        // The 30 s deadline is withdrawn: a 1 s sleep lands at 1 s.
        c.sleep(Duration::from_secs(1));
        assert_eq!(c.now(), Tick::ZERO + Duration::from_secs(1));
    }

    #[test]
    fn dropped_alarm_releases_its_deadline() {
        let c = Clock::new_virtual();
        {
            let _a = c.alarm(Duration::from_millis(1));
            // Dropped without wait() or cancel(): the pre-registered
            // slot must be released, or — once now reaches it — the
            // stale entry would pin earliest() and wedge every future
            // advance (this test would hang, not fail).
        }
        c.sleep(Duration::from_secs(2));
        assert_eq!(c.now(), Tick::ZERO + Duration::from_secs(2));
    }

    #[test]
    fn alarm_on_real_clock_cancels() {
        let c = Clock::real();
        let a = c.alarm(Duration::from_secs(60));
        let a2 = a.clone();
        let h = std::thread::spawn(move || a2.wait());
        std::thread::sleep(Duration::from_millis(5));
        a.cancel();
        assert!(!h.join().unwrap());
        // And an already-expired real alarm fires immediately.
        let b = c.alarm(Duration::ZERO);
        assert!(b.wait());
    }

    #[test]
    fn from_env_defaults_to_real() {
        // NOWMP_CLOCK may legitimately be set (the CI virtual job runs
        // the whole suite that way); just assert the call works and the
        // backend matches the environment.
        let c = Clock::from_env();
        let want_virtual = matches!(
            std::env::var("NOWMP_CLOCK").as_deref(),
            Ok("virtual") | Ok("sim")
        );
        assert_eq!(c.is_virtual(), want_virtual);
    }

    #[test]
    fn advance_to_raises_virtual_now_monotonically() {
        let c = Clock::new_virtual();
        c.advance_to(Tick::from_nanos(5_000));
        assert_eq!(c.now(), Tick::from_nanos(5_000));
        // Never backwards.
        c.advance_to(Tick::from_nanos(1_000));
        assert_eq!(c.now(), Tick::from_nanos(5_000));
        // No-op on the real backend.
        let r = Clock::real();
        r.advance_to(Tick::from_nanos(u64::MAX / 2));
        assert!(r.now() < Tick::from_nanos(u64::MAX / 4));
    }

    #[test]
    fn advance_to_wakes_virtual_sleepers() {
        let c = Clock::new_virtual();
        let c2 = c.clone();
        // A registered spinner pins time, so the sleeper cannot advance
        // on its own; only the explicit advance_to can release it
        // before the stall fallback.
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let ready = Arc::new(AtomicBool::new(false));
        let ready2 = Arc::clone(&ready);
        let pin = std::thread::spawn(move || {
            let _p = c2.participant();
            ready2.store(true, Ordering::Release);
            while !stop2.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        });
        while !ready.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        let c3 = c.clone();
        let sleeper = std::thread::spawn(move || {
            let wall = Instant::now();
            c3.sleep_until(Tick::from_nanos(1_000_000));
            wall.elapsed()
        });
        std::thread::sleep(Duration::from_millis(5));
        c.advance_to(Tick::from_nanos(2_000_000));
        let woke_in = sleeper.join().unwrap();
        assert!(woke_in < STALL_ADVANCE, "sleeper waited {woke_in:?}");
        stop.store(true, Ordering::Relaxed);
        pin.join().unwrap();
    }

    #[test]
    fn task_scheduler_run_queue_is_fifo_and_beats_deadlines() {
        let mut s = TaskScheduler::new();
        s.park_until(9, Tick::ZERO); // due "now", but not *ready* now
        s.ready(1);
        s.ready(2);
        assert_eq!(s.pending(), 3);
        assert_eq!(s.next(), Some((Tick::ZERO, 1)));
        assert_eq!(s.next(), Some((Tick::ZERO, 2)));
        assert_eq!(s.next(), Some((Tick::ZERO, 9)));
        assert!(s.is_idle());
        assert_eq!(s.next(), None);
    }

    #[test]
    fn task_scheduler_deadlines_fire_in_tick_then_arm_order() {
        let mut s = TaskScheduler::new();
        s.park_until(3, Tick::from_nanos(300));
        s.park_until(1, Tick::from_nanos(100));
        s.park_until(2, Tick::from_nanos(100)); // same tick, armed later
        assert_eq!(s.earliest_deadline(), Some(Tick::from_nanos(100)));
        assert_eq!(s.next(), Some((Tick::from_nanos(100), 1)));
        assert_eq!(s.next(), Some((Tick::from_nanos(100), 2)));
        assert_eq!(s.now(), Tick::from_nanos(100));
        assert_eq!(s.next(), Some((Tick::from_nanos(300), 3)));
        assert_eq!(s.now(), Tick::from_nanos(300));
    }

    #[test]
    fn task_scheduler_cancel_withdraws_parked_deadline() {
        let mut s = TaskScheduler::new();
        let k = s.park_until(7, Tick::from_nanos(50));
        s.park_until(8, Tick::from_nanos(80));
        assert!(s.cancel(k));
        assert!(!s.cancel(k), "double cancel reports not-pending");
        assert_eq!(s.next(), Some((Tick::from_nanos(80), 8)));
        assert_eq!(s.next(), None);
        // now does not regress via advance_to either.
        s.advance_to(Tick::from_nanos(40));
        assert_eq!(s.now(), Tick::from_nanos(80));
    }

    #[test]
    fn task_scheduler_interleaves_wakeups_with_time() {
        // A delivery (ready) made while a deadline is pending runs
        // before time moves — the engine's park/resume protocol.
        let mut s = TaskScheduler::new();
        s.park_until(1, Tick::from_nanos(500));
        s.ready(2);
        assert_eq!(s.next(), Some((Tick::ZERO, 2)));
        s.advance_to(Tick::from_nanos(200));
        s.ready(2);
        assert_eq!(s.next(), Some((Tick::from_nanos(200), 2)));
        assert_eq!(s.next(), Some((Tick::from_nanos(500), 1)));
    }

    #[test]
    fn participant_is_idempotent_per_thread() {
        let c = Clock::new_virtual();
        let g1 = c.participant();
        let g2 = c.participant();
        {
            let Backend::Virtual(core) = &c.backend else {
                unreachable!()
            };
            assert_eq!(core.state.lock().participants, 1);
        }
        drop(g2);
        drop(g1);
        let Backend::Virtual(core) = &c.backend else {
            unreachable!()
        };
        assert_eq!(core.state.lock().participants, 0);
    }
}
