//! # nowmp-util
//!
//! Utility substrate shared by every `nowmp` crate.
//!
//! The 1999 system this workspace reproduces (adaptive TreadMarks under an
//! OpenMP frontend) hand-rolled its message formats over UDP and its
//! checkpoint file format over `write(2)`. We keep that spirit: instead of
//! pulling in a serialization framework, this crate provides
//!
//! * [`wire`] — a small, explicit binary codec ([`wire::Enc`] / [`wire::Dec`])
//!   and the [`wire::Wire`] trait every protocol message implements;
//! * [`crc`] — CRC-32 (IEEE) used to protect checkpoint files;
//! * [`zrle`] — zero-run-length encoding used to compress shared-memory
//!   pages in checkpoints and migration images (scientific arrays are
//!   zero-dominated early in a run);
//! * [`lock`] — a [`lock::SpinLock`] with typestate [`lock::LockGuard`]s
//!   (the xv6-style discipline: data reachable only through the guard),
//!   used for sharded hot-path state like the tmk page-table shards;
//! * [`sem`] — a counting semaphore (CPU-slot accounting on simulated
//!   hosts, i.e. the multiplexing of an urgently-migrated process);
//! * [`timing`] — precise sleeping for the network cost emulation and a
//!   few stopwatch helpers;
//! * [`clock`] — the [`clock::Clock`] abstraction every layer tells
//!   time by: a wall-clock backend and a deterministic discrete-event
//!   [`clock::Clock::new_virtual`] backend under which emulated delays
//!   cost zero wall time.
//!
//! Everything here is deterministic and fully unit/property tested.

#![warn(missing_docs)]

pub mod clock;
pub mod crc;
pub mod lock;
pub mod sem;
pub mod timing;
pub mod wire;
pub mod zrle;

pub use clock::{Alarm, Clock, ParticipantGuard, TaskId, TaskScheduler, Tick};
pub use crc::crc32;
pub use lock::{LockGuard, SpinLock};
pub use sem::Semaphore;
pub use timing::{precise_sleep, wait_for, Stopwatch};
pub use wire::{Dec, Enc, Encoding, Wire, WireError};

/// Compute the ceiling of `a / b` for positive integers.
///
/// Used throughout iteration partitioning and page-range math.
#[inline]
pub const fn div_ceil(a: usize, b: usize) -> usize {
    if b == 0 {
        0
    } else {
        a.div_ceil(b)
    }
}

/// Format a byte count in a human-friendly unit (B / KB / MB / GB).
pub fn fmt_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.2} MB", b / MB)
    } else if b >= KB {
        format!("{:.2} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
        assert_eq!(div_ceil(8, 4), 2);
        assert_eq!(div_ceil(9, 4), 3);
    }

    #[test]
    fn div_ceil_zero_divisor_is_zero() {
        assert_eq!(div_ceil(10, 0), 0);
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(17), "17 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 * 1024), "5.00 GB");
    }
}
