//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Protects checkpoint files and migration images against corruption, the
//! same role the original `libckpt` delegated to filesystem integrity.

/// Lazily-built 256-entry CRC table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// Compute the CRC-32 of `data` (matches zlib's `crc32(0, data)`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Continue a CRC-32 computation: `crc32_update(crc32(a), b) == crc32(a ++ b)`.
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = !crc;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Incremental CRC-32 hasher for streaming writes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crc32 {
    value: u32,
}

impl Crc32 {
    /// Fresh hasher (CRC of the empty string is 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.value = crc32_update(self.value, data);
    }

    /// Final CRC value.
    pub fn finish(&self) -> u32 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 512];
        data[100] = 42;
        let good = crc32(&data);
        data[100] ^= 0x01;
        assert_ne!(good, crc32(&data));
    }

    proptest! {
        #[test]
        fn prop_split_anywhere(data in proptest::collection::vec(any::<u8>(), 0..300), split in 0usize..300) {
            let split = split.min(data.len());
            let (a, b) = data.split_at(split);
            prop_assert_eq!(crc32_update(crc32(a), b), crc32(&data));
        }
    }
}
