//! Timing helpers for the network cost emulation.
//!
//! The paper's cost constants are in the 60 µs – 1.5 ms range; OS sleep
//! granularity on Linux is tens of microseconds at best. [`precise_sleep`]
//! sleeps most of the interval and spins the remainder so that emulated
//! message latencies are accurate to a few microseconds without burning a
//! whole core for long waits.

use std::time::{Duration, Instant};

/// Sleep for `d` with microsecond-ish precision (hybrid sleep + spin).
///
/// For durations above ~200 µs the bulk is a real `thread::sleep` (leaving
/// the CPU to other simulated processes — important when multiplexing);
/// the final stretch is a spin on `Instant::now()`.
pub fn precise_sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    let deadline = Instant::now() + d;
    // Leave ~150 us of spin slack; sleep the rest.
    const SPIN_SLACK: Duration = Duration::from_micros(150);
    if d > SPIN_SLACK {
        std::thread::sleep(d - SPIN_SLACK);
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Block until `cond` returns `true`, re-checking with a yield/short-
/// sleep backoff, or until the (real-time) `timeout` expires. Returns
/// whether the condition was met.
///
/// This is the replacement for "sleep a magic 30 ms and hope the other
/// thread got there": the wait names its condition, finishes as soon as
/// the condition holds, and the timeout is a deadlock guard rather than
/// a tuning constant.
pub fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    let mut spins = 0u32;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return cond();
        }
        if spins < 100 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(100));
        }
        spins = spins.saturating_add(1);
    }
}

/// Simple stopwatch for harness timing.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start a stopwatch now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in (floating) seconds.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restart and return the lap time.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_sleep_zero_returns_immediately() {
        let t = Instant::now();
        precise_sleep(Duration::ZERO);
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn precise_sleep_hits_target_within_tolerance() {
        for &us in &[100u64, 500, 1500] {
            let d = Duration::from_micros(us);
            // The lower bound is a hard guarantee; the upper bound is
            // load-sensitive, so accept the best of several attempts
            // (a loaded CI box can stall any single sleep).
            let mut best = Duration::MAX;
            for _ in 0..5 {
                let t = Instant::now();
                precise_sleep(d);
                let e = t.elapsed();
                assert!(e >= d, "slept {e:?} < requested {d:?}");
                best = best.min(e);
                if best < d + Duration::from_millis(10) {
                    break;
                }
            }
            assert!(
                best < d + Duration::from_millis(10),
                "best of 5 sleeps {best:?} for request {d:?}"
            );
        }
    }

    // The strict 2 ms single-shot oversleep budget cannot be
    // guaranteed under wall time (any scheduler stall on a loaded box
    // breaks it). It runs as `clock::tests::virtual_sleep_single_shot_strict`
    // — and, for the cancellable-deadline path, as
    // `clock::tests::virtual_alarm_single_shot_strict` — on the
    // virtual backend, where a sleep/alarm is exact by construction.

    #[test]
    fn stopwatch_lap_resets() {
        let mut sw = Stopwatch::start();
        precise_sleep(Duration::from_micros(300));
        let lap1 = sw.lap();
        assert!(lap1 >= Duration::from_micros(300));
        let lap2 = sw.elapsed();
        assert!(lap2 < lap1 + Duration::from_millis(50));
    }
}
