//! Hand-rolled binary wire codec.
//!
//! Every protocol message in `nowmp` (DSM requests, fork/join payloads,
//! adaptation directives, checkpoint records) is encoded with [`Enc`] and
//! decoded with [`Dec`]. All integers are little-endian. Variable-length
//! fields are length-prefixed with a `u32`.
//!
//! The codec is intentionally boring: explicit, allocation-conscious, and
//! with full error reporting on decode (a truncated or corrupt message
//! never panics — it returns [`WireError`]). This mirrors the original
//! TreadMarks, which defined its UDP message layouts by hand.

use bytes::Bytes;
use std::fmt;

/// Error produced when decoding malformed or truncated wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the requested field could be read.
    Truncated {
        /// Bytes needed by the read.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A tag/discriminant byte had no known meaning.
    BadTag {
        /// Context string (message family).
        what: &'static str,
        /// The offending tag value.
        tag: u32,
    },
    /// A length or count field exceeded a sanity bound.
    BadLength {
        /// Context string.
        what: &'static str,
        /// The offending length.
        len: usize,
    },
    /// UTF-8 decoding of a string field failed.
    BadUtf8,
    /// Trailing bytes remained after a complete decode when none were expected.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated wire data: needed {needed} bytes, {remaining} remain"
                )
            }
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            WireError::BadLength { what, len } => write!(f, "bad {what} length {len}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in wire string"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// Which wire form an encoder emits for types that support both a
/// compact and a pre-compaction encoding (e.g. interval-run page sets
/// fall back to flat page lists). Decoders accept either form
/// unconditionally; the choice only pins what a producer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// The pre-compaction 1999 forms (flat page lists) — used by
    /// faithful-reproduction modes whose calibrated cost pins depend
    /// on the original payload sizes.
    Flat,
    /// The compact forms (interval runs where smaller). The default.
    #[default]
    Runs,
}

/// Encoder: append-only byte buffer with typed `put_*` methods.
#[derive(Default, Debug)]
pub struct Enc {
    buf: Vec<u8>,
    encoding: Encoding,
}

impl Enc {
    /// New empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// New encoder with a capacity hint (avoids reallocation on hot paths).
    pub fn with_capacity(cap: usize) -> Self {
        Enc {
            buf: Vec::with_capacity(cap),
            encoding: Encoding::default(),
        }
    }

    /// New encoder with a capacity hint and an explicit [`Encoding`].
    pub fn with_encoding(cap: usize, encoding: Encoding) -> Self {
        Enc {
            buf: Vec::with_capacity(cap),
            encoding,
        }
    }

    /// The selected [`Encoding`].
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u16`, little-endian.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `usize` as `u64` (portable across word sizes).
    #[inline]
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append raw bytes *without* a length prefix.
    #[inline]
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a UTF-8 string with a `u32` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append a `u32` as an LEB128 varint (1 byte below 128, up to 5).
    pub fn put_varu32(&mut self, mut v: u32) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7f) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Append a slice of `u32` with a count prefix.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u32(v.len() as u32);
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Append a slice of `u64` with a count prefix.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u32(v.len() as u32);
        self.put_u64_words(v);
    }

    /// Append a slice of `u64` *without* a count prefix — the bulk
    /// payload path (diff runs, zrle literals). One reservation for the
    /// whole slice; the per-word append then compiles to a straight
    /// store stream instead of `extend` growth checks.
    pub fn put_u64_words(&mut self, v: &[u64]) {
        if let [x] = v {
            // Single-word payloads (scattered diff runs) skip the
            // resize bookkeeping.
            self.buf.extend_from_slice(&x.to_le_bytes());
            return;
        }
        let old = self.buf.len();
        self.buf.resize(old + v.len() * 8, 0);
        for (dst, &x) in self.buf[old..].chunks_exact_mut(8).zip(v) {
            dst.copy_from_slice(&x.to_le_bytes());
        }
    }

    /// Encode a nested `Wire` value (no framing; fields are self-describing).
    pub fn put<W: Wire>(&mut self, v: &W) {
        v.enc(self);
    }

    /// Encode a length-prefixed sequence of `Wire` values.
    pub fn put_seq<W: Wire>(&mut self, vs: &[W]) {
        self.put_u32(vs.len() as u32);
        for v in vs {
            v.enc(self);
        }
    }

    /// Finish, returning the owned buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Finish, returning a cheaply-cloneable [`Bytes`].
    pub fn finish_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Decoder: a cursor over a byte slice with typed `get_*` methods.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Wrap a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless the whole buffer was consumed.
    pub fn expect_done(&self) -> Result<(), WireError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool encoded as one byte.
    #[inline]
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        Ok(self.get_u8()? != 0)
    }

    /// Read a little-endian `u16`.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Read a little-endian `i64`.
    #[inline]
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an IEEE-754 `f64`.
    #[inline]
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `usize` encoded as `u64`.
    #[inline]
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        Ok(self.get_u64()? as usize)
    }

    /// Read an LEB128 varint `u32` (see [`Enc::put_varu32`]).
    pub fn get_varu32(&mut self) -> Result<u32, WireError> {
        let mut v: u32 = 0;
        for shift in (0..35).step_by(7) {
            let b = self.get_u8()?;
            let bits = (b & 0x7f) as u32;
            if shift == 28 && b > 0x0f {
                return Err(WireError::BadLength {
                    what: "varu32",
                    len: b as usize,
                });
            }
            v |= bits << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!("varu32 loop covers all 5 bytes")
    }

    /// Read `n` raw bytes (no prefix).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read a `u32`-length-prefixed byte field.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() {
            return Err(WireError::BadLength {
                what: "bytes",
                len: n,
            });
        }
        self.take(n)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::BadUtf8)
    }

    /// Read a count-prefixed `u32` slice.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(4) > self.remaining() {
            return Err(WireError::BadLength {
                what: "u32 vec",
                len: n,
            });
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_u32()?);
        }
        Ok(v)
    }

    /// Read a count-prefixed `u64` slice.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.get_u32()? as usize;
        if n.saturating_mul(8) > self.remaining() {
            return Err(WireError::BadLength {
                what: "u64 vec",
                len: n,
            });
        }
        let mut v = Vec::with_capacity(n);
        self.get_u64_words_into(&mut v, n)?;
        Ok(v)
    }

    /// Read `n` raw little-endian `u64` words (no prefix) into `out` —
    /// the bulk payload path (diff runs, zrle literals). One bounds
    /// check for the whole span, then a word-at-a-time decode over
    /// `chunks_exact` that the compiler turns into straight 8-byte
    /// loads (no per-word `Result` plumbing).
    pub fn get_u64_words_into(&mut self, out: &mut Vec<u64>, n: usize) -> Result<(), WireError> {
        let raw = self.take(n.saturating_mul(8))?;
        out.reserve(n);
        out.extend(
            raw.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
        );
        Ok(())
    }

    /// Decode a nested `Wire` value.
    pub fn get<W: Wire>(&mut self) -> Result<W, WireError> {
        W::dec(self)
    }

    /// Decode a count-prefixed sequence of `Wire` values.
    pub fn get_seq<W: Wire>(&mut self) -> Result<Vec<W>, WireError> {
        let n = self.get_u32()? as usize;
        // Each element takes at least one byte; reject absurd counts early.
        if n > self.remaining().saturating_add(1).saturating_mul(8) {
            return Err(WireError::BadLength {
                what: "seq",
                len: n,
            });
        }
        let mut v = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            v.push(W::dec(self)?);
        }
        Ok(v)
    }
}

/// Types that can be encoded to / decoded from the wire.
pub trait Wire: Sized {
    /// Append this value's encoding to `e`.
    fn enc(&self, e: &mut Enc);
    /// Decode a value from `d`.
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError>;

    /// Convenience: encode into a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut e = Enc::new();
        self.enc(&mut e);
        e.finish()
    }

    /// Convenience: decode from a complete byte slice, requiring full consumption.
    fn from_wire(buf: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(buf);
        let v = Self::dec(&mut d)?;
        d.expect_done()?;
        Ok(v)
    }
}

impl Wire for u32 {
    fn enc(&self, e: &mut Enc) {
        e.put_u32(*self);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        d.get_u32()
    }
}

impl Wire for u64 {
    fn enc(&self, e: &mut Enc) {
        e.put_u64(*self);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        d.get_u64()
    }
}

impl Wire for f64 {
    fn enc(&self, e: &mut Enc) {
        e.put_f64(*self);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        d.get_f64()
    }
}

impl Wire for String {
    fn enc(&self, e: &mut Enc) {
        e.put_str(self);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(d.get_str()?.to_owned())
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn enc(&self, e: &mut Enc) {
        self.0.enc(e);
        self.1.enc(e);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok((A::dec(d)?, B::dec(d)?))
    }
}

impl<W: Wire> Wire for Vec<W> {
    fn enc(&self, e: &mut Enc) {
        e.put_seq(self);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        d.get_seq()
    }
}

impl<W: Wire> Wire for Option<W> {
    fn enc(&self, e: &mut Enc) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.enc(e);
            }
        }
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        match d.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(W::dec(d)?)),
            t => Err(WireError::BadTag {
                what: "Option",
                tag: t as u32,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.put_u8(0xAB);
        e.put_u16(0xCDEF);
        e.put_u32(0xDEADBEEF);
        e.put_u64(0x0123456789ABCDEF);
        e.put_i64(-42);
        e.put_f64(std::f64::consts::PI);
        e.put_bool(true);
        e.put_str("hello nowmp");
        e.put_bytes(&[1, 2, 3]);
        let buf = e.finish();

        let mut d = Dec::new(&buf);
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_u16().unwrap(), 0xCDEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.get_u64().unwrap(), 0x0123456789ABCDEF);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap(), std::f64::consts::PI);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "hello nowmp");
        assert_eq!(d.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(d.is_done());
        d.expect_done().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.put_u64(7);
        let buf = e.finish();
        let mut d = Dec::new(&buf[..5]);
        let err = d.get_u64().unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated {
                needed: 8,
                remaining: 5
            }
        ));
    }

    #[test]
    fn bytes_length_exceeding_buffer_rejected() {
        let mut e = Enc::new();
        e.put_u32(1_000_000); // claims a million bytes follow
        e.put_raw(&[0u8; 4]);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert!(matches!(d.get_bytes(), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        e.put_u32(1);
        e.put_u32(2);
        let buf = e.finish();
        let got = <u32 as Wire>::from_wire(&buf);
        assert!(matches!(got, Err(WireError::TrailingBytes(4))));
    }

    #[test]
    fn option_and_vec_roundtrip() {
        let v: Vec<Option<u64>> = vec![Some(1), None, Some(u64::MAX)];
        let buf = v.to_wire();
        let back = Vec::<Option<u64>>::from_wire(&buf).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn bad_option_tag() {
        let buf = vec![7u8];
        assert!(matches!(
            Option::<u32>::from_wire(&buf),
            Err(WireError::BadTag { what: "Option", .. })
        ));
    }

    #[test]
    fn varu32_width_and_edges() {
        // One byte below 128, then one extra byte per 7 bits.
        for (v, width) in [
            (0u32, 1usize),
            (0x7f, 1),
            (0x80, 2),
            (0x3fff, 2),
            (0x4000, 3),
            (u32::MAX, 5),
        ] {
            let mut e = Enc::new();
            e.put_varu32(v);
            let buf = e.finish();
            assert_eq!(buf.len(), width, "width of {v:#x}");
            let mut d = Dec::new(&buf);
            assert_eq!(d.get_varu32().unwrap(), v);
            assert!(d.is_done());
        }
        // Overlong / overflowing fifth byte is rejected.
        let mut d = Dec::new(&[0xff, 0xff, 0xff, 0xff, 0x10]);
        assert!(d.get_varu32().is_err());
        // Truncated varint is an error, not a panic.
        let mut d = Dec::new(&[0x80]);
        assert!(d.get_varu32().is_err());
    }

    proptest! {
        #[test]
        fn prop_varu32_roundtrip(v in any::<u32>()) {
            let mut e = Enc::new();
            e.put_varu32(v);
            let buf = e.finish();
            let mut d = Dec::new(&buf);
            prop_assert_eq!(d.get_varu32().unwrap(), v);
            prop_assert!(d.is_done());
        }

        #[test]
        fn prop_u64_slice_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..200)) {
            let mut e = Enc::new();
            e.put_u64_slice(&v);
            let buf = e.finish();
            let mut d = Dec::new(&buf);
            let back = d.get_u64_vec().unwrap();
            prop_assert_eq!(v, back);
            prop_assert!(d.is_done());
        }

        #[test]
        fn prop_string_roundtrip(s in ".*") {
            let buf = s.clone().to_wire();
            let back = String::from_wire(&buf).unwrap();
            prop_assert_eq!(s, back);
        }

        #[test]
        fn prop_f64_bit_exact(x in any::<f64>()) {
            let buf = x.to_wire();
            let back = f64::from_wire(&buf).unwrap();
            prop_assert_eq!(x.to_bits(), back.to_bits());
        }

        #[test]
        fn prop_decoder_never_panics_on_garbage(buf in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Decoding arbitrary garbage must never panic.
            let _ = Vec::<Option<u64>>::from_wire(&buf);
            let _ = String::from_wire(&buf);
            let mut d = Dec::new(&buf);
            let _ = d.get_u32_vec();
        }
    }
}
