//! Spin locks with typestate guards — the fine-grained lock substrate
//! for sharded hot-path state (the tmk page table shards).
//!
//! The idiom follows the rv6/xv6-riscv-rs kernels: the data lives
//! *inside* the lock and is only reachable through a [`LockGuard`]
//! whose lifetime ties the borrow to the critical section, so "forgot
//! to lock" is a type error rather than a race. Unlike a
//! `parking_lot::Mutex`, a contended [`SpinLock`] never parks the
//! thread in the kernel: it spins (with `spin_loop` hints, escalating
//! to `yield_now`), which is the right trade for critical sections of
//! tens of nanoseconds — a page-state transition, a queue segment
//! append — where a futex wait/wake round trip would cost more than
//! the whole section.
//!
//! Discipline (asserted by the deadlock-free users, not the type
//! system): never block, allocate unboundedly, or take another lock of
//! the same family while holding a guard; spin locks are not
//! reentrant.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A test-and-test-and-set spin lock owning its data.
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// Same bounds as std::sync::Mutex: the lock hands out &mut T across
// threads, so T must be Send; sharing the lock itself needs T: Send
// too (not Sync — access is always exclusive).
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Create an unlocked lock owning `data`.
    pub const fn new(data: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(data),
        }
    }

    /// Consume the lock and return its data.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquire the lock, spinning until it is free. Returns the guard
    /// through which the data is (exclusively) reachable.
    #[inline]
    pub fn lock(&self) -> LockGuard<'_, T> {
        // Fast path: uncontended CAS.
        if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return LockGuard { lock: self };
        }
        self.lock_slow()
    }

    #[cold]
    fn lock_slow(&self) -> LockGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: spin on the cheap load so the
            // cache line stays shared until the holder releases.
            while self.locked.load(Ordering::Relaxed) {
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // Oversubscribed (more threads than cores, or a
                    // descheduled holder): give the scheduler a turn
                    // instead of burning the holder's timeslice.
                    std::thread::yield_now();
                }
                spins = spins.wrapping_add(1);
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return LockGuard { lock: self };
            }
        }
    }

    /// Try to acquire without spinning; `None` when held elsewhere.
    #[inline]
    pub fn try_lock(&self) -> Option<LockGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(LockGuard { lock: self })
        } else {
            None
        }
    }

    /// Exclusive access through `&mut self` — no locking needed, the
    /// borrow checker already proves uniqueness.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        SpinLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("SpinLock").field("data", &&*g).finish(),
            None => f.write_str("SpinLock { <locked> }"),
        }
    }
}

/// Exclusive access to the data of a [`SpinLock`]; releases on drop.
/// The typestate: a `&mut T` exists if and only if a guard does.
pub struct LockGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for LockGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for LockGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; &mut self prevents aliased reborrows.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for LockGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for LockGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guard_gives_exclusive_access() {
        let l = SpinLock::new(41);
        {
            let mut g = l.lock();
            *g += 1;
        }
        assert_eq!(*l.lock(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = SpinLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut l = SpinLock::new(vec![1, 2]);
        l.get_mut().push(3);
        assert_eq!(l.lock().len(), 3);
    }

    #[test]
    fn debug_formats_both_states() {
        let l = SpinLock::new(7);
        assert!(format!("{l:?}").contains('7'));
        let _g = l.lock();
        assert!(format!("{l:?}").contains("locked"));
    }

    #[test]
    fn contended_increments_are_not_lost() {
        const THREADS: usize = 8;
        const PER: usize = 10_000;
        let l = Arc::new(SpinLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..PER {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), THREADS * PER);
    }

    #[test]
    fn guard_release_publishes_writes() {
        // Acquire/release ordering: a value written under the lock on
        // one thread is visible to the next acquirer on another.
        let l = Arc::new(SpinLock::new((0u64, 0u64)));
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            for i in 1..=1000u64 {
                let mut g = l2.lock();
                *g = (i, i.wrapping_mul(0x9E37_79B9));
            }
        });
        for _ in 0..1000 {
            let g = l.lock();
            assert_eq!(g.1, g.0.wrapping_mul(0x9E37_79B9));
        }
        h.join().unwrap();
    }
}
