//! Counting semaphore built on `parking_lot` (`Mutex` + `Condvar`).
//!
//! The simulated NOW uses one semaphore per host to model CPU slots: a
//! workstation normally runs one DSM process, but after an *urgent leave*
//! the migrated process is multiplexed onto another node (paper §3,
//! Figure 2c) and the two processes time-share. Acquiring a CPU slot per
//! iteration chunk reproduces the idle time the paper attributes to
//! multiplexing.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// A counting semaphore with RAII permits.
#[derive(Debug)]
pub struct Semaphore {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    permits: Mutex<usize>,
    cv: Condvar,
}

/// RAII guard returned by [`Semaphore::acquire`]; releases on drop.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<Inner>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Arc::new(Inner {
                permits: Mutex::new(permits),
                cv: Condvar::new(),
            }),
        }
    }

    /// Block until a permit is available, then take it.
    pub fn acquire(&self) -> Permit {
        let mut p = self.inner.permits.lock();
        while *p == 0 {
            self.inner.cv.wait(&mut p);
        }
        *p -= 1;
        Permit {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Take a permit if one is available without blocking.
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut p = self.inner.permits.lock();
        if *p == 0 {
            None
        } else {
            *p -= 1;
            Some(Permit {
                inner: Arc::clone(&self.inner),
            })
        }
    }

    /// Block up to `timeout` for a permit.
    pub fn acquire_timeout(&self, timeout: Duration) -> Option<Permit> {
        let deadline = std::time::Instant::now() + timeout;
        let mut p = self.inner.permits.lock();
        while *p == 0 {
            if self.inner.cv.wait_until(&mut p, deadline).timed_out() {
                return None;
            }
        }
        *p -= 1;
        Some(Permit {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Add `n` permits (e.g. a host gaining CPU slots).
    pub fn release_extra(&self, n: usize) {
        let mut p = self.inner.permits.lock();
        *p += n;
        for _ in 0..n {
            self.inner.cv.notify_one();
        }
    }

    /// Current available permits (racy; for diagnostics only).
    pub fn available(&self) -> usize {
        *self.inner.permits.lock()
    }
}

impl Clone for Semaphore {
    fn clone(&self) -> Self {
        Semaphore {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut p = self.inner.permits.lock();
        *p += 1;
        self.inner.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn try_acquire_exhausts() {
        let s = Semaphore::new(2);
        let a = s.try_acquire();
        let b = s.try_acquire();
        assert!(a.is_some() && b.is_some());
        assert!(s.try_acquire().is_none());
        drop(a);
        assert!(s.try_acquire().is_some());
    }

    #[test]
    fn acquire_blocks_until_release() {
        let s = Semaphore::new(1);
        let p = s.acquire();
        let s2 = s.clone();
        let flag = StdArc::new(AtomicUsize::new(0));
        let f2 = StdArc::clone(&flag);
        let h = std::thread::spawn(move || {
            let _p = s2.acquire();
            f2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            flag.load(Ordering::SeqCst),
            0,
            "acquire should still be blocked"
        );
        drop(p);
        h.join().unwrap();
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn timeout_expires() {
        let s = Semaphore::new(0);
        let got = s.acquire_timeout(Duration::from_millis(20));
        assert!(got.is_none());
    }

    #[test]
    fn mutual_exclusion_with_one_permit() {
        let s = Semaphore::new(1);
        let counter = StdArc::new(AtomicUsize::new(0));
        let max_seen = StdArc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let s = s.clone();
            let c = StdArc::clone(&counter);
            let m = StdArc::clone(&max_seen);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _p = s.acquire();
                    let now = c.fetch_add(1, Ordering::SeqCst) + 1;
                    m.fetch_max(now, Ordering::SeqCst);
                    c.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            max_seen.load(Ordering::SeqCst),
            1,
            "only one holder at a time"
        );
    }

    #[test]
    fn release_extra_grows_capacity() {
        let s = Semaphore::new(0);
        s.release_extra(3);
        assert_eq!(s.available(), 3);
        let _a = s.acquire();
        let _b = s.acquire();
        let _c = s.acquire();
        assert!(s.try_acquire().is_none());
    }
}
