//! The network/host cost model.
//!
//! Defaults follow the paper's §5.1 measurements on the 1999 testbed:
//!
//! | quantity | paper | model |
//! |---|---|---|
//! | 1-byte roundtrip | 126 µs | 2 × `one_way_latency` (63 µs) |
//! | full 4 KB page transfer | 1308 µs | latency + (4 KB + headers)/bandwidth + overheads |
//! | migration image stream | 8.1 MB/s | `migration_bandwidth` |
//! | process creation | 0.6–0.8 s | `spawn_delay` (0.7 s) |
//!
//! `time_scale` shrinks every emulated delay uniformly so benchmark runs
//! finish in minutes while preserving every *ratio* the paper reports.

use std::time::Duration;

/// Cost model for the simulated NOW.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Enforce delays in real time (benches/examples). When `false`, the
    /// transport only counts traffic (unit tests).
    pub emulate: bool,
    /// One-way propagation + protocol latency per message.
    pub one_way_latency: Duration,
    /// Link bandwidth in bits per second (full duplex, per direction).
    pub bandwidth_bps: f64,
    /// Fixed per-message CPU cost charged at the sender in addition to
    /// serialization (UDP/IP stack traversal, interrupt handling).
    pub per_msg_overhead: Duration,
    /// Per-message header bytes added to every payload (Ethernet + IP +
    /// UDP + protocol header).
    pub header_bytes: usize,
    /// Bandwidth of the process-image migration stream (paper: 8.1 MB/s,
    /// i.e. checkpoint-based migration through `libckpt`).
    pub migration_bandwidth: f64,
    /// Cost of creating a new process on a host (paper: 0.6–0.8 s).
    pub spawn_delay: Duration,
    /// Multiply every emulated delay by this factor (1.0 = paper speed).
    pub time_scale: f64,
}

impl NetModel {
    /// No emulation: zero delays, counters only. The right model for
    /// correctness tests.
    pub fn disabled() -> Self {
        NetModel {
            emulate: false,
            one_way_latency: Duration::ZERO,
            bandwidth_bps: f64::INFINITY,
            per_msg_overhead: Duration::ZERO,
            header_bytes: 42,
            migration_bandwidth: f64::INFINITY,
            spawn_delay: Duration::ZERO,
            time_scale: 1.0,
        }
    }

    /// The paper's 1999 testbed: switched full-duplex 100 Mbps Ethernet,
    /// 126 µs 1-byte roundtrip, 8.1 MB/s migration stream, 0.7 s spawn.
    pub fn paper_1999() -> Self {
        NetModel {
            emulate: true,
            one_way_latency: Duration::from_micros(63),
            bandwidth_bps: 100e6,
            per_msg_overhead: Duration::from_micros(35),
            header_bytes: 42,
            migration_bandwidth: 8.1e6,
            spawn_delay: Duration::from_millis(700),
            time_scale: 1.0,
        }
    }

    /// The paper model with all delays scaled by `scale` (e.g. `0.1`
    /// makes benches 10× faster while preserving ratios). `scale` is
    /// sanitized: non-finite falls back to 1.0 and the rest clamps to
    /// [0, 1e6] — `Duration::mul_f64` panics on negative or
    /// overflowing scalars, and the knob is env-settable
    /// (`NOWMP_TIME_SCALE`).
    pub fn paper_scaled(scale: f64) -> Self {
        let scale = if scale.is_finite() {
            scale.clamp(0.0, 1e6)
        } else {
            1.0
        };
        NetModel {
            time_scale: scale,
            ..Self::paper_1999()
        }
    }

    /// Scale a duration by `time_scale`, sanitized the same way as
    /// [`NetModel::paper_scaled`]. `time_scale` is a `pub` field, so
    /// the guard must live here to cover every construction path —
    /// `Duration::mul_f64` panics on negative or overflowing scalars.
    #[inline]
    pub fn scaled(&self, d: Duration) -> Duration {
        let s = if self.time_scale.is_finite() {
            self.time_scale.clamp(0.0, 1e6)
        } else {
            1.0
        };
        if (s - 1.0).abs() < f64::EPSILON {
            d
        } else {
            d.mul_f64(s)
        }
    }

    /// Wire serialization time for a message of `payload` bytes
    /// (headers added), before scaling.
    pub fn serialize_time(&self, payload: usize) -> Duration {
        if !self.bandwidth_bps.is_finite() {
            return Duration::ZERO;
        }
        let bits = ((payload + self.header_bytes) as f64) * 8.0;
        Duration::from_secs_f64(bits / self.bandwidth_bps)
    }

    /// Total sender-side occupancy for a message: serialization plus
    /// fixed per-message overhead (scaled).
    pub fn sender_time(&self, payload: usize) -> Duration {
        self.scaled(self.serialize_time(payload) + self.per_msg_overhead)
    }

    /// Propagation latency (scaled).
    pub fn latency(&self) -> Duration {
        self.scaled(self.one_way_latency)
    }

    /// Time to stream a migration image of `bytes` (scaled), excluding
    /// spawn cost.
    pub fn migration_time(&self, bytes: usize) -> Duration {
        if !self.migration_bandwidth.is_finite() {
            return Duration::ZERO;
        }
        self.scaled(Duration::from_secs_f64(
            bytes as f64 / self.migration_bandwidth,
        ))
    }

    /// Process creation delay (scaled).
    pub fn spawn_time(&self) -> Duration {
        self.scaled(self.spawn_delay)
    }
}

impl Default for NetModel {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_free() {
        let m = NetModel::disabled();
        assert_eq!(m.sender_time(1 << 20), Duration::ZERO);
        assert_eq!(m.latency(), Duration::ZERO);
        assert_eq!(m.migration_time(50 << 20), Duration::ZERO);
        assert_eq!(m.spawn_time(), Duration::ZERO);
    }

    #[test]
    fn paper_roundtrip_is_126us() {
        let m = NetModel::paper_1999();
        let rtt = m.latency() * 2;
        assert_eq!(rtt, Duration::from_micros(126));
    }

    #[test]
    fn page_serialization_near_paper() {
        let m = NetModel::paper_1999();
        // 4 KB + headers at 100 Mbps ≈ 331 µs of wire time.
        let t = m.serialize_time(4096);
        assert!(
            t > Duration::from_micros(300) && t < Duration::from_micros(400),
            "{t:?}"
        );
    }

    #[test]
    fn migration_rate_is_8_1_mbps() {
        let m = NetModel::paper_1999();
        // Paper: Jacobi image ≈ 6.7 s at 8.1 MB/s => ~54 MB.
        let t = m.migration_time(54 * 1000 * 1000);
        assert!((t.as_secs_f64() - 6.67).abs() < 0.1, "{t:?}");
    }

    #[test]
    fn time_scale_shrinks_everything() {
        let m = NetModel::paper_scaled(0.1);
        assert_eq!(m.latency(), Duration::from_micros(63).mul_f64(0.1));
        assert_eq!(m.spawn_time(), Duration::from_millis(700).mul_f64(0.1));
    }
}
