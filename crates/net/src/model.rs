//! The wire cost model — the network and nothing but the network.
//!
//! Host-side costs (process creation, the migration image stream,
//! per-host compute speeds, per-kernel iteration costs) live in
//! [`crate::CostModel`]; both models draw their paper defaults from the
//! shared [`crate::cost::paper`] constants. Defaults follow the paper's
//! §5.1 measurements on the 1999 testbed:
//!
//! | quantity | paper | model |
//! |---|---|---|
//! | 1-byte roundtrip | 126 µs | 2 × `one_way_latency` (63 µs) |
//! | full 4 KB page transfer | 1308 µs | latency + (4 KB + headers)/bandwidth + overheads |
//!
//! `time_scale` shrinks every emulated delay uniformly so benchmark runs
//! finish in minutes while preserving every *ratio* the paper reports.

use crate::cost::paper;
use std::time::Duration;

/// Wire cost model for the simulated NOW.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Enforce delays in real time (benches/examples). When `false`, the
    /// transport only counts traffic (unit tests).
    pub emulate: bool,
    /// One-way propagation + protocol latency per message.
    pub one_way_latency: Duration,
    /// Link bandwidth in bits per second (full duplex, per direction).
    pub bandwidth_bps: f64,
    /// Fixed per-message CPU cost charged at the sender in addition to
    /// serialization (UDP/IP stack traversal, interrupt handling).
    pub per_msg_overhead: Duration,
    /// Per-message header bytes added to every payload (Ethernet + IP +
    /// UDP + protocol header).
    pub header_bytes: usize,
    /// Multiply every emulated delay by this factor (1.0 = paper speed).
    pub time_scale: f64,
}

impl NetModel {
    /// No emulation: zero delays, counters only. The right model for
    /// correctness tests.
    pub fn disabled() -> Self {
        NetModel {
            emulate: false,
            one_way_latency: Duration::ZERO,
            bandwidth_bps: f64::INFINITY,
            per_msg_overhead: Duration::ZERO,
            header_bytes: paper::HEADER_BYTES,
            time_scale: 1.0,
        }
    }

    /// The paper's 1999 testbed: switched full-duplex 100 Mbps Ethernet,
    /// 126 µs 1-byte roundtrip (the host-side 8.1 MB/s migration stream
    /// and 0.7 s spawn moved to [`crate::CostModel::paper_1999`]).
    pub fn paper_1999() -> Self {
        NetModel {
            emulate: true,
            one_way_latency: paper::ONE_WAY_LATENCY,
            bandwidth_bps: paper::BANDWIDTH_BPS,
            per_msg_overhead: paper::PER_MSG_OVERHEAD,
            header_bytes: paper::HEADER_BYTES,
            time_scale: 1.0,
        }
    }

    /// The paper model with all delays scaled by `scale` (e.g. `0.1`
    /// makes benches 10× faster while preserving ratios). `scale` is
    /// sanitized: non-finite falls back to 1.0 and the rest clamps to
    /// [0, 1e6] — `Duration::mul_f64` panics on negative or
    /// overflowing scalars, and the knob is env-settable
    /// (`NOWMP_TIME_SCALE`).
    pub fn paper_scaled(scale: f64) -> Self {
        let scale = if scale.is_finite() {
            scale.clamp(0.0, 1e6)
        } else {
            1.0
        };
        NetModel {
            time_scale: scale,
            ..Self::paper_1999()
        }
    }

    /// Scale a duration by `time_scale`, sanitized the same way as
    /// [`NetModel::paper_scaled`]. `time_scale` is a `pub` field, so
    /// the guard must live here to cover every construction path —
    /// `Duration::mul_f64` panics on negative or overflowing scalars.
    #[inline]
    pub fn scaled(&self, d: Duration) -> Duration {
        let s = if self.time_scale.is_finite() {
            self.time_scale.clamp(0.0, 1e6)
        } else {
            1.0
        };
        if (s - 1.0).abs() < f64::EPSILON {
            d
        } else {
            d.mul_f64(s)
        }
    }

    /// Wire serialization time for a message of `payload` bytes
    /// (headers added), before scaling.
    pub fn serialize_time(&self, payload: usize) -> Duration {
        if !self.bandwidth_bps.is_finite() {
            return Duration::ZERO;
        }
        let bits = ((payload + self.header_bytes) as f64) * 8.0;
        Duration::from_secs_f64(bits / self.bandwidth_bps)
    }

    /// Total sender-side occupancy for a message: serialization plus
    /// fixed per-message overhead (scaled).
    pub fn sender_time(&self, payload: usize) -> Duration {
        self.scaled(self.serialize_time(payload) + self.per_msg_overhead)
    }

    /// Total receiver-side inbound occupancy for a message: the wire
    /// drains it for its serialization time and the receiving CPU pays
    /// the fixed per-message overhead (interrupt + dispatch) before
    /// the next converging message can be admitted (scaled). See
    /// `HostRec::receive_at` in `net.rs` for how this composes with
    /// cut-through delivery.
    pub fn receive_time(&self, payload: usize) -> Duration {
        self.scaled(self.serialize_time(payload) + self.per_msg_overhead)
    }

    /// Propagation latency (scaled).
    pub fn latency(&self) -> Duration {
        self.scaled(self.one_way_latency)
    }

    /// Round-trip time of a fetch: a small request out (16-byte
    /// header-only message), the `payload`-byte reply back. This is
    /// the delivery delay the task-backed engine charges a host per
    /// remote page fault — the wakeup deadline it parks the faulting
    /// task until.
    pub fn fetch_rtt(&self, payload: usize) -> Duration {
        self.latency() * 2 + self.sender_time(16) + self.receive_time(payload)
    }

    /// Virtual time for an `nprocs`-wide barrier: a dissemination
    /// schedule of `ceil(log2 n)` rounds, each round one header-only
    /// message exchange (gather + release ⇒ ×2). The task-backed
    /// engine uses this to place the barrier-release wakeup after the
    /// last arrival.
    pub fn barrier_time(&self, nprocs: usize) -> Duration {
        if nprocs <= 1 {
            return Duration::ZERO;
        }
        let rounds = usize::BITS - (nprocs - 1).leading_zeros();
        (self.latency() + self.sender_time(0)) * 2 * rounds
    }
}

impl Default for NetModel {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_free() {
        let m = NetModel::disabled();
        assert_eq!(m.sender_time(1 << 20), Duration::ZERO);
        assert_eq!(m.latency(), Duration::ZERO);
    }

    #[test]
    fn paper_roundtrip_is_126us() {
        let m = NetModel::paper_1999();
        let rtt = m.latency() * 2;
        assert_eq!(rtt, Duration::from_micros(126));
    }

    #[test]
    fn page_serialization_near_paper() {
        let m = NetModel::paper_1999();
        // 4 KB + headers at 100 Mbps ≈ 331 µs of wire time.
        let t = m.serialize_time(4096);
        assert!(
            t > Duration::from_micros(300) && t < Duration::from_micros(400),
            "{t:?}"
        );
    }

    #[test]
    fn time_scale_shrinks_everything() {
        let m = NetModel::paper_scaled(0.1);
        assert_eq!(m.latency(), Duration::from_micros(63).mul_f64(0.1));
    }

    #[test]
    fn fetch_rtt_exceeds_wire_rtt_by_message_costs() {
        let m = NetModel::paper_1999();
        let rtt = m.fetch_rtt(4096);
        assert!(rtt > m.latency() * 2, "{rtt:?}");
        assert!(rtt >= m.latency() * 2 + m.receive_time(4096), "{rtt:?}");
        assert_eq!(NetModel::disabled().fetch_rtt(4096), Duration::ZERO);
    }

    #[test]
    fn barrier_time_grows_logarithmically() {
        let m = NetModel::paper_1999();
        assert_eq!(m.barrier_time(1), Duration::ZERO);
        let b2 = m.barrier_time(2); // 1 round
        let b32 = m.barrier_time(32); // 5 rounds
        let b33 = m.barrier_time(33); // 6 rounds
        assert_eq!(b32, b2 * 5);
        assert_eq!(b33, b2 * 6);
    }
}
