//! # nowmp-net
//!
//! A simulated **network of workstations** (NOW) with a switched,
//! full-duplex Ethernet — the experimental substrate of the PPoPP'99
//! paper (§5.1: 8 × 300 MHz Pentium II, 100 Mbps switched Ethernet,
//! UDP sockets, FreeBSD 2.2.6).
//!
//! We do not have a machine room of 1999 workstations, so this crate
//! provides the closest synthetic equivalent that exercises the same
//! code paths in the DSM above it:
//!
//! * [`Host`](net::Network::add_host) — a workstation: a full-duplex
//!   network link with independent per-direction accounting, plus CPU
//!   slots (a [`nowmp_util::Semaphore`]) used to emulate the
//!   *multiplexing* of an urgently-migrated process onto an
//!   already-busy node;
//! * [`Endpoint`] — a process's mailbox. Endpoints are created on a
//!   host and can later be **re-labeled** onto another host (process
//!   migration);
//! * [`NetModel`] — the *wire* cost model: one-way latency, link
//!   bandwidth, per-message overhead. With `emulate = true` the model
//!   is enforced in real time (senders hold their host link for the
//!   serialization time; receivers honor the propagation latency); with
//!   `emulate = false` only statistics are recorded, keeping unit tests
//!   fast and deterministic;
//! * [`CostModel`] — the *host* cost model: process spawn delay,
//!   migration stream bandwidth, per-host relative speed and
//!   background-load factors, and per-kernel per-iteration compute
//!   costs calibrated to the §5.1 testbed. Both models share one
//!   canonical set of paper constants ([`cost::paper`]);
//! * [`NetStats`] — message/byte counters per host link. The paper's
//!   §5.4 key result ("the cost of adaptation is proportional to the
//!   maximum network traffic per link") is measured directly from these
//!   counters, which is why they are per-link rather than global: on a
//!   switched Ethernet "the network performance of individual links is
//!   independent of each other, so the link with the most traffic is
//!   the bottleneck".
//!
//! Messages are reliable and in-order (crossbeam channels). The paper's
//! UDP transport implements request/reply reliability one layer up; we
//! collapse that into the simulated transport and document it in
//! DESIGN.md §10.

#![warn(missing_docs)]

pub mod cost;
pub mod model;
pub mod net;
pub mod stats;

pub use cost::CostModel;
pub use model::NetModel;
pub use net::{Endpoint, Incoming, NetError, Network, PendingCall, Replier};
pub use stats::{JobTraffic, LinkSnapshot, NetStats, StatsSnapshot};

use nowmp_util::wire::{Dec, Enc, Wire, WireError};

/// Identifier of a workstation (a simulated machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u16);

/// Globally unique identifier of a *process instance*.
///
/// Logical DSM process ids (ranks 0..n) are reassigned at adaptation
/// points; `Gpid`s never change for the lifetime of a process and are
/// what the transport routes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gpid(pub u32);

impl Wire for HostId {
    fn enc(&self, e: &mut Enc) {
        e.put_u16(self.0);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(HostId(d.get_u16()?))
    }
}

impl Wire for Gpid {
    fn enc(&self, e: &mut Enc) {
        e.put_u32(self.0);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(Gpid(d.get_u32()?))
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl std::fmt::Display for Gpid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}
