//! The simulated switch: hosts, endpoints, and request/reply transport.
//!
//! Topology and semantics:
//!
//! * every host hangs off one switch port with a full-duplex link;
//! * an [`Endpoint`] is a process mailbox bound to a host (re-bindable:
//!   migration re-labels the endpoint onto another host);
//! * messages are reliable and in-order per sender/receiver pair;
//! * a *request* carries a reply channel; the responder's
//!   [`Replier::reply`] routes the answer straight back to the waiting
//!   caller (the DSM's SIGIO-handler analog replies from the service
//!   thread while the application thread computes);
//! * when [`NetModel::emulate`] is set, the sender holds its host's
//!   link lock for the serialization time (shared-link contention when
//!   two processes are multiplexed on one host) and the receiver honors
//!   the propagation latency.

use crate::cost::CostModel;
use crate::model::NetModel;
use crate::stats::{LinkStats, NetStats, StatsSnapshot};
use crate::{Gpid, HostId};
use bytes::Bytes;
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use nowmp_util::{Clock, Semaphore, Tick};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU16, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors surfaced by the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination gpid is not registered (process left or never existed).
    Unknown(Gpid),
    /// The peer disconnected before replying.
    Disconnected(Gpid),
    /// No reply within the deadline (used to surface protocol deadlocks
    /// in tests instead of hanging forever).
    Timeout(Gpid),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unknown(g) => write!(f, "unknown destination {g}"),
            NetError::Disconnected(g) => write!(f, "peer {g} disconnected"),
            NetError::Timeout(g) => write!(f, "timeout waiting for reply from {g}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A message as delivered to a service loop.
pub struct Packet {
    /// Sender's process id.
    pub src: Gpid,
    /// Encoded payload.
    pub payload: Bytes,
    /// Present iff the sender awaits a reply.
    pub reply: Option<Sender<Packet>>,
    /// Earliest delivery time on the network clock, under emulation.
    deliver_at: Option<Tick>,
}

/// An incoming message plus the means to answer it.
pub struct Incoming {
    /// Sender's process id.
    pub src: Gpid,
    /// Encoded payload.
    pub payload: Bytes,
    /// Reply handle when the sender used [`Endpoint::call`].
    pub replier: Option<Replier>,
}

/// Handle used by a service loop to answer a request.
pub struct Replier {
    net: Arc<NetInner>,
    from: Gpid,
    from_host: Arc<HostRec>,
    to: Gpid,
    tx: Sender<Packet>,
}

impl Replier {
    /// Send `payload` back to the requester, with full cost accounting.
    /// The reply travels straight to the waiting caller's channel, not
    /// the requester's mailbox.
    pub fn reply(self, payload: Bytes) {
        let tx = self.tx.clone();
        self.net
            .transmit_reply(&self.from_host, self.to, payload, &tx, self.from);
    }

    /// The gpid that will receive the reply.
    pub fn requester(&self) -> Gpid {
        self.to
    }
}

struct HostRec {
    #[allow(dead_code)]
    id: HostId,
    /// Serializes outbound transmissions when emulation is on: two
    /// processes multiplexed on one workstation share one wire.
    link: Mutex<()>,
    /// Next-free time of the host's *inbound* wire. A single stream
    /// already pays its serialization at the sender, so an uncontended
    /// message is delivered at `send_finish + latency` exactly as
    /// before; but messages *converging* from different senders must
    /// drain one at a time through the receiver's port — the physical
    /// ceiling a flat `n - 1` collection hits at the master. See
    /// [`HostRec::receive_at`].
    inbound: Mutex<Tick>,
    link_stats: Arc<LinkStats>,
    /// CPU slots; the OpenMP layer acquires one per iteration chunk so
    /// multiplexed processes time-share the processor.
    cpu: Semaphore,
}

impl HostRec {
    /// FIFO inbound admission: each message occupies the receiving
    /// host's inbound path for `occ` — its serialization time plus the
    /// per-message receive overhead (interrupt + dispatch, the paper's
    /// PER_MSG_OVERHEAD) — ending at delivery. Uncontended (`inbound`
    /// free before `candidate - occ`, i.e. the bits flowed cut-through
    /// and the handler overlapped the tail of the transfer) this
    /// returns `candidate` unchanged, so single-stream timings — and
    /// the calibrated Table 1/2 pins — are untouched; under
    /// convergence it returns the earliest slot after the queue
    /// drains. The overhead term is what a binomial reduce amortizes:
    /// `n - 1` small messages converging on the master each pay it in
    /// turn, `log n` aggregates carrying the same bytes pay it `log n`
    /// times.
    fn receive_at(&self, candidate: Tick, occ: Duration) -> Tick {
        let mut free = self.inbound.lock();
        let start = (*free).max(Tick::from_nanos(
            candidate
                .as_nanos()
                .saturating_sub(occ.as_nanos().min(u64::MAX as u128) as u64),
        ));
        let done = start + occ;
        *free = done;
        done
    }
}

struct EndpointRec {
    tx: Sender<Packet>,
    host: Arc<AtomicU16>,
}

struct NetInner {
    model: NetModel,
    cost: CostModel,
    clock: Clock,
    stats: NetStats,
    hosts: RwLock<Vec<Arc<HostRec>>>,
    endpoints: RwLock<HashMap<u32, EndpointRec>>,
    next_gpid: AtomicU32,
}

impl NetInner {
    fn host(&self, id: HostId) -> Arc<HostRec> {
        Arc::clone(&self.hosts.read()[id.0 as usize])
    }

    /// Charge `d` of wire occupancy on `host`'s link: concurrent
    /// senders on the same workstation serialize on one physical wire.
    ///
    /// On the virtual backend this deliberately avoids a deadline-less
    /// blocked scope around the lock: at such an instant the whole
    /// simulation can look quiescent and the clock would advance to the
    /// earliest *unrelated* pending deadline — since compute charging
    /// landed, that can be a peer's worksharing charge tens of
    /// milliseconds out, time-warping a µs-scale wire transaction and
    /// serializing compute that should overlap. Instead, a contended
    /// sender polls in short *virtual* sleeps: there is then always a
    /// nearby registered deadline, so the clock can neither overshoot
    /// nor wedge, and the wait itself costs (quantized) wire time,
    /// which is physically what link contention is.
    fn occupy_link(&self, host: &HostRec, d: Duration) {
        if !self.clock.is_virtual() {
            let _wire = host.link.lock();
            self.clock.sleep(d);
            return;
        }
        let mut quantum = Duration::from_micros(5);
        loop {
            if let Some(_wire) = host.link.try_lock() {
                self.clock.sleep(d);
                return;
            }
            self.clock.sleep(quantum);
            // Back off exponentially: a link can be held for whole
            // simulated seconds (migration image streams), and a fixed
            // µs quantum would turn that into millions of wall-time
            // clock advances.
            quantum = (quantum * 2).min(Duration::from_millis(10));
        }
    }

    /// Core transmit path: accounting + optional real-time emulation.
    fn transmit(
        &self,
        src: Gpid,
        src_host: &Arc<HostRec>,
        dst: Gpid,
        payload: Bytes,
        reply: Option<Sender<Packet>>,
    ) -> bool {
        let bytes = (payload.len() + self.model.header_bytes) as u64;

        // Sender-side occupancy: hold the host link for the serialization
        // time so concurrent senders on the same host contend, as they
        // would on one physical wire.
        if self.model.emulate {
            self.occupy_link(src_host, self.model.sender_time(payload.len()));
        }

        // Resolve destination *after* serialization (a migrating peer may
        // have re-labeled meanwhile; the switch forwards to its port).
        let (tx, dst_host) = {
            let eps = self.endpoints.read();
            match eps.get(&dst.0) {
                Some(rec) => (rec.tx.clone(), HostId(rec.host.load(Ordering::Acquire))),
                None => return false,
            }
        };
        let dst_rec = self.host(dst_host);

        let deliver_at = if self.model.emulate {
            let candidate = self.clock.now() + self.model.latency();
            Some(dst_rec.receive_at(candidate, self.model.receive_time(payload.len())))
        } else {
            None
        };

        src_host.link_stats.record_out(bytes);
        dst_rec.link_stats.record_in(bytes);
        self.stats.record_msg(bytes);

        self.send_accounted(
            &tx,
            Packet {
                src,
                payload,
                reply,
                deliver_at,
            },
        )
    }

    /// Hand a packet to a channel with in-flight clock accounting,
    /// undoing the account if the receiver is gone.
    fn send_accounted(&self, tx: &Sender<Packet>, pkt: Packet) -> bool {
        self.clock.msg_sent();
        let ok = tx.send(pkt).is_ok();
        if !ok {
            self.clock.msg_received();
        }
        ok
    }
}

/// The simulated switched network. Cheap to clone (all state shared).
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetInner>,
}

impl Network {
    /// Create a network with `hosts` initial workstations, each with
    /// `cpu_slots` CPU slots (1 = the paper's one process per node).
    /// Host-side costs default to [`CostModel::disabled`]; the time
    /// backend comes from the environment ([`Clock::from_env`]): real
    /// by default, virtual under `NOWMP_CLOCK=virtual`.
    pub fn new(hosts: usize, cpu_slots: usize, model: NetModel) -> Self {
        Self::with_clock(
            hosts,
            cpu_slots,
            model,
            CostModel::disabled(),
            Clock::from_env(),
        )
    }

    /// [`Network::new`] with an explicit host [`CostModel`] and time
    /// backend. Everything that shares a simulation must share one
    /// clock — pass clones of the same handle.
    pub fn with_clock(
        hosts: usize,
        cpu_slots: usize,
        model: NetModel,
        cost: CostModel,
        clock: Clock,
    ) -> Self {
        let net = Network {
            inner: Arc::new(NetInner {
                model,
                cost,
                clock,
                stats: NetStats::new(),
                hosts: RwLock::new(Vec::new()),
                endpoints: RwLock::new(HashMap::new()),
                next_gpid: AtomicU32::new(1),
            }),
        };
        for _ in 0..hosts {
            net.add_host(cpu_slots);
        }
        net
    }

    /// The clock every delay in this network is charged on.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Add a workstation to the pool; returns its id.
    pub fn add_host(&self, cpu_slots: usize) -> HostId {
        let mut hosts = self.inner.hosts.write();
        let id = HostId(hosts.len() as u16);
        hosts.push(Arc::new(HostRec {
            id,
            link: Mutex::new(()),
            inbound: Mutex::new(Tick::ZERO),
            link_stats: self.inner.stats.add_link(),
            cpu: Semaphore::new(cpu_slots),
        }));
        id
    }

    /// Number of hosts ever added.
    pub fn host_count(&self) -> usize {
        self.inner.hosts.read().len()
    }

    /// The wire cost model in force.
    pub fn model(&self) -> &NetModel {
        &self.inner.model
    }

    /// The host cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Snapshot all traffic counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Acquire a CPU slot on `host`, blocking while other processes on
    /// the same workstation hold every slot. Returns a RAII permit.
    ///
    /// This is how multiplexing after an urgent leave costs time: two
    /// processes, one CPU.
    pub fn acquire_cpu(&self, host: HostId) -> nowmp_util::sem::Permit {
        let h = self.inner.host(host);
        self.inner.clock.blocked(|| h.cpu.acquire())
    }

    /// Register a new process endpoint on `host`.
    pub fn register(&self, host: HostId) -> Endpoint {
        assert!(
            (host.0 as usize) < self.host_count(),
            "register on unknown host {host}"
        );
        let gpid = Gpid(self.inner.next_gpid.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        let host_cell = Arc::new(AtomicU16::new(host.0));
        self.inner.endpoints.write().insert(
            gpid.0,
            EndpointRec {
                tx,
                host: Arc::clone(&host_cell),
            },
        );
        Endpoint {
            net: Arc::clone(&self.inner),
            gpid,
            host: host_cell,
            rx,
        }
    }

    /// Remove a process endpoint (the process left the computation).
    /// Subsequent sends to it fail with [`NetError::Unknown`].
    pub fn unregister(&self, gpid: Gpid) {
        self.inner.endpoints.write().remove(&gpid.0);
    }

    /// Re-label `gpid` onto `new_host` (process migration). The mailbox
    /// and all queued messages survive; only link accounting moves.
    pub fn relabel(&self, gpid: Gpid, new_host: HostId) -> Result<(), NetError> {
        assert!(
            (new_host.0 as usize) < self.host_count(),
            "relabel to unknown host {new_host}"
        );
        let eps = self.inner.endpoints.read();
        match eps.get(&gpid.0) {
            Some(rec) => {
                rec.host.store(new_host.0, Ordering::Release);
                Ok(())
            }
            None => Err(NetError::Unknown(gpid)),
        }
    }

    /// Current host of a process.
    pub fn host_of(&self, gpid: Gpid) -> Option<HostId> {
        self.inner
            .endpoints
            .read()
            .get(&gpid.0)
            .map(|r| HostId(r.host.load(Ordering::Acquire)))
    }

    /// Emulate streaming a migration image of `bytes` (paper: 8.1 MB/s)
    /// from `src_host`, returning the charged duration. The rate comes
    /// from the host [`CostModel`]; traffic is accounted on both hosts'
    /// links.
    pub fn charge_migration(&self, src_host: HostId, dst_host: HostId, bytes: usize) -> Duration {
        let d = self.inner.cost.migration_time(bytes);
        let src = self.inner.host(src_host);
        let dst = self.inner.host(dst_host);
        src.link_stats.record_out(bytes as u64);
        dst.link_stats.record_in(bytes as u64);
        self.inner.stats.record_msg(bytes as u64);
        if self.inner.cost.emulate {
            self.inner.occupy_link(&src, d);
        }
        d
    }

    /// Emulate process creation on a host (paper: 0.6–0.8 s), returning
    /// the charged duration (from the host [`CostModel`]).
    pub fn charge_spawn(&self) -> Duration {
        let d = self.inner.cost.spawn_time();
        if self.inner.cost.emulate {
            self.inner.clock.sleep(d);
        }
        d
    }
}

/// A process's connection to the network: mailbox plus send/call API.
pub struct Endpoint {
    net: Arc<NetInner>,
    gpid: Gpid,
    host: Arc<AtomicU16>,
    rx: Receiver<Packet>,
}

/// Default deadline for [`Endpoint::call`]; long enough for any emulated
/// protocol exchange, short enough to turn a deadlock into a test error.
pub const CALL_TIMEOUT: Duration = Duration::from_secs(120);

impl Endpoint {
    /// This endpoint's immutable process id.
    pub fn gpid(&self) -> Gpid {
        self.gpid
    }

    /// The network's clock (shared by all endpoints of one network).
    pub fn clock(&self) -> &Clock {
        &self.net.clock
    }

    /// The host cost model (shared by all endpoints of one network).
    pub fn cost(&self) -> &CostModel {
        &self.net.cost
    }

    /// The host this endpoint currently resides on.
    pub fn host(&self) -> HostId {
        HostId(self.host.load(Ordering::Acquire))
    }

    fn host_rec(&self) -> Arc<HostRec> {
        self.net.host(self.host())
    }

    /// Fire-and-forget send.
    pub fn send(&self, dst: Gpid, payload: Bytes) -> Result<(), NetError> {
        if self
            .net
            .transmit(self.gpid, &self.host_rec(), dst, payload, None)
        {
            Ok(())
        } else {
            Err(NetError::Unknown(dst))
        }
    }

    /// Request/reply: send `payload` to `dst` and block for the answer.
    pub fn call(&self, dst: Gpid, payload: Bytes) -> Result<Bytes, NetError> {
        self.call_deadline(dst, payload, CALL_TIMEOUT)
    }

    /// [`Self::call`] with an explicit deadline.
    pub fn call_deadline(
        &self,
        dst: Gpid,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<Bytes, NetError> {
        let (tx, rx) = bounded(1);
        if !self
            .net
            .transmit(self.gpid, &self.host_rec(), dst, payload, Some(tx))
        {
            return Err(NetError::Unknown(dst));
        }
        // The reply wait is clock-visible; the timeout itself stays a
        // *real-time* deadlock guard under both backends.
        match self.net.clock.blocked(|| rx.recv_timeout(timeout)) {
            Ok(pkt) => {
                self.net.clock.msg_received();
                if let Some(at) = pkt.deliver_at {
                    self.net.clock.sleep_until(at);
                }
                Ok(pkt.payload)
            }
            Err(e) => {
                // A late reply racing this abandonment may already sit
                // in the channel (accounted in-flight by the sender);
                // drain it so the virtual clock's in-flight count does
                // not leak for the rest of the run.
                while rx.try_recv().is_ok() {
                    self.net.clock.msg_received();
                }
                match e {
                    crossbeam_channel::RecvTimeoutError::Timeout => Err(NetError::Timeout(dst)),
                    crossbeam_channel::RecvTimeoutError::Disconnected => {
                        Err(NetError::Disconnected(dst))
                    }
                }
            }
        }
    }

    /// Issue a request without blocking for the answer: the scatter
    /// half of a scatter-gather exchange. Returns a [`PendingCall`]
    /// whose [`PendingCall::wait`] is exactly the gather half of
    /// [`Self::call_deadline`]; issuing several before waiting on any
    /// makes a multi-peer fault pay the max of the peers' latencies
    /// instead of the sum.
    pub fn call_begin(&self, dst: Gpid, payload: Bytes) -> Result<PendingCall, NetError> {
        let (tx, rx) = bounded(1);
        if !self
            .net
            .transmit(self.gpid, &self.host_rec(), dst, payload, Some(tx))
        {
            return Err(NetError::Unknown(dst));
        }
        Ok(PendingCall {
            net: Arc::clone(&self.net),
            dst,
            rx,
            got: None,
        })
    }

    fn unpack(&self, pkt: Packet) -> Incoming {
        self.net.clock.msg_received();
        if let Some(at) = pkt.deliver_at {
            self.net.clock.sleep_until(at);
        }
        let replier = pkt.reply.map(|tx| Replier {
            net: Arc::clone(&self.net),
            from: self.gpid,
            from_host: self.host_rec(),
            to: pkt.src,
            tx,
        });
        // Stash the raw reply sender inside the Replier; answering goes
        // through the full transmit path for accounting, then down the
        // channel.
        Incoming {
            src: pkt.src,
            payload: pkt.payload,
            replier,
        }
    }

    /// Blocking receive; `Err` means the network shut down.
    pub fn recv(&self) -> Result<Incoming, NetError> {
        match self.net.clock.blocked(|| self.rx.recv()) {
            Ok(pkt) => Ok(self.unpack(pkt)),
            Err(_) => Err(NetError::Disconnected(self.gpid)),
        }
    }

    /// Receive with a (real-time) deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Incoming>, NetError> {
        match self.net.clock.blocked(|| self.rx.recv_timeout(timeout)) {
            Ok(pkt) => Ok(Some(self.unpack(pkt))),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                Err(NetError::Disconnected(self.gpid))
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Incoming> {
        self.rx.try_recv().ok().map(|p| self.unpack(p))
    }

    /// Blocking receive of one message, then drain up to `max - 1`
    /// already-queued ones without blocking. One sleep/wakeup (and,
    /// in the service loop, one pass over the dispatch) amortizes over
    /// a whole burst instead of paying per message. Returns the number
    /// of messages appended to `out`; `Err` means the network shut
    /// down (nothing appended).
    pub fn recv_burst(&self, max: usize, out: &mut Vec<Incoming>) -> Result<usize, NetError> {
        let first = self.recv()?;
        out.push(first);
        let mut n = 1;
        while n < max {
            match self.rx.try_recv() {
                Ok(p) => {
                    out.push(self.unpack(p));
                    n += 1;
                }
                Err(_) => break,
            }
        }
        Ok(n)
    }
}

/// A request in flight, created by [`Endpoint::call_begin`]. Callers
/// must [`PendingCall::wait`] on it before any synchronization point:
/// under the virtual clock an unwaited reply is in-flight state, and
/// while `Drop` drains a reply that already arrived, one still on the
/// wire when the handle is dropped would stall the simulation.
pub struct PendingCall {
    net: Arc<NetInner>,
    dst: Gpid,
    rx: Receiver<Packet>,
    /// Reply taken off the channel by [`Self::ready`] but not yet
    /// claimed by [`Self::wait`] (already `msg_received`-accounted).
    got: Option<Packet>,
}

impl std::fmt::Debug for PendingCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingCall")
            .field("dst", &self.dst)
            .field("got", &self.got.is_some())
            .finish()
    }
}

impl PendingCall {
    /// Whom this request was sent to.
    pub fn dst(&self) -> Gpid {
        self.dst
    }

    /// Non-blocking: has the reply been *delivered* (arrived on the
    /// wire at or before the clock's current time)? A reply that is
    /// queued but whose modeled delivery time is still in the future
    /// reports `false` — waiting on it would block — but is taken off
    /// the channel immediately so it stops pinning the virtual clock's
    /// in-flight account while the caller computes.
    pub fn ready(&mut self) -> bool {
        if self.got.is_none() {
            if let Ok(pkt) = self.rx.try_recv() {
                self.net.clock.msg_received();
                self.got = Some(pkt);
            }
        }
        match &self.got {
            Some(pkt) => pkt.deliver_at.is_none_or(|at| self.net.clock.now() >= at),
            None => false,
        }
    }

    /// Block for the reply — the gather half of
    /// [`Endpoint::call_deadline`], with identical clock semantics:
    /// the wait is clock-visible, the timeout is a real-time deadlock
    /// guard, and wire delivery time is slept to on arrival.
    pub fn wait(mut self, timeout: Duration) -> Result<Bytes, NetError> {
        if let Some(pkt) = self.got.take() {
            if let Some(at) = pkt.deliver_at {
                self.net.clock.sleep_until(at);
            }
            return Ok(pkt.payload);
        }
        match self.net.clock.blocked(|| self.rx.recv_timeout(timeout)) {
            Ok(pkt) => {
                self.net.clock.msg_received();
                if let Some(at) = pkt.deliver_at {
                    self.net.clock.sleep_until(at);
                }
                Ok(pkt.payload)
            }
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => Err(NetError::Timeout(self.dst)),
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                Err(NetError::Disconnected(self.dst))
            }
        }
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        // A reply already sitting in the channel was accounted
        // in-flight by its sender; receive it here so the virtual
        // clock's in-flight count does not leak (same drain as the
        // `call_deadline` timeout path).
        while self.rx.try_recv().is_ok() {
            self.net.clock.msg_received();
        }
    }
}

// The Replier sends the reply packet through the network transmit path
// (for stats + emulation) but must deliver into the per-call channel,
// not the destination mailbox. transmit() routes via the endpoint
// registry, so we override: Replier::reply uses a direct channel send
// after charging the cost. Implemented here to keep the borrow story
// simple.
impl NetInner {
    fn transmit_reply(
        &self,
        src_host: &Arc<HostRec>,
        dst: Gpid,
        payload: Bytes,
        tx: &Sender<Packet>,
        src: Gpid,
    ) -> bool {
        let bytes = (payload.len() + self.model.header_bytes) as u64;
        if self.model.emulate {
            self.occupy_link(src_host, self.model.sender_time(payload.len()));
        }
        // Account (and queue on the inbound wire) at the requester's
        // current host if it still exists.
        let dst_rec = self
            .endpoints
            .read()
            .get(&dst.0)
            .map(|rec| self.host(HostId(rec.host.load(Ordering::Acquire))));
        let deliver_at = if self.model.emulate {
            let candidate = self.clock.now() + self.model.latency();
            Some(match &dst_rec {
                Some(h) => h.receive_at(candidate, self.model.receive_time(payload.len())),
                None => candidate,
            })
        } else {
            None
        };
        if let Some(h) = &dst_rec {
            h.link_stats.record_in(bytes);
        }
        src_host.link_stats.record_out(bytes);
        self.stats.record_msg(bytes);
        self.send_accounted(
            tx,
            Packet {
                src,
                payload,
                reply: None,
                deliver_at,
            },
        )
    }
}

impl Replier {
    /// Answer the request; returns `false` if the requester vanished.
    pub fn reply_checked(self, payload: Bytes) -> bool {
        let tx = self.tx.clone();
        self.net
            .transmit_reply(&self.from_host, self.to, payload, &tx, self.from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net2() -> (Network, Endpoint, Endpoint) {
        let net = Network::new(2, 1, NetModel::disabled());
        let a = net.register(HostId(0));
        let b = net.register(HostId(1));
        (net, a, b)
    }

    #[test]
    fn send_and_recv() {
        let (_net, a, b) = net2();
        a.send(b.gpid(), Bytes::from_static(b"hello")).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(&got.payload[..], b"hello");
        assert_eq!(got.src, a.gpid());
        assert!(got.replier.is_none());
    }

    #[test]
    fn request_reply_roundtrip_threaded() {
        let (_net, a, b) = net2();
        let b_gpid = b.gpid();
        let server = std::thread::spawn(move || {
            let inc = b.recv().unwrap();
            assert_eq!(&inc.payload[..], b"ping");
            inc.replier.unwrap().reply(Bytes::from_static(b"pong"));
        });
        let reply = a.call(b_gpid, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(&reply[..], b"pong");
        server.join().unwrap();
    }

    #[test]
    fn scatter_gather_call_begin() {
        let net = Network::new(3, 1, NetModel::disabled());
        let a = net.register(HostId(0));
        let b = net.register(HostId(1));
        let c = net.register(HostId(2));
        let serve = |ep: Endpoint, tag: &'static [u8]| {
            std::thread::spawn(move || {
                let inc = ep.recv().unwrap();
                inc.replier.unwrap().reply(Bytes::from_static(tag));
            })
        };
        let (bg, cg) = (b.gpid(), c.gpid());
        let sb = serve(b, b"from-b");
        let sc = serve(c, b"from-c");
        // Scatter both requests before gathering either reply.
        let pb = a.call_begin(bg, Bytes::from_static(b"ping")).unwrap();
        let pc = a.call_begin(cg, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(pb.dst(), bg);
        assert_eq!(&pb.wait(CALL_TIMEOUT).unwrap()[..], b"from-b");
        assert_eq!(&pc.wait(CALL_TIMEOUT).unwrap()[..], b"from-c");
        sb.join().unwrap();
        sc.join().unwrap();
    }

    #[test]
    fn call_begin_unknown_destination() {
        let (_net, a, _b) = net2();
        let err = a.call_begin(Gpid(999), Bytes::new()).unwrap_err();
        assert_eq!(err, NetError::Unknown(Gpid(999)));
    }

    #[test]
    fn dropped_pending_call_drains_delivered_reply() {
        let (_net, a, b) = net2();
        let b_gpid = b.gpid();
        let p = a.call_begin(b_gpid, Bytes::from_static(b"ping")).unwrap();
        let inc = b.recv().unwrap();
        inc.replier.unwrap().reply(Bytes::from_static(b"pong"));
        // Dropping without waiting must consume the delivered reply so
        // in-flight clock accounting stays balanced.
        drop(p);
    }

    #[test]
    fn unknown_destination() {
        let (_net, a, _b) = net2();
        let err = a.send(Gpid(999), Bytes::new()).unwrap_err();
        assert_eq!(err, NetError::Unknown(Gpid(999)));
    }

    #[test]
    fn unregister_makes_destination_unknown() {
        let (net, a, b) = net2();
        let bg = b.gpid();
        net.unregister(bg);
        assert_eq!(a.send(bg, Bytes::new()).unwrap_err(), NetError::Unknown(bg));
    }

    #[test]
    fn stats_count_messages_and_headers() {
        let (net, a, b) = net2();
        a.send(b.gpid(), Bytes::from(vec![0u8; 100])).unwrap();
        b.recv().unwrap();
        let s = net.stats();
        assert_eq!(s.total_msgs, 1);
        assert_eq!(s.total_bytes, 100 + 42);
        assert_eq!(s.links[0].bytes_out, 142);
        assert_eq!(s.links[1].bytes_in, 142);
        assert_eq!(s.max_link_bytes(), 142); // both links saw the same traffic
    }

    #[test]
    fn reply_accounts_on_both_links() {
        let (net, a, b) = net2();
        let b_gpid = b.gpid();
        let server = std::thread::spawn(move || {
            let inc = b.recv().unwrap();
            inc.replier.unwrap().reply(Bytes::from(vec![0u8; 10]));
        });
        a.call(b_gpid, Bytes::from(vec![0u8; 20])).unwrap();
        server.join().unwrap();
        let s = net.stats();
        assert_eq!(s.total_msgs, 2);
        assert_eq!(s.links[0].bytes_out, 20 + 42);
        assert_eq!(s.links[0].bytes_in, 10 + 42);
        assert_eq!(s.links[1].bytes_in, 20 + 42);
        assert_eq!(s.links[1].bytes_out, 10 + 42);
    }

    #[test]
    fn relabel_moves_accounting() {
        let net = Network::new(3, 1, NetModel::disabled());
        let a = net.register(HostId(0));
        let b = net.register(HostId(1));
        net.relabel(b.gpid(), HostId(2)).unwrap();
        assert_eq!(net.host_of(b.gpid()), Some(HostId(2)));
        a.send(b.gpid(), Bytes::from(vec![0u8; 8])).unwrap();
        b.recv().unwrap();
        let s = net.stats();
        assert_eq!(s.links[1].bytes_in, 0, "old host sees nothing");
        assert_eq!(s.links[2].bytes_in, 50, "new host receives");
        // Sends from b now occupy host 2's link.
        b.send(a.gpid(), Bytes::new()).unwrap();
        let s = net.stats();
        assert_eq!(s.links[2].bytes_out, 42);
    }

    #[test]
    fn relabel_unknown_gpid_errors() {
        let net = Network::new(2, 1, NetModel::disabled());
        assert!(net.relabel(Gpid(77), HostId(1)).is_err());
    }

    #[test]
    fn emulated_latency_is_enforced() {
        let mut model = NetModel::disabled();
        model.emulate = true;
        model.one_way_latency = Duration::from_micros(500);
        let net = Network::new(2, 1, model);
        let a = net.register(HostId(0));
        let b = net.register(HostId(1));
        let b_gpid = b.gpid();
        let server = std::thread::spawn(move || {
            let inc = b.recv().unwrap();
            inc.replier.unwrap().reply(Bytes::from_static(b"x"));
        });
        // Measure on the network clock so the bound holds under both
        // backends (wall time when real, exact virtual time otherwise).
        let clock = net.clock().clone();
        let t = clock.now();
        a.call(b_gpid, Bytes::from_static(b"y")).unwrap();
        let rtt = clock.elapsed_since(t);
        server.join().unwrap();
        assert!(
            rtt >= Duration::from_micros(1000),
            "roundtrip {rtt:?} < 2x latency"
        );
        assert!(
            rtt < Duration::from_millis(100),
            "roundtrip {rtt:?} unexpectedly slow"
        );
    }

    #[test]
    fn migration_charge_accounts_and_times() {
        let mut cost = CostModel::disabled();
        cost.emulate = true;
        cost.migration_bandwidth = 10e6; // 10 MB/s
        let net = Network::with_clock(2, 1, NetModel::disabled(), cost, Clock::from_env());
        let t = net.clock().now();
        let d = net.charge_migration(HostId(0), HostId(1), 1_000_000); // 0.1 s
        assert!((d.as_secs_f64() - 0.1).abs() < 1e-9);
        assert!(net.clock().elapsed_since(t) >= d);
        let s = net.stats();
        assert_eq!(s.links[0].bytes_out, 1_000_000);
        assert_eq!(s.links[1].bytes_in, 1_000_000);
    }

    #[test]
    fn cpu_slots_serialize_multiplexed_processes() {
        use std::time::Instant;
        let net = Network::new(1, 1, NetModel::disabled());
        let p1 = net.acquire_cpu(HostId(0));
        let net2 = net.clone();
        let t = Instant::now();
        let h = std::thread::spawn(move || {
            let _p2 = net2.acquire_cpu(HostId(0));
            Instant::now()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(p1);
        let acquired_at = h.join().unwrap();
        assert!(acquired_at.duration_since(t) >= Duration::from_millis(25));
    }

    #[test]
    fn concurrent_calls_stress() {
        let net = Network::new(4, 1, NetModel::disabled());
        let server_ep = net.register(HostId(0));
        let server_gpid = server_ep.gpid();
        let server = std::thread::spawn(move || {
            let mut served = 0;
            while let Ok(inc) = server_ep.recv() {
                if inc.payload.is_empty() {
                    break;
                }
                let echo = inc.payload.clone();
                inc.replier.unwrap().reply(echo);
                served += 1;
            }
            served
        });
        let mut clients = vec![];
        for i in 1..4u16 {
            let net = net.clone();
            clients.push(std::thread::spawn(move || {
                let ep = net.register(HostId(i));
                for k in 0..200u32 {
                    let msg = Bytes::from(k.to_le_bytes().to_vec());
                    let r = ep.call(server_gpid, msg.clone()).unwrap();
                    assert_eq!(r, msg);
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        // Shut the server down.
        let ep = net.register(HostId(0));
        ep.send(server_gpid, Bytes::new()).unwrap();
        assert_eq!(server.join().unwrap(), 600);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::model::NetModel;

    #[test]
    fn recv_timeout_returns_none_when_quiet() {
        let net = Network::new(1, 1, NetModel::disabled());
        let ep = net.register(HostId(0));
        let got = ep.recv_timeout(Duration::from_millis(20)).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn try_recv_nonblocking() {
        let net = Network::new(2, 1, NetModel::disabled());
        let a = net.register(HostId(0));
        let b = net.register(HostId(1));
        assert!(b.try_recv().is_none());
        a.send(b.gpid(), Bytes::from_static(b"x")).unwrap();
        // Delivery through an in-process channel is immediate.
        let got = b.try_recv().expect("message queued");
        assert_eq!(&got.payload[..], b"x");
    }

    #[test]
    fn recv_burst_drains_queued_messages_in_order() {
        let net = Network::new(2, 1, NetModel::disabled());
        let a = net.register(HostId(0));
        let b = net.register(HostId(1));
        for i in 0..5u8 {
            a.send(b.gpid(), Bytes::from(vec![i])).unwrap();
        }
        let mut burst = Vec::new();
        let n = b.recv_burst(4, &mut burst).unwrap();
        assert_eq!(n, 4, "burst caps at max");
        let vals: Vec<u8> = burst.iter().map(|i| i.payload[0]).collect();
        assert_eq!(vals, vec![0, 1, 2, 3], "burst preserves arrival order");
        burst.clear();
        assert_eq!(b.recv_burst(4, &mut burst).unwrap(), 1);
        assert_eq!(burst[0].payload[0], 4);
    }

    #[test]
    fn call_timeout_surfaces_deadlock() {
        let net = Network::new(2, 1, NetModel::disabled());
        let a = net.register(HostId(0));
        let b = net.register(HostId(1)); // nobody serves b's mailbox
        let err = a
            .call_deadline(
                b.gpid(),
                Bytes::from_static(b"?"),
                Duration::from_millis(30),
            )
            .unwrap_err();
        assert_eq!(err, NetError::Timeout(b.gpid()));
    }

    #[test]
    fn charges_are_free_without_emulation() {
        let net = Network::new(2, 1, NetModel::disabled());
        assert_eq!(net.charge_spawn(), Duration::ZERO);
        let d = net.charge_migration(HostId(0), HostId(1), 1 << 20);
        assert_eq!(d, Duration::ZERO);
        // ... but the bytes are still accounted.
        assert_eq!(net.stats().links[1].bytes_in, 1 << 20);
    }

    #[test]
    fn gpids_are_unique_across_registrations() {
        let net = Network::new(1, 1, NetModel::disabled());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let ep = net.register(HostId(0));
            assert!(seen.insert(ep.gpid()), "gpid reused");
            net.unregister(ep.gpid());
        }
    }

    #[test]
    fn messages_are_fifo_per_sender() {
        let net = Network::new(2, 1, NetModel::disabled());
        let a = net.register(HostId(0));
        let b = net.register(HostId(1));
        for i in 0..100u32 {
            a.send(b.gpid(), Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap();
        }
        for i in 0..100u32 {
            let got = b.recv().unwrap();
            assert_eq!(got.payload[..], i.to_le_bytes());
        }
    }
}
