//! Per-link traffic statistics.
//!
//! The paper's §5.4 micro-analysis hinges on the *maximum network
//! traffic per link*: on a switched Ethernet every host's link is
//! independent, so the busiest link bounds adaptation latency. We keep
//! one [`LinkStats`] per host (bytes/messages, in/out) plus global
//! counters, all updated with relaxed atomics on the send/reply paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable, shared traffic counters for one host's full-duplex link.
#[derive(Debug, Default)]
pub struct LinkStats {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    msgs_in: AtomicU64,
    msgs_out: AtomicU64,
}

impl LinkStats {
    pub(crate) fn record_out(&self, bytes: u64) {
        self.bytes_out.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_in(&self, bytes: u64) {
        self.bytes_in.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            msgs_in: self.msgs_in.load(Ordering::Relaxed),
            msgs_out: self.msgs_out.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of one link's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Bytes received by the host.
    pub bytes_in: u64,
    /// Bytes sent by the host.
    pub bytes_out: u64,
    /// Messages received.
    pub msgs_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
}

impl LinkSnapshot {
    /// Total bytes through the link (both directions).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }

    /// Total messages through the link.
    pub fn msgs_total(&self) -> u64 {
        self.msgs_in + self.msgs_out
    }

    /// Difference against an earlier snapshot (for interval measurement).
    pub fn since(&self, earlier: &LinkSnapshot) -> LinkSnapshot {
        LinkSnapshot {
            bytes_in: self.bytes_in - earlier.bytes_in,
            bytes_out: self.bytes_out - earlier.bytes_out,
            msgs_in: self.msgs_in - earlier.msgs_in,
            msgs_out: self.msgs_out - earlier.msgs_out,
        }
    }
}

/// Network-wide statistics: global counters plus one [`LinkStats`] per
/// host. Host links are appended as hosts are added and never removed
/// (a departed workstation keeps its history).
#[derive(Debug, Default)]
pub struct NetStats {
    total_msgs: AtomicU64,
    total_bytes: AtomicU64,
    links: parking_lot::RwLock<Vec<std::sync::Arc<LinkStats>>>,
}

impl NetStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add_link(&self) -> std::sync::Arc<LinkStats> {
        let link = std::sync::Arc::new(LinkStats::default());
        self.links.write().push(std::sync::Arc::clone(&link));
        link
    }

    pub(crate) fn record_msg(&self, bytes: u64) {
        self.total_msgs.fetch_add(1, Ordering::Relaxed);
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Snapshot every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            total_msgs: self.total_msgs.load(Ordering::Relaxed),
            total_bytes: self.total_bytes.load(Ordering::Relaxed),
            links: self.links.read().iter().map(|l| l.snapshot()).collect(),
        }
    }
}

/// Immutable snapshot of the whole network's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Messages sent network-wide.
    pub total_msgs: u64,
    /// Bytes sent network-wide (payload + headers).
    pub total_bytes: u64,
    /// Per-host link snapshots, indexed by `HostId.0`.
    pub links: Vec<LinkSnapshot>,
}

/// Network traffic attributed to one job of a multi-tenant run.
///
/// Each job runs on its own page space and hence its own transport, so
/// a whole [`StatsSnapshot`] belongs to exactly one job; this type just
/// stamps the totals with the owning job id so schedulers can merge
/// per-tenant snapshots into one accounting table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobTraffic {
    /// Owning job id (page-space key; 0 = single-job runs).
    pub job: u32,
    /// Messages the job put on the wire.
    pub msgs: u64,
    /// Bytes the job put on the wire (payload + headers).
    pub bytes: u64,
}

impl StatsSnapshot {
    /// Attribute this snapshot's totals to `job` (see [`JobTraffic`]).
    pub fn attributed(&self, job: u32) -> JobTraffic {
        JobTraffic {
            job,
            msgs: self.total_msgs,
            bytes: self.total_bytes,
        }
    }

    /// The busiest link's total byte count — the §5.4 bottleneck metric.
    pub fn max_link_bytes(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l.bytes_total())
            .max()
            .unwrap_or(0)
    }

    /// Index of the busiest link.
    pub fn max_link(&self) -> Option<usize> {
        (0..self.links.len()).max_by_key(|&i| self.links[i].bytes_total())
    }

    /// Counter difference against an earlier snapshot.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let links = self
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| match earlier.links.get(i) {
                Some(e) => l.since(e),
                None => *l,
            })
            .collect();
        StatsSnapshot {
            total_msgs: self.total_msgs - earlier.total_msgs,
            total_bytes: self.total_bytes - earlier.total_bytes,
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_accounting() {
        let s = NetStats::new();
        let a = s.add_link();
        let b = s.add_link();
        a.record_out(100);
        b.record_in(100);
        s.record_msg(100);
        a.record_out(50);
        b.record_in(50);
        s.record_msg(50);
        let snap = s.snapshot();
        assert_eq!(snap.total_msgs, 2);
        assert_eq!(snap.total_bytes, 150);
        assert_eq!(snap.links[0].bytes_out, 150);
        assert_eq!(snap.links[0].msgs_out, 2);
        assert_eq!(snap.links[1].bytes_in, 150);
        assert_eq!(snap.max_link_bytes(), 150);
    }

    #[test]
    fn since_subtracts() {
        let s = NetStats::new();
        let a = s.add_link();
        a.record_out(10);
        s.record_msg(10);
        let first = s.snapshot();
        a.record_out(7);
        s.record_msg(7);
        let second = s.snapshot();
        let d = second.since(&first);
        assert_eq!(d.total_bytes, 7);
        assert_eq!(d.total_msgs, 1);
        assert_eq!(d.links[0].bytes_out, 7);
        assert_eq!(d.links[0].msgs_out, 1);
    }

    #[test]
    fn since_with_new_links() {
        let s = NetStats::new();
        let a = s.add_link();
        a.record_out(10);
        s.record_msg(10);
        let first = s.snapshot();
        let b = s.add_link(); // a host joined later
        b.record_in(5);
        let second = s.snapshot();
        let d = second.since(&first);
        assert_eq!(d.links.len(), 2);
        assert_eq!(d.links[1].bytes_in, 5);
    }

    #[test]
    fn attributed_stamps_job_id() {
        let s = NetStats::new();
        let a = s.add_link();
        a.record_out(64);
        s.record_msg(64);
        let t = s.snapshot().attributed(7);
        assert_eq!(t.job, 7);
        assert_eq!(t.msgs, 1);
        assert_eq!(t.bytes, 64);
    }

    #[test]
    fn max_link_identifies_bottleneck() {
        let s = NetStats::new();
        let a = s.add_link();
        let b = s.add_link();
        let c = s.add_link();
        a.record_out(10);
        b.record_in(10);
        c.record_out(500);
        assert_eq!(s.snapshot().max_link(), Some(2));
    }
}
