//! The host-side cost model: what *computation* costs, per host.
//!
//! [`NetModel`](crate::NetModel) is purely the wire (latency, bandwidth,
//! per-message overhead). Everything a *workstation* charges lives
//! here:
//!
//! * **process creation** (`spawn_delay`, paper §5.1: 0.6–0.8 s) and the
//!   **migration image stream** (`migration_bandwidth`, paper: 8.1 MB/s
//!   through `libckpt`) — host-side costs that used to live in
//!   `NetModel`;
//! * **per-host relative speed factors** and **background-load
//!   factors** — the heterogeneous/loaded-NOW what-if knobs no real
//!   testbed could sweep;
//! * **per-kernel per-iteration compute costs**, FLOP-calibrated to the
//!   paper's testbed (§5.1: 300 MHz Pentium II). The OpenMP layer
//!   charges `region_cost × iterations / effective_speed(host)` to the
//!   cluster clock at every worksharing chunk boundary, which is what
//!   makes virtual-clock runs *quantitatively* comparable to Table 1/2
//!   rather than merely ordering-faithful.
//!
//! Shared constants with `NetModel` come from [`paper`], the single
//! source of truth for the §5.1 measurements.

use std::collections::HashMap;
use std::time::Duration;

/// The §5.1 testbed measurements — the one canonical source shared by
/// [`crate::NetModel::paper_1999`] and [`CostModel::paper_1999`].
pub mod paper {
    use std::time::Duration;

    /// One-way propagation + protocol latency (half the 126 µs 1-byte
    /// roundtrip).
    pub const ONE_WAY_LATENCY: Duration = Duration::from_micros(63);
    /// Switched full-duplex Ethernet, per direction.
    pub const BANDWIDTH_BPS: f64 = 100e6;
    /// Fixed per-message CPU cost at the sender (UDP/IP stack).
    pub const PER_MSG_OVERHEAD: Duration = Duration::from_micros(35);
    /// Ethernet + IP + UDP + protocol header bytes per message.
    pub const HEADER_BYTES: usize = 42;
    /// Checkpoint-based migration stream through `libckpt`.
    pub const MIGRATION_BANDWIDTH: f64 = 8.1e6;
    /// Process creation on a workstation (paper: 0.6–0.8 s).
    pub const SPAWN_DELAY: Duration = Duration::from_millis(700);
    /// CPU cost of receiving-and-forwarding one broadcast message at an
    /// interior fork-tree relay: one inbound stack traversal, mirroring
    /// the sender-side [`PER_MSG_OVERHEAD`] (the outbound forward
    /// additionally pays normal sender occupancy on the relay's link).
    pub const RELAY_OVERHEAD: Duration = PER_MSG_OVERHEAD;
    /// Calibrated sustained FLOP rate of one 300 MHz Pentium II on the
    /// paper's dense-loop kernels — roughly 10% of the 300 MFLOPS peak,
    /// the classic sustained fraction for memory-bound stencils on 1999
    /// SDRAM (one 8-byte load per flop at ~250 MB/s effective). All
    /// per-iteration kernel costs divide by this.
    pub const FLOPS: f64 = 30e6;
}

/// Per-host compute cost model for the simulated NOW.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Enforce spawn/migration delays on the clock. When `false`, the
    /// charges only return their durations (unit tests).
    pub emulate: bool,
    /// Charge per-iteration compute costs to the clock at worksharing
    /// chunk boundaries. Off by default: benches on the *real* clock
    /// would otherwise sleep for every modeled FLOP. Virtual-clock
    /// what-if runs switch it on to get quantitative timelines.
    pub emulate_compute: bool,
    /// Cost of creating a new process on a host (paper: 0.6–0.8 s).
    pub spawn_delay: Duration,
    /// Bandwidth of the process-image migration stream (paper: 8.1 MB/s).
    pub migration_bandwidth: f64,
    /// Per-message CPU cost of forwarding a broadcast at an interior
    /// fork-tree relay (paper: [`paper::RELAY_OVERHEAD`]). Charged by
    /// the relaying worker on top of its normal sender-side link
    /// occupancy, so the virtual clock prices the tree's extra hops
    /// honestly instead of making relaying free.
    pub relay_overhead: Duration,
    /// Sustained FLOP rate of a speed-1.0 host (paper: [`paper::FLOPS`]).
    pub flops_per_sec: f64,
    /// Relative speed factor per host id (missing ⇒ 1.0). 2.0 = twice
    /// as fast as the reference workstation.
    pub host_speeds: Vec<f64>,
    /// Background load per host id (missing ⇒ 0.0). A load of 1.0 means
    /// one competing process: effective speed halves.
    pub host_loads: Vec<f64>,
    /// Per-iteration compute cost of each named region at speed 1.0
    /// (one "iteration" = one index of the region's worksharing loop).
    pub region_costs: HashMap<String, Duration>,
    /// Multiply every emulated delay by this factor (1.0 = paper speed).
    pub time_scale: f64,
}

impl CostModel {
    /// No emulation: zero delays, infinite speeds. The right model for
    /// correctness tests.
    pub fn disabled() -> Self {
        CostModel {
            emulate: false,
            emulate_compute: false,
            spawn_delay: Duration::ZERO,
            migration_bandwidth: f64::INFINITY,
            relay_overhead: Duration::ZERO,
            flops_per_sec: f64::INFINITY,
            host_speeds: Vec::new(),
            host_loads: Vec::new(),
            region_costs: HashMap::new(),
            time_scale: 1.0,
        }
    }

    /// The paper's 1999 testbed: homogeneous 300 MHz Pentium IIs,
    /// 8.1 MB/s migration stream, 0.7 s spawn. Compute charging stays
    /// off until a kernel profile is installed (see
    /// [`Self::with_region_cost`]).
    pub fn paper_1999() -> Self {
        CostModel {
            emulate: true,
            emulate_compute: false,
            spawn_delay: paper::SPAWN_DELAY,
            migration_bandwidth: paper::MIGRATION_BANDWIDTH,
            relay_overhead: paper::RELAY_OVERHEAD,
            flops_per_sec: paper::FLOPS,
            host_speeds: Vec::new(),
            host_loads: Vec::new(),
            region_costs: HashMap::new(),
            time_scale: 1.0,
        }
    }

    /// The paper model with all delays scaled by `scale` (sanitized the
    /// same way as [`crate::NetModel::paper_scaled`]).
    pub fn paper_scaled(scale: f64) -> Self {
        let scale = if scale.is_finite() {
            scale.clamp(0.0, 1e6)
        } else {
            1.0
        };
        CostModel {
            time_scale: scale,
            ..Self::paper_1999()
        }
    }

    /// Install a per-iteration cost for `region` and switch compute
    /// charging on (builder style).
    pub fn with_region_cost(mut self, region: &str, per_iter: Duration) -> Self {
        self.region_costs.insert(region.to_owned(), per_iter);
        self.emulate_compute = true;
        self
    }

    /// Set the relative speed factor of `host` (builder style).
    pub fn with_host_speed(mut self, host: crate::HostId, speed: f64) -> Self {
        let i = host.0 as usize;
        if self.host_speeds.len() <= i {
            self.host_speeds.resize(i + 1, 1.0);
        }
        self.host_speeds[i] = speed;
        self
    }

    /// Set the per-message CPU cost a binomial-tree relay charges for
    /// forwarding or aggregating a collective message (builder style).
    /// Defaults to the paper's 35 µs per-message overhead — one extra
    /// stack traversal per relayed hop.
    pub fn with_relay_overhead(mut self, overhead: Duration) -> Self {
        self.relay_overhead = overhead;
        self
    }

    /// Set the background-load factor of `host` (builder style).
    pub fn with_host_load(mut self, host: crate::HostId, load: f64) -> Self {
        let i = host.0 as usize;
        if self.host_loads.len() <= i {
            self.host_loads.resize(i + 1, 0.0);
        }
        self.host_loads[i] = load;
        self
    }

    /// Relative speed factor of `host` (1.0 when unspecified).
    pub fn speed(&self, host: crate::HostId) -> f64 {
        self.host_speeds
            .get(host.0 as usize)
            .copied()
            .unwrap_or(1.0)
    }

    /// Background load of `host` (0.0 when unspecified).
    pub fn load(&self, host: crate::HostId) -> f64 {
        self.host_loads.get(host.0 as usize).copied().unwrap_or(0.0)
    }

    /// Effective speed of `host`: `speed / (1 + load)` — a load of 1.0
    /// (one competing process) halves throughput, exactly the paper's
    /// multiplexing model. Clamped away from zero so charges stay
    /// finite.
    pub fn effective_speed(&self, host: crate::HostId) -> f64 {
        let s = self.speed(host) / (1.0 + self.load(host).max(0.0));
        if s.is_finite() {
            s.max(1e-9)
        } else {
            1.0
        }
    }

    /// Per-iteration compute cost of `region` at speed 1.0
    /// ([`Duration::ZERO`] when unprofiled or compute charging is off).
    pub fn region_cost(&self, region: &str) -> Duration {
        if !self.emulate_compute {
            return Duration::ZERO;
        }
        self.region_costs
            .get(region)
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// Time `flops` floating-point operations take at speed 1.0
    /// (unscaled; callers divide by [`Self::effective_speed`]).
    pub fn flops_time(&self, flops: f64) -> Duration {
        if !self.flops_per_sec.is_finite() || self.flops_per_sec <= 0.0 || flops <= 0.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(flops / self.flops_per_sec)
    }

    /// Compute charge for `iters` iterations of a region with per-iter
    /// cost `per_iter`, run on `host` (scaled, speed-adjusted).
    pub fn compute_time(&self, per_iter: Duration, iters: u64, host: crate::HostId) -> Duration {
        if per_iter.is_zero() || iters == 0 {
            return Duration::ZERO;
        }
        self.scaled(
            per_iter
                .mul_f64(iters as f64)
                .div_f64(self.effective_speed(host)),
        )
    }

    /// Scale a duration by `time_scale`, sanitized the same way as
    /// [`crate::NetModel::scaled`] (the field is `pub`, so the guard
    /// must cover every construction path).
    #[inline]
    pub fn scaled(&self, d: Duration) -> Duration {
        let s = if self.time_scale.is_finite() {
            self.time_scale.clamp(0.0, 1e6)
        } else {
            1.0
        };
        if (s - 1.0).abs() < f64::EPSILON {
            d
        } else {
            d.mul_f64(s)
        }
    }

    /// Process creation delay (scaled).
    pub fn spawn_time(&self) -> Duration {
        self.scaled(self.spawn_delay)
    }

    /// CPU cost of forwarding one broadcast message at a fork-tree
    /// relay (scaled; zero when host emulation is off).
    pub fn relay_time(&self) -> Duration {
        if !self.emulate {
            return Duration::ZERO;
        }
        self.scaled(self.relay_overhead)
    }

    /// Time to stream a migration image of `bytes` (scaled), excluding
    /// spawn cost.
    pub fn migration_time(&self, bytes: usize) -> Duration {
        if !self.migration_bandwidth.is_finite() {
            return Duration::ZERO;
        }
        self.scaled(Duration::from_secs_f64(
            bytes as f64 / self.migration_bandwidth,
        ))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostId;

    #[test]
    fn disabled_model_is_free() {
        let m = CostModel::disabled();
        assert_eq!(m.spawn_time(), Duration::ZERO);
        assert_eq!(m.migration_time(50 << 20), Duration::ZERO);
        assert_eq!(m.region_cost("jacobi_sweep"), Duration::ZERO);
        assert_eq!(m.flops_time(1e9), Duration::ZERO);
    }

    /// The satellite pin: both models' `paper_1999()` constructors draw
    /// the §5.1 numbers from one constants module — 63 µs one-way,
    /// 8.1 MB/s migration, 0.7 s spawn.
    #[test]
    fn paper_constants_single_source_of_truth() {
        let cost = CostModel::paper_1999();
        let net = crate::NetModel::paper_1999();
        assert_eq!(net.one_way_latency, Duration::from_micros(63));
        assert_eq!(net.one_way_latency, paper::ONE_WAY_LATENCY);
        assert_eq!(cost.migration_bandwidth, 8.1e6);
        assert_eq!(cost.migration_bandwidth, paper::MIGRATION_BANDWIDTH);
        assert_eq!(cost.spawn_delay, Duration::from_millis(700));
        assert_eq!(cost.spawn_delay, paper::SPAWN_DELAY);
        assert_eq!(net.bandwidth_bps, paper::BANDWIDTH_BPS);
        assert_eq!(net.per_msg_overhead, paper::PER_MSG_OVERHEAD);
        assert_eq!(net.header_bytes, paper::HEADER_BYTES);
    }

    #[test]
    fn migration_rate_is_8_1_mbps() {
        let m = CostModel::paper_1999();
        // Paper: Jacobi image ≈ 6.7 s at 8.1 MB/s => ~54 MB.
        let t = m.migration_time(54 * 1000 * 1000);
        assert!((t.as_secs_f64() - 6.67).abs() < 0.1, "{t:?}");
    }

    #[test]
    fn time_scale_shrinks_host_costs() {
        let m = CostModel::paper_scaled(0.1);
        assert_eq!(m.spawn_time(), Duration::from_millis(700).mul_f64(0.1));
    }

    #[test]
    fn effective_speed_combines_speed_and_load() {
        let m = CostModel::paper_1999()
            .with_host_speed(HostId(1), 2.0)
            .with_host_load(HostId(2), 1.0);
        assert_eq!(m.effective_speed(HostId(0)), 1.0);
        assert_eq!(m.effective_speed(HostId(1)), 2.0);
        assert_eq!(m.effective_speed(HostId(2)), 0.5);
        // Unknown hosts default to the reference workstation.
        assert_eq!(m.effective_speed(HostId(63)), 1.0);
    }

    #[test]
    fn compute_time_divides_by_effective_speed() {
        let m = CostModel::paper_1999()
            .with_region_cost("k", Duration::from_micros(100))
            .with_host_speed(HostId(1), 2.0);
        let per = m.region_cost("k");
        assert_eq!(per, Duration::from_micros(100));
        assert_eq!(m.compute_time(per, 10, HostId(0)), Duration::from_millis(1));
        assert_eq!(
            m.compute_time(per, 10, HostId(1)),
            Duration::from_micros(500)
        );
    }

    #[test]
    fn region_costs_gated_by_emulate_compute() {
        let mut m = CostModel::paper_1999();
        m.region_costs
            .insert("k".to_owned(), Duration::from_micros(7));
        assert_eq!(
            m.region_cost("k"),
            Duration::ZERO,
            "charging stays off until emulate_compute is set"
        );
        m.emulate_compute = true;
        assert_eq!(m.region_cost("k"), Duration::from_micros(7));
    }

    #[test]
    fn flops_time_uses_calibrated_rate() {
        let m = CostModel::paper_1999();
        let t = m.flops_time(paper::FLOPS); // one second of flops
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9, "{t:?}");
    }
}
