//! The `NetModel`/`CostModel` delay paths under a virtual clock.
//!
//! These paths (`sender_time`, `latency`, migration streams, spawn
//! delays) were previously untestable without burning real wall time —
//! the ROADMAP tracked that as an open item. Under
//! [`Clock::new_virtual`] every charged delay is exact on the virtual
//! timeline and (near-)free in wall time, so the assertions are
//! equalities, not load-sensitive bounds.

use bytes::Bytes;
use nowmp_net::{CostModel, HostId, NetModel, Network};
use nowmp_util::Clock;
use std::time::{Duration, Instant};

fn virtual_net(model: NetModel, hosts: usize) -> Network {
    Network::with_clock(
        hosts,
        1,
        model,
        CostModel::paper_1999(),
        Clock::new_virtual(),
    )
}

#[test]
fn spawn_delay_is_exact_and_free() {
    let net = virtual_net(NetModel::paper_1999(), 2);
    let wall = Instant::now();
    let t0 = net.clock().now();
    let d = net.charge_spawn();
    assert_eq!(d, Duration::from_millis(700), "paper spawn delay");
    assert_eq!(net.clock().elapsed_since(t0), d, "virtual charge is exact");
    assert!(
        wall.elapsed() < Duration::from_millis(300),
        "0.7 s spawn took {:?} wall",
        wall.elapsed()
    );
}

#[test]
fn migration_stream_is_exact_and_free() {
    let net = virtual_net(NetModel::paper_1999(), 2);
    // Paper §5.3: a ~54 MB Jacobi image takes ~6.7 s at 8.1 MB/s.
    let bytes = 54 * 1000 * 1000;
    let t0 = net.clock().now();
    let wall = Instant::now();
    let d = net.charge_migration(HostId(0), HostId(1), bytes);
    assert!((d.as_secs_f64() - 6.67).abs() < 0.1, "{d:?}");
    assert_eq!(net.clock().elapsed_since(t0), d);
    assert!(wall.elapsed() < Duration::from_millis(300));
    let s = net.stats();
    assert_eq!(s.links[0].bytes_out, bytes as u64);
    assert_eq!(s.links[1].bytes_in, bytes as u64);
}

#[test]
fn sender_time_and_latency_are_exact_on_roundtrip() {
    let model = NetModel::paper_1999();
    let net = virtual_net(model.clone(), 2);
    let clock = net.clock().clone();
    let a = net.register(HostId(0));
    let b = net.register(HostId(1));
    let b_gpid = b.gpid();
    let clock2 = clock.clone();
    let server = std::thread::spawn(move || {
        // Long-lived simulation thread: register so virtual time holds
        // still while it runs its (zero-virtual-cost) handler.
        let _p = clock2.participant();
        let inc = b.recv().unwrap();
        inc.replier.unwrap().reply(Bytes::from(vec![0u8; 4]));
    });
    let t0 = clock.now();
    let reply = a.call(b_gpid, Bytes::from(vec![0u8; 16])).unwrap();
    assert_eq!(reply.len(), 4);
    let rtt = clock.elapsed_since(t0);
    // Request: sender serialization + overhead, then propagation; the
    // reply pays the same with its own payload size. Every term is
    // exact on the virtual timeline.
    let expect = model.sender_time(16) + model.latency() + model.sender_time(4) + model.latency();
    assert_eq!(rtt, expect, "virtual roundtrip must be exact");
    server.join().unwrap();
}

#[test]
fn delay_paths_are_deterministic_across_runs() {
    let run = || {
        let model = NetModel::paper_1999();
        let net = virtual_net(model, 2);
        let clock = net.clock().clone();
        let a = net.register(HostId(0));
        let b = net.register(HostId(1));
        let b_gpid = b.gpid();
        let clock2 = clock.clone();
        let server = std::thread::spawn(move || {
            let _p = clock2.participant();
            for _ in 0..20 {
                let inc = b.recv().unwrap();
                inc.replier.unwrap().reply(inc.payload);
            }
        });
        for k in 0..20u32 {
            let msg = Bytes::from(vec![0u8; (k % 7) as usize + 1]);
            a.call(b_gpid, msg).unwrap();
        }
        server.join().unwrap();
        net.charge_spawn();
        net.charge_migration(HostId(0), HostId(1), 123_456);
        clock.now()
    };
    assert_eq!(run(), run(), "virtual timeline must be reproducible");
}

/// Acceptance: the paper's full 0.7 s `spawn_delay` plus a volley of
/// 63 µs-latency exchanges completes in well under a second of wall
/// time, with the modeled total exact on the virtual timeline.
#[test]
fn paper_scale_delays_cost_no_wall_time() {
    let model = NetModel::paper_1999();
    let net = virtual_net(model.clone(), 2);
    let clock = net.clock().clone();
    let a = net.register(HostId(0));
    let b = net.register(HostId(1));
    let b_gpid = b.gpid();
    let clock2 = clock.clone();
    let server = std::thread::spawn(move || {
        let _p = clock2.participant();
        loop {
            let inc = b.recv().unwrap();
            if inc.payload.is_empty() {
                break;
            }
            inc.replier.unwrap().reply(Bytes::from(vec![0u8; 1]));
        }
    });

    let wall = Instant::now();
    let t0 = clock.now();
    net.charge_spawn(); // 0.7 s of modeled process creation
    let rounds = 50;
    for _ in 0..rounds {
        a.call(b_gpid, Bytes::from(vec![0u8; 1])).unwrap();
    }
    let modeled = clock.elapsed_since(t0);
    let expect = CostModel::paper_1999().spawn_time()
        + (model.sender_time(1) + model.latency() + model.sender_time(1) + model.latency())
            * rounds;
    assert_eq!(modeled, expect);
    assert!(
        modeled > Duration::from_millis(700),
        "modeled time covers the spawn delay: {modeled:?}"
    );
    assert!(
        wall.elapsed() < Duration::from_secs(1),
        "virtual run took {:?} wall",
        wall.elapsed()
    );
    a.send(b_gpid, Bytes::new()).unwrap();
    server.join().unwrap();
}

/// ISSUE 5: relay hops occupy *their own* host links, so a fanned-out
/// broadcast overlaps wire time that a flat broadcast serializes on the
/// origin's link. Four ranks, binomial shape (0 → {2, 1}, 2 → {3}): the
/// makespan is two serialized sends plus two latencies — strictly less
/// than the three serialized sends the flat broadcast would cost —
/// and the per-link counters show the forwarding charged to the relay.
#[test]
fn relay_hops_occupy_their_own_links_and_overlap() {
    let model = NetModel::paper_1999();
    let st = model.sender_time(4096);
    let lat = model.latency();
    let net = virtual_net(model, 4);
    let clock = net.clock().clone();
    let e0 = net.register(HostId(0));
    let e1 = net.register(HostId(1));
    let e2 = net.register(HostId(2));
    let e3 = net.register(HostId(3));
    let (g1, g2, g3) = (e1.gpid(), e2.gpid(), e3.gpid());
    let payload = Bytes::from(vec![0u8; 4096]);

    // Relay thread: rank 2 forwards to rank 3 on host 2's link, in
    // parallel with the origin's second send.
    let p = payload.clone();
    let relay = std::thread::spawn(move || {
        let _participant = e2.clock().participant();
        let inc = e2.recv().unwrap();
        assert_eq!(inc.payload.len(), 4096);
        e2.send(g3, p).unwrap();
    });

    let _participant = clock.participant();
    let t0 = clock.now();
    e0.send(g2, payload.clone()).unwrap(); // relay first: critical path
    e0.send(g1, payload).unwrap();
    e1.recv().unwrap();
    e3.recv().unwrap();
    let makespan = clock.elapsed_since(t0);
    relay.join().unwrap();

    assert!(
        makespan < st * 3,
        "tree makespan {makespan:?} must beat 3 serialized sends ({:?})",
        st * 3
    );
    assert!(
        makespan >= st * 2,
        "two sends serialize on the origin's link: {makespan:?}"
    );
    assert!(
        makespan <= st * 2 + lat * 3,
        "makespan {makespan:?} should be ~2 sends + 2 latencies"
    );

    let s = net.stats();
    let wire = (4096 + 42) as u64;
    assert_eq!(s.links[0].bytes_out, 2 * wire, "origin sends twice");
    assert_eq!(s.links[2].bytes_out, wire, "the relay hop bills host 2");
    assert_eq!(s.links[2].bytes_in, wire);
    assert_eq!(s.links[3].bytes_in, wire);
}
