//! OpenMP-layer integration tests: every directive over the live DSM,
//! with and without adaptation.

use nowmp_core::{ClusterConfig, LeaveSel};
use nowmp_omp::{OmpProgram, OmpSystem, Params};

fn axpy_program() -> OmpProgram {
    OmpProgram::new()
        .region("fill", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            ctx.for_static(0..n, |c, i| x.set(c.dsm(), i as usize, i as f64));
        })
        .region("axpy", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let a = p.f64();
            let x = ctx.f64vec("x");
            let y = ctx.f64vec("y");
            ctx.for_static(0..n, |c, i| {
                let v = a * x.get(c.dsm(), i as usize) + y.get(c.dsm(), i as usize);
                y.set(c.dsm(), i as usize, v);
            });
        })
        .region("sum", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            let out = ctx.f64vec("out");
            let mut local = 0.0;
            ctx.for_static(0..n, |c, i| local += x.get(c.dsm(), i as usize));
            let total = ctx.reduce_sum_f64(local);
            ctx.master(|c| {
                let o = out;
                o.set(c.dsm(), 0, total);
            });
        })
        .region("minmax", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            let out = ctx.f64vec("out");
            let mut lmax = f64::NEG_INFINITY;
            let mut lmin = f64::INFINITY;
            ctx.for_static(0..n, |c, i| {
                let v = x.get(c.dsm(), i as usize);
                lmax = lmax.max(v);
                lmin = lmin.min(v);
            });
            let gmax = ctx.reduce_max_f64(lmax);
            let gmin = ctx.reduce_min_f64(lmin);
            ctx.master(|c| {
                out.set(c.dsm(), 1, gmax);
                out.set(c.dsm(), 2, gmin);
            });
        })
        .region("dyn_square", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            ctx.for_dynamic(0..n, 7, |c, i| {
                let v = c.dsm();
                let cur = x.get(v, i as usize);
                x.set(v, i as usize, cur * cur);
            });
        })
        .region("guided_inc", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            ctx.for_guided(0..n, 4, |c, i| {
                let cur = x.get(c.dsm(), i as usize);
                x.set(c.dsm(), i as usize, cur + 1.0);
            });
        })
        .region("chunked_inc", |ctx| {
            let mut p = ctx.params();
            let n = p.u64();
            let x = ctx.f64vec("x");
            ctx.for_static_chunk(0..n, 3, |c, i| {
                let cur = x.get(c.dsm(), i as usize);
                x.set(c.dsm(), i as usize, cur + 1.0);
            });
        })
        .region("crit_count", |ctx| {
            let out = ctx.f64vec("out");
            // every process increments under a critical section
            ctx.critical(1, |c| {
                let cur = out.get(c.dsm(), 3);
                out.set(c.dsm(), 3, cur + 1.0);
            });
        })
        .region("single_mark", |ctx| {
            let out = ctx.f64vec("out");
            ctx.single(|c| {
                let cur = out.get(c.dsm(), 4);
                out.set(c.dsm(), 4, cur + 1.0);
            });
        })
        .region("sections_mark", |ctx| {
            let out = ctx.f64vec("out");
            ctx.sections(vec![
                Box::new(|c: &mut nowmp_omp::OmpCtx<'_>| {
                    let o = c.f64vec("out");
                    o.set(c.dsm(), 5, 11.0);
                }),
                Box::new(|c: &mut nowmp_omp::OmpCtx<'_>| {
                    let o = c.f64vec("out");
                    o.set(c.dsm(), 6, 22.0);
                }),
                Box::new(|c: &mut nowmp_omp::OmpCtx<'_>| {
                    let o = c.f64vec("out");
                    o.set(c.dsm(), 7, 33.0);
                }),
            ]);
            let _ = out;
        })
}

fn sys(procs: usize, n: u64) -> OmpSystem {
    let mut s = OmpSystem::new(ClusterConfig::test(procs + 1, procs), axpy_program());
    s.alloc_f64("x", n);
    s.alloc_f64("y", n);
    s.alloc_f64("out", 8);
    s
}

fn read_vec(s: &mut OmpSystem, name: &str, n: usize) -> Vec<f64> {
    s.seq(|ctx| {
        let v = ctx.f64vec(name);
        let mut out = vec![0.0; n];
        v.read_into(ctx.dsm(), 0, &mut out);
        out
    })
}

#[test]
fn static_schedule_axpy() {
    let n = 500u64;
    for procs in [1, 2, 4] {
        let mut s = sys(procs, n);
        s.parallel("fill", &Params::new().u64(n).build());
        s.parallel("axpy", &Params::new().u64(n).f64(3.0).build());
        let y = read_vec(&mut s, "y", n as usize);
        for i in 0..n as usize {
            assert_eq!(y[i], 3.0 * i as f64, "procs={procs} i={i}");
        }
        s.shutdown();
    }
}

#[test]
fn reduction_sum() {
    let n = 300u64;
    let mut s = sys(4, n);
    s.parallel("fill", &Params::new().u64(n).build());
    s.parallel("sum", &Params::new().u64(n).build());
    let out = read_vec(&mut s, "out", 1);
    let expect: f64 = (0..n).map(|i| i as f64).sum();
    assert_eq!(out[0], expect);
    s.shutdown();
}

#[test]
fn reduction_min_max() {
    let n = 100u64;
    let mut s = sys(3, n);
    s.parallel("fill", &Params::new().u64(n).build());
    s.parallel("minmax", &Params::new().u64(n).build());
    let out = read_vec(&mut s, "out", 3);
    assert_eq!(out[1], 99.0);
    assert_eq!(out[2], 0.0);
    s.shutdown();
}

#[test]
fn dynamic_schedule_covers_all() {
    let n = 200u64;
    let mut s = sys(4, n);
    s.parallel("fill", &Params::new().u64(n).build());
    s.parallel("dyn_square", &Params::new().u64(n).build());
    let x = read_vec(&mut s, "x", n as usize);
    for i in 0..n as usize {
        assert_eq!(x[i], (i * i) as f64, "i={i}");
    }
    s.shutdown();
}

#[test]
fn guided_schedule_covers_all() {
    let n = 150u64;
    let mut s = sys(3, n);
    s.parallel("fill", &Params::new().u64(n).build());
    s.parallel("guided_inc", &Params::new().u64(n).build());
    let x = read_vec(&mut s, "x", n as usize);
    for i in 0..n as usize {
        assert_eq!(x[i], i as f64 + 1.0, "i={i}");
    }
    s.shutdown();
}

#[test]
fn static_chunk_covers_all() {
    let n = 100u64;
    let mut s = sys(4, n);
    s.parallel("fill", &Params::new().u64(n).build());
    s.parallel("chunked_inc", &Params::new().u64(n).build());
    let x = read_vec(&mut s, "x", n as usize);
    for i in 0..n as usize {
        assert_eq!(x[i], i as f64 + 1.0, "i={i}");
    }
    s.shutdown();
}

#[test]
fn critical_counts_every_process() {
    let mut s = sys(4, 10);
    s.parallel("crit_count", &[]);
    let out = read_vec(&mut s, "out", 4);
    assert_eq!(out[3], 4.0, "each of the 4 processes incremented once");
    s.shutdown();
}

#[test]
fn single_runs_once() {
    let mut s = sys(4, 10);
    s.parallel("single_mark", &[]);
    s.parallel("single_mark", &[]);
    let out = read_vec(&mut s, "out", 5);
    assert_eq!(out[4], 2.0, "single body ran once per region execution");
    s.shutdown();
}

#[test]
fn sections_distribute() {
    let mut s = sys(2, 10);
    s.parallel("sections_mark", &[]);
    let out = read_vec(&mut s, "out", 8);
    assert_eq!(&out[5..8], &[11.0, 22.0, 33.0]);
    s.shutdown();
}

#[test]
fn adaptation_between_constructs() {
    let n = 400u64;
    let mut s = sys(4, n);
    s.parallel("fill", &Params::new().u64(n).build());
    // Shrink by one, grow by one, keep computing; results must be exact.
    s.adapt().leave(LeaveSel::Pid(3), None).unwrap();
    s.parallel("axpy", &Params::new().u64(n).f64(1.0).build()); // y = x
    assert_eq!(s.nprocs(), 3);
    s.join_ready().unwrap();
    s.parallel("axpy", &Params::new().u64(n).f64(1.0).build()); // y = x + y = 2x
    assert_eq!(s.nprocs(), 4);
    let y = read_vec(&mut s, "y", n as usize);
    for i in 0..n as usize {
        assert_eq!(y[i], 2.0 * i as f64);
    }
    s.shutdown();
}

#[test]
fn adaptivity_switch_defers_events() {
    let n = 100u64;
    let mut s = sys(3, n);
    s.parallel("fill", &Params::new().u64(n).build());
    s.cluster().set_adaptive(false);
    s.adapt().leave(LeaveSel::Pid(2), None).unwrap();
    s.parallel("axpy", &Params::new().u64(n).f64(1.0).build());
    assert_eq!(s.nprocs(), 3, "switch off: nobody leaves");
    s.cluster().set_adaptive(true);
    s.parallel("axpy", &Params::new().u64(n).f64(1.0).build());
    assert_eq!(s.nprocs(), 2, "switch on: the queued leave takes effect");
    s.shutdown();
}

#[test]
fn dynamic_schedule_with_adaptation() {
    let n = 120u64;
    let mut s = sys(4, n);
    s.parallel("fill", &Params::new().u64(n).build());
    s.adapt().leave(LeaveSel::Pid(2), None).unwrap();
    s.parallel("dyn_square", &Params::new().u64(n).build());
    let x = read_vec(&mut s, "x", n as usize);
    for i in 0..n as usize {
        assert_eq!(x[i], (i * i) as f64);
    }
    s.shutdown();
}

#[test]
fn recovery_replays_forks() {
    let dir = std::env::temp_dir().join("nowmp-omp-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("omp.ckpt");

    let n = 200u64;
    let cfg = ClusterConfig::test(4, 3).with_ckpt_path(path.clone());
    let mut s = OmpSystem::new(cfg.clone(), axpy_program());
    s.alloc_f64("x", n);
    s.alloc_f64("y", n);
    s.alloc_f64("out", 8);

    // Main loop: fill, then 3 axpy steps; checkpoint after step 1.
    s.parallel("fill", &Params::new().u64(n).build());
    s.parallel("axpy", &Params::new().u64(n).f64(1.0).build()); // y = x
    s.adapt().checkpoint();
    s.parallel("axpy", &Params::new().u64(n).f64(1.0).build()); // ckpt taken before this fork; then y = 2x
    s.parallel("axpy", &Params::new().u64(n).f64(1.0).build()); // y = 3x
    let y_final = read_vec(&mut s, "y", n as usize);
    s.shutdown();

    // Recover and replay the same main loop; skipped forks fast-forward.
    let (mut s2, _blob) = OmpSystem::recover(cfg, axpy_program(), &path).unwrap();
    assert_eq!(s2.replaying(), 2, "fill + first axpy were checkpointed");
    s2.parallel("fill", &Params::new().u64(n).build()); // skipped
    s2.parallel("axpy", &Params::new().u64(n).f64(1.0).build()); // skipped
    assert_eq!(s2.replaying(), 0);
    s2.parallel("axpy", &Params::new().u64(n).f64(1.0).build()); // executes: y = 2x
    s2.parallel("axpy", &Params::new().u64(n).f64(1.0).build()); // y = 3x
    let y_recovered = read_vec(&mut s2, "y", n as usize);
    assert_eq!(
        y_recovered, y_final,
        "recovered run converges to the same result"
    );
    s2.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn compute_charge_is_time_visible_on_virtual_clock() {
    use nowmp_net::CostModel;
    use nowmp_util::Clock;
    use std::time::Duration;

    let n = 100u64;
    let per_iter = Duration::from_millis(1);
    let cfg = ClusterConfig::test(3, 2)
        .with_clock(Clock::new_virtual())
        .with_cost_model(CostModel::disabled().with_region_cost("axpy", per_iter));
    let mut s = OmpSystem::new(cfg, axpy_program());
    s.alloc_f64("x", n);
    s.alloc_f64("y", n);
    s.alloc_f64("out", 8);
    s.parallel("fill", &Params::new().u64(n).build()); // unprofiled: free
    let clock = s.clock().clone();
    let t0 = clock.now();
    s.parallel("axpy", &Params::new().u64(n).f64(2.0).build());
    let took = clock.elapsed_since(t0);
    // Two procs × 50 iterations × 1 ms each, charged in parallel: the
    // construct takes (at least) one proc's 50 ms share of virtual
    // time, and nowhere near the serial 100 ms (communication is free
    // under the disabled wire model).
    assert!(took >= Duration::from_millis(50), "took {took:?}");
    assert!(took < Duration::from_millis(100), "took {took:?}");
    s.shutdown();
}

#[test]
fn slow_host_gates_the_join_under_heterogeneous_speeds() {
    use nowmp_net::{CostModel, HostId};
    use nowmp_util::Clock;
    use std::time::Duration;

    let n = 100u64;
    let per_iter = Duration::from_millis(1);
    // Worker host h1 runs at half speed: its 50-iteration block costs
    // 100 ms while the master's costs 50 ms, so the fork/join round
    // stretches to the straggler.
    let cfg = ClusterConfig::test(3, 2)
        .with_clock(Clock::new_virtual())
        .with_cost_model(
            CostModel::disabled()
                .with_region_cost("axpy", per_iter)
                .with_host_speed(HostId(1), 0.5),
        );
    let mut s = OmpSystem::new(cfg, axpy_program());
    s.alloc_f64("x", n);
    s.alloc_f64("y", n);
    s.alloc_f64("out", 8);
    s.parallel("fill", &Params::new().u64(n).build());
    let clock = s.clock().clone();
    let t0 = clock.now();
    s.parallel("axpy", &Params::new().u64(n).f64(2.0).build());
    let took = clock.elapsed_since(t0);
    assert!(
        took >= Duration::from_millis(100),
        "join must wait for the half-speed host: {took:?}"
    );
    assert!(took < Duration::from_millis(200), "took {took:?}");
    s.shutdown();
}
