//! Multi-tenant scheduler integration tests: preemption through the
//! adaptation machinery, per-job DSM isolation, and report accounting.

use nowmp_core::ClusterConfig;
use nowmp_net::CostModel;
use nowmp_omp::{JobSpec, OmpProgram, OmpSystem};
use std::time::Duration;

const N: u64 = 8;

/// A program whose one region fills the shared array with `sentinel`.
fn fill_program(sentinel: f64) -> OmpProgram {
    OmpProgram::new().region("fill", move |ctx| {
        let data = ctx.f64vec("data");
        let n = data.len();
        ctx.for_static(0..n as u64, |c, i| {
            data.set(c.dsm(), i as usize, sentinel);
        });
    })
}

fn fill_spec(name: &str, sentinel: f64, steps: u64) -> JobSpec {
    JobSpec::new(name, fill_program(sentinel))
        .with_setup(|sys| sys.alloc_f64("data", N))
        .with_steps(steps, |sys, _| sys.parallel("fill", &[]))
}

/// Pool config: homogeneous hosts, 10 ms per "fill" iteration of
/// modeled compute, everything else free.
fn pool(hosts: usize) -> ClusterConfig {
    ClusterConfig::test(hosts, 1)
        .with_cost_model(CostModel::disabled().with_region_cost("fill", Duration::from_millis(10)))
}

/// The acceptance pin: a higher-priority arrival shrinks the running
/// team via the grace-leave path, and the freed hosts land in the new
/// job within one adaptation point (one victim step).
#[test]
fn preemption_frees_hosts_within_one_adaptation_point() {
    let mut sched = nowmp_omp::jobs::Scheduler::new(pool(4));
    // `low` fills the pool: 8 iters x 10 ms / 4 procs = 20 ms per step.
    let low = sched.submit(fill_spec("low", 1.0, 40).with_procs(1, 4));
    // `hi` arrives mid-run, between low's steps, and needs 2 hosts.
    let hi = sched.submit(
        fill_spec("hi", 2.0, 3)
            .with_procs(2, 2)
            .with_priority(5)
            .arriving_at(Duration::from_millis(105)),
    );
    let report = sched.run();

    let low_stats = &report.jobs[low.id().0 as usize];
    let hi_stats = &report.jobs[hi.id().0 as usize];
    assert_eq!(low_stats.preemptions, 1, "low was shrunk exactly once");
    assert!(
        hi_stats.wait > Duration::ZERO,
        "hi queued while low shed procs"
    );
    // One adaptation point: low's next step (20 ms at 4 procs) commits
    // the shrink; hi must start by then, not a step later.
    assert!(
        hi_stats.wait <= Duration::from_millis(21),
        "freed hosts must land within one adaptation point, waited {:?}",
        hi_stats.wait
    );
    let timeline = report.log.render_timeline();
    assert!(
        timeline.contains("[job0] preempted: shedding 2 procs"),
        "timeline should show the preemption directive:\n{timeline}"
    );
    assert!(
        timeline.contains("[job1] STARTED on 2 hosts"),
        "timeline should show hi taking the freed hosts:\n{timeline}"
    );
    // When hi completes, the victim re-grows to its max.
    assert!(
        timeline.contains("[job0] grown by 2 hosts"),
        "timeline should show low re-growing:\n{timeline}"
    );
    assert!(report.makespan >= hi_stats.turnaround);
}

/// Two concurrent tenants write different sentinels to the *same-named*
/// shared array. Each job's checkpoint image must contain only its own
/// bytes: the JobId-keyed page spaces are byte-level isolated.
#[test]
fn concurrent_jobs_have_isolated_page_spaces() {
    let dir = std::env::temp_dir().join(format!("nowmp-tenancy-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("tenant.ckpt");

    const S_A: f64 = 1111.5;
    const S_B: f64 = 2222.5;
    let mut sched = nowmp_omp::jobs::Scheduler::new(pool(2).with_ckpt_path(ckpt.clone()));
    let spec = |name, sentinel| {
        JobSpec::new(name, fill_program(sentinel))
            .with_procs(1, 1)
            .with_setup(|sys| sys.alloc_f64("data", N))
            .with_steps(2, move |sys: &mut OmpSystem, iter| {
                sys.parallel("fill", &[]);
                if iter == 1 {
                    // Read back through the DSM before checkpointing:
                    // the neighbour tenant has been writing its own
                    // sentinel to "data" all along.
                    sys.seq(|ctx| {
                        let data = ctx.f64vec("data");
                        for i in 0..N as usize {
                            assert_eq!(data.get(ctx.dsm(), i), sentinel);
                        }
                    });
                    sys.checkpoint_now();
                }
            })
    };
    let a = sched.submit(spec("tenant-a", S_A));
    let b = sched.submit(spec("tenant-b", S_B));
    let report = sched.run();
    assert_eq!(report.max_concurrency, 2, "both tenants ran concurrently");

    let img_a = std::fs::read(dir.join(format!("tenant.ckpt.job{}", a.id().0))).unwrap();
    let img_b = std::fs::read(dir.join(format!("tenant.ckpt.job{}", b.id().0))).unwrap();
    let contains = |img: &[u8], v: f64| {
        let pat = v.to_le_bytes();
        img.windows(8).any(|w| w == pat)
    };
    assert!(contains(&img_a, S_A), "a's image holds a's sentinel");
    assert!(contains(&img_b, S_B), "b's image holds b's sentinel");
    assert!(
        !contains(&img_a, S_B),
        "a's image must not hold a single byte-aligned word of b's data"
    );
    assert!(
        !contains(&img_b, S_A),
        "b's image must not hold a single byte-aligned word of a's data"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Report accounting sanity over a small mixed trace.
#[test]
fn report_accounts_waits_utilization_and_traffic() {
    let mut sched = nowmp_omp::jobs::Scheduler::new(pool(2)).with_net_contention(0.5);
    sched.submit(fill_spec("first", 1.0, 4).with_procs(2, 2));
    sched.submit(
        fill_spec("second", 2.0, 2)
            .with_procs(2, 2)
            .arriving_at(Duration::from_millis(1)),
    );
    let report = sched.run();
    assert_eq!(report.jobs.len(), 2);
    // Both want the whole pool: second queues until first finishes.
    assert_eq!(report.jobs[0].wait, Duration::ZERO);
    assert!(report.jobs[1].wait > Duration::ZERO);
    assert!(report.p99_wait() >= report.wait_percentile(0.5));
    assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    assert!(report.makespan > Duration::ZERO);
    assert!(report.mean_turnaround() > Duration::ZERO);
    for j in &report.jobs {
        assert_eq!(j.traffic.job, j.id.0, "traffic is attributed per job");
        assert!(j.traffic.msgs > 0, "a DSM job talks on the wire");
    }
}
