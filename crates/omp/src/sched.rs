//! OpenMP loop schedules: how iterations map to team members.
//!
//! The SUIF pass "lets each process figure out, based on its TreadMarks
//! process identifier and the total number of processes, which
//! iterations of the loop it should execute" (§2). Because the mapping
//! is a pure function of `(pid, nprocs)`, changing `nprocs` at a fork
//! re-partitions the loop — that is the entire trick behind transparent
//! adaptation. This module implements the pure mapping functions for
//! `static`, `static,chunk` and `guided`; `dynamic` needs shared state
//! and lives in the context ([`crate::ctx::OmpCtx::for_dynamic`]).

use std::ops::Range;

/// Contiguous block partition (OpenMP `schedule(static)`).
///
/// Iterations split into `nprocs` blocks of size `ceil(n/nprocs)`;
/// process `pid` gets block `pid`. Matches the paper's applications and
/// the Figure 3 analysis.
pub fn static_block(range: Range<u64>, pid: usize, nprocs: usize) -> Range<u64> {
    assert!(nprocs > 0);
    let n = range.end.saturating_sub(range.start);
    let per = n.div_ceil(nprocs as u64);
    let lo = (range.start + per * pid as u64).min(range.end);
    let hi = (lo + per).min(range.end);
    lo..hi
}

/// Round-robin chunks (OpenMP `schedule(static, chunk)`).
///
/// Returns the chunks owned by `pid` as an iterator of sub-ranges.
pub fn static_chunks(
    range: Range<u64>,
    chunk: u64,
    pid: usize,
    nprocs: usize,
) -> impl Iterator<Item = Range<u64>> {
    assert!(nprocs > 0 && chunk > 0);
    let stride = chunk * nprocs as u64;
    let first = range.start + chunk * pid as u64;
    let end = range.end;
    (0..)
        .map(move |k| {
            let lo = first + k * stride;
            let hi = (lo + chunk).min(end);
            lo..hi
        })
        .take_while(move |r| r.start < end)
}

/// Guided chunk sizes (OpenMP `schedule(guided, min_chunk)`).
///
/// Produces the sequence of chunk sizes a guided scheduler hands out:
/// each chunk is `remaining / nprocs`, floored at `min_chunk`.
pub fn guided_chunk_sizes(n: u64, min_chunk: u64, nprocs: usize) -> Vec<u64> {
    assert!(nprocs > 0 && min_chunk > 0);
    let mut sizes = Vec::new();
    let mut remaining = n;
    while remaining > 0 {
        let c = (remaining / nprocs as u64).max(min_chunk).min(remaining);
        sizes.push(c);
        remaining -= c;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn static_block_basic() {
        assert_eq!(static_block(0..10, 0, 3), 0..4);
        assert_eq!(static_block(0..10, 1, 3), 4..8);
        assert_eq!(static_block(0..10, 2, 3), 8..10);
    }

    #[test]
    fn static_block_more_procs_than_iters() {
        assert_eq!(static_block(0..2, 0, 4), 0..1);
        assert_eq!(static_block(0..2, 1, 4), 1..2);
        assert_eq!(static_block(0..2, 2, 4), 2..2);
        assert_eq!(static_block(0..2, 3, 4), 2..2);
    }

    #[test]
    fn static_block_nonzero_start() {
        assert_eq!(static_block(100..110, 1, 2), 105..110);
    }

    #[test]
    fn static_chunks_interleave() {
        let c: Vec<_> = static_chunks(0..10, 2, 0, 2).collect();
        assert_eq!(c, vec![0..2, 4..6, 8..10]);
        let c: Vec<_> = static_chunks(0..10, 2, 1, 2).collect();
        assert_eq!(c, vec![2..4, 6..8]);
    }

    #[test]
    fn empty_range_yields_nothing() {
        for pid in 0..4 {
            let b = static_block(10..10, pid, 4);
            assert!(b.is_empty(), "static_block on empty range: {b:?}");
            assert_eq!(static_chunks(10..10, 3, pid, 4).count(), 0);
        }
        assert!(guided_chunk_sizes(0, 5, 4).is_empty());
    }

    #[test]
    fn chunk_larger_than_range() {
        // chunk > n: pid 0 takes everything in one chunk, others none.
        let c: Vec<_> = static_chunks(0..5, 10, 0, 3).collect();
        assert_eq!(c, vec![0..5]);
        assert_eq!(static_chunks(0..5, 10, 1, 3).count(), 0);
        assert_eq!(static_chunks(0..5, 10, 2, 3).count(), 0);
        // guided: min_chunk > n clamps to the remainder.
        assert_eq!(guided_chunk_sizes(5, 10, 3), vec![5]);
    }

    #[test]
    fn more_procs_than_iterations() {
        // nprocs > n: the first n pids get one iteration each.
        let n = 3u64;
        let mut got = Vec::new();
        for pid in 0..8 {
            for r in static_chunks(0..n, 1, pid, 8) {
                got.extend(r);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        let sizes = guided_chunk_sizes(3, 1, 8);
        assert_eq!(sizes.iter().sum::<u64>(), 3);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn guided_sizes_decrease() {
        let sizes = guided_chunk_sizes(100, 4, 4);
        assert_eq!(sizes.iter().sum::<u64>(), 100);
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "guided chunks shrink: {sizes:?}");
        }
        assert!(*sizes.last().unwrap() >= 1);
    }

    proptest! {
        #[test]
        fn prop_static_block_partitions(n in 0u64..10_000, start in 0u64..100, nprocs in 1usize..17) {
            let range = start..start + n;
            let mut total = 0u64;
            let mut prev_end = range.start;
            for pid in 0..nprocs {
                let b = static_block(range.clone(), pid, nprocs);
                prop_assert!(b.start >= prev_end, "blocks in order, disjoint");
                prop_assert!(b.end <= range.end);
                total += b.end - b.start;
                prev_end = b.end.max(prev_end);
            }
            prop_assert_eq!(total, n, "blocks cover the range exactly");
        }

        #[test]
        fn prop_static_chunks_partition(n in 0u64..2_000, chunk in 1u64..64, nprocs in 1usize..9) {
            let mut seen = vec![false; n as usize];
            for pid in 0..nprocs {
                for r in static_chunks(0..n, chunk, pid, nprocs) {
                    for i in r {
                        prop_assert!(!seen[i as usize], "iteration {i} assigned twice");
                        seen[i as usize] = true;
                    }
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "every iteration assigned");
        }

        #[test]
        fn prop_guided_covers(n in 0u64..100_000, min in 1u64..100, nprocs in 1usize..17) {
            let sizes = guided_chunk_sizes(n, min, nprocs);
            prop_assert_eq!(sizes.iter().sum::<u64>(), n);
            prop_assert!(sizes.iter().all(|&s| s > 0));
        }

        /// Guided chunks handed out in sequence (the way `for_guided`
        /// claims them) assign every iteration exactly once — the
        /// chunk *sizes* laid end to end tile the range with no gap
        /// and no overlap, whichever process grabs each chunk.
        #[test]
        fn prop_guided_assignment_is_exact_cover(n in 0u64..5_000, min in 1u64..64, nprocs in 1usize..9) {
            let mut seen = vec![false; n as usize];
            let mut next = 0u64;
            for c in guided_chunk_sizes(n, min, nprocs) {
                for i in next..next + c {
                    prop_assert!(!seen[i as usize], "iteration {i} assigned twice");
                    seen[i as usize] = true;
                }
                next += c;
            }
            prop_assert_eq!(next, n, "chunks tile the range exactly");
            prop_assert!(seen.iter().all(|&s| s), "every iteration assigned");
        }
    }
}
