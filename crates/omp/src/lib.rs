//! # nowmp-omp — the OpenMP-style programming layer
//!
//! The paper compiles OpenMP C with a SUIF pass that (1) outlines every
//! parallel construct into a procedure, (2) replaces the construct with
//! `Tmk_fork`/`Tmk_join`, and (3) emits iteration-partitioning code
//! driven by `(pid, nprocs)` (§2). Rust has no OpenMP frontend, so this
//! crate is that pass's output shape as a library API:
//!
//! * [`OmpProgram`] — register outlined regions by name (what the
//!   compiler would generate);
//! * [`OmpSystem`] — the runtime: sequential master phases
//!   ([`OmpSystem::seq`]) and parallel constructs
//!   ([`OmpSystem::parallel`]), each of which is an adaptation point;
//! * [`OmpCtx`] — inside a region: worksharing loops (`static`,
//!   `static,chunk`, `dynamic`, `guided`), `barrier`, `critical`,
//!   `master`/`single`/`sections`, and reductions;
//! * [`Params`]/[`ParamsReader`] — firstprivate scalars;
//! * [`mod@jobs`] — the NOW as a service: submit many programs as
//!   [`JobSpec`]s to a cluster-level [`jobs::Scheduler`] that runs them
//!   as isolated, preemptible tenants on the shared pool.
//!
//! Adaptivity stays transparent: none of the application-visible API
//! mentions joins or leaves; the iteration mapping is re-derived from
//! the team at every fork, so the same program runs on 1 process or 8,
//! shrinking and growing mid-run.
//!
//! ```no_run
//! use nowmp_core::ClusterConfig;
//! use nowmp_omp::{OmpProgram, OmpSystem, Params};
//!
//! let program = OmpProgram::new().region("axpy", |ctx| {
//!     let mut p = ctx.params();
//!     let n = p.u64();
//!     let a = p.f64();
//!     let x = ctx.f64vec("x");
//!     let y = ctx.f64vec("y");
//!     ctx.for_static(0..n, |c, i| {
//!         let v = a * x.get(c.dsm(), i as usize) + y.get(c.dsm(), i as usize);
//!         y.set(c.dsm(), i as usize, v);
//!     });
//! });
//! let mut sys = OmpSystem::new(ClusterConfig::test(4, 4), program);
//! sys.alloc_f64("x", 1000);
//! sys.alloc_f64("y", 1000);
//! sys.parallel("axpy", &Params::new().u64(1000).f64(2.0).build());
//! sys.shutdown();
//! ```

#![warn(missing_docs)]

pub mod ctx;
pub mod jobs;
pub mod params;
pub mod program;
pub mod sched;
pub mod system;

pub use ctx::OmpCtx;
pub use jobs::{JobHandle, JobSpec, JobStats, TenancyReport};
pub use params::{Params, ParamsReader};
pub use program::{OmpProgram, OmpRunner};
pub use system::OmpSystem;
