//! Multi-tenant job streams: the NOW as a service.
//!
//! The paper runs one adaptive OpenMP program on the workstation pool.
//! This module runs a *stream* of them: jobs are described by
//! [`JobSpec`]s (program + scheduling parameters + a step driver),
//! submitted to a [`Scheduler`], and executed as concurrent tenants on
//! the shared pool. The policy side lives in [`nowmp_core::sched`]; this
//! is the execution side, which turns its [`Directive`]s into actual
//! cluster operations:
//!
//! * `Start` — bring up a per-job [`OmpSystem`] on the granted hosts.
//!   Each job gets its **own DSM page space** (keyed by
//!   [`JobId`] through `DsmConfig::job`) and its own virtual clock, so
//!   tenants are byte-level isolated and their timelines independent;
//! * `Preempt` — request that many grace leaves on the victim
//!   ([`AdaptHandle::leave`], highest pids first). The shrink commits at
//!   the victim's next adaptation point — exactly the paper's
//!   owner-returns path, driven by the scheduler instead of an owner —
//!   after which the freed hosts are reported back and granted onward;
//! * `Grow` — a join ([`OmpSystem::join_ready`]) committed at the
//!   job's next adaptation point.
//!
//! Execution is a discrete-event simulation over the jobs' virtual
//! clocks: each tenant advances one step (one call of its step driver)
//! at a time, and the global timeline interleaves tenants by their next
//! ready time. Compute/network costs inside a step are whatever the
//! per-job cost model charges; an optional contention factor stretches
//! steps by their network time multiplied by the number of co-running
//! tenants, approximating a shared backbone.
//!
//! Approximations, stated: per-job host speeds are sampled from the
//! global pool at admission, and hosts granted by later `Grow`
//! directives run at the reference speed 1.0 (exact on homogeneous
//! pools); contention is a fluid model, not per-message queueing.
//!
//! [`AdaptHandle::leave`]: nowmp_core::AdaptHandle::leave

use crate::program::OmpProgram;
use crate::system::OmpSystem;
use nowmp_core::sched::{Directive, JobId, JobParams, JobPhase, Scheduler as Policy};
use nowmp_core::{ClusterConfig, EventKind, EventLog, LeaveSel};
use nowmp_net::{Gpid, HostId, JobTraffic};
use nowmp_util::{Clock, Tick};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::time::Duration;

type SetupFn = Box<dyn FnOnce(&mut OmpSystem)>;
type StepFn = Box<dyn FnMut(&mut OmpSystem, u64)>;

/// Everything the scheduler needs to run one job: the program, its
/// scheduling parameters, and a step driver (the master's main loop,
/// one call per outer iteration — each step is at least one adaptation
/// opportunity).
pub struct JobSpec {
    pub(crate) name: String,
    pub(crate) params: JobParams,
    pub(crate) program: OmpProgram,
    pub(crate) setup: Option<SetupFn>,
    pub(crate) steps: u64,
    pub(crate) step: Option<StepFn>,
}

impl JobSpec {
    /// A job running `program`, named `name` in logs and reports.
    pub fn new(name: impl Into<String>, program: OmpProgram) -> Self {
        JobSpec {
            name: name.into(),
            params: JobParams::default(),
            program,
            setup: None,
            steps: 0,
            step: None,
        }
    }

    /// Builder: replace the scheduling parameters wholesale.
    pub fn with_params(mut self, params: JobParams) -> Self {
        self.params = params;
        self
    }

    /// Builder: set the scheduling priority (higher preempts lower).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.params.priority = priority;
        self
    }

    /// Builder: the job needs at least `min` and uses at most `max`
    /// processes.
    pub fn with_procs(mut self, min: usize, max: usize) -> Self {
        let p = JobParams::new(min, max);
        self.params.min_procs = p.min_procs;
        self.params.max_procs = p.max_procs;
        self
    }

    /// Builder: the job arrives `at` into the trace (before that it is
    /// invisible to admission).
    pub fn arriving_at(mut self, at: Duration) -> Self {
        self.params.arrival = at;
        self
    }

    /// Builder: run `f` once on the freshly started system (shared
    /// array allocation, initialization).
    pub fn with_setup(mut self, f: impl FnOnce(&mut OmpSystem) + 'static) -> Self {
        self.setup = Some(Box::new(f));
        self
    }

    /// Builder: the job's main loop is `steps` calls of `f(sys, iter)`;
    /// each call should contain at least one `parallel(...)` so the
    /// scheduler's grow/shrink directives can commit.
    pub fn with_steps(mut self, steps: u64, f: impl FnMut(&mut OmpSystem, u64) + 'static) -> Self {
        self.steps = steps;
        self.step = Some(Box::new(f));
        self
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The job's scheduling parameters.
    pub fn params(&self) -> JobParams {
        self.params
    }
}

/// A bare program is a complete (driverless) job spec — this keeps the
/// classic single-job entry point `OmpSystem::new(cfg, program)`
/// working unchanged.
impl From<OmpProgram> for JobSpec {
    fn from(program: OmpProgram) -> Self {
        JobSpec::new("main", program)
    }
}

/// Ticket for a submitted job; resolve it against the
/// [`TenancyReport`] after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobHandle {
    id: JobId,
}

impl JobHandle {
    /// The scheduler-assigned job id.
    pub fn id(&self) -> JobId {
        self.id
    }
}

/// Final accounting for one job of a tenancy run.
#[derive(Debug, Clone)]
pub struct JobStats {
    /// The job.
    pub id: JobId,
    /// Its display name.
    pub name: String,
    /// Its scheduling parameters.
    pub params: JobParams,
    /// Arrival-to-start queueing delay.
    pub wait: Duration,
    /// Arrival-to-completion time.
    pub turnaround: Duration,
    /// Times the job was shrunk for higher-priority work.
    pub preemptions: u64,
    /// Network traffic the job put on (its share of) the wire.
    pub traffic: JobTraffic,
}

/// What a whole tenancy run produced.
pub struct TenancyReport {
    /// Completion time of the last job.
    pub makespan: Duration,
    /// Busy host-seconds over available host-seconds, `[0, makespan]`.
    pub utilization: f64,
    /// Most jobs running at once.
    pub max_concurrency: usize,
    /// Per-job accounting, in job-id order.
    pub jobs: Vec<JobStats>,
    /// The merged, job-tagged event timeline.
    pub log: EventLog,
}

impl TenancyReport {
    /// Rank-order percentile of the queueing delays (`p` in `[0,1]`).
    pub fn wait_percentile(&self, p: f64) -> Duration {
        let mut waits: Vec<Duration> = self.jobs.iter().map(|j| j.wait).collect();
        if waits.is_empty() {
            return Duration::ZERO;
        }
        waits.sort();
        let rank = ((p * waits.len() as f64).ceil() as usize).clamp(1, waits.len());
        waits[rank - 1]
    }

    /// The p99 queueing delay (the CI-gated tail metric).
    pub fn p99_wait(&self) -> Duration {
        self.wait_percentile(0.99)
    }

    /// Mean turnaround across jobs.
    pub fn mean_turnaround(&self) -> Duration {
        if self.jobs.is_empty() {
            return Duration::ZERO;
        }
        self.jobs.iter().map(|j| j.turnaround).sum::<Duration>() / self.jobs.len() as u32
    }
}

/// One running tenant: a per-job [`OmpSystem`] plus the bookkeeping
/// that maps its local workstations back onto the global pool.
struct Tenant {
    id: JobId,
    sys: OmpSystem,
    step: StepFn,
    steps: u64,
    iter: u64,
    /// Global time at which the tenant took its team.
    started_at: Duration,
    /// The tenant clock's origin tick (its virtual time zero).
    epoch: Tick,
    /// Contention stretch accumulated so far (added to local elapsed
    /// time when mapping onto the global timeline).
    stretch: Duration,
    /// Global time of the tenant's next step (or of its completion).
    ready_at: Duration,
    /// Local workstation slot -> global host granted by the scheduler.
    slots: Vec<Option<HostId>>,
    /// Granted hosts whose join has not been issued yet.
    grow_queue: VecDeque<HostId>,
    /// Requested leaves not yet committed: (leaver, local slot, global
    /// host it frees).
    shedding: Vec<(Gpid, u16, HostId)>,
    done: bool,
}

/// The cluster-level scheduler: submit [`JobSpec`]s, then [`run`] the
/// whole trace to completion under a global virtual timeline.
///
/// [`run`]: Scheduler::run
pub struct Scheduler {
    base: ClusterConfig,
    specs: Vec<Option<JobSpec>>,
    contention: f64,
}

impl Scheduler {
    /// A scheduler over the pool described by `base`: `base.hosts`
    /// workstations whose speeds come from `base.cost_model`. The rest
    /// of `base` (DSM, network, reassignment policy, ...) is the
    /// template every per-job cluster is built from; its clock is
    /// ignored (each job runs its own virtual clock).
    pub fn new(base: ClusterConfig) -> Self {
        Scheduler {
            base,
            specs: Vec::new(),
            contention: 0.0,
        }
    }

    /// Builder: stretch each step by `beta * (co-running tenants - 1) *
    /// (its network seconds)` — a fluid model of a shared backbone.
    /// Zero (the default) means fully independent links.
    pub fn with_net_contention(mut self, beta: f64) -> Self {
        self.contention = beta;
        self
    }

    /// Register a job for the trace. Its `arrival` parameter decides
    /// when it becomes visible to admission.
    pub fn submit(&mut self, spec: JobSpec) -> JobHandle {
        assert!(
            spec.params.min_procs <= self.base.hosts,
            "job {:?} wants min {} procs but the pool has {} hosts",
            spec.name,
            spec.params.min_procs,
            self.base.hosts
        );
        assert!(
            spec.step.is_some(),
            "job {:?} has no step driver (use with_steps)",
            spec.name
        );
        let id = JobId(self.specs.len() as u32);
        self.specs.push(Some(spec));
        JobHandle { id }
    }

    /// Run every submitted job to completion; returns the merged
    /// accounting. One-shot: the specs are consumed.
    pub fn run(&mut self) -> TenancyReport {
        let mut exec = Exec {
            policy: Policy::with_cost_model(self.base.hosts, &self.base.cost_model),
            base: self.base.clone(),
            specs: std::mem::take(&mut self.specs),
            contention: self.contention,
            tenants: Vec::new(),
            log: EventLog::with_clock(Clock::new_virtual()),
            names: Vec::new(),
            traffic: HashMap::new(),
            max_concurrency: 0,
        };
        exec.run()
    }
}

/// The in-flight state of one [`Scheduler::run`] call.
struct Exec {
    policy: Policy,
    base: ClusterConfig,
    specs: Vec<Option<JobSpec>>,
    contention: f64,
    tenants: Vec<Tenant>,
    log: EventLog,
    names: Vec<String>,
    traffic: HashMap<u32, JobTraffic>,
    max_concurrency: usize,
}

impl Exec {
    fn run(&mut self) -> TenancyReport {
        // Pre-register the whole trace; the policy gates admission on
        // each job's arrival time.
        let mut arrivals: BTreeSet<Duration> = BTreeSet::new();
        let mut initial = Vec::new();
        for i in 0..self.specs.len() {
            let (name, params) = {
                let s = self.specs[i].as_ref().expect("spec present before run");
                (s.name.clone(), s.params)
            };
            self.names.push(name);
            let (id, ds) = self.policy.submit(params, Duration::ZERO);
            debug_assert_eq!(id.0 as usize, i);
            self.log.push_job_at(
                id,
                params.arrival,
                EventKind::JobSubmitted {
                    priority: params.priority,
                    min_procs: params.min_procs,
                    max_procs: params.max_procs,
                },
            );
            arrivals.insert(params.arrival);
            initial.extend(ds);
        }
        self.apply(initial, Duration::ZERO);
        arrivals.remove(&Duration::ZERO);

        let mut makespan = Duration::ZERO;
        loop {
            self.max_concurrency = self.max_concurrency.max(self.policy.running());
            let next_arrival = arrivals.iter().next().copied();
            let next_step = self.tenants.iter().map(|t| t.ready_at).min();
            let now = match (next_arrival, next_step) {
                (None, None) => {
                    assert!(
                        self.policy.all_done(),
                        "trace stuck: {} job(s) queued but nothing runs or arrives",
                        self.policy.queued()
                    );
                    break;
                }
                (Some(a), None) => a,
                (None, Some(s)) => s,
                (Some(a), Some(s)) => a.min(s),
            };
            makespan = makespan.max(now);
            // Arrivals first: a preemption requested at the arrival
            // tick reaches the victim before its next step, so the
            // shrink commits at that step's adaptation point.
            if next_arrival == Some(now) {
                arrivals.remove(&now);
                let ds = self.policy.schedule(now);
                self.apply(ds, now);
                continue;
            }
            let idx = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| t.ready_at == now)
                .min_by_key(|(_, t)| t.id)
                .map(|(i, _)| i)
                .expect("a tenant is due");
            self.step_tenant(idx, now);
        }

        let mut jobs = Vec::new();
        for rec in self.policy.records() {
            debug_assert_eq!(rec.phase, JobPhase::Finished);
            jobs.push(JobStats {
                id: rec.id,
                name: self.names[rec.id.0 as usize].clone(),
                params: rec.params,
                wait: rec.wait().unwrap_or_default(),
                turnaround: rec.turnaround().unwrap_or_default(),
                preemptions: rec.preemptions,
                traffic: self.traffic.get(&rec.id.0).copied().unwrap_or_default(),
            });
        }
        TenancyReport {
            makespan,
            utilization: self.policy.utilization(makespan),
            max_concurrency: self.max_concurrency,
            jobs,
            log: std::mem::replace(&mut self.log, EventLog::with_clock(Clock::new_virtual())),
        }
    }

    /// Carry out scheduling directives (and whatever follow-up
    /// directives their bookkeeping produces).
    fn apply(&mut self, ds: Vec<Directive>, now: Duration) {
        let mut pending: VecDeque<Directive> = ds.into();
        while let Some(d) = pending.pop_front() {
            match d {
                Directive::Start { job, hosts } => self.start(job, hosts, now),
                Directive::Grow { job, hosts } => {
                    self.log
                        .push_job_at(job, now, EventKind::JobGrown { procs: hosts.len() });
                    let t = self.tenant_mut(job);
                    t.grow_queue.extend(hosts);
                }
                Directive::Preempt { victim, procs } => {
                    let follow = self.preempt(victim, procs, now);
                    pending.extend(follow);
                }
            }
        }
    }

    /// `Start`: build the tenant's own cluster on the granted hosts.
    fn start(&mut self, job: JobId, hosts: Vec<HostId>, now: Duration) {
        let spec = self.specs[job.0 as usize]
            .take()
            .expect("start directive for an unconsumed spec");
        let max = spec.params.max_procs;
        // Per-job cost model: local slot i runs at the global speed of
        // the i-th granted host; slots joined later default to 1.0.
        let mut cm = self.base.cost_model.clone();
        cm.host_speeds = vec![1.0; max];
        cm.host_loads = Vec::new();
        for (i, g) in hosts.iter().enumerate() {
            cm.host_speeds[i] = self.policy.pool().speed(*g);
        }
        let clock = Clock::new_virtual();
        let epoch = clock.now();
        let mut cfg = self
            .base
            .clone()
            .with_team(max, hosts.len())
            .with_clock(clock.clone())
            .with_cost_model(cm)
            .with_adaptive(true)
            .with_job(job);
        // Tenants each write their own checkpoint image.
        if let Some(p) = &self.base.ckpt_path {
            let mut per_job = p.as_os_str().to_owned();
            per_job.push(format!(".{job}"));
            cfg = cfg.with_ckpt_path(std::path::PathBuf::from(per_job));
        }
        let JobSpec {
            program,
            setup,
            steps,
            step,
            ..
        } = spec;
        let mut sys = OmpSystem::new(cfg, program);
        if let Some(f) = setup {
            f(&mut sys);
        }
        self.log.push_job_at(
            job,
            now,
            EventKind::JobStarted {
                nprocs: hosts.len(),
            },
        );
        let mut slots = vec![None; max];
        // Cluster::new seats the initial team on local hosts 0..n-1 in
        // grant order, so the slot map starts as the identity.
        for (i, g) in hosts.iter().enumerate() {
            slots[i] = Some(*g);
        }
        let elapsed = clock.elapsed_since(epoch);
        self.tenants.push(Tenant {
            id: job,
            sys,
            step: step.expect("submit() checked the driver"),
            steps,
            iter: 0,
            started_at: now,
            epoch,
            stretch: Duration::ZERO,
            ready_at: now + elapsed,
            slots,
            grow_queue: VecDeque::new(),
            shedding: Vec::new(),
            done: steps == 0,
        });
    }

    /// `Preempt`: cancel not-yet-joined grows first (they free
    /// instantly), then request grace leaves for the remainder —
    /// highest pids first, never the master, never a proc already
    /// shedding. Returns follow-up directives from instant frees.
    fn preempt(&mut self, victim: JobId, procs: usize, now: Duration) -> Vec<Directive> {
        self.log
            .push_job_at(victim, now, EventKind::JobPreempted { procs });
        let mut canceled = Vec::new();
        let t = self.tenant_mut(victim);
        let mut remaining = procs;
        while remaining > 0 {
            match t.grow_queue.pop_back() {
                Some(g) => {
                    canceled.push(g);
                    remaining -= 1;
                }
                None => break,
            }
        }
        if remaining > 0 {
            let adapt = t.sys.shared().adapt();
            let team = adapt.team();
            let already: Vec<Gpid> = t.shedding.iter().map(|(g, _, _)| *g).collect();
            for pid in (1..team.len()).rev() {
                if remaining == 0 {
                    break;
                }
                if already.contains(&team[pid]) {
                    continue;
                }
                let gpid = adapt
                    .leave(LeaveSel::Pid(pid as u16), None)
                    .expect("victim sheds a worker");
                let local = adapt.host_of(gpid).expect("leaver is placed");
                let ghost = t.slots[local.0 as usize].expect("slot maps to a granted host");
                t.shedding.push((gpid, local.0, ghost));
                remaining -= 1;
            }
        }
        debug_assert_eq!(remaining, 0, "policy never over-preempts");
        if canceled.is_empty() {
            Vec::new()
        } else {
            self.policy.released(victim, &canceled, now)
        }
    }

    /// Advance the tenant due at `now` by one step (or retire it).
    fn step_tenant(&mut self, idx: usize, now: Duration) {
        if self.tenants[idx].done {
            return self.finish_tenant(idx, now);
        }
        let active = self.tenants.iter().filter(|t| !t.done).count();
        let contention = self.contention;
        let bandwidth = self.base.net_model.bandwidth_bps;
        let t = &mut self.tenants[idx];
        // Issue pending grows; the join commits at the upcoming step's
        // adaptation point, its spawn cost lands on the tenant's clock.
        while let Some(g) = t.grow_queue.pop_front() {
            let (_, local) = t
                .sys
                .join_ready()
                .expect("granted host implies a free slot");
            t.slots[local.0 as usize] = Some(g);
        }
        let clock = t.sys.clock().clone();
        let bytes0 = t.sys.net_stats().total_bytes;
        (t.step)(&mut t.sys, t.iter);
        t.iter += 1;
        // Fluid contention: the step's wire time is stretched by the
        // co-running tenants sharing the backbone.
        if contention > 0.0 && active > 1 && bandwidth.is_finite() && bandwidth > 0.0 {
            let bytes = t.sys.net_stats().total_bytes - bytes0;
            let net_secs = bytes as f64 * 8.0 / bandwidth;
            t.stretch += Duration::from_secs_f64(contention * (active - 1) as f64 * net_secs);
        }
        t.ready_at = t.started_at + clock.elapsed_since(t.epoch) + t.stretch;
        if t.iter >= t.steps {
            t.done = true;
        }
        // Shrinks committed by this step's adaptation point free their
        // hosts now (the commit happened at the step's start).
        let team = t.sys.shared().team_view();
        let mut freed = Vec::new();
        let mut keep = Vec::new();
        for (gpid, local, ghost) in t.shedding.drain(..) {
            if team.contains(&gpid) {
                keep.push((gpid, local, ghost));
            } else {
                t.slots[local as usize] = None;
                freed.push(ghost);
            }
        }
        t.shedding = keep;
        let victim = t.id;
        if !freed.is_empty() {
            let ds = self.policy.released(victim, &freed, now);
            self.apply(ds, now);
        }
    }

    /// The tenant's last step has run: collect its stats, release its
    /// hosts and tear the per-job cluster down.
    fn finish_tenant(&mut self, idx: usize, now: Duration) {
        let t = self.tenants.swap_remove(idx);
        let job = t.id;
        self.traffic
            .insert(job.0, t.sys.net_stats().attributed(job.0));
        t.sys.shutdown();
        let ds = self.policy.finished(job, now);
        let rec = self.policy.job(job);
        self.log.push_job_at(
            job,
            now,
            EventKind::JobFinished {
                turnaround: rec.turnaround().unwrap_or_default(),
            },
        );
        self.apply(ds, now);
    }

    fn tenant_mut(&mut self, job: JobId) -> &mut Tenant {
        self.tenants
            .iter_mut()
            .find(|t| t.id == job)
            .expect("directive targets a live tenant")
    }
}
