//! The "compiled" OpenMP program: a registry of outlined parallel
//! regions.
//!
//! The paper's toolchain outlines the body of every OpenMP parallel
//! construct into a procedure (SUIF pass, §2); the master replaces the
//! construct with `Tmk_fork(procedure)`. Rust has no OpenMP frontend
//! (repro note in DESIGN.md), so the outlining is done by the
//! programmer: each region is registered under a name, and the runtime
//! dispatches fork messages to it by index. The *shape* of generated
//! code is identical — in particular, the iteration partitioning inside
//! each region is re-derived from `(pid, nprocs)` on every execution,
//! which is what makes adaptation transparent.

use crate::ctx::OmpCtx;
use nowmp_tmk::system::RegionRunner;
use nowmp_tmk::TmkCtx;
use std::sync::Arc;

type RegionFn = Arc<dyn Fn(&mut OmpCtx<'_>) + Send + Sync>;

/// A program: named, outlined parallel regions.
#[derive(Default)]
pub struct OmpProgram {
    regions: Vec<(String, RegionFn)>,
}

impl OmpProgram {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parallel region under `name` (builder style).
    /// Registration order defines region ids; every process must build
    /// the identical program (they run the same binary).
    pub fn region(
        mut self,
        name: &str,
        f: impl Fn(&mut OmpCtx<'_>) + Send + Sync + 'static,
    ) -> Self {
        assert!(
            self.id_of(name).is_none(),
            "region {name:?} registered twice"
        );
        self.regions.push((name.to_owned(), Arc::new(f)));
        self
    }

    /// Region id of `name`.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.regions
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| i as u32)
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    pub(crate) fn run(&self, region: u32, tmk: &mut TmkCtx) {
        let (name, f) = self
            .regions
            .get(region as usize)
            .unwrap_or_else(|| panic!("unknown region id {region}"));
        // Resolve this region's modeled per-iteration compute cost so
        // the worksharing loops can charge it at chunk boundaries
        // (zero when the cost model is disabled or unprofiled).
        let per_iter = tmk.cost_model().region_cost(name);
        tmk.set_iter_cost(per_iter);
        let mut ctx = OmpCtx::new(tmk);
        f(&mut ctx);
    }
}

/// Adapter plugging an [`OmpProgram`] into the DSM's fork dispatcher.
pub struct OmpRunner {
    program: Arc<OmpProgram>,
}

impl OmpRunner {
    /// Wrap a program.
    pub fn new(program: Arc<OmpProgram>) -> Self {
        OmpRunner { program }
    }
}

impl RegionRunner for OmpRunner {
    fn run(&self, region: u32, ctx: &mut TmkCtx) {
        self.program.run(region, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_sequential_ids() {
        let p = OmpProgram::new().region("a", |_| {}).region("b", |_| {});
        assert_eq!(p.id_of("a"), Some(0));
        assert_eq!(p.id_of("b"), Some(1));
        assert_eq!(p.id_of("c"), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_region_panics() {
        let _ = OmpProgram::new().region("a", |_| {}).region("a", |_| {});
    }
}
