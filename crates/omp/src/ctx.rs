//! `OmpCtx` — what code inside a parallel region programs against.
//!
//! Mirrors the OpenMP directives the paper's applications use:
//! worksharing loops (`for` with `static`, `static,chunk`, `dynamic`,
//! `guided` schedules), `barrier`, `critical`, `master`/`single`, and
//! reductions. Everything lowers onto the DSM context exactly the way
//! the SUIF-generated TreadMarks code does.
//!
//! **Compute charging.** Every worksharing loop charges the modeled
//! compute cost of the iterations it executed — `per-iteration region
//! cost × iterations / effective host speed`, resolved through the
//! [`nowmp_net::CostModel`] — to the cluster clock at each chunk
//! boundary. With the cost model disabled (the default for
//! correctness tests) the charge is a no-op; with a calibrated profile
//! under a virtual clock, `sched.rs` partitions become *time-visible*
//! and virtual runs reproduce Table 1/2 quantitatively.

use crate::params::ParamsReader;
use crate::sched;
use nowmp_tmk::shared::{SharedF64Mat, SharedF64Vec, SharedU64Vec};
use nowmp_tmk::TmkCtx;
use std::ops::Range;

/// Lock id carved out for the dynamic-schedule iteration counter.
const DYN_LOCK: u32 = 0xFFFF_0000;
/// Base for user critical-section locks.
const CRIT_BASE: u32 = 0xFFFF_1000;
/// Name of the runtime's reduction scratch array.
pub(crate) const RED_ARRAY: &str = "__omp_red";
/// Name of the runtime's dynamic-schedule counter.
pub(crate) const DYN_COUNTER: &str = "__omp_dyn";
/// Maximum team size the runtime scratch provides for.
pub(crate) const MAX_TEAM: usize = 64;

/// A `sections` work item.
pub type Section<'c, 'a> = Box<dyn FnOnce(&mut OmpCtx<'a>) + 'c>;

/// Per-region execution context (one per process per region execution).
pub struct OmpCtx<'a> {
    tmk: &'a mut TmkCtx,
}

impl<'a> OmpCtx<'a> {
    /// Wrap a DSM context.
    pub fn new(tmk: &'a mut TmkCtx) -> Self {
        OmpCtx { tmk }
    }

    /// This process's rank (0 = master).
    pub fn pid(&self) -> usize {
        self.tmk.pid() as usize
    }

    /// Team size (`omp_get_num_threads`).
    pub fn nprocs(&self) -> usize {
        self.tmk.nprocs()
    }

    /// Firstprivate parameters of this region execution.
    pub fn params(&self) -> ParamsReader<'_> {
        ParamsReader::new(self.tmk.params())
    }

    /// Strip bounds appended by [`crate::OmpSystem::parallel_strips`]
    /// (the paper's §7 loop-tiling transformation: the compiler splits
    /// one parallel loop into strips so adaptation points occur more
    /// frequently). Returns the `(lo, hi)` sub-range this fork covers,
    /// or the full `0..u64::MAX` marker when the region was launched
    /// unstripped.
    pub fn strip_bounds(&self) -> (u64, u64) {
        let raw = self.tmk.params();
        if raw.len() < 16 {
            return (0, u64::MAX);
        }
        let tail = &raw[raw.len() - 16..];
        let lo = u64::from_le_bytes(tail[0..8].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
        (lo, hi)
    }

    /// `schedule(static)` over the intersection of `range` with this
    /// fork's strip (see [`Self::strip_bounds`]).
    pub fn for_static_stripped(&mut self, range: Range<u64>, mut f: impl FnMut(&mut Self, u64)) {
        let (lo, hi) = self.strip_bounds();
        let sub = range.start.max(lo)..range.end.min(hi);
        if sub.start >= sub.end {
            return;
        }
        let block = sched::static_block(sub, self.pid(), self.nprocs());
        let iters = block.end.saturating_sub(block.start);
        for i in block {
            f(self, i);
        }
        self.tmk.charge_compute(iters);
    }

    /// Escape hatch to the DSM layer (typed arrays take this).
    pub fn dsm(&mut self) -> &mut TmkCtx {
        self.tmk
    }

    /// Charge an explicit FLOP count to the cluster clock (see
    /// [`TmkCtx::charge_flops`]) — for regions whose per-iteration work
    /// varies, where the uniform per-index charge of the worksharing
    /// loops would mis-shape the timeline. No-op unless the cost model
    /// has compute charging enabled.
    pub fn charge_flops(&mut self, flops: f64) {
        self.tmk.charge_flops(flops);
    }

    /// Look up a shared `f64` vector by name.
    pub fn f64vec(&mut self, name: &str) -> SharedF64Vec {
        SharedF64Vec::lookup(self.tmk, name)
    }

    /// Look up a shared `f64` matrix by name.
    pub fn f64mat(&mut self, name: &str, rows: u64, cols: u64) -> SharedF64Mat {
        SharedF64Mat::lookup(self.tmk, name, rows, cols)
    }

    /// Look up a shared `u64` vector by name.
    pub fn u64vec(&mut self, name: &str) -> SharedU64Vec {
        SharedU64Vec::lookup(self.tmk, name)
    }

    // ------------------------------------------------------------------
    // Worksharing
    // ------------------------------------------------------------------

    /// `#pragma omp for schedule(static)`: run `f` on this process's
    /// contiguous block of `range`. No implied barrier (the region's
    /// join provides one); call [`Self::barrier`] if needed earlier.
    pub fn for_static(&mut self, range: Range<u64>, mut f: impl FnMut(&mut Self, u64)) {
        let block = sched::static_block(range, self.pid(), self.nprocs());
        let iters = block.end.saturating_sub(block.start);
        for i in block {
            f(self, i);
        }
        self.tmk.charge_compute(iters);
    }

    /// The block of `range` this process owns under `schedule(static)`.
    pub fn my_block(&self, range: Range<u64>) -> Range<u64> {
        sched::static_block(range, self.pid(), self.nprocs())
    }

    /// `#pragma omp for schedule(static)` handing the whole contiguous
    /// block to `f` at once — for kernels that bulk-process their block
    /// (page-granular reads/writes) instead of iterating index by
    /// index. Charges the region's per-iteration compute cost for
    /// every index of the block at the chunk boundary, exactly like
    /// [`Self::for_static`].
    pub fn for_static_block(&mut self, range: Range<u64>, f: impl FnOnce(&mut Self, Range<u64>)) {
        let block = sched::static_block(range, self.pid(), self.nprocs());
        let iters = block.end.saturating_sub(block.start);
        f(self, block);
        self.tmk.charge_compute(iters);
    }

    /// `#pragma omp for schedule(static, chunk)`.
    pub fn for_static_chunk(
        &mut self,
        range: Range<u64>,
        chunk: u64,
        mut f: impl FnMut(&mut Self, u64),
    ) {
        let chunks: Vec<_> =
            sched::static_chunks(range, chunk, self.pid(), self.nprocs()).collect();
        for c in chunks {
            let iters = c.end.saturating_sub(c.start);
            for i in c {
                f(self, i);
            }
            self.tmk.charge_compute(iters);
        }
    }

    /// `#pragma omp for schedule(dynamic, chunk)`: processes grab
    /// chunks from a shared counter under a lock. Self-contained: the
    /// counter is reset by pid 0 between two barriers, then chunks are
    /// claimed until the range is exhausted. Implies a trailing barrier.
    pub fn for_dynamic(
        &mut self,
        range: Range<u64>,
        chunk: u64,
        mut f: impl FnMut(&mut Self, u64),
    ) {
        assert!(chunk > 0);
        let counter = SharedU64Vec::lookup(self.tmk, DYN_COUNTER);
        self.barrier();
        if self.pid() == 0 {
            counter.set(self.tmk, 0, range.start);
        }
        self.barrier();
        loop {
            let lo = self.tmk.critical(DYN_LOCK, |t| {
                let cur = counter.get(t, 0);
                if cur < range.end {
                    counter.set(t, 0, (cur + chunk).min(range.end));
                }
                cur
            });
            if lo >= range.end {
                break;
            }
            let hi = (lo + chunk).min(range.end);
            for i in lo..hi {
                f(self, i);
            }
            self.tmk.charge_compute(hi - lo);
        }
        self.barrier();
    }

    /// `#pragma omp for schedule(guided, min_chunk)`: like dynamic but
    /// with shrinking chunks.
    pub fn for_guided(
        &mut self,
        range: Range<u64>,
        min_chunk: u64,
        mut f: impl FnMut(&mut Self, u64),
    ) {
        assert!(min_chunk > 0);
        let n = self.nprocs() as u64;
        let counter = SharedU64Vec::lookup(self.tmk, DYN_COUNTER);
        self.barrier();
        if self.pid() == 0 {
            counter.set(self.tmk, 0, range.start);
        }
        self.barrier();
        loop {
            let (lo, hi) = self.tmk.critical(DYN_LOCK, |t| {
                let cur = counter.get(t, 0);
                if cur >= range.end {
                    (cur, cur)
                } else {
                    let remaining = range.end - cur;
                    let c = (remaining / n).max(min_chunk).min(remaining);
                    counter.set(t, 0, cur + c);
                    (cur, cur + c)
                }
            });
            if lo >= range.end {
                break;
            }
            for i in lo..hi {
                f(self, i);
            }
            self.tmk.charge_compute(hi - lo);
        }
        self.barrier();
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// `#pragma omp barrier`.
    pub fn barrier(&mut self) {
        self.tmk.barrier();
    }

    /// `#pragma omp critical(id)`: run `f` under distributed lock `id`.
    pub fn critical<R>(&mut self, id: u32, f: impl FnOnce(&mut Self) -> R) -> R {
        self.tmk.lock(CRIT_BASE + id);
        let r = f(self);
        self.tmk.unlock(CRIT_BASE + id);
        r
    }

    /// `#pragma omp master`: only pid 0 runs `f` (no implied barrier).
    pub fn master(&mut self, f: impl FnOnce(&mut Self)) {
        if self.pid() == 0 {
            f(self);
        }
    }

    /// `#pragma omp single`: pid 0 runs `f`; everyone barriers after
    /// (OpenMP's implied barrier at the end of `single`).
    pub fn single(&mut self, f: impl FnOnce(&mut Self)) {
        if self.pid() == 0 {
            f(self);
        }
        self.barrier();
    }

    /// `#pragma omp sections`: section `k` runs on pid `k % nprocs`;
    /// implied barrier at the end.
    pub fn sections(&mut self, fs: Vec<Section<'_, 'a>>) {
        let me = self.pid();
        let n = self.nprocs();
        for (k, f) in fs.into_iter().enumerate() {
            if k % n == me {
                f(self);
            }
        }
        self.barrier();
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    fn reduce_f64(&mut self, local: f64, combine: impl Fn(f64, f64) -> f64, init: f64) -> f64 {
        let n = self.nprocs();
        assert!(n <= MAX_TEAM, "team exceeds reduction scratch");
        let red = SharedF64Vec::lookup(self.tmk, RED_ARRAY);
        red.set(self.tmk, self.pid(), local);
        self.barrier();
        let mut acc = init;
        for p in 0..n {
            acc = combine(acc, red.get(self.tmk, p));
        }
        // Second barrier: nobody may overwrite the scratch for a later
        // reduction while stragglers still read this one.
        self.barrier();
        acc
    }

    /// `reduction(+: x)`: global sum of each process's `local`.
    pub fn reduce_sum_f64(&mut self, local: f64) -> f64 {
        self.reduce_f64(local, |a, b| a + b, 0.0)
    }

    /// `reduction(max: x)`.
    pub fn reduce_max_f64(&mut self, local: f64) -> f64 {
        self.reduce_f64(local, f64::max, f64::NEG_INFINITY)
    }

    /// `reduction(min: x)`.
    pub fn reduce_min_f64(&mut self, local: f64) -> f64 {
        self.reduce_f64(local, f64::min, f64::INFINITY)
    }
}
