//! `OmpSystem` — the top-level handle an application drives.
//!
//! Owns the adaptive cluster and the compiled program; provides the
//! master's sequential phase, `parallel(...)` (one OpenMP parallel
//! construct = one fork/join = one adaptation opportunity), adaptivity
//! controls, checkpointing and recovery with fork replay.

use crate::ctx::{OmpCtx, DYN_COUNTER, MAX_TEAM, RED_ARRAY};
use crate::jobs::JobSpec;
use crate::program::{OmpProgram, OmpRunner};
use nowmp_core::{
    AdaptError, AdaptHandle, Cluster, ClusterConfig, ClusterShared, EventLog, LeaveSel,
};
use nowmp_net::Gpid;
use nowmp_tmk::ElemKind;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// The application-facing runtime.
pub struct OmpSystem {
    cluster: Cluster,
    program: Arc<OmpProgram>,
    /// Forks to skip after recovery (already completed before the
    /// checkpoint; the application replays its main loop and the
    /// runtime fast-forwards).
    skip_replays: u64,
}

impl OmpSystem {
    fn setup(mut cluster: Cluster, program: Arc<OmpProgram>, skip: u64) -> Self {
        // Runtime scratch: reduction slots and the dynamic-schedule
        // counter. Allocated before any user allocation so recovery
        // (which restores the registry wholesale) keeps them stable.
        if cluster.ctx().handle(RED_ARRAY).is_none() {
            cluster.alloc(RED_ARRAY, MAX_TEAM as u64, ElemKind::F64);
            cluster.alloc(DYN_COUNTER, 1, ElemKind::U64);
        }
        OmpSystem {
            cluster,
            program,
            skip_replays: skip,
        }
    }

    /// Bring up a system running `job` on a fresh cluster. Takes
    /// anything convertible to a [`JobSpec`] — a bare [`OmpProgram`]
    /// for the classic single-job entry point, or a full spec (whose
    /// step driver, if any, is for the [`crate::jobs::Scheduler`];
    /// direct construction runs the caller's own loop and ignores it).
    pub fn new(cfg: ClusterConfig, job: impl Into<JobSpec>) -> Self {
        let spec = job.into();
        let program = Arc::new(spec.program);
        let cluster = Cluster::new(cfg, Arc::new(OmpRunner::new(Arc::clone(&program))));
        Self::setup(cluster, program, 0)
    }

    /// Recover from a checkpoint file. Returns the system (with fork
    /// replay armed) and the master's private blob. Takes the same
    /// job description [`OmpSystem::new`] does.
    pub fn recover(
        cfg: ClusterConfig,
        job: impl Into<JobSpec>,
        path: &Path,
    ) -> Result<(Self, Vec<u8>), nowmp_ckpt::CkptError> {
        let spec = job.into();
        let program = Arc::new(spec.program);
        let (cluster, blob) =
            Cluster::recover(cfg, Arc::new(OmpRunner::new(Arc::clone(&program))), path)?;
        let done = cluster.fork_no();
        Ok((Self::setup(cluster, program, done), blob))
    }

    fn alloc(&mut self, name: &str, len: u64, kind: ElemKind) {
        // Recovery replay: the registry was restored wholesale from the
        // checkpoint, so a re-executed allocation of the same name and
        // length is a no-op (the application replays its setup code).
        if let Some(e) = self.cluster.ctx().handle(name) {
            assert_eq!(
                e.len, len,
                "allocation {name:?} replayed with different length"
            );
            assert_eq!(
                e.kind, kind,
                "allocation {name:?} replayed with different kind"
            );
            return;
        }
        self.cluster.alloc(name, len, kind);
    }

    /// Allocate and publish a shared `f64` array (idempotent under
    /// recovery replay).
    pub fn alloc_f64(&mut self, name: &str, len: u64) {
        self.alloc(name, len, ElemKind::F64);
    }

    /// Allocate and publish a shared `u64` array (idempotent under
    /// recovery replay).
    pub fn alloc_u64(&mut self, name: &str, len: u64) {
        self.alloc(name, len, ElemKind::U64);
    }

    /// Run sequential master code with DSM access (the code between
    /// parallel constructs in an OpenMP program).
    ///
    /// On recovery this re-executes; sequential code must be
    /// replay-safe (deterministic, not self-mutating through shared
    /// state) or the application should use the master-state blob.
    pub fn seq<R>(&mut self, f: impl FnOnce(&mut OmpCtx<'_>) -> R) -> R {
        // Sequential code is not a profiled region: clear the
        // per-iteration cost left behind by the last parallel region so
        // a worksharing call inside `f` cannot charge that region's
        // compute to the clock.
        self.cluster.ctx().set_iter_cost(std::time::Duration::ZERO);
        let mut ctx = OmpCtx::new(self.cluster.ctx());
        f(&mut ctx)
    }

    /// Execute one OpenMP parallel construct (fork + join), processing
    /// pending adapt events at the adaptation point first. During
    /// recovery replay, already-completed forks are skipped.
    pub fn parallel(&mut self, region: &str, params: &[u8]) {
        if self.skip_replays > 0 {
            self.skip_replays -= 1;
            return;
        }
        let id = self
            .program
            .id_of(region)
            .unwrap_or_else(|| panic!("region {region:?} not registered"));
        self.cluster.parallel(id, params);
    }

    /// Forks still to be skipped during recovery replay.
    pub fn replaying(&self) -> u64 {
        self.skip_replays
    }

    /// The paper's §7 adaptation-point-frequency transformation: run
    /// one logical parallel loop over `range` as `strips` consecutive
    /// forks, each covering a contiguous sub-range. More strips = more
    /// adaptation points per logical iteration, at the cost of more
    /// fork/join rounds. The region must read its sub-range with
    /// [`OmpCtx::strip_bounds`] or iterate with
    /// [`OmpCtx::for_static_stripped`]; `params` are passed through
    /// unchanged (the strip bounds ride at the end of the blob).
    pub fn parallel_strips(
        &mut self,
        region: &str,
        range: std::ops::Range<u64>,
        strips: usize,
        params: &[u8],
    ) {
        assert!(strips > 0, "need at least one strip");
        let n = range.end.saturating_sub(range.start);
        let per = n.div_ceil(strips as u64).max(1);
        let mut lo = range.start;
        while lo < range.end {
            let hi = (lo + per).min(range.end);
            let mut blob = params.to_vec();
            blob.extend_from_slice(&lo.to_le_bytes());
            blob.extend_from_slice(&hi.to_le_bytes());
            self.parallel(region, &blob);
            lo = hi;
        }
    }

    // ------------------------------------------------------------------
    // Adaptivity controls (event sources use these; the computation
    // itself never does)
    // ------------------------------------------------------------------

    /// The typed adaptation handle — the one surface for join / leave /
    /// checkpoint requests (see [`AdaptHandle`]).
    pub fn adapt(&self) -> AdaptHandle {
        self.cluster.adapt()
    }

    /// Request a join and wait until the process is connected, so the
    /// very next adaptation point commits it (deterministic variant;
    /// needs the master, hence `&mut`). Returns the new process and
    /// the workstation it was placed on.
    pub fn join_ready(&mut self) -> Result<(Gpid, nowmp_net::HostId), AdaptError> {
        self.cluster.join_ready()
    }

    /// Deprecated spelling of [`AdaptHandle::join`].
    #[deprecated(note = "use `adapt().join()`")]
    pub fn request_join(&self) -> Result<nowmp_net::HostId, AdaptError> {
        self.cluster.adapt().join()
    }

    /// Deprecated spelling of [`OmpSystem::join_ready`].
    #[deprecated(note = "use `join_ready()`")]
    pub fn request_join_ready(&mut self) -> Result<Gpid, AdaptError> {
        self.cluster.join_ready().map(|(g, _)| g)
    }

    /// Deprecated spelling of [`AdaptHandle::leave`] by pid.
    #[deprecated(note = "use `adapt().leave(LeaveSel::Pid(pid), grace)`")]
    pub fn request_leave_pid(&self, pid: u16, grace: Option<Duration>) -> Result<Gpid, AdaptError> {
        self.cluster.adapt().leave(LeaveSel::Pid(pid), grace)
    }

    /// Deprecated spelling of [`AdaptHandle::leave`] by gpid.
    #[deprecated(note = "use `adapt().leave(LeaveSel::Gpid(gpid), grace)`")]
    pub fn request_leave(&self, gpid: Gpid, grace: Option<Duration>) -> Result<(), AdaptError> {
        self.cluster
            .adapt()
            .leave(LeaveSel::Gpid(gpid), grace)
            .map(|_| ())
    }

    /// Deprecated spelling of [`AdaptHandle::checkpoint`].
    #[deprecated(note = "use `adapt().checkpoint()`")]
    pub fn request_checkpoint(&self) {
        self.cluster.adapt().checkpoint();
    }

    /// Write a checkpoint right now (between parallel constructs).
    pub fn checkpoint_now(&mut self) {
        self.cluster.checkpoint_now();
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// DSM page size in 8-byte slots (layout decisions, e.g. padding
    /// matrix rows to page boundaries).
    pub fn page_slots(&self) -> usize {
        self.cluster.page_size() / 8
    }

    /// Current team size (`omp_get_num_procs` over the NOW).
    pub fn nprocs(&self) -> usize {
        self.cluster.nprocs()
    }

    /// Completed forks.
    pub fn fork_no(&self) -> u64 {
        self.cluster.fork_no()
    }

    /// Shared handle for external event sources (timers, sensors).
    pub fn shared(&self) -> Arc<ClusterShared> {
        self.cluster.shared()
    }

    /// The event log (timelines, adaptation records).
    pub fn log(&self) -> &EventLog {
        self.cluster.log()
    }

    /// The simulation's time source (real or virtual; see
    /// [`nowmp_util::Clock`]).
    pub fn clock(&self) -> &nowmp_util::Clock {
        self.cluster.clock()
    }

    /// DSM protocol counters.
    pub fn dsm_stats(&self) -> nowmp_tmk::DsmSnapshot {
        self.cluster.dsm_stats()
    }

    /// Network counters.
    pub fn net_stats(&self) -> nowmp_net::StatsSnapshot {
        self.cluster.net_stats()
    }

    /// Direct cluster access (benches and tests).
    pub fn cluster(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Tear everything down.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}
