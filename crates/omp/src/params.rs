//! Region parameter passing.
//!
//! An OpenMP parallel construct captures firstprivate scalars; our
//! outlined regions receive them as a small wire-encoded blob attached
//! to the fork message. [`Params`] builds the blob; [`ParamsReader`]
//! decodes it inside the region.

use nowmp_util::wire::{Dec, Enc};

/// Builder for a region's parameter blob.
#[derive(Default, Debug)]
pub struct Params {
    enc: Enc,
}

impl Params {
    /// Empty parameter list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.enc.put_u64(v);
        self
    }

    /// Append an `i64`.
    pub fn i64(mut self, v: i64) -> Self {
        self.enc.put_i64(v);
        self
    }

    /// Append an `f64`.
    pub fn f64(mut self, v: f64) -> Self {
        self.enc.put_f64(v);
        self
    }

    /// Append a string.
    pub fn str(mut self, v: &str) -> Self {
        self.enc.put_str(v);
        self
    }

    /// Finish into the blob.
    pub fn build(self) -> Vec<u8> {
        self.enc.finish()
    }
}

/// Cursor over a region's parameter blob.
pub struct ParamsReader<'a> {
    dec: Dec<'a>,
}

impl<'a> ParamsReader<'a> {
    /// Wrap a blob.
    pub fn new(buf: &'a [u8]) -> Self {
        ParamsReader { dec: Dec::new(buf) }
    }

    /// Next `u64`.
    pub fn u64(&mut self) -> u64 {
        self.dec.get_u64().expect("missing u64 region parameter")
    }

    /// Next `i64`.
    pub fn i64(&mut self) -> i64 {
        self.dec.get_i64().expect("missing i64 region parameter")
    }

    /// Next `f64`.
    pub fn f64(&mut self) -> f64 {
        self.dec.get_f64().expect("missing f64 region parameter")
    }

    /// Next string.
    pub fn str(&mut self) -> &'a str {
        self.dec.get_str().expect("missing str region parameter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let blob = Params::new().u64(7).f64(1.5).i64(-3).str("grid").build();
        let mut r = ParamsReader::new(&blob);
        assert_eq!(r.u64(), 7);
        assert_eq!(r.f64(), 1.5);
        assert_eq!(r.i64(), -3);
        assert_eq!(r.str(), "grid");
    }

    #[test]
    fn empty_params() {
        let blob = Params::new().build();
        assert!(blob.is_empty());
    }

    #[test]
    #[should_panic(expected = "missing u64")]
    fn over_read_panics() {
        let blob = Params::new().build();
        ParamsReader::new(&blob).u64();
    }
}
