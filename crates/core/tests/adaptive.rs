//! End-to-end tests of the adaptive runtime: joins, normal leaves,
//! urgent leaves (migration + multiplexing), checkpoint/recovery — all
//! with a live workload verifying data integrity across adaptations.

use nowmp_core::{
    AdaptError, Cluster, ClusterConfig, EventKind, LeaveSel, LeaveStrategy, ReassignPolicy,
};
use nowmp_tmk::shared::SharedF64Vec;
use nowmp_tmk::system::RegionRunner;
use nowmp_tmk::{ElemKind, TmkCtx};
use std::sync::Arc;
use std::time::Duration;

const R_FILL: u32 = 0;
const R_SCALE: u32 = 1;

struct App {
    n: usize,
}

impl RegionRunner for App {
    fn run(&self, region: u32, ctx: &mut TmkCtx) {
        let n = self.n;
        let per = n.div_ceil(ctx.nprocs());
        let pid = ctx.pid() as usize;
        let (lo, hi) = ((pid * per).min(n), ((pid + 1) * per).min(n));
        let v = SharedF64Vec::lookup(ctx, "v");
        match region {
            R_FILL => {
                for i in lo..hi {
                    v.set(ctx, i, i as f64);
                }
            }
            R_SCALE => {
                for i in lo..hi {
                    let x = v.get(ctx, i);
                    v.set(ctx, i, 2.0 * x);
                }
            }
            other => panic!("unknown region {other}"),
        }
    }
}

fn cluster(hosts: usize, procs: usize, n: usize) -> Cluster {
    let mut c = Cluster::new(ClusterConfig::test(hosts, procs), Arc::new(App { n }));
    c.alloc("v", n as u64, ElemKind::F64);
    c
}

fn read_v(c: &mut Cluster, n: usize) -> Vec<f64> {
    let v = SharedF64Vec::lookup(c.ctx(), "v");
    let mut out = vec![0.0; n];
    v.read_into(c.ctx(), 0, &mut out);
    out
}

fn expect_scaled(n: usize, times: u32) -> Vec<f64> {
    (0..n)
        .map(|i| i as f64 * f64::powi(2.0, times as i32))
        .collect()
}

#[test]
fn steady_state_computation() {
    let n = 300;
    let mut c = cluster(4, 4, n);
    c.parallel(R_FILL, &[]);
    for _ in 0..3 {
        c.parallel(R_SCALE, &[]);
    }
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 3));
    assert_eq!(c.nprocs(), 4);
    c.shutdown();
}

#[test]
fn normal_leave_end_process() {
    let n = 400;
    let mut c = cluster(4, 4, n);
    c.parallel(R_FILL, &[]);
    // "End" leave: highest pid.
    let leaver = c.adapt().leave(LeaveSel::Pid(3), None).unwrap();
    c.parallel(R_SCALE, &[]); // adaptation happens before this fork
    assert_eq!(c.nprocs(), 3);
    assert!(!c.team().contains(&leaver));
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    // Log recorded the leave.
    let kinds: Vec<_> = c.log().entries().into_iter().map(|e| e.kind).collect();
    assert!(kinds
        .iter()
        .any(|k| matches!(k, EventKind::NormalLeave { gpid } if *gpid == leaver)));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, EventKind::Adaptation { leaves: 1, .. })));
    c.shutdown();
}

#[test]
fn normal_leave_middle_process() {
    let n = 400;
    let mut c = cluster(4, 4, n);
    c.parallel(R_FILL, &[]);
    c.adapt().leave(LeaveSel::Pid(1), None).unwrap();
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 3);
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    c.shutdown();
}

#[test]
fn join_grows_team() {
    let n = 400;
    let mut c = cluster(4, 2, n);
    c.parallel(R_FILL, &[]);
    let (joiner, _) = c.join_ready().unwrap();
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 3);
    assert!(c.team().contains(&joiner));
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    c.shutdown();
}

#[test]
fn join_without_free_host_fails() {
    let n = 100;
    let c = cluster(2, 2, n);
    assert_eq!(c.adapt().join().unwrap_err(), AdaptError::NoFreeHost);
    c.shutdown();
}

#[test]
fn master_cannot_leave() {
    let n = 100;
    let c = cluster(2, 2, n);
    assert_eq!(
        c.adapt().leave(LeaveSel::Pid(0), None).unwrap_err(),
        AdaptError::MasterCannotLeave
    );
    c.shutdown();
}

#[test]
fn double_leave_rejected() {
    let n = 100;
    let c = cluster(3, 3, n);
    let g = c.adapt().leave(LeaveSel::Pid(2), None).unwrap();
    assert_eq!(
        c.adapt().leave(LeaveSel::Gpid(g), None).unwrap_err(),
        AdaptError::AlreadyLeaving(g)
    );
    c.shutdown();
}

#[test]
fn alternating_leave_join_preserves_results() {
    let n = 512;
    let mut c = cluster(5, 4, n);
    c.parallel(R_FILL, &[]);
    let mut scales = 0;
    for round in 0..6 {
        if round % 2 == 0 {
            let pid = (c.nprocs() - 1) as u16;
            c.adapt().leave(LeaveSel::Pid(pid), None).unwrap();
        } else {
            c.join_ready().unwrap();
        }
        c.parallel(R_SCALE, &[]);
        scales += 1;
        assert_eq!(read_v(&mut c, n), expect_scaled(n, scales), "round {round}");
    }
    c.shutdown();
}

#[test]
fn multiple_simultaneous_leaves() {
    let n = 400;
    let mut c = cluster(6, 6, n);
    c.parallel(R_FILL, &[]);
    c.adapt().leave(LeaveSel::Pid(5), None).unwrap();
    c.adapt().leave(LeaveSel::Pid(4), None).unwrap();
    c.adapt().leave(LeaveSel::Pid(3), None).unwrap();
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 3);
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    // All three left in ONE adaptation.
    let adapts = c.log().adaptations();
    assert_eq!(adapts.len(), 1);
    assert_eq!(adapts[0].3, 3, "three leaves in one adaptation");
    c.shutdown();
}

#[test]
fn simultaneous_join_and_leave_fill_gaps() {
    let n = 400;
    let cfg = ClusterConfig::test(5, 4).with_reassign(ReassignPolicy::FillGaps);
    let mut c = Cluster::new(cfg, Arc::new(App { n }));
    c.alloc("v", n as u64, ElemKind::F64);
    c.parallel(R_FILL, &[]);
    let leaver = c.adapt().leave(LeaveSel::Pid(2), None).unwrap();
    let (joiner, _) = c.join_ready().unwrap();
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 4);
    let team = c.team();
    assert_eq!(team[2], joiner, "joiner adopted the leaver's slot");
    assert!(!team.contains(&leaver));
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    c.shutdown();
}

#[test]
fn urgent_leave_migrates_and_then_leaves() {
    let n = 400;
    let mut c = cluster(4, 3, n);
    c.parallel(R_FILL, &[]);
    // Unbounded grace, then force the urgent path deterministically.
    let g = c.adapt().leave(LeaveSel::Pid(2), None).unwrap();
    assert!(c.shared().force_urgent(g));
    // The process is migrated (multiplexed) but still a team member.
    assert_eq!(c.nprocs(), 3);
    // Next adaptation point removes it.
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 2);
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    let kinds: Vec<_> = c.log().entries().into_iter().map(|e| e.kind).collect();
    assert!(kinds
        .iter()
        .any(|k| matches!(k, EventKind::UrgentMigrationStart { gpid, .. } if *gpid == g)));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, EventKind::UrgentMigrationDone { gpid, .. } if *gpid == g)));
    c.shutdown();
}

#[test]
fn urgent_leave_via_grace_timer() {
    let n = 200;
    let mut c = cluster(4, 3, n);
    c.parallel(R_FILL, &[]);
    // Tiny grace; don't reach an adaptation point until it expires.
    let g = c
        .adapt()
        .leave(LeaveSel::Pid(2), Some(Duration::from_millis(30)))
        .unwrap();
    // Poll for the timer-driven migration instead of one fixed sleep:
    // bounded wall-clock wait, immune to scheduler stalls well past
    // the 30ms grace period.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let migrated = loop {
        let kinds: Vec<_> = c.log().entries().into_iter().map(|e| e.kind).collect();
        if kinds
            .iter()
            .any(|k| matches!(k, EventKind::UrgentMigrationDone { gpid, .. } if *gpid == g))
        {
            break true;
        }
        if std::time::Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(migrated, "grace timer must trigger migration");
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 2);
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    c.shutdown();
}

#[test]
fn virtual_clock_grace_timer_fires_in_simulated_time() {
    // The paper-scale scenario the real clock can't afford in a unit
    // test: a full 3 s grace period expires and triggers the urgent
    // migration — in simulated time, at (near-)zero wall cost, with an
    // exact timestamp.
    let n = 200;
    let cfg = ClusterConfig::test(4, 3).with_clock(nowmp_util::Clock::new_virtual());
    let mut c = Cluster::new(cfg, Arc::new(App { n }));
    c.alloc("v", n as u64, ElemKind::F64);
    c.parallel(R_FILL, &[]);
    let wall = std::time::Instant::now();
    let g = c
        .adapt()
        .leave(LeaveSel::Pid(2), Some(Duration::from_secs(3)))
        .unwrap();
    // Park the master on the simulation clock: the cluster is then
    // quiescent and virtual time advances straight to the grace
    // deadline. By the time this sleep returns (at t=4 s simulated),
    // the timer thread has finished the migration.
    c.clock().sleep(Duration::from_secs(4));
    let entries = c.log().entries();
    let start = entries
        .iter()
        .find(|e| matches!(e.kind, EventKind::UrgentMigrationStart { gpid, .. } if gpid == g))
        .expect("grace timer must trigger migration");
    assert_eq!(
        start.at,
        Duration::from_secs(3),
        "migration starts exactly at grace expiry on the virtual timeline"
    );
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 2);
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    assert!(
        wall.elapsed() < Duration::from_secs(2),
        "3 s grace must not cost wall time: {:?}",
        wall.elapsed()
    );
    c.shutdown();
}

#[test]
fn interior_tree_relay_killed_mid_fork_still_completes() {
    // ISSUE 5 regression: with the binomial fork tree, pid 4 of an
    // 8-process team is an *interior relay* (it forwards forks to
    // ranks 5 and 6). Kill it mid-fork through the grace-timer path: a
    // grace so short it can only expire while the next parallel region
    // is in flight. The urgent migration freezes the computation
    // mid-region and moves the relay's process — the fork must still
    // complete and verify, the leave must commit at the next
    // adaptation point, and the compacted 7-rank tree must keep
    // delivering forks (survivor order is stable, so interior edges
    // only shrink).
    // 64 Ki slots = 128 × 4 KB pages: under the paper wire model the
    // fill region spans tens of simulated milliseconds, so a leave
    // requested at t = 2 ms with a 100 µs grace *provably* expires
    // while the fork is in flight.
    let n = 64 * 1024;
    let cfg = ClusterConfig::test(9, 8)
        .with_net_model(nowmp_net::NetModel::paper_1999())
        .with_clock(nowmp_util::Clock::new_virtual());
    assert_eq!(
        cfg.dsm.collectives.fork,
        nowmp_tmk::Broadcast::Tree,
        "tree broadcast is the default under test"
    );
    let mut c = Cluster::new(cfg, Arc::new(App { n }));
    c.alloc("v", n as u64, ElemKind::F64);
    let g = c.team()[4];
    let shared = c.shared();
    let killer = std::thread::spawn(move || {
        let _participant = shared.clock().participant();
        // Lands mid-region on the virtual timeline (the fill fork has
        // barely started moving its first pages by t = 2 ms).
        shared.clock().sleep(Duration::from_millis(2));
        shared
            .adapt()
            .leave(LeaveSel::Gpid(g), Some(Duration::from_micros(100)))
            .expect("interior relay can leave");
    });
    c.parallel(R_FILL, &[]); // the kill and its grace expiry happen in here
    killer.join().unwrap();
    // If the region somehow outran the timer, parking the master makes
    // the simulation idle and the alarm fires now.
    c.clock().sleep(Duration::from_millis(1));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let kinds: Vec<_> = c.log().entries().into_iter().map(|e| e.kind).collect();
        if kinds
            .iter()
            .any(|k| matches!(k, EventKind::UrgentMigrationDone { gpid, .. } if *gpid == g))
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "grace timer never migrated the interior relay"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Next adaptation point commits the leave; the fork tree compacts
    // to 7 ranks and further forks must still reach everyone.
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 7);
    c.parallel(R_SCALE, &[]);
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 2));
    c.shutdown();
}

#[test]
fn interior_tree_aggregator_killed_mid_join_still_completes() {
    // ISSUE 6 regression, the collection-side mirror of
    // `interior_tree_relay_killed_mid_fork_still_completes`: with the
    // binomial join reduce, pid 4 of an 8-process team *aggregates*
    // the JoinArrives of ranks 5 and 6 before forwarding one merged
    // message to rank 0. Kill it at the tail of the region: the fill
    // spans ~3.2 ms -> ~110.8 ms on the paper-model virtual timeline,
    // so a leave requested at t = 109 ms with a 100 us grace expires
    // in the join/collection window. The join must still complete
    // (escalation past the frozen aggregator, or its migrated
    // incarnation finishing the reduce), the leave must commit at the
    // next adaptation point, and the compacted 7-rank reduce tree must
    // keep collecting joins.
    let n = 64 * 1024;
    let cfg = ClusterConfig::test(9, 8)
        .with_net_model(nowmp_net::NetModel::paper_1999())
        .with_clock(nowmp_util::Clock::new_virtual());
    assert_eq!(
        cfg.dsm.collectives.join_reduce,
        nowmp_tmk::Broadcast::Tree,
        "tree join reduce is the default under test"
    );
    let mut c = Cluster::new(cfg, Arc::new(App { n }));
    c.alloc("v", n as u64, ElemKind::F64);
    let g = c.team()[4];
    let shared = c.shared();
    let killer = std::thread::spawn(move || {
        let _participant = shared.clock().participant();
        // Lands in the last ~2 ms of the region, where workers drain
        // their intervals and the reduce tree collects upward.
        shared.clock().sleep(Duration::from_millis(109));
        shared
            .adapt()
            .leave(LeaveSel::Gpid(g), Some(Duration::from_micros(100)))
            .expect("interior aggregator can leave");
    });
    c.parallel(R_FILL, &[]); // the kill and its grace expiry happen in here
    killer.join().unwrap();
    c.clock().sleep(Duration::from_millis(1));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let kinds: Vec<_> = c.log().entries().into_iter().map(|e| e.kind).collect();
        if kinds
            .iter()
            .any(|k| matches!(k, EventKind::UrgentMigrationDone { gpid, .. } if *gpid == g))
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "grace timer never migrated the interior aggregator"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Next adaptation point commits the leave; the reduce tree
    // compacts to 7 ranks and further joins must still reach rank 0.
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 7);
    c.parallel(R_SCALE, &[]);
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 2));
    c.shutdown();
}

#[test]
fn normal_leave_wins_grace_race_at_adaptation_point() {
    let n = 200;
    let mut c = cluster(4, 3, n);
    c.parallel(R_FILL, &[]);
    // Long grace: the adaptation point arrives first -> normal leave.
    let g = c
        .adapt()
        .leave(LeaveSel::Pid(2), Some(Duration::from_secs(30)))
        .unwrap();
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 2);
    let kinds: Vec<_> = c.log().entries().into_iter().map(|e| e.kind).collect();
    assert!(kinds
        .iter()
        .any(|k| matches!(k, EventKind::NormalLeave { gpid } if *gpid == g)));
    assert!(!kinds
        .iter()
        .any(|k| matches!(k, EventKind::UrgentMigrationStart { .. })));
    c.shutdown();
}

#[test]
fn scatter_leave_strategy_preserves_results() {
    let n = 512;
    let cfg = ClusterConfig::test(5, 5).with_leave_strategy(LeaveStrategy::Scatter);
    let mut c = Cluster::new(cfg, Arc::new(App { n }));
    c.alloc("v", n as u64, ElemKind::F64);
    c.parallel(R_FILL, &[]);
    c.adapt().leave(LeaveSel::Pid(4), None).unwrap();
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 4);
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    c.shutdown();
}

#[test]
fn checkpoint_and_recover() {
    let n = 300;
    let dir = std::env::temp_dir().join("nowmp-core-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("adaptive.ckpt");

    let cfg = ClusterConfig::test(3, 3)
        .with_master_state_provider(|| b"iteration=2".to_vec())
        .with_ckpt_path(path.clone());
    let mut c = Cluster::new(cfg.clone(), Arc::new(App { n }));
    c.alloc("v", n as u64, ElemKind::F64);
    c.parallel(R_FILL, &[]);
    c.parallel(R_SCALE, &[]);
    c.adapt().checkpoint();
    c.parallel(R_SCALE, &[]); // checkpoint happens at the adaptation point before this fork
    let expect_at_ckpt = expect_scaled(n, 1);
    c.shutdown();

    // Crash! Recover from the checkpoint.
    let (mut c2, blob) = Cluster::recover(cfg, Arc::new(App { n }), &path).unwrap();
    assert_eq!(blob, b"iteration=2".to_vec());
    assert_eq!(c2.fork_no(), 2, "two forks had completed at the checkpoint");
    let v = read_v(&mut c2, n);
    assert_eq!(
        v, expect_at_ckpt,
        "restored memory reflects the checkpoint moment"
    );
    // The recovered cluster computes onward.
    c2.parallel(R_SCALE, &[]);
    assert_eq!(read_v(&mut c2, n), expect_scaled(n, 2));
    c2.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn periodic_checkpoint_policy() {
    let n = 100;
    let cfg = ClusterConfig::test(2, 2).with_ckpt_every_forks(2);
    let mut c = Cluster::new(cfg, Arc::new(App { n }));
    c.alloc("v", n as u64, ElemKind::F64);
    c.parallel(R_FILL, &[]);
    for _ in 0..5 {
        c.parallel(R_SCALE, &[]);
    }
    let ckpts = c
        .log()
        .entries()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::Checkpoint { .. }))
        .count();
    assert!(ckpts >= 2, "expected periodic checkpoints, saw {ckpts}");
    c.shutdown();
}

#[test]
fn shrink_to_master_only_and_grow_back() {
    let n = 200;
    let mut c = cluster(3, 3, n);
    c.parallel(R_FILL, &[]);
    c.adapt().leave(LeaveSel::Pid(2), None).unwrap();
    c.adapt().leave(LeaveSel::Pid(1), None).unwrap();
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 1, "master-only team");
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 1));
    // Grow back.
    c.join_ready().unwrap();
    c.join_ready().unwrap();
    c.parallel(R_SCALE, &[]);
    assert_eq!(c.nprocs(), 3);
    assert_eq!(read_v(&mut c, n), expect_scaled(n, 2));
    c.shutdown();
}

#[test]
fn adaptation_records_have_traffic() {
    let n = 1024; // multiple pages -> measurable movement
    let mut c = cluster(4, 4, n);
    c.parallel(R_FILL, &[]);
    c.adapt().leave(LeaveSel::Pid(3), None).unwrap();
    c.parallel(R_SCALE, &[]);
    let adapts = c.log().adaptations();
    assert_eq!(adapts.len(), 1);
    let (_, _, _joins, leaves, _took, bytes, max_link) = adapts[0];
    assert_eq!(leaves, 1);
    assert!(bytes > 0, "adaptation moved bytes");
    assert!(max_link > 0 && max_link <= bytes);
    c.shutdown();
}
