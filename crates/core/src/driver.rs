//! Scripted event sources — the paper's workstation-availability
//! "daemon".
//!
//! "How these events are generated is beyond the scope of this paper.
//! E.g., a daemon may generate events at set times according to an
//! operational schedule, or a load sensor may be employed" (§4). This
//! module provides that daemon for experiments: a schedule of
//! join/leave/checkpoint events executed by a background thread
//! against a [`ClusterShared`] handle, mimicking workstation owners
//! coming and going while the computation runs. Offsets are measured
//! on the cluster's clock: wall time on the real backend, simulated
//! time under a virtual clock (where a whole day of churn can replay
//! in milliseconds).

use crate::cluster::{ClusterShared, LeaveSel};
use nowmp_net::Gpid;
use std::sync::Arc;
use std::time::Duration;

/// One scheduled workstation-availability event.
#[derive(Debug, Clone)]
pub enum DriverEvent {
    /// A workstation frees up: spawn a process and join at the next
    /// adaptation point.
    Join,
    /// The owner of the workstation running the process currently
    /// ranked `pid` returns, granting `grace`.
    LeaveByPid {
        /// Current rank of the process asked to leave.
        pid: u16,
        /// Grace period (None = unbounded: always a normal leave).
        grace: Option<Duration>,
    },
    /// A specific process instance is asked to leave.
    LeaveByGpid {
        /// The process instance.
        gpid: Gpid,
        /// Grace period.
        grace: Option<Duration>,
    },
    /// Take a checkpoint at the next adaptation point.
    Checkpoint,
}

/// A clock schedule: `(delay from driver start, event)` pairs.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    entries: Vec<(Duration, DriverEvent)>,
}

impl Schedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an event at `at` after driver start (builder style).
    pub fn at(mut self, at: Duration, event: DriverEvent) -> Self {
        self.entries.push((at, event));
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Handle to a running driver thread.
pub struct Driver {
    handle: Option<std::thread::JoinHandle<Vec<(Duration, Result<(), crate::AdaptError>)>>>,
}

impl Driver {
    /// Start a background daemon executing `schedule` against the
    /// cluster. Events fire in schedule order at their clock offsets;
    /// failures (e.g. no free host) are recorded, not fatal — a real
    /// availability daemon also races reality.
    pub fn spawn(shared: Arc<ClusterShared>, schedule: Schedule) -> Self {
        let mut entries = schedule.entries;
        entries.sort_by_key(|(d, _)| *d);
        let handle = std::thread::Builder::new()
            .name("nowmp-driver".into())
            .spawn(move || {
                let adapt = shared.adapt();
                let clock = shared.clock().clone();
                let _participant = clock.participant();
                let start = clock.now();
                let mut outcomes = Vec::with_capacity(entries.len());
                for (at, event) in entries {
                    let now = clock.elapsed_since(start);
                    if at > now {
                        clock.sleep(at - now);
                    }
                    let result = match &event {
                        DriverEvent::Join => adapt.join().map(|_| ()),
                        DriverEvent::LeaveByPid { pid, grace } => {
                            adapt.leave(LeaveSel::Pid(*pid), *grace).map(|_| ())
                        }
                        DriverEvent::LeaveByGpid { gpid, grace } => {
                            adapt.leave(LeaveSel::Gpid(*gpid), *grace).map(|_| ())
                        }
                        DriverEvent::Checkpoint => {
                            adapt.checkpoint();
                            Ok(())
                        }
                    };
                    outcomes.push((clock.elapsed_since(start), result));
                }
                outcomes
            })
            .expect("spawn driver thread");
        Driver {
            handle: Some(handle),
        }
    }

    /// Wait for the schedule to finish; returns per-event outcomes.
    pub fn join(mut self) -> Vec<(Duration, Result<(), crate::AdaptError>)> {
        self.handle
            .take()
            .expect("driver joined twice")
            .join()
            .expect("driver panicked")
    }
}

impl Drop for Driver {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_builder_orders_entries() {
        let s = Schedule::new()
            .at(Duration::from_millis(50), DriverEvent::Join)
            .at(Duration::from_millis(10), DriverEvent::Checkpoint);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
