//! Workstation pool bookkeeping: which processes occupy which hosts,
//! and how fast each host is.
//!
//! A NOW's nodes come and go; the pool tracks occupancy so the adaptive
//! layer can place joiners on free workstations and pick multiplexing
//! targets for urgent migrations (Figure 2c: the migrated process
//! time-shares its new host). Since the [`nowmp_net::CostModel`] split,
//! the pool also tracks each host's *effective speed* so target
//! selection prefers fast hosts in heterogeneous what-if scenarios.
//!
//! The pool's spawn order is also the team's rank order, which the
//! binomial **fork tree** (`nowmp_tmk::tree`) is built over. Rank order
//! must stay stable across reassignment and host loss —
//! [`crate::ReassignPolicy::CompactKeepOrder`] keeps survivors'
//! relative order, so a leave only *compacts* the relay tree instead
//! of reshuffling interior edges (see `reassign::tests` for the pin).

use nowmp_net::{Gpid, HostId};

/// Occupancy table, indexed by `HostId`.
#[derive(Debug, Default)]
pub struct HostPool {
    occupants: Vec<Vec<Gpid>>,
    reserved: Vec<bool>,
    /// Effective speed factor per host (1.0 = the reference
    /// workstation); see [`nowmp_net::CostModel::effective_speed`].
    speeds: Vec<f64>,
}

impl HostPool {
    /// Pool over `hosts` workstations, all at the reference speed.
    pub fn new(hosts: usize) -> Self {
        HostPool {
            occupants: vec![Vec::new(); hosts],
            reserved: vec![false; hosts],
            speeds: vec![1.0; hosts],
        }
    }

    /// Register one more workstation (reference speed); returns its id.
    pub fn add_host(&mut self) -> HostId {
        self.occupants.push(Vec::new());
        self.reserved.push(false);
        self.speeds.push(1.0);
        HostId(self.occupants.len() as u16 - 1)
    }

    /// Record the effective speed of `host` (non-positive or non-finite
    /// values are clamped to a small positive epsilon).
    pub fn set_speed(&mut self, host: HostId, speed: f64) {
        let s = if speed.is_finite() {
            speed.max(1e-9)
        } else {
            1.0
        };
        self.speeds[host.0 as usize] = s;
    }

    /// Effective speed of `host`.
    pub fn speed(&self, host: HostId) -> f64 {
        self.speeds[host.0 as usize]
    }

    /// Reserve a free workstation for a process being spawned; returns
    /// `None` when every host is occupied or reserved. Among free
    /// hosts, the *fastest* wins; ties break on the lowest host id.
    pub fn reserve_free(&mut self) -> Option<HostId> {
        let host = self.free_host()?;
        self.reserved[host.0 as usize] = true;
        Some(host)
    }

    /// Clear a reservation (after the process lands, or on failure).
    pub fn unreserve(&mut self, host: HostId) {
        self.reserved[host.0 as usize] = false;
    }

    /// Number of workstations.
    pub fn len(&self) -> usize {
        self.occupants.len()
    }

    /// True when the pool has no workstations.
    pub fn is_empty(&self) -> bool {
        self.occupants.is_empty()
    }

    /// Place `gpid` on `host`.
    pub fn occupy(&mut self, host: HostId, gpid: Gpid) {
        let o = &mut self.occupants[host.0 as usize];
        debug_assert!(!o.contains(&gpid));
        o.push(gpid);
    }

    /// Remove `gpid` from `host`.
    pub fn vacate(&mut self, host: HostId, gpid: Gpid) {
        self.occupants[host.0 as usize].retain(|&g| g != gpid);
    }

    /// Occupant count of `host`.
    pub fn occupancy(&self, host: HostId) -> usize {
        self.occupants[host.0 as usize].len()
    }

    /// Host of `gpid`, if placed.
    pub fn host_of(&self, gpid: Gpid) -> Option<HostId> {
        self.occupants
            .iter()
            .position(|o| o.contains(&gpid))
            .map(|i| HostId(i as u16))
    }

    /// An unoccupied, unreserved workstation, if any. Among free hosts
    /// the fastest wins; ties break on the lowest host id (the
    /// strictly-greater comparison below keeps the first maximum, so
    /// the choice is deterministic for equal speeds).
    pub fn free_host(&self) -> Option<HostId> {
        let mut best: Option<usize> = None;
        for (i, o) in self.occupants.iter().enumerate() {
            if !o.is_empty() || self.reserved[i] {
                continue;
            }
            match best {
                Some(b) if self.speeds[i] <= self.speeds[b] => {}
                _ => best = Some(i),
            }
        }
        best.map(|i| HostId(i as u16))
    }

    /// Every unoccupied, unreserved workstation, fastest first (ties
    /// break on the lowest host id). The cluster scheduler grants from
    /// the front of this list, so multi-host placement uses the same
    /// effective-speed scoring as the single-host [`Self::free_host`].
    pub fn free_hosts(&self) -> Vec<HostId> {
        let mut free: Vec<usize> = (0..self.occupants.len())
            .filter(|&i| self.occupants[i].is_empty() && !self.reserved[i])
            .collect();
        free.sort_by(|&a, &b| {
            self.speeds[b]
                .partial_cmp(&self.speeds[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        free.into_iter().map(|i| HostId(i as u16)).collect()
    }

    /// The least-loaded workstation other than `exclude` (multiplexing
    /// target when no free host exists). "Load" is speed-aware:
    /// `(occupants + 1) / speed` estimates the slowdown the migrated
    /// process would see on each candidate, so a fast host with one
    /// occupant can beat a slow empty one. Ties break
    /// **deterministically on the lowest host id** (the strictly-less
    /// comparison keeps the first minimum).
    pub fn least_loaded_excluding(&self, exclude: HostId) -> Option<HostId> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.occupants.len() {
            if i == exclude.0 as usize {
                continue;
            }
            let cost = (self.occupants[i].len() + 1) as f64 / self.speeds[i];
            match best {
                Some((_, b)) if cost >= b => {}
                _ => best = Some((i, cost)),
            }
        }
        best.map(|(i, _)| HostId(i as u16))
    }

    /// Total processes placed.
    pub fn total_procs(&self) -> usize {
        self.occupants.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupy_vacate_cycle() {
        let mut p = HostPool::new(3);
        p.occupy(HostId(0), Gpid(1));
        p.occupy(HostId(1), Gpid(2));
        assert_eq!(p.occupancy(HostId(0)), 1);
        assert_eq!(p.host_of(Gpid(2)), Some(HostId(1)));
        assert_eq!(p.free_host(), Some(HostId(2)));
        p.vacate(HostId(1), Gpid(2));
        assert_eq!(p.free_host(), Some(HostId(1)));
        assert_eq!(p.host_of(Gpid(2)), None);
        assert_eq!(p.total_procs(), 1);
    }

    #[test]
    fn no_free_host_when_full() {
        let mut p = HostPool::new(2);
        p.occupy(HostId(0), Gpid(1));
        p.occupy(HostId(1), Gpid(2));
        assert_eq!(p.free_host(), None);
        let target = p.least_loaded_excluding(HostId(0)).unwrap();
        assert_eq!(target, HostId(1));
    }

    #[test]
    fn least_loaded_prefers_emptier() {
        let mut p = HostPool::new(3);
        p.occupy(HostId(0), Gpid(1));
        p.occupy(HostId(1), Gpid(2));
        p.occupy(HostId(1), Gpid(3));
        assert_eq!(p.least_loaded_excluding(HostId(0)), Some(HostId(2)));
        p.occupy(HostId(2), Gpid(4));
        p.occupy(HostId(2), Gpid(5));
        // Host 1 (2 occupants) vs host 2 (2): lowest index wins ties.
        assert_eq!(p.least_loaded_excluding(HostId(0)), Some(HostId(1)));
    }

    #[test]
    fn least_loaded_tie_break_is_lowest_id() {
        // Four identical candidates: the documented tie-break picks the
        // lowest id every time, independent of insertion order.
        let p = HostPool::new(5);
        for _ in 0..10 {
            assert_eq!(p.least_loaded_excluding(HostId(0)), Some(HostId(1)));
            assert_eq!(p.least_loaded_excluding(HostId(1)), Some(HostId(0)));
        }
    }

    #[test]
    fn least_loaded_is_speed_aware() {
        let mut p = HostPool::new(3);
        // Host 2 is 4x the reference speed: even with one occupant its
        // estimated slowdown (2/4 = 0.5) beats the empty host 1 (1/1).
        p.set_speed(HostId(2), 4.0);
        p.occupy(HostId(2), Gpid(9));
        assert_eq!(p.least_loaded_excluding(HostId(0)), Some(HostId(2)));
        // Drop the speed edge and the empty host wins again.
        p.set_speed(HostId(2), 1.0);
        assert_eq!(p.least_loaded_excluding(HostId(0)), Some(HostId(1)));
    }

    #[test]
    fn free_host_prefers_faster() {
        let mut p = HostPool::new(3);
        p.set_speed(HostId(1), 2.0);
        assert_eq!(p.free_host(), Some(HostId(1)));
        p.occupy(HostId(1), Gpid(1));
        // Remaining free hosts tie at speed 1.0: lowest id wins.
        assert_eq!(p.free_host(), Some(HostId(0)));
    }

    #[test]
    fn free_hosts_sorted_fastest_first() {
        let mut p = HostPool::new(5);
        p.set_speed(HostId(3), 4.0);
        p.set_speed(HostId(1), 2.0);
        p.occupy(HostId(0), Gpid(1));
        assert_eq!(
            p.free_hosts(),
            vec![HostId(3), HostId(1), HostId(2), HostId(4)]
        );
        let mut p2 = HostPool::new(2);
        assert!(p2.reserve_free().is_some());
        assert_eq!(p2.free_hosts(), vec![HostId(1)], "reserved hosts hidden");
    }

    #[test]
    fn add_host_grows_pool() {
        let mut p = HostPool::new(1);
        let h = p.add_host();
        assert_eq!(h, HostId(1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.speed(h), 1.0);
    }
}

#[cfg(test)]
mod reserve_tests {
    use super::*;

    #[test]
    fn reserve_hides_host_from_free_list() {
        let mut p = HostPool::new(2);
        let h = p.reserve_free().unwrap();
        assert_eq!(h, HostId(0));
        assert_eq!(p.free_host(), Some(HostId(1)));
        let h2 = p.reserve_free().unwrap();
        assert_eq!(h2, HostId(1));
        assert!(p.reserve_free().is_none());
        p.unreserve(h);
        assert_eq!(p.free_host(), Some(HostId(0)));
    }

    #[test]
    fn reserve_free_exhausted_pool_edge_cases() {
        // All hosts occupied: nothing to reserve, and the failed call
        // must not leave a stray reservation behind.
        let mut p = HostPool::new(2);
        p.occupy(HostId(0), Gpid(1));
        p.occupy(HostId(1), Gpid(2));
        assert!(p.reserve_free().is_none());
        p.vacate(HostId(1), Gpid(2));
        assert_eq!(
            p.reserve_free(),
            Some(HostId(1)),
            "vacated host is reservable again"
        );

        // All hosts reserved (none occupied): also exhausted.
        let mut p = HostPool::new(2);
        assert!(p.reserve_free().is_some());
        assert!(p.reserve_free().is_some());
        assert!(p.reserve_free().is_none());

        // Mixed: one occupied, one reserved.
        let mut p = HostPool::new(2);
        p.occupy(HostId(0), Gpid(1));
        assert_eq!(p.reserve_free(), Some(HostId(1)));
        assert!(p.reserve_free().is_none());

        // Empty pool: trivially exhausted.
        let mut p = HostPool::new(0);
        assert!(p.is_empty());
        assert!(p.reserve_free().is_none());
    }
}
