//! Workstation pool bookkeeping: which processes occupy which hosts.
//!
//! A NOW's nodes come and go; the pool tracks occupancy so the adaptive
//! layer can place joiners on free workstations and pick multiplexing
//! targets for urgent migrations (Figure 2c: the migrated process
//! time-shares its new host).

use nowmp_net::{Gpid, HostId};

/// Occupancy table, indexed by `HostId`.
#[derive(Debug, Default)]
pub struct HostPool {
    occupants: Vec<Vec<Gpid>>,
    reserved: Vec<bool>,
}

impl HostPool {
    /// Pool over `hosts` workstations.
    pub fn new(hosts: usize) -> Self {
        HostPool {
            occupants: vec![Vec::new(); hosts],
            reserved: vec![false; hosts],
        }
    }

    /// Register one more workstation; returns its id.
    pub fn add_host(&mut self) -> HostId {
        self.occupants.push(Vec::new());
        self.reserved.push(false);
        HostId(self.occupants.len() as u16 - 1)
    }

    /// Reserve a free workstation for a process being spawned; returns
    /// `None` when every host is occupied or reserved.
    pub fn reserve_free(&mut self) -> Option<HostId> {
        let i = self
            .occupants
            .iter()
            .enumerate()
            .position(|(i, o)| o.is_empty() && !self.reserved[i])?;
        self.reserved[i] = true;
        Some(HostId(i as u16))
    }

    /// Clear a reservation (after the process lands, or on failure).
    pub fn unreserve(&mut self, host: HostId) {
        self.reserved[host.0 as usize] = false;
    }

    /// Number of workstations.
    pub fn len(&self) -> usize {
        self.occupants.len()
    }

    /// True when the pool has no workstations.
    pub fn is_empty(&self) -> bool {
        self.occupants.is_empty()
    }

    /// Place `gpid` on `host`.
    pub fn occupy(&mut self, host: HostId, gpid: Gpid) {
        let o = &mut self.occupants[host.0 as usize];
        debug_assert!(!o.contains(&gpid));
        o.push(gpid);
    }

    /// Remove `gpid` from `host`.
    pub fn vacate(&mut self, host: HostId, gpid: Gpid) {
        self.occupants[host.0 as usize].retain(|&g| g != gpid);
    }

    /// Occupant count of `host`.
    pub fn occupancy(&self, host: HostId) -> usize {
        self.occupants[host.0 as usize].len()
    }

    /// Host of `gpid`, if placed.
    pub fn host_of(&self, gpid: Gpid) -> Option<HostId> {
        self.occupants
            .iter()
            .position(|o| o.contains(&gpid))
            .map(|i| HostId(i as u16))
    }

    /// An unoccupied, unreserved workstation, if any (lowest id first).
    pub fn free_host(&self) -> Option<HostId> {
        self.occupants
            .iter()
            .enumerate()
            .position(|(i, o)| o.is_empty() && !self.reserved[i])
            .map(|i| HostId(i as u16))
    }

    /// The least-loaded workstation other than `exclude` (multiplexing
    /// target when no free host exists).
    pub fn least_loaded_excluding(&self, exclude: HostId) -> Option<HostId> {
        (0..self.occupants.len())
            .filter(|&i| i != exclude.0 as usize)
            .min_by_key(|&i| self.occupants[i].len())
            .map(|i| HostId(i as u16))
    }

    /// Total processes placed.
    pub fn total_procs(&self) -> usize {
        self.occupants.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupy_vacate_cycle() {
        let mut p = HostPool::new(3);
        p.occupy(HostId(0), Gpid(1));
        p.occupy(HostId(1), Gpid(2));
        assert_eq!(p.occupancy(HostId(0)), 1);
        assert_eq!(p.host_of(Gpid(2)), Some(HostId(1)));
        assert_eq!(p.free_host(), Some(HostId(2)));
        p.vacate(HostId(1), Gpid(2));
        assert_eq!(p.free_host(), Some(HostId(1)));
        assert_eq!(p.host_of(Gpid(2)), None);
        assert_eq!(p.total_procs(), 1);
    }

    #[test]
    fn no_free_host_when_full() {
        let mut p = HostPool::new(2);
        p.occupy(HostId(0), Gpid(1));
        p.occupy(HostId(1), Gpid(2));
        assert_eq!(p.free_host(), None);
        let target = p.least_loaded_excluding(HostId(0)).unwrap();
        assert_eq!(target, HostId(1));
    }

    #[test]
    fn least_loaded_prefers_emptier() {
        let mut p = HostPool::new(3);
        p.occupy(HostId(0), Gpid(1));
        p.occupy(HostId(1), Gpid(2));
        p.occupy(HostId(1), Gpid(3));
        assert_eq!(p.least_loaded_excluding(HostId(0)), Some(HostId(2)));
        p.occupy(HostId(2), Gpid(4));
        p.occupy(HostId(2), Gpid(5));
        // Host 1 (2 occupants) vs host 2 (2): lowest index wins ties.
        assert_eq!(p.least_loaded_excluding(HostId(0)), Some(HostId(1)));
    }

    #[test]
    fn add_host_grows_pool() {
        let mut p = HostPool::new(1);
        let h = p.add_host();
        assert_eq!(h, HostId(1));
        assert_eq!(p.len(), 2);
    }
}

#[cfg(test)]
mod reserve_tests {
    use super::*;

    #[test]
    fn reserve_hides_host_from_free_list() {
        let mut p = HostPool::new(2);
        let h = p.reserve_free().unwrap();
        assert_eq!(h, HostId(0));
        assert_eq!(p.free_host(), Some(HostId(1)));
        let h2 = p.reserve_free().unwrap();
        assert_eq!(h2, HostId(1));
        assert!(p.reserve_free().is_none());
        p.unreserve(h);
        assert_eq!(p.free_host(), Some(HostId(0)));
    }
}
