//! Cluster-level job scheduling: the NOW as a service.
//!
//! The paper runs exactly one OpenMP program on the adaptive host pool.
//! This module adds the missing production layer: a scheduler that
//! admits a *stream* of jobs onto the shared [`HostPool`], driving the
//! paper's own adaptation machinery (§4 shrink/grow via
//! [`crate::reassign`]) from scheduling decisions instead of host
//! departure.
//!
//! The split mirrors the rest of the workspace: this is the pure
//! *policy* engine — job table, priority queue, placement, preemption
//! arithmetic — with no knowledge of programs, DSM instances or clocks.
//! It consumes timestamped calls ([`Scheduler::submit`],
//! [`Scheduler::released`], [`Scheduler::finished`]) and emits
//! [`Directive`]s; the execution side (`nowmp_omp::jobs`) owns the
//! per-job `DsmSystem`s and turns directives into actual join/leave
//! requests through the [`crate::cluster::AdaptHandle`] API.
//!
//! Policy, in one paragraph: jobs are ordered by priority (higher
//! first), FIFO within a priority. Placement takes the *fastest* free
//! hosts, scored by [`CostModel::effective_speed`] (the same metric the
//! single-job pool uses for join placement). A queued job is admitted
//! once `min_procs` hosts are free, and granted up to `max_procs`. If
//! the head of the queue cannot be admitted, the scheduler preempts:
//! running jobs of *strictly lower* priority shed processes (down to
//! their own `min_procs`) via the grace-leave path, youngest victim
//! first; the freed hosts go to the waiting job. There is no backfill
//! past a blocked head — a job never waits on work that arrived later
//! or matters less, so the queue is starvation-free by construction.
//! When the queue is empty, surplus hosts re-grow running jobs below
//! their `max_procs`, in the same priority order.

use crate::hostpool::HostPool;
use nowmp_net::{CostModel, Gpid, HostId};
use std::time::Duration;

/// Identifies one job admitted to the cluster scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Marker occupant the scheduler books into the global [`HostPool`] for
/// every host granted to a job. The high bit keeps markers clear of
/// real process ids, which count up from 1.
fn marker(job: JobId) -> Gpid {
    Gpid((1u32 << 30) | job.0)
}

/// Scheduling parameters of a job — the policy-relevant slice of a
/// `JobSpec` (the program itself stays in `nowmp-omp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobParams {
    /// Higher runs first and may preempt lower.
    pub priority: u8,
    /// The job cannot start with fewer processes than this.
    pub min_procs: usize,
    /// The job never gets more processes than this.
    pub max_procs: usize,
    /// Arrival offset on the trace timeline.
    pub arrival: Duration,
}

impl JobParams {
    /// Parameters for a job wanting between `min_procs` and
    /// `max_procs` processes, priority 0, arriving at time zero.
    pub fn new(min_procs: usize, max_procs: usize) -> Self {
        assert!(min_procs >= 1, "a job needs at least its master");
        assert!(max_procs >= min_procs, "max_procs < min_procs");
        JobParams {
            priority: 0,
            min_procs,
            max_procs,
            arrival: Duration::ZERO,
        }
    }

    /// Builder: set the priority.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Builder: set the arrival time.
    pub fn with_arrival(mut self, at: Duration) -> Self {
        self.arrival = at;
        self
    }
}

impl Default for JobParams {
    fn default() -> Self {
        JobParams::new(1, 1)
    }
}

/// Lifecycle phase of a scheduled job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted, waiting for `min_procs` free hosts.
    Queued,
    /// Holding hosts and making progress.
    Running,
    /// Completed; hosts released.
    Finished,
}

/// A scheduling decision for the execution layer to carry out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// Start `job` on the granted hosts (its initial team).
    Start {
        /// The admitted job.
        job: JobId,
        /// Hosts granted, fastest first.
        hosts: Vec<HostId>,
    },
    /// Grow running `job` by granting it additional hosts; the
    /// execution layer turns each into a join at the job's next
    /// adaptation point.
    Grow {
        /// The growing job.
        job: JobId,
        /// Extra hosts granted, fastest first.
        hosts: Vec<HostId>,
    },
    /// Shrink running `victim` by `procs` processes: the execution
    /// layer requests that many leaves (grace-leave path, highest pids
    /// first); the shrink commits at the victim's next adaptation
    /// point, after which [`Scheduler::released`] reports the freed
    /// hosts back.
    Preempt {
        /// The job being shrunk.
        victim: JobId,
        /// Processes to shed.
        procs: usize,
    },
}

/// Per-job accounting, kept for the whole trace (wait/makespan stats).
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job.
    pub id: JobId,
    /// Its scheduling parameters.
    pub params: JobParams,
    /// Current phase.
    pub phase: JobPhase,
    /// Hosts currently granted (empty unless running).
    pub granted: Vec<HostId>,
    /// When the job was submitted.
    pub submitted: Duration,
    /// When it first received a team.
    pub started: Option<Duration>,
    /// When it completed.
    pub finished: Option<Duration>,
    /// Times this job was preempted (shrunk for higher-priority work).
    pub preemptions: u64,
}

impl JobRecord {
    /// Queueing delay: submission to start.
    pub fn wait(&self) -> Option<Duration> {
        self.started.map(|s| s.saturating_sub(self.submitted))
    }

    /// Submission-to-completion time.
    pub fn turnaround(&self) -> Option<Duration> {
        self.finished.map(|f| f.saturating_sub(self.submitted))
    }
}

struct Entry {
    rec: JobRecord,
    /// Processes this job has been directed to shed but has not yet
    /// released (preemption in flight). Capacity planning counts these
    /// so repeated scheduling passes never double-preempt a victim.
    pending_release: usize,
    /// Submission order, for FIFO within a priority.
    seq: u64,
}

/// The cluster-level job scheduler (policy only — see the module docs).
pub struct Scheduler {
    pool: HostPool,
    jobs: Vec<Entry>,
    /// Busy host-seconds integral, for pool utilization.
    busy_time: f64,
    last_change: Duration,
}

impl Scheduler {
    /// Scheduler over an existing pool (speeds already set).
    pub fn new(pool: HostPool) -> Self {
        Scheduler {
            pool,
            jobs: Vec::new(),
            busy_time: 0.0,
            last_change: Duration::ZERO,
        }
    }

    /// Scheduler over `hosts` workstations whose speeds come from
    /// `cost_model` — placement then scores hosts exactly like the
    /// single-job pool does, by [`CostModel::effective_speed`].
    pub fn with_cost_model(hosts: usize, cost_model: &CostModel) -> Self {
        let mut pool = HostPool::new(hosts);
        for h in 0..hosts {
            let h = HostId(h as u16);
            pool.set_speed(h, cost_model.effective_speed(h));
        }
        Scheduler::new(pool)
    }

    /// The shared pool (read-only; the scheduler owns all mutation).
    pub fn pool(&self) -> &HostPool {
        &self.pool
    }

    /// Submit a job at trace time `now`; returns its id and whatever
    /// directives the admission pass produces (the new job starting,
    /// and/or preemptions on behalf of it).
    ///
    /// A job whose `params.arrival` lies in the future is registered
    /// but stays invisible to admission (and cannot block anyone) until
    /// a [`Scheduler::schedule`] pass at or after its arrival — so a
    /// whole trace can be pre-registered up front and driven by clock
    /// ticks. Waiting time is measured from the arrival, not from the
    /// registration call.
    pub fn submit(&mut self, params: JobParams, now: Duration) -> (JobId, Vec<Directive>) {
        let id = JobId(self.jobs.len() as u32);
        let seq = self.jobs.len() as u64;
        self.jobs.push(Entry {
            rec: JobRecord {
                id,
                params,
                phase: JobPhase::Queued,
                granted: Vec::new(),
                submitted: now.max(params.arrival),
                started: None,
                finished: None,
                preemptions: 0,
            },
            pending_release: 0,
            seq,
        });
        (id, self.schedule(now))
    }

    /// A victim committed (part of) a directed shrink: `hosts` are free
    /// again. Reports back from the execution layer after the victim's
    /// adaptation point ran the grace-leave path.
    pub fn released(&mut self, victim: JobId, hosts: &[HostId], now: Duration) -> Vec<Directive> {
        self.accrue(now);
        {
            let e = &mut self.jobs[victim.0 as usize];
            debug_assert_eq!(e.rec.phase, JobPhase::Running);
            e.pending_release = e.pending_release.saturating_sub(hosts.len());
            for h in hosts {
                e.rec.granted.retain(|g| g != h);
            }
        }
        for &h in hosts {
            self.pool.vacate(h, marker(victim));
        }
        self.schedule(now)
    }

    /// A running job completed: all its hosts free up.
    pub fn finished(&mut self, job: JobId, now: Duration) -> Vec<Directive> {
        self.accrue(now);
        let hosts = {
            let e = &mut self.jobs[job.0 as usize];
            debug_assert_eq!(e.rec.phase, JobPhase::Running);
            e.rec.phase = JobPhase::Finished;
            e.rec.finished = Some(now);
            e.pending_release = 0;
            std::mem::take(&mut e.rec.granted)
        };
        for h in hosts {
            self.pool.vacate(h, marker(job));
        }
        self.schedule(now)
    }

    /// One scheduling pass: admit, then preempt for the blocked head,
    /// then grow. Idempotent — calling it again without a state change
    /// produces no directives.
    pub fn schedule(&mut self, now: Duration) -> Vec<Directive> {
        let mut out = Vec::new();

        // Admission, strictly in (priority desc, seq asc) order. No
        // backfill: the first queued job that does not fit blocks the
        // rest, so FIFO-within-priority is also a completion-order
        // guarantee, not just an admission heuristic.
        let mut blocked_head: Option<JobId> = None;
        for id in self.queue_order(now) {
            let params = self.jobs[id.0 as usize].rec.params;
            let free = self.pool.free_hosts();
            if free.len() >= params.min_procs {
                let grant: Vec<HostId> = free.into_iter().take(params.max_procs).collect();
                self.accrue(now);
                let e = &mut self.jobs[id.0 as usize];
                e.rec.phase = JobPhase::Running;
                e.rec.started = Some(now);
                e.rec.granted = grant.clone();
                for &h in &grant {
                    self.pool.occupy(h, marker(id));
                }
                out.push(Directive::Start {
                    job: id,
                    hosts: grant,
                });
            } else {
                blocked_head = Some(id);
                break;
            }
        }

        // Preemption on behalf of the blocked head: shed processes from
        // strictly-lower-priority running jobs (never below their own
        // min_procs), youngest victim first. In-flight releases count
        // toward the deficit so a pass between directive and release
        // doesn't double-shrink.
        if let Some(head) = blocked_head {
            let head_params = self.jobs[head.0 as usize].rec.params;
            let incoming: usize = self.jobs.iter().map(|e| e.pending_release).sum();
            let free = self.pool.free_hosts().len();
            let mut deficit = head_params.min_procs.saturating_sub(free + incoming);
            if deficit > 0 {
                let mut victims: Vec<JobId> = self
                    .jobs
                    .iter()
                    .filter(|e| {
                        e.rec.phase == JobPhase::Running
                            && e.rec.params.priority < head_params.priority
                            && e.rec.granted.len() - e.pending_release > e.rec.params.min_procs
                    })
                    .map(|e| e.rec.id)
                    .collect();
                // Lowest priority first, youngest (largest seq) first.
                victims.sort_by_key(|&v| {
                    let e = &self.jobs[v.0 as usize];
                    (e.rec.params.priority, u64::MAX - e.seq)
                });
                for v in victims {
                    if deficit == 0 {
                        break;
                    }
                    let e = &mut self.jobs[v.0 as usize];
                    let sheddable =
                        e.rec.granted.len() - e.pending_release - e.rec.params.min_procs;
                    let take = sheddable.min(deficit);
                    if take == 0 {
                        continue;
                    }
                    e.pending_release += take;
                    e.rec.preemptions += 1;
                    deficit -= take;
                    out.push(Directive::Preempt {
                        victim: v,
                        procs: take,
                    });
                }
            }
        }

        // Growth: only when nothing is waiting — a queued job always
        // has first claim on free hosts.
        if blocked_head.is_none() {
            let mut running: Vec<JobId> = self
                .jobs
                .iter()
                .filter(|e| e.rec.phase == JobPhase::Running)
                .map(|e| e.rec.id)
                .collect();
            running.sort_by_key(|&id| {
                let e = &self.jobs[id.0 as usize];
                (u8::MAX - e.rec.params.priority, e.seq)
            });
            for id in running {
                let want = {
                    let e = &self.jobs[id.0 as usize];
                    // A shrinking victim doesn't re-grow mid-preemption.
                    if e.pending_release > 0 {
                        0
                    } else {
                        e.rec.params.max_procs - e.rec.granted.len()
                    }
                };
                if want == 0 {
                    continue;
                }
                let extra: Vec<HostId> = self.pool.free_hosts().into_iter().take(want).collect();
                if extra.is_empty() {
                    continue;
                }
                self.accrue(now);
                let e = &mut self.jobs[id.0 as usize];
                e.rec.granted.extend_from_slice(&extra);
                for &h in &extra {
                    self.pool.occupy(h, marker(id));
                }
                out.push(Directive::Grow {
                    job: id,
                    hosts: extra,
                });
            }
        }

        out
    }

    /// Queued jobs that have arrived by `now`, in service order:
    /// priority desc, arrival asc, registration asc.
    fn queue_order(&self, now: Duration) -> Vec<JobId> {
        let mut q: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|e| e.rec.phase == JobPhase::Queued && e.rec.params.arrival <= now)
            .map(|e| e.rec.id)
            .collect();
        q.sort_by_key(|&id| {
            let e = &self.jobs[id.0 as usize];
            (u8::MAX - e.rec.params.priority, e.rec.submitted, e.seq)
        });
        q
    }

    /// Advance the busy host-seconds integral to `now`.
    fn accrue(&mut self, now: Duration) {
        let dt = now.saturating_sub(self.last_change).as_secs_f64();
        let busy: usize = self
            .jobs
            .iter()
            .filter(|e| e.rec.phase == JobPhase::Running)
            .map(|e| e.rec.granted.len())
            .sum();
        self.busy_time += busy as f64 * dt;
        self.last_change = now;
    }

    /// The accounting record of `job`.
    pub fn job(&self, job: JobId) -> &JobRecord {
        &self.jobs[job.0 as usize].rec
    }

    /// All job records (trace analysis).
    pub fn records(&self) -> Vec<JobRecord> {
        self.jobs.iter().map(|e| e.rec.clone()).collect()
    }

    /// Jobs currently queued.
    pub fn queued(&self) -> usize {
        self.phase_count(JobPhase::Queued)
    }

    /// Jobs currently running.
    pub fn running(&self) -> usize {
        self.phase_count(JobPhase::Running)
    }

    /// True once every submitted job has finished.
    pub fn all_done(&self) -> bool {
        self.jobs.iter().all(|e| e.rec.phase == JobPhase::Finished)
    }

    fn phase_count(&self, phase: JobPhase) -> usize {
        self.jobs.iter().filter(|e| e.rec.phase == phase).count()
    }

    /// Pool utilization over `[0, now]`: busy host-seconds divided by
    /// available host-seconds.
    pub fn utilization(&mut self, now: Duration) -> f64 {
        self.accrue(now);
        let cap = self.pool.len() as f64 * now.as_secs_f64();
        if cap <= 0.0 {
            0.0
        } else {
            self.busy_time / cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    fn start_of(ds: &[Directive], job: JobId) -> Option<&Vec<HostId>> {
        ds.iter().find_map(|d| match d {
            Directive::Start { job: j, hosts } if *j == job => Some(hosts),
            _ => None,
        })
    }

    #[test]
    fn admission_grants_fastest_hosts_first() {
        let mut pool = HostPool::new(4);
        pool.set_speed(HostId(2), 4.0);
        pool.set_speed(HostId(3), 2.0);
        let mut s = Scheduler::new(pool);
        let (a, ds) = s.submit(JobParams::new(2, 2), t(0));
        // effective_speed scoring: host 2 (4x) then host 3 (2x).
        assert_eq!(
            start_of(&ds, a),
            Some(&vec![HostId(2), HostId(3)]),
            "placement must take the fastest free hosts"
        );
    }

    #[test]
    fn placement_scored_by_effective_speed() {
        // Same scoring, but wired through the CostModel entry point:
        // host 1 is 3x the reference but carries load 2.0, so its
        // effective speed (3/(1+2) = 1) ties the reference host 0 and
        // the unloaded 2x host 2 wins.
        let cm = CostModel::disabled()
            .with_host_speed(HostId(1), 3.0)
            .with_host_load(HostId(1), 2.0)
            .with_host_speed(HostId(2), 2.0);
        let mut s = Scheduler::with_cost_model(3, &cm);
        let (a, ds) = s.submit(JobParams::new(1, 1), t(0));
        assert_eq!(start_of(&ds, a), Some(&vec![HostId(2)]));
    }

    #[test]
    fn fifo_within_priority() {
        let mut s = Scheduler::new(HostPool::new(2));
        let (a, ds) = s.submit(JobParams::new(2, 2), t(0));
        assert!(start_of(&ds, a).is_some());
        // b and c tie on priority; b arrived first.
        let (b, ds) = s.submit(JobParams::new(2, 2), t(1));
        assert!(ds.is_empty(), "pool full: b queues");
        let (c, ds) = s.submit(JobParams::new(1, 2), t(2));
        assert!(
            ds.is_empty(),
            "c fits the (future) free host but must not overtake b"
        );
        let ds = s.finished(a, t(10));
        assert!(start_of(&ds, b).is_some(), "b starts first");
        assert!(start_of(&ds, c).is_none(), "c still waits behind b");
        let ds = s.finished(b, t(20));
        assert!(start_of(&ds, c).is_some());
        assert_eq!(s.job(b).wait(), Some(t(9)));
        assert_eq!(s.job(c).wait(), Some(t(18)));
    }

    #[test]
    fn priority_preempts_and_freed_host_lands_in_new_job() {
        let mut s = Scheduler::new(HostPool::new(4));
        let (low, _) = s.submit(JobParams::new(2, 4), t(0));
        assert_eq!(s.job(low).granted.len(), 4, "low fills the pool");
        // Higher-priority arrival: pool is full, so the scheduler must
        // direct `low` to shed down to its min.
        let (hi, ds) = s.submit(JobParams::new(2, 2).with_priority(5), t(5));
        assert_eq!(
            ds,
            vec![Directive::Preempt {
                victim: low,
                procs: 2
            }],
            "exactly the deficit is preempted"
        );
        // A second pass issues nothing more (release is in flight).
        assert!(s.schedule(t(5)).is_empty(), "no double-preemption");
        // The victim's adaptation point commits the shrink.
        let ds = s.released(low, &[HostId(2), HostId(3)], t(6));
        assert_eq!(
            start_of(&ds, hi),
            Some(&vec![HostId(2), HostId(3)]),
            "the freed hosts land in the new job's team"
        );
        assert_eq!(s.job(low).granted.len(), 2);
        assert_eq!(s.job(low).preemptions, 1);
        assert_eq!(s.job(hi).wait(), Some(t(1)));
    }

    #[test]
    fn preemption_never_shrinks_below_min_or_equal_priority() {
        let mut s = Scheduler::new(HostPool::new(4));
        let (a, _) = s.submit(JobParams::new(2, 2).with_priority(3), t(0));
        let (b, _) = s.submit(JobParams::new(2, 2), t(0));
        // Needs 4, but a (equal-or-higher priority) is untouchable and
        // b is already at min: admission must block.
        let (c, ds) = s.submit(JobParams::new(4, 4).with_priority(3), t(1));
        assert!(ds.is_empty(), "nothing sheddable: no directives");
        assert_eq!(s.job(c).phase, JobPhase::Queued);
        assert_eq!(s.job(a).granted.len(), 2);
        assert_eq!(s.job(b).granted.len(), 2);
        // Once b finishes, c is still short (2 free < 4 min): blocked.
        let ds = s.finished(b, t(10));
        assert!(start_of(&ds, c).is_none());
        // a finishing finally satisfies min_procs = 4.
        let ds = s.finished(a, t(20));
        assert_eq!(start_of(&ds, c).map(Vec::len), Some(4));
    }

    #[test]
    fn min_procs_admission_blocks_until_satisfiable() {
        let mut s = Scheduler::new(HostPool::new(3));
        let (a, _) = s.submit(JobParams::new(1, 2), t(0));
        let (b, ds) = s.submit(JobParams::new(2, 3), t(1));
        // One host free, b needs two: must queue, not start shrunk.
        assert!(ds.is_empty());
        assert_eq!(s.job(b).phase, JobPhase::Queued);
        let ds = s.finished(a, t(7));
        assert_eq!(
            start_of(&ds, b).map(Vec::len),
            Some(3),
            "once satisfiable, b gets up to max_procs"
        );
    }

    #[test]
    fn completion_regrows_running_jobs() {
        let mut s = Scheduler::new(HostPool::new(4));
        let (a, _) = s.submit(JobParams::new(1, 4), t(0));
        let (b, ds) = s.submit(JobParams::new(2, 2).with_priority(1), t(1));
        // b preempts a down to 2...
        assert_eq!(
            ds,
            vec![Directive::Preempt {
                victim: a,
                procs: 2
            }]
        );
        let ds = s.released(a, &[HostId(2), HostId(3)], t(2));
        assert!(start_of(&ds, b).is_some());
        // ...and when b completes, a re-grows to its max.
        let ds = s.finished(b, t(9));
        assert!(
            ds.iter().any(|d| matches!(
                d,
                Directive::Grow { job, hosts } if *job == a && hosts.len() == 2
            )),
            "victim re-grows on completion: {ds:?}"
        );
        assert_eq!(s.job(a).granted.len(), 4);
    }

    #[test]
    fn future_arrivals_stay_invisible_until_their_tick() {
        let mut s = Scheduler::new(HostPool::new(2));
        // Whole trace registered at t=0; b arrives later than c.
        let (b, ds) = s.submit(JobParams::new(2, 2).with_arrival(t(5)), t(0));
        assert!(ds.is_empty(), "b has not arrived yet");
        let (c, ds) = s.submit(JobParams::new(1, 1).with_arrival(t(1)), t(0));
        assert!(ds.is_empty(), "c has not arrived yet");
        // c's tick: it admits — the future b must not block it.
        let ds = s.schedule(t(1));
        assert!(start_of(&ds, c).is_some());
        assert!(start_of(&ds, b).is_none());
        // b's tick: one host is left, b needs two — it queues, with its
        // wait measured from arrival.
        assert!(s.schedule(t(5)).is_empty());
        let ds = s.finished(c, t(8));
        assert!(start_of(&ds, b).is_some());
        assert_eq!(s.job(b).wait(), Some(t(3)));
    }

    #[test]
    fn utilization_integrates_busy_hosts() {
        let mut s = Scheduler::new(HostPool::new(4));
        let (a, _) = s.submit(JobParams::new(2, 2), t(0));
        s.finished(a, t(10));
        // 2 busy hosts for 10s out of 4x20 host-seconds.
        let u = s.utilization(t(20));
        assert!((u - 0.25).abs() < 1e-9, "utilization {u}");
    }
}
