//! # nowmp-core — transparent adaptive parallelism (the PPoPP'99 contribution)
//!
//! This crate layers *transparent adaptation* over the TreadMarks-like
//! DSM in `nowmp-tmk`:
//!
//! * [`cluster::Cluster`] — the adaptive runtime: join events, normal
//!   and urgent leaves with **grace periods**, migration with
//!   **multiplexing**, pid reassignment, checkpointing and recovery;
//! * [`event`] — adapt events and the grace-period race (Figure 2);
//! * [`mod@reassign`] — pid reassignment policies and the Figure 3
//!   block-partition overlap analytics;
//! * [`freeze`] — the stop-the-world gate used during migration;
//! * [`hostpool`] — workstation occupancy;
//! * [`log`] — the event timeline (Figure 2) and per-adaptation cost
//!   records (Table 2);
//! * [`sched`] — the cluster-level job scheduler: a stream of
//!   prioritized jobs admitted onto the shared [`hostpool::HostPool`],
//!   with preemption driven through the same adaptation machinery.
//!
//! No application code changes to obtain adaptivity: applications
//! allocate shared arrays and call [`cluster::Cluster::parallel`]; the
//! runtime re-partitions iterations by re-deriving each process's share
//! from `(pid, nprocs)` at every fork, and the DSM re-distributes data
//! lazily through ordinary page faults.

#![warn(missing_docs)]

pub mod cluster;
pub mod driver;
pub mod engine;
pub mod event;
pub mod freeze;
pub mod hostpool;
pub mod log;
pub mod reassign;
pub mod sched;

pub use cluster::{
    AdaptError, AdaptHandle, Cluster, ClusterConfig, ClusterShared, LeaveSel, LeaveStrategy,
};
pub use driver::{Driver, DriverEvent, Schedule};
pub use engine::{run_task_app, TaskAdapt, TaskApp, TaskSystem};
pub use event::{AdaptEvent, LeavePhase, PendingLeave};
pub use freeze::Freeze;
pub use hostpool::HostPool;
pub use log::{EventKind, EventLog, LogEntry};
pub use reassign::{moved_fraction, moved_fraction_on_leave, reassign, ReassignPolicy};
pub use sched::{Directive, JobId, JobParams, JobPhase, JobRecord, Scheduler};
