//! The migration freeze gate.
//!
//! "When a process needs to migrate to another host … all processes then
//! wait for the completion of the migration" (§4.2). The gate is
//! installed as the DSM's throttle hook: every synchronization
//! operation, page fault and iteration chunk passes through it, so all
//! processes stall promptly once a migration begins and resume when it
//! completes.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A cluster-wide stop-the-world gate.
#[derive(Debug, Default)]
pub struct Freeze {
    frozen: Mutex<bool>,
    cv: Condvar,
}

impl Freeze {
    /// New, open gate.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Close the gate: subsequent [`Freeze::gate`] calls block.
    pub fn freeze(&self) {
        *self.frozen.lock() = true;
    }

    /// Open the gate and wake all waiters.
    pub fn thaw(&self) {
        *self.frozen.lock() = false;
        self.cv.notify_all();
    }

    /// Block while the gate is closed (the throttle hook body).
    pub fn gate(&self) {
        let mut f = self.frozen.lock();
        while *f {
            self.cv.wait(&mut f);
        }
    }

    /// Is the gate currently closed? (diagnostics)
    pub fn is_frozen(&self) -> bool {
        *self.frozen.lock()
    }

    /// Build the throttle hook closure for [`nowmp_tmk::DsmConfig`].
    pub fn hook(self: &Arc<Self>) -> Arc<dyn Fn() + Send + Sync> {
        let me = Arc::clone(self);
        Arc::new(move || me.gate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    #[test]
    fn open_gate_passes() {
        let f = Freeze::new();
        f.gate(); // must not block
        assert!(!f.is_frozen());
    }

    #[test]
    fn closed_gate_blocks_until_thaw() {
        let f = Freeze::new();
        f.freeze();
        let passed = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&f);
        let p2 = Arc::clone(&passed);
        let t = std::thread::spawn(move || {
            f2.gate();
            p2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!passed.load(Ordering::SeqCst), "gate must hold");
        f.thaw();
        t.join().unwrap();
        assert!(passed.load(Ordering::SeqCst));
    }

    #[test]
    fn hook_is_callable() {
        let f = Freeze::new();
        let hook = f.hook();
        hook(); // open: returns immediately
    }
}
