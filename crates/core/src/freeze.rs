//! The migration freeze gate.
//!
//! "When a process needs to migrate to another host … all processes then
//! wait for the completion of the migration" (§4.2). The gate is
//! installed as the DSM's throttle hook: every synchronization
//! operation, page fault and iteration chunk passes through it, so all
//! processes stall promptly once a migration begins and resume when it
//! completes.
//!
//! Gated waits are clock-visible ([`nowmp_util::Clock::blocked`]): under
//! a virtual clock, a frozen cluster is quiescent and the migration's
//! charged transfer time advances instantly. The gate also counts its
//! waiters, so tests (and diagnostics) can wait for "somebody is
//! actually blocked here" as a condition instead of sleeping and hoping.

use nowmp_util::Clock;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct GateState {
    frozen: bool,
    /// Threads currently parked in [`Freeze::gate`].
    waiting: usize,
}

/// A cluster-wide stop-the-world gate.
#[derive(Debug)]
pub struct Freeze {
    state: Mutex<GateState>,
    /// Wakes gated threads on thaw.
    cv: Condvar,
    /// Wakes observers when the waiter count changes.
    observers: Condvar,
    clock: Clock,
}

impl Freeze {
    /// New, open gate on `clock`.
    pub fn new(clock: Clock) -> Arc<Self> {
        Arc::new(Freeze {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            observers: Condvar::new(),
            clock,
        })
    }

    /// Close the gate: subsequent [`Freeze::gate`] calls block.
    pub fn freeze(&self) {
        self.state.lock().frozen = true;
    }

    /// Open the gate and wake all waiters.
    pub fn thaw(&self) {
        self.state.lock().frozen = false;
        self.cv.notify_all();
    }

    /// Block while the gate is closed (the throttle hook body).
    pub fn gate(&self) {
        let mut st = self.state.lock();
        while st.frozen {
            st.waiting += 1;
            self.observers.notify_all();
            self.clock.blocked(|| self.cv.wait(&mut st));
            st.waiting -= 1;
            self.observers.notify_all();
        }
    }

    /// Is the gate currently closed? (diagnostics)
    pub fn is_frozen(&self) -> bool {
        self.state.lock().frozen
    }

    /// Threads currently parked in [`Freeze::gate`] (racy; diagnostics
    /// and condition waits).
    pub fn waiters(&self) -> usize {
        self.state.lock().waiting
    }

    /// Block until at least `n` threads are parked in the gate, or the
    /// (real-time) `timeout` expires. Returns whether the condition was
    /// met — the event-driven replacement for "sleep 30 ms and assume
    /// the other thread has blocked by now".
    pub fn wait_for_waiters(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        while st.waiting < n {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            if self.observers.wait_for(&mut st, left).timed_out() && st.waiting < n {
                return false;
            }
        }
        true
    }

    /// Build the throttle hook closure for [`nowmp_tmk::DsmConfig`].
    pub fn hook(self: &Arc<Self>) -> Arc<dyn Fn() + Send + Sync> {
        let me = Arc::clone(self);
        Arc::new(move || me.gate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn open_gate_passes() {
        let f = Freeze::new(Clock::real());
        f.gate(); // must not block
        assert!(!f.is_frozen());
        assert_eq!(f.waiters(), 0);
    }

    #[test]
    fn closed_gate_blocks_until_thaw() {
        let f = Freeze::new(Clock::real());
        f.freeze();
        let passed = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&f);
        let p2 = Arc::clone(&passed);
        let t = std::thread::spawn(move || {
            f2.gate();
            p2.store(true, Ordering::SeqCst);
        });
        // Condition wait: the thread is provably parked in the gate —
        // no magic sleep, no race on "has it blocked yet".
        assert!(
            f.wait_for_waiters(1, Duration::from_secs(5)),
            "gate thread never parked"
        );
        assert!(!passed.load(Ordering::SeqCst), "gate must hold");
        f.thaw();
        t.join().unwrap();
        assert!(passed.load(Ordering::SeqCst));
        assert_eq!(f.waiters(), 0);
    }

    #[test]
    fn frozen_gate_is_quiescent_under_virtual_clock() {
        // A thread parked in the gate is clock-visible: a sleeper can
        // advance virtual time under it instantly (this is exactly the
        // migration situation: everyone frozen, transfer time charged).
        let clock = Clock::new_virtual();
        let f = Freeze::new(clock.clone());
        f.freeze();
        let f2 = Arc::clone(&f);
        let clock2 = clock.clone();
        let t = std::thread::spawn(move || {
            let _p = clock2.participant();
            f2.gate();
        });
        assert!(f.wait_for_waiters(1, Duration::from_secs(5)));
        let wall = Instant::now();
        let t0 = clock.now();
        clock.sleep(Duration::from_secs(7)); // modeled migration stream
        assert_eq!(clock.elapsed_since(t0), Duration::from_secs(7));
        assert!(wall.elapsed() < Duration::from_millis(300));
        f.thaw();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_waiters_times_out_when_nobody_blocks() {
        let f = Freeze::new(Clock::real());
        assert!(!f.wait_for_waiters(1, Duration::from_millis(20)));
    }

    #[test]
    fn hook_is_callable() {
        let f = Freeze::new(Clock::real());
        let hook = f.hook();
        hook(); // open: returns immediately
    }
}
