//! # Task-backed adaptive engine: 1024 hosts on a worker pool
//!
//! The thread-backed engine ([`crate::Cluster`] over
//! [`nowmp_tmk::DsmSystem`]) spends two OS threads per simulated host
//! (worker + service loop), which caps `whatif_scale` sweeps at ~32
//! hosts. This module is the event-driven alternative: every simulated
//! host is a **resumable task** ([`nowmp_tmk::RegionTask`]) whose
//! protocol position between communication points is explicit data,
//! not a parked stack. A [`nowmp_util::TaskScheduler`] (run queue
//! beside the deadline set) decides what runs next; a small worker
//! pool of `NOWMP_POOL` scoped threads steps whole waves of runnable
//! tasks in parallel. OS thread count is O(pool), not O(hosts).
//!
//! ## What is simulated, and how faithfully
//!
//! * **Shared memory** is a flat [`SimMemory`] word store with
//!   phase-snapshot semantics: reads see pre-phase memory, writes are
//!   buffered in each task's [`StepOutcome`] and applied in pid order
//!   at the next synchronization point. That is observationally
//!   equivalent to the DSM's lazy-release-consistency guarantee for
//!   race-free programs — which OpenMP regions are by contract.
//! * **Virtual time** is charged per host from the same
//!   [`CostModel`]/[`NetModel`] the thread engine uses: compute via
//!   `compute_time(region_cost, iters, host)`, remote page faults via
//!   [`NetModel::fetch_rtt`] against a per-host valid-page set that
//!   synchronization invalidates, barriers via
//!   [`NetModel::barrier_time`]. Grace alarms and spawn completions
//!   live in the scheduler's deadline set and fire when the engine's
//!   virtual now crosses them.
//! * **Adaptation** mirrors [`crate::Cluster::adaptation_point`]
//!   event for event: `NormalLeave*`, `JoinCommitted*`, optional
//!   `Checkpoint`, then `Adaptation` — same [`reassign`] policies,
//!   same [`HostPool`] placement rules, same grace/urgent race
//!   (decided here by tick comparison instead of a parked alarm
//!   thread). The 32-host parity test in `crates/bench` holds the two
//!   engines to identical event shapes and identical checkpoint files.
//!
//! What is *not* simulated: per-message protocol traffic (diffs,
//! write notices, GC). GC never changes page contents, so checkpoint
//! images are unaffected; the cost of consistency traffic is folded
//! into the per-fault RTT charge.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use nowmp_ckpt::{migration_image_bytes, Checkpoint};
use nowmp_net::{CostModel, Gpid, HostId, NetModel};
use nowmp_tmk::engine::{HostState, RegionTask, SimMemory, Step, StepOutcome, TaskCtx};
use nowmp_tmk::shm::{Allocator, Registry};
use nowmp_tmk::types::{Addr, PageId, Pid};
use nowmp_tmk::{ElemKind, MemoryImage};
use nowmp_util::{TaskScheduler, Tick};

use crate::cluster::{AdaptError, ClusterConfig, LeaveSel};
use crate::hostpool::HostPool;
use crate::log::{EventKind, EventLog};
use crate::reassign::reassign;

/// Reduction scratch published by [`TaskSystem::new`] (mirrors the
/// OpenMP layer's `__omp_red` so registries — and therefore checkpoint
/// bytes — match the thread engine).
pub const RED_ARRAY: &str = "__omp_red";
/// Dynamic-schedule counter (mirrors `__omp_dyn`).
pub const DYN_COUNTER: &str = "__omp_dyn";
/// Largest team the reduction scratch supports.
pub const MAX_TEAM: usize = 64;

/// Scheduler task-id namespaces. Host tasks use their pid directly;
/// pseudo-tasks for deadline-set timers live far above any team size.
const JOIN_BASE: usize = 1 << 32;
const GRACE_BASE: usize = 1 << 33;

/// An application expressed as resumable region tasks — the
/// task-engine analog of registering regions with `OmpProgram`.
///
/// `kernel` is the outlined-region factory: given a region name and
/// its firstprivate params, produce the [`RegionTask`] state machine
/// for one rank. It must perform *exactly* the reads, writes, and
/// `charge_compute` calls the thread-backed region body performs, in
/// the same order, for event and image parity to hold.
pub trait TaskApp {
    /// Kernel name (reporting only).
    fn name(&self) -> &'static str;
    /// Allocate shared arrays and run init regions.
    fn setup(&self, sys: &mut TaskSystem);
    /// Run one outer iteration (one or more `parallel` calls).
    fn step(&self, sys: &mut TaskSystem, iter: usize);
    /// Max-abs error against a sequential reference after `iters`.
    fn verify(&self, sys: &TaskSystem, iters: usize) -> f64;
    /// Build the per-rank resumable task for `region`.
    fn kernel(
        &self,
        sys: &TaskSystem,
        region: &str,
        params: &[u8],
        pid: Pid,
        nprocs: usize,
    ) -> Box<dyn RegionTask>;
}

/// A spawned-but-not-committed joiner (between `JoinRequested` and
/// the adaptation point that seats it).
struct PendingJoin {
    gpid: Gpid,
    host: HostId,
    ready_at: Tick,
    ready: bool,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum LeavePhase {
    Pending,
    Urgent,
}

/// A requested leave waiting for an adaptation point (or its grace
/// deadline, whichever the virtual clock reaches first).
struct PendingLeave {
    gpid: Gpid,
    phase: LeavePhase,
    /// Deadline-set key of the grace timer (cancel on normal claim).
    key: Option<(u64, u64)>,
}

/// Per-member simulation state: which pages the host's (simulated)
/// copy currently holds valid. Faults on pages outside this set are
/// charged a fetch RTT; synchronization invalidates pages written by
/// other ranks — the LRC write-notice effect.
#[derive(Default)]
struct HostSim {
    valid: HashSet<PageId>,
}

/// The task-backed cluster: flat shared memory, a deadline-set
/// scheduler, and the same adaptive control plane as [`crate::Cluster`].
pub struct TaskSystem {
    cfg: ClusterConfig,
    mem: SimMemory,
    allocator: Allocator,
    registry: Registry,
    log: EventLog,
    sched: TaskScheduler,
    hosts: HostPool,
    /// `members[pid]` = gpid; `members[0]` is the master.
    members: Vec<Gpid>,
    sim: HashMap<Gpid, HostSim>,
    next_gpid: u32,
    pending_joins: Vec<PendingJoin>,
    pending_leaves: Vec<PendingLeave>,
    ckpt_requested: bool,
    last_ckpt_fork: u64,
    fork_no: u64,
    adaptive: bool,
    pool: usize,
    peak_workers: usize,
}

/// One runnable task taken out of the state table for a wave.
struct WaveItem {
    pid: usize,
    task: Box<dyn RegionTask>,
    step: Step,
    out: StepOutcome,
}

impl TaskSystem {
    /// Bring up the task engine on `cfg` (same config type as the
    /// thread engine, so parity tests share one config literally).
    pub fn new(cfg: ClusterConfig) -> TaskSystem {
        let spp = cfg.dsm.slots_per_page();
        let mut hosts = HostPool::new(cfg.hosts);
        for h in 0..cfg.hosts {
            let h = HostId(h as u16);
            hosts.set_speed(h, cfg.cost_model.effective_speed(h));
        }
        let mut members = Vec::with_capacity(cfg.initial_procs);
        let mut sim = HashMap::new();
        for i in 0..cfg.initial_procs {
            let g = Gpid(i as u32 + 1);
            hosts.occupy(HostId(i as u16), g);
            members.push(g);
            sim.insert(g, HostSim::default());
        }
        let pool = pool_size();
        let log = EventLog::with_clock(cfg.clock.clone());
        let adaptive = cfg.adaptive;
        let next_gpid = members.len() as u32 + 1;
        let mut sys = TaskSystem {
            cfg,
            mem: SimMemory::new(spp),
            allocator: Allocator::new(spp),
            registry: Registry::new(),
            log,
            sched: TaskScheduler::new(),
            hosts,
            members,
            sim,
            next_gpid,
            pending_joins: Vec::new(),
            pending_leaves: Vec::new(),
            ckpt_requested: false,
            last_ckpt_fork: 0,
            fork_no: 0,
            adaptive,
            pool,
            peak_workers: 0,
        };
        // Runtime scratch first, exactly like the OpenMP layer, so the
        // registry (and checkpoint bytes) line up with the thread engine.
        sys.alloc(RED_ARRAY, MAX_TEAM as u64, ElemKind::F64);
        sys.alloc(DYN_COUNTER, 1, ElemKind::U64);
        sys
    }

    // ---- shared-memory allocation & master (sequential) access ----

    /// Allocate and publish a shared array.
    pub fn alloc(&mut self, name: &str, len: u64, kind: ElemKind) -> Addr {
        let addr = self.allocator.alloc(len);
        self.registry.publish(name, addr, len, kind);
        self.mem.ensure_slots(self.allocator.allocated_slots());
        addr
    }

    /// Allocate a shared f64 array.
    pub fn alloc_f64(&mut self, name: &str, len: u64) -> Addr {
        self.alloc(name, len, ElemKind::F64)
    }

    /// Allocate a shared u64 array.
    pub fn alloc_u64(&mut self, name: &str, len: u64) -> Addr {
        self.alloc(name, len, ElemKind::U64)
    }

    /// Base address of a published array (panics if unknown).
    pub fn addr_of(&self, name: &str) -> Addr {
        self.registry
            .get(name)
            .unwrap_or_else(|| panic!("no shared array named {name:?}"))
            .addr
    }

    /// Master-side sequential read of an f64 element.
    pub fn get_f64(&self, name: &str, idx: usize) -> f64 {
        f64::from_bits(self.mem.load(self.addr_of(name) + idx as Addr))
    }

    /// Master-side sequential read of a u64 element.
    pub fn get_u64(&self, name: &str, idx: usize) -> u64 {
        self.mem.load(self.addr_of(name) + idx as Addr)
    }

    // ---- introspection ----

    /// Current team size.
    pub fn nprocs(&self) -> usize {
        self.members.len()
    }

    /// Completed forks.
    pub fn fork_no(&self) -> u64 {
        self.fork_no
    }

    /// The adaptation/event log (same type the thread engine fills).
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Worker-pool width (`NOWMP_POOL`, default `min(cores, 8)`).
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Most scoped worker threads alive at once across all waves so
    /// far — the O(pool) bound the 1024-host lane asserts.
    pub fn peak_workers(&self) -> usize {
        self.peak_workers
    }

    /// Engine virtual time.
    pub fn now(&self) -> Tick {
        self.sched.now()
    }

    /// `omp_set_dynamic` analog.
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
    }

    // ---- adaptation requests (mirror crate::Cluster) ----

    /// The typed adaptation surface — same verbs as
    /// [`crate::cluster::AdaptHandle`], borrowed mutably because the
    /// task engine is single-owner (no timer threads to share with).
    pub fn adapt(&mut self) -> TaskAdapt<'_> {
        TaskAdapt { sys: self }
    }

    /// Deprecated spelling of [`TaskAdapt::join`].
    #[deprecated(note = "use `adapt().join()`")]
    pub fn request_join(&mut self) -> Result<Gpid, AdaptError> {
        self.join_impl()
    }

    /// Deprecated spelling of [`TaskAdapt::join_ready`].
    #[deprecated(note = "use `adapt().join_ready()`")]
    pub fn request_join_ready(&mut self) -> Result<Gpid, AdaptError> {
        self.join_ready_impl()
    }

    /// Deprecated spelling of [`TaskAdapt::leave`] with
    /// [`LeaveSel::Pid`].
    #[deprecated(note = "use `adapt().leave(LeaveSel::Pid(pid), grace)`")]
    pub fn request_leave_pid(
        &mut self,
        pid: usize,
        grace: Option<Duration>,
    ) -> Result<Gpid, AdaptError> {
        self.leave_pid_impl(pid, grace)
    }

    /// Deprecated spelling of [`TaskAdapt::checkpoint`].
    #[deprecated(note = "use `adapt().checkpoint()`")]
    pub fn request_checkpoint(&mut self) {
        self.ckpt_requested = true;
    }

    /// Ask a free workstation to join; the spawn completes (and
    /// `JoinReady` is logged) when virtual time reaches the spawn
    /// deadline parked in the scheduler.
    fn join_impl(&mut self) -> Result<Gpid, AdaptError> {
        let host = self.hosts.reserve_free().ok_or(AdaptError::NoFreeHost)?;
        self.log.push(EventKind::JoinRequested { host });
        let gpid = Gpid(self.next_gpid);
        self.next_gpid += 1;
        let spawn = self.cfg.cost_model.spawn_time();
        let ready_at = tick_after(self.sched.now(), spawn);
        let idx = self.pending_joins.len();
        self.sched.park_until(JOIN_BASE + idx, ready_at);
        self.pending_joins.push(PendingJoin {
            gpid,
            host,
            ready_at,
            ready: false,
        });
        Ok(gpid)
    }

    /// [`TaskAdapt::join`], then advance virtual time to the spawn
    /// completion so the join is committable at the next adaptation
    /// point — the blocking flavor the thread engine's
    /// `Cluster::join_ready` provides.
    fn join_ready_impl(&mut self) -> Result<Gpid, AdaptError> {
        let gpid = self.join_impl()?;
        let ready_at = self
            .pending_joins
            .iter()
            .find(|j| j.gpid == gpid)
            .map(|j| j.ready_at)
            .expect("join just pushed");
        self.advance_time(ready_at);
        Ok(gpid)
    }

    /// Rank `pid` leaves, with an optional grace period (defaulting to
    /// the config's). A grace deadline is parked in the scheduler's
    /// deadline set; if virtual time crosses it before an adaptation
    /// point claims the leave, the migration turns urgent.
    fn leave_pid_impl(&mut self, pid: usize, grace: Option<Duration>) -> Result<Gpid, AdaptError> {
        if pid == 0 {
            return Err(AdaptError::MasterCannotLeave);
        }
        let gpid = *self
            .members
            .get(pid)
            .ok_or(AdaptError::NotInTeam(Gpid(pid as u32)))?;
        if self.pending_leaves.iter().any(|l| l.gpid == gpid) {
            return Err(AdaptError::AlreadyLeaving(gpid));
        }
        let grace = grace.or(self.cfg.default_grace);
        self.log.push(EventKind::LeaveRequested { gpid, grace });
        let idx = self.pending_leaves.len();
        let key = grace.map(|g| {
            let deadline = tick_after(self.sched.now(), g);
            self.sched.park_until(GRACE_BASE + idx, deadline)
        });
        self.pending_leaves.push(PendingLeave {
            gpid,
            phase: LeavePhase::Pending,
            key,
        });
        Ok(gpid)
    }

    /// Write a checkpoint right now, outside any adaptation point
    /// (mirrors `Cluster::checkpoint_now`: logs only a `Checkpoint`
    /// event).
    pub fn checkpoint_now(&mut self) {
        self.write_checkpoint();
    }

    // ---- the engine proper ----

    /// Run one parallel region over the current team: an adaptation
    /// point, then waves of runnable tasks stepped on the worker pool
    /// until every rank is done.
    pub fn parallel(&mut self, app: &dyn TaskApp, region: &str, params: &[u8]) {
        self.adaptation_point();
        let nprocs = self.members.len();
        let per_iter = self.cfg.cost_model.region_cost(region);
        let fetch_ns = dur_ns(self.cfg.net_model.fetch_rtt(self.cfg.dsm.page_size));
        let barrier_ns = dur_ns(self.cfg.net_model.barrier_time(nprocs));

        let mut states: Vec<HostState> = Vec::with_capacity(nprocs);
        for pid in 0..nprocs {
            states.push(HostState::Running(
                app.kernel(&*self, region, params, pid as Pid, nprocs),
            ));
        }

        let base = self.sched.now().as_nanos();
        let mut host_now: Vec<u64> = vec![base; nprocs];
        let mut pending_writes: Vec<Vec<(Addr, u64)>> = vec![Vec::new(); nprocs];

        loop {
            // Run queue: ready every runnable rank in pid order, then
            // drain exactly that many — FIFO pops give the wave its
            // deterministic merge order.
            let mut readied = 0;
            for (pid, st) in states.iter().enumerate() {
                if st.is_running() {
                    self.sched.ready(pid);
                    readied += 1;
                }
            }
            if readied > 0 {
                let mut wave: Vec<WaveItem> = Vec::with_capacity(readied);
                for _ in 0..readied {
                    let (_, pid) = self.sched.next().expect("readied tasks pending");
                    let task = match std::mem::replace(&mut states[pid], HostState::Idle) {
                        HostState::Running(t) => t,
                        _ => unreachable!("run queue only holds running ranks"),
                    };
                    wave.push(WaveItem {
                        pid,
                        task,
                        step: Step::Again,
                        out: StepOutcome::default(),
                    });
                }
                self.step_wave(&mut wave, nprocs);
                // Sequential merge in pid (FIFO) order.
                for item in wave {
                    let gpid = self.members[item.pid];
                    let host = self.hosts.host_of(gpid).expect("member is placed");
                    let sim = self.sim.get_mut(&gpid).expect("member simulated");
                    let mut t = host_now[item.pid];
                    for page in &item.out.touched {
                        if sim.valid.insert(*page) {
                            t += fetch_ns;
                        }
                    }
                    t += dur_ns(self.cfg.cost_model.compute_time(
                        per_iter,
                        item.out.compute_iters,
                        host,
                    ));
                    host_now[item.pid] = t;
                    pending_writes[item.pid].extend(item.out.writes);
                    states[item.pid] = match item.step {
                        Step::Again => HostState::Running(item.task),
                        Step::Barrier => HostState::BarrierWait(item.task),
                        Step::Done => HostState::Done,
                    };
                }
                continue;
            }
            // No runnable rank: everyone is at the barrier (or done).
            self.sync_point(&mut pending_writes, &mut host_now, barrier_ns);
            let all_done = states.iter().all(|s| matches!(s, HostState::Done));
            if all_done {
                break;
            }
            for st in states.iter_mut() {
                if st.is_parked() {
                    let HostState::BarrierWait(t) = std::mem::replace(st, HostState::Idle) else {
                        unreachable!("is_parked ⇒ BarrierWait");
                    };
                    *st = HostState::Running(t);
                }
            }
        }
        self.fork_no += 1;
    }

    /// Step every item of a wave on the scoped worker pool. Peak OS
    /// threads = 1 (caller) + `min(pool, wave.len())`.
    fn step_wave(&mut self, wave: &mut [WaveItem], nprocs: usize) {
        let mem = &self.mem;
        if wave.len() <= 1 {
            for item in wave.iter_mut() {
                let mut out = StepOutcome::default();
                let mut ctx = TaskCtx::new(item.pid as Pid, nprocs, mem, &mut out);
                item.step = item.task.step(&mut ctx);
                item.out = out;
            }
            self.peak_workers = self.peak_workers.max(1);
            return;
        }
        let workers = self.pool.min(wave.len()).max(1);
        let chunk = wave.len().div_ceil(workers);
        std::thread::scope(|s| {
            for ch in wave.chunks_mut(chunk) {
                s.spawn(move || {
                    for item in ch {
                        let mut out = StepOutcome::default();
                        let mut ctx = TaskCtx::new(item.pid as Pid, nprocs, mem, &mut out);
                        item.step = item.task.step(&mut ctx);
                        item.out = out;
                    }
                });
            }
        });
        self.peak_workers = self.peak_workers.max(workers);
    }

    /// Barrier / region-end synchronization: apply buffered writes in
    /// pid order, invalidate other ranks' copies of written pages,
    /// and advance every host (and the engine) past the barrier.
    fn sync_point(
        &mut self,
        pending_writes: &mut [Vec<(Addr, u64)>],
        host_now: &mut [u64],
        barrier_ns: u64,
    ) {
        let mut written_by: HashMap<PageId, Vec<usize>> = HashMap::new();
        for (pid, writes) in pending_writes.iter().enumerate() {
            for (addr, _) in writes {
                let page = self.mem.page_of(*addr);
                let writers = written_by.entry(page).or_default();
                if writers.last() != Some(&pid) {
                    writers.push(pid);
                }
            }
        }
        for writes in pending_writes.iter_mut() {
            self.mem.apply_writes(writes);
            writes.clear();
        }
        for (pid, &gpid) in self.members.iter().enumerate() {
            let sim = self.sim.get_mut(&gpid).expect("member simulated");
            for (page, writers) in &written_by {
                let foreign = writers.iter().any(|&w| w != pid);
                if foreign {
                    sim.valid.remove(page);
                }
            }
        }
        let arrive = host_now.iter().copied().max().unwrap_or(0);
        let release = arrive + barrier_ns;
        let stall = self.advance_time(Tick::from_nanos(release));
        let release = release + dur_ns(stall);
        for t in host_now.iter_mut() {
            *t = release;
        }
    }

    /// Advance virtual time to `target`, firing every deadline on the
    /// way (spawn completions ⇒ `JoinReady`; expired grace periods ⇒
    /// urgent migration, which freezes the computation and returns the
    /// extra stall the caller must add to in-flight hosts).
    fn advance_time(&mut self, target: Tick) -> Duration {
        let mut target_ns = target.as_nanos().max(self.sched.now().as_nanos());
        let mut stall = Duration::ZERO;
        while let Some(d) = self.sched.earliest_deadline() {
            if d.as_nanos() > target_ns {
                break;
            }
            let (t, id) = self.sched.next().expect("deadline pending");
            self.cfg.clock.advance_to(t);
            if id >= GRACE_BASE {
                let cost = self.fire_grace(id - GRACE_BASE);
                if cost > Duration::ZERO {
                    let resume = tick_after(t, cost);
                    self.sched.advance_to(resume);
                    self.cfg.clock.advance_to(resume);
                    target_ns += dur_ns(cost);
                    stall += cost;
                }
            } else if id >= JOIN_BASE {
                self.fire_join(id - JOIN_BASE);
            }
        }
        let target = Tick::from_nanos(target_ns);
        self.sched.advance_to(target);
        self.cfg.clock.advance_to(target);
        stall
    }

    /// A spawn deadline fired: the joiner finished connection setup.
    fn fire_join(&mut self, idx: usize) {
        if let Some(j) = self.pending_joins.get_mut(idx) {
            if !j.ready {
                j.ready = true;
                self.log.push(EventKind::JoinReady { gpid: j.gpid });
            }
        }
    }

    /// A grace deadline fired before any adaptation point claimed the
    /// leave: migrate urgently (Fig. 2c), multiplexing onto the
    /// least-loaded host (or a free one, per config). Returns the
    /// virtual time the frozen computation loses.
    fn fire_grace(&mut self, idx: usize) -> Duration {
        let Some(l) = self.pending_leaves.get_mut(idx) else {
            return Duration::ZERO;
        };
        if l.phase != LeavePhase::Pending {
            return Duration::ZERO;
        }
        l.phase = LeavePhase::Urgent;
        let gpid = l.gpid;
        let from = self.hosts.host_of(gpid).expect("leaver is placed");
        let to = if self.cfg.migrate_prefer_free {
            self.hosts.free_host()
        } else {
            None
        }
        .or_else(|| self.hosts.least_loaded_excluding(from))
        .unwrap_or(from);
        let resident = self.sim.get(&gpid).map(|s| s.valid.len()).unwrap_or(0);
        let image_bytes = migration_image_bytes(resident, self.cfg.dsm.page_size);
        self.log.push(EventKind::UrgentMigrationStart {
            gpid,
            from,
            to,
            image_bytes,
        });
        let took =
            self.cfg.cost_model.spawn_time() + self.cfg.cost_model.migration_time(image_bytes);
        self.hosts.vacate(from, gpid);
        self.hosts.occupy(to, gpid);
        self.log.push(EventKind::UrgentMigrationDone { gpid, took });
        took
    }

    /// The adaptation point: commit ready joins, claim pending leaves,
    /// write due checkpoints — in exactly the thread engine's event
    /// order (`NormalLeave*`, `JoinCommitted*`, `Checkpoint?`,
    /// `Adaptation`).
    fn adaptation_point(&mut self) {
        if !self.adaptive {
            return;
        }
        let mut joins: Vec<(Gpid, HostId)> = Vec::new();
        let mut i = 0;
        while i < self.pending_joins.len() {
            if self.pending_joins[i].ready {
                let j = self.pending_joins.remove(i);
                joins.push((j.gpid, j.host));
            } else {
                i += 1;
            }
        }
        let mut leaves: Vec<Gpid> = Vec::new();
        for l in self.pending_leaves.drain(..) {
            if let (LeavePhase::Pending, Some(key)) = (l.phase, l.key) {
                self.sched.cancel(key);
            }
            leaves.push(l.gpid);
        }
        let ckpt_due = self.ckpt_requested
            || self
                .cfg
                .ckpt_every_forks
                .is_some_and(|k| self.fork_no >= self.last_ckpt_fork + k);
        if joins.is_empty() && leaves.is_empty() && !ckpt_due {
            return;
        }
        let old = self.members.clone();
        let joiner_gpids: Vec<Gpid> = joins.iter().map(|(g, _)| *g).collect();
        let members = reassign(self.cfg.reassign, &old, &leaves, &joiner_gpids);
        for &g in &leaves {
            if let Some(h) = self.hosts.host_of(g) {
                self.hosts.vacate(h, g);
            }
            self.sim.remove(&g);
            self.log.push(EventKind::NormalLeave { gpid: g });
        }
        for (g, h) in &joins {
            self.hosts.occupy(*h, *g);
            self.hosts.unreserve(*h);
            self.sim.insert(*g, HostSim::default());
            let pid = members.iter().position(|m| m == g).expect("joiner seated") as u16;
            self.log.push(EventKind::JoinCommitted { gpid: *g, pid });
        }
        let nprocs = members.len();
        self.members = members;
        if ckpt_due {
            self.write_checkpoint();
            self.ckpt_requested = false;
        }
        self.log.push(EventKind::Adaptation {
            fork_no: self.fork_no,
            joins: joins.len(),
            leaves: leaves.len(),
            took: Duration::ZERO,
            bytes_moved: 0,
            max_link_bytes: 0,
            nprocs,
        });
    }

    /// Export the full shared image and write/serialize a checkpoint,
    /// byte-compatible with the thread engine's.
    fn write_checkpoint(&mut self) {
        let pages: Vec<(PageId, Vec<u64>)> = (0..self.allocator.allocated_pages())
            .map(|p| (p as PageId, self.mem.page_words(p as PageId)))
            .collect();
        let image = MemoryImage {
            fork_no: self.fork_no,
            alloc_slots: self.allocator.allocated_slots(),
            registry: self.registry.full(),
            pages,
        };
        let master_blob = self
            .cfg
            .master_state_provider
            .as_ref()
            .map(|f| f())
            .unwrap_or_default();
        let ckpt = Checkpoint { image, master_blob };
        let bytes = match &self.cfg.ckpt_path {
            Some(path) => ckpt.write_file(path).expect("checkpoint write"),
            None => ckpt.to_bytes().len() as u64,
        };
        self.last_ckpt_fork = self.fork_no;
        self.log.push(EventKind::Checkpoint {
            bytes,
            took: Duration::ZERO,
        });
    }

    /// Cost model (for apps that size work from it).
    pub fn cost_model(&self) -> &CostModel {
        &self.cfg.cost_model
    }

    /// Net model.
    pub fn net_model(&self) -> &NetModel {
        &self.cfg.net_model
    }
}

/// The task engine's adaptation surface, returned by
/// [`TaskSystem::adapt`] — the same join / leave / checkpoint verbs as
/// [`crate::cluster::AdaptHandle`], plus the engine-only blocking
/// [`join_ready`](Self::join_ready) (virtual time can be advanced
/// synchronously here, so it needs no master handshake).
pub struct TaskAdapt<'a> {
    sys: &'a mut TaskSystem,
}

impl TaskAdapt<'_> {
    /// Request a join; the spawn completes when virtual time reaches
    /// the spawn deadline.
    pub fn join(&mut self) -> Result<Gpid, AdaptError> {
        self.sys.join_impl()
    }

    /// Request a join and advance virtual time to the spawn completion,
    /// so the very next adaptation point commits it.
    pub fn join_ready(&mut self) -> Result<Gpid, AdaptError> {
        self.sys.join_ready_impl()
    }

    /// Request a leave for the selected member with an optional grace
    /// period (defaulting to the config's).
    pub fn leave(&mut self, sel: LeaveSel, grace: Option<Duration>) -> Result<Gpid, AdaptError> {
        let pid = match sel {
            LeaveSel::Pid(p) => p as usize,
            LeaveSel::Gpid(g) => self
                .sys
                .members
                .iter()
                .position(|&m| m == g)
                .ok_or(AdaptError::NotInTeam(g))?,
        };
        self.sys.leave_pid_impl(pid, grace)
    }

    /// Request a checkpoint at the next adaptation point.
    pub fn checkpoint(&mut self) {
        self.sys.ckpt_requested = true;
    }
}

/// Worker-pool width: `NOWMP_POOL` if set, else `min(cores, 8)`.
fn pool_size() -> usize {
    if let Ok(v) = std::env::var("NOWMP_POOL") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

fn tick_after(t: Tick, d: Duration) -> Tick {
    Tick::from_nanos(t.as_nanos().saturating_add(dur_ns(d)))
}

/// Run `app` end to end on the task engine: setup, `iters` steps,
/// verify. Returns the max-abs verification error.
pub fn run_task_app(app: &dyn TaskApp, cfg: ClusterConfig, iters: usize) -> (f64, TaskSystem) {
    let mut sys = TaskSystem::new(cfg);
    app.setup(&mut sys);
    for it in 0..iters {
        app.step(&mut sys, it);
    }
    let err = app.verify(&sys, iters);
    (err, sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowmp_util::Clock;

    fn cfg(hosts: usize, procs: usize) -> ClusterConfig {
        ClusterConfig::test(hosts, procs)
            .with_clock(Clock::new_virtual())
            .with_adaptive(true)
    }

    /// Two-phase ring app: phase A writes `arr[pid] = pid`, barrier,
    /// phase B reads the *right neighbor's* slot (proving barrier
    /// write visibility) and writes `out[pid] = neighbor`.
    struct Ring;

    struct RingTask {
        pid: Pid,
        arr: Addr,
        out: Addr,
        phase: u8,
    }

    impl RegionTask for RingTask {
        fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
            let n = ctx.nprocs() as u64;
            match self.phase {
                0 => {
                    ctx.write_u64(self.arr + self.pid as Addr, self.pid as u64);
                    ctx.charge_compute(1);
                    self.phase = 1;
                    Step::Barrier
                }
                _ => {
                    let nbr = (self.pid as u64 + 1) % n;
                    let v = ctx.read_u64(self.arr + nbr);
                    ctx.write_u64(self.out + self.pid as Addr, v);
                    Step::Done
                }
            }
        }
    }

    impl TaskApp for Ring {
        fn name(&self) -> &'static str {
            "ring"
        }
        fn setup(&self, sys: &mut TaskSystem) {
            sys.alloc_u64("arr", 64);
            sys.alloc_u64("out", 64);
        }
        fn step(&self, sys: &mut TaskSystem, _iter: usize) {
            sys.parallel(self, "ring", &[]);
        }
        fn verify(&self, sys: &TaskSystem, _iters: usize) -> f64 {
            let n = sys.nprocs() as u64;
            let mut err = 0.0f64;
            for p in 0..n {
                let want = (p + 1) % n;
                let got = sys.get_u64("out", p as usize);
                err = err.max((got as f64 - want as f64).abs());
            }
            err
        }
        fn kernel(
            &self,
            sys: &TaskSystem,
            _region: &str,
            _params: &[u8],
            pid: Pid,
            _nprocs: usize,
        ) -> Box<dyn RegionTask> {
            Box::new(RingTask {
                pid,
                arr: sys.addr_of("arr"),
                out: sys.addr_of("out"),
                phase: 0,
            })
        }
    }

    #[test]
    fn ring_sees_neighbor_writes_after_barrier() {
        let (err, sys) = run_task_app(&Ring, cfg(4, 4), 1);
        assert_eq!(err, 0.0);
        assert_eq!(sys.fork_no(), 1);
    }

    #[test]
    fn compute_charges_advance_virtual_time() {
        let c = cfg(4, 4).with_cost_model(
            CostModel::disabled().with_region_cost("ring", Duration::from_millis(1)),
        );
        let (err, sys) = run_task_app(&Ring, c, 1);
        assert_eq!(err, 0.0);
        assert!(sys.now() >= Tick::from_nanos(1_000_000), "{:?}", sys.now());
    }

    #[test]
    fn join_then_leave_mirrors_thread_event_order() {
        let mut sys = TaskSystem::new(cfg(6, 3));
        Ring.setup(&mut sys);
        let g = sys.adapt().join_ready().unwrap();
        sys.parallel(&Ring, "ring", &[]); // commits the join
        assert_eq!(sys.nprocs(), 4);
        sys.adapt()
            .leave(LeaveSel::Pid(2), Some(Duration::from_secs(30)))
            .unwrap();
        sys.parallel(&Ring, "ring", &[]); // normal leave
        assert_eq!(sys.nprocs(), 3);
        let kinds: Vec<String> = sys
            .log()
            .entries()
            .iter()
            .map(|e| match &e.kind {
                EventKind::JoinRequested { .. } => "jreq".into(),
                EventKind::JoinReady { gpid } => {
                    assert_eq!(*gpid, g);
                    "jready".into()
                }
                EventKind::JoinCommitted { pid, .. } => format!("jcommit:{pid}"),
                EventKind::LeaveRequested { .. } => "lreq".into(),
                EventKind::NormalLeave { .. } => "nleave".into(),
                EventKind::Adaptation {
                    joins,
                    leaves,
                    nprocs,
                    ..
                } => {
                    format!("adapt:+{joins}-{leaves}->{nprocs}")
                }
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "jreq",
                "jready",
                "jcommit:3",
                "adapt:+1-0->4",
                "lreq",
                "nleave",
                "adapt:+0-1->3"
            ]
        );
    }

    #[test]
    fn master_cannot_leave_and_duplicate_leave_rejected() {
        let mut sys = TaskSystem::new(cfg(4, 3));
        assert!(matches!(
            sys.adapt().leave(LeaveSel::Pid(0), None),
            Err(AdaptError::MasterCannotLeave)
        ));
        sys.adapt().leave(LeaveSel::Pid(1), None).unwrap();
        assert!(matches!(
            sys.adapt().leave(LeaveSel::Pid(1), None),
            Err(AdaptError::AlreadyLeaving(_))
        ));
    }

    #[test]
    fn expired_grace_turns_urgent_before_adaptation() {
        // Paper costs: spawning takes 0.7 s of virtual time, so a
        // 1 ms grace expires while the join spawn advances the clock
        // — before any adaptation point can claim the leave normally.
        let c = cfg(6, 3)
            .with_migrate_prefer_free(true)
            .with_cost_model(CostModel::paper_1999());
        let mut sys = TaskSystem::new(c);
        Ring.setup(&mut sys);
        sys.adapt()
            .leave(LeaveSel::Pid(2), Some(Duration::from_millis(1)))
            .unwrap();
        sys.adapt().join_ready().unwrap();
        let kinds: Vec<&'static str> = sys
            .log()
            .entries()
            .iter()
            .map(|e| match &e.kind {
                EventKind::LeaveRequested { .. } => "lreq",
                EventKind::JoinRequested { .. } => "jreq",
                EventKind::JoinReady { .. } => "jready",
                EventKind::UrgentMigrationStart { .. } => "ustart",
                EventKind::UrgentMigrationDone { .. } => "udone",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["lreq", "jreq", "ustart", "udone", "jready"]);
        // The next adaptation point retires the (already migrated)
        // leaver and seats the joiner, like the thread engine.
        sys.parallel(&Ring, "ring", &[]);
        let tail: Vec<&'static str> = sys
            .log()
            .entries()
            .iter()
            .skip(5)
            .map(|e| match &e.kind {
                EventKind::NormalLeave { .. } => "nleave",
                EventKind::JoinCommitted { .. } => "jcommit",
                EventKind::Adaptation { .. } => "adapt",
                _ => "other",
            })
            .collect();
        assert_eq!(tail, vec!["nleave", "jcommit", "adapt"]);
        assert_eq!(sys.nprocs(), 3);
    }

    #[test]
    fn checkpoint_roundtrips_through_ckpt_crate() {
        let dir = std::env::temp_dir().join(format!("nowmp-task-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("task.ckpt");
        let c = cfg(4, 4).with_ckpt_path(path.clone());
        let (err, mut sys) = {
            let mut sys = TaskSystem::new(c);
            Ring.setup(&mut sys);
            Ring.step(&mut sys, 0);
            (Ring.verify(&sys, 1), sys)
        };
        assert_eq!(err, 0.0);
        sys.checkpoint_now();
        let ck = Checkpoint::read_file(&path).unwrap();
        assert_eq!(ck.image.fork_no, 1);
        assert_eq!(ck.image.registry.len(), 4); // __omp_red, __omp_dyn, arr, out
        assert_eq!(ck.image.registry[0].name, RED_ARRAY);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_bounds_workers_not_hosts() {
        let (_, sys) = run_task_app(&Ring, cfg(4, 4), 2);
        assert!(sys.peak_workers() <= sys.pool());
    }
}
