//! The adaptive cluster runtime — the paper's contribution.
//!
//! [`Cluster`] wraps a [`nowmp_tmk::DsmSystem`] and its master process
//! and adds *transparent adaptation*:
//!
//! * **join events**: a new workstation's process is spawned
//!   immediately and connects asynchronously while the computation
//!   continues; it enters the team at the next adaptation point (§4.1);
//! * **normal leaves**: if the computation reaches an adaptation point
//!   within the grace period, the process leaves there — the master
//!   garbage-collects, takes over (or re-homes) pages only the leaver
//!   held, and re-forms the team (§4.2, §3);
//! * **urgent leaves**: when the grace period expires first, the
//!   process migrates (checkpoint-style image transfer at the measured
//!   8.1 MB/s plus 0.6–0.8 s process creation) to another workstation
//!   and *multiplexes* there until the next adaptation point (Fig. 2c);
//! * **checkpointing** (§4.3): at adaptation points only — slaves hold
//!   no private state there, so a master-only checkpoint suffices.
//!
//! Applications never see any of this: they allocate shared arrays and
//! call [`Cluster::parallel`]; iteration re-partitioning happens because
//! the (simulated) OpenMP compiler re-derives each process's share from
//! `(pid, nprocs)` at every fork.

use crate::event::{AdaptEvent, LeavePhase, PendingLeave};
use crate::freeze::Freeze;
use crate::hostpool::HostPool;
use crate::log::{EventKind, EventLog};
use crate::reassign::{reassign, ReassignPolicy};
use crate::sched::JobId;
use nowmp_ckpt::{migration_image_bytes, Checkpoint};
use nowmp_net::{CostModel, Gpid, HostId, NetModel, Network};
use nowmp_tmk::system::RegionRunner;
use nowmp_tmk::{CollectiveConfig, DataPlaneConfig, DsmConfig, DsmSystem, MasterCtl, TmkCtx};
use nowmp_util::Clock;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where pages held only by leavers go (§4.2 vs the §7 future-work idea).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveStrategy {
    /// The master fetches them and becomes owner (the paper's scheme).
    ViaMaster,
    /// Scatter them across survivors (ablation: removes the master-link
    /// bottleneck the paper names as future work).
    Scatter,
}

/// Cluster configuration.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Workstations in the pool.
    pub hosts: usize,
    /// Initial team size (processes, master included).
    pub initial_procs: usize,
    /// Wire cost model (latency, bandwidth, per-message overhead).
    pub net_model: NetModel,
    /// Host cost model (spawn delay, migration stream, per-host speed
    /// and load factors, per-kernel compute costs).
    pub cost_model: CostModel,
    /// DSM protocol configuration.
    pub dsm: DsmConfig,
    /// Pid reassignment policy.
    pub reassign: ReassignPolicy,
    /// Leaver-page sink.
    pub leave_strategy: LeaveStrategy,
    /// Default grace period for leaves that don't specify one.
    pub default_grace: Option<Duration>,
    /// Write a checkpoint every `k` forks (None = only on request).
    pub ckpt_every_forks: Option<u64>,
    /// Where checkpoints go.
    pub ckpt_path: Option<PathBuf>,
    /// Urgent migration prefers a free host over multiplexing.
    pub migrate_prefer_free: bool,
    /// Time backend for the whole simulation: network delays, grace
    /// timers, event-log timestamps. Defaults to [`Clock::from_env`]
    /// (wall time unless `NOWMP_CLOCK=virtual`); tests pass
    /// [`Clock::new_virtual`] for deterministic, wall-free runs.
    pub clock: Clock,
    /// Initial state of the OpenMP dynamic-adjustment switch (§4.4):
    /// whether adapt events take effect at adaptation points. Still
    /// toggleable at runtime through [`Cluster::set_adaptive`]
    /// (`omp_set_dynamic` semantics); this field only picks the state
    /// the cluster is *constructed* with.
    pub adaptive: bool,
    /// Master-private state provider for checkpoints: called at every
    /// checkpoint write, its bytes are handed back by
    /// [`Cluster::recover`]. Configure before construction instead of
    /// mutating the built cluster.
    pub master_state_provider: Option<Arc<dyn Fn() -> Vec<u8> + Send + Sync>>,
    /// Job this cluster belongs to under the multi-tenant scheduler:
    /// stamps every [`EventLog`] entry and keys the DSM page space.
    /// `None` (the single-job default) renders timelines unchanged.
    pub job: Option<JobId>,
}

impl ClusterConfig {
    /// Builder: set the pool size and initial team size (the scheduler
    /// uses this to size per-job clusters: `hosts = max_procs`, with
    /// `procs` of them occupied by the granted team).
    pub fn with_team(mut self, hosts: usize, procs: usize) -> Self {
        assert!(hosts >= procs, "one process per workstation");
        self.hosts = hosts;
        self.initial_procs = procs;
        self
    }

    /// Builder: set the initial adaptivity switch.
    pub fn with_adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Builder: install the master-private state provider for
    /// checkpoints.
    pub fn with_master_state_provider(
        mut self,
        f: impl Fn() -> Vec<u8> + Send + Sync + 'static,
    ) -> Self {
        self.master_state_provider = Some(Arc::new(f));
        self
    }

    /// Builder: set the time backend.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Builder: set the wire cost model.
    pub fn with_net_model(mut self, net_model: NetModel) -> Self {
        self.net_model = net_model;
        self
    }

    /// Builder: set the host cost model.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Builder: replace the DSM protocol configuration wholesale.
    pub fn with_dsm(mut self, dsm: DsmConfig) -> Self {
        self.dsm = dsm;
        self
    }

    /// Builder: tweak the DSM protocol configuration in place
    /// (single-knob ablations: `tune_dsm(|d| d.lazy_diffs = true)`).
    pub fn tune_dsm(mut self, f: impl FnOnce(&mut DsmConfig)) -> Self {
        f(&mut self.dsm);
        self
    }

    /// Builder: set the collective shapes (fork dissemination, join
    /// reduction, barrier release).
    pub fn with_collectives(mut self, collectives: CollectiveConfig) -> Self {
        self.dsm.collectives = collectives;
        self
    }

    /// Builder: set the data-plane overlap levers.
    pub fn with_dataplane(mut self, dataplane: DataPlaneConfig) -> Self {
        self.dsm.dataplane = dataplane;
        self
    }

    /// Builder: set the pid reassignment policy.
    pub fn with_reassign(mut self, reassign: ReassignPolicy) -> Self {
        self.reassign = reassign;
        self
    }

    /// Builder: set the leaver-page sink.
    pub fn with_leave_strategy(mut self, leave_strategy: LeaveStrategy) -> Self {
        self.leave_strategy = leave_strategy;
        self
    }

    /// Builder: set the default grace period.
    pub fn with_default_grace(mut self, grace: Option<Duration>) -> Self {
        self.default_grace = grace;
        self
    }

    /// Builder: checkpoint every `k` forks.
    pub fn with_ckpt_every_forks(mut self, k: u64) -> Self {
        self.ckpt_every_forks = Some(k);
        self
    }

    /// Builder: set the checkpoint destination.
    pub fn with_ckpt_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.ckpt_path = Some(path.into());
        self
    }

    /// Builder: urgent migration prefers a free host over multiplexing.
    pub fn with_migrate_prefer_free(mut self, on: bool) -> Self {
        self.migrate_prefer_free = on;
        self
    }

    /// Builder: label this cluster as `job` under the multi-tenant
    /// scheduler (tags the event log, keys the DSM page space).
    pub fn with_job(mut self, job: JobId) -> Self {
        self.job = Some(job);
        self.dsm.job = job.0;
        self
    }
}

impl ClusterConfig {
    /// A small, emulation-free configuration for tests.
    pub fn test(hosts: usize, procs: usize) -> Self {
        ClusterConfig {
            hosts,
            initial_procs: procs,
            net_model: NetModel::disabled(),
            cost_model: CostModel::disabled(),
            dsm: DsmConfig::test_small(),
            reassign: ReassignPolicy::CompactKeepOrder,
            leave_strategy: LeaveStrategy::ViaMaster,
            default_grace: Some(Duration::from_secs(3)),
            ckpt_every_forks: None,
            ckpt_path: None,
            migrate_prefer_free: false,
            clock: Clock::from_env(),
            adaptive: true,
            master_state_provider: None,
            job: None,
        }
    }

    /// The paper's testbed shape: 8 hosts, 8 processes, paper network
    /// model, 4 KB pages, 3 s grace.
    pub fn paper_1999() -> Self {
        ClusterConfig {
            hosts: 8,
            initial_procs: 8,
            net_model: NetModel::paper_1999(),
            cost_model: CostModel::paper_1999(),
            dsm: DsmConfig::default_4k(),
            reassign: ReassignPolicy::CompactKeepOrder,
            leave_strategy: LeaveStrategy::ViaMaster,
            default_grace: Some(Duration::from_secs(3)),
            ckpt_every_forks: None,
            ckpt_path: None,
            migrate_prefer_free: false,
            clock: Clock::from_env(),
            adaptive: true,
            master_state_provider: None,
            job: None,
        }
    }
}

/// Errors from adaptation requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptError {
    /// No unoccupied workstation to spawn on.
    NoFreeHost,
    /// The process is not a current team member.
    NotInTeam(Gpid),
    /// §4.4: "the master node … currently cannot perform a normal leave".
    MasterCannotLeave,
    /// A leave for this process is already pending.
    AlreadyLeaving(Gpid),
}

impl std::fmt::Display for AdaptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptError::NoFreeHost => write!(f, "no free workstation available"),
            AdaptError::NotInTeam(g) => write!(f, "{g} is not a team member"),
            AdaptError::MasterCannotLeave => write!(f, "the master cannot leave"),
            AdaptError::AlreadyLeaving(g) => write!(f, "{g} already has a pending leave"),
        }
    }
}

impl std::error::Error for AdaptError {}

/// State shared with timer threads and event sources.
pub struct ClusterShared {
    sys: Arc<DsmSystem>,
    net: Network,
    clock: Clock,
    master_gpid: Gpid,
    hosts: Mutex<HostPool>,
    events: Mutex<VecDeque<AdaptEvent>>,
    pending_leaves: Mutex<Vec<Arc<PendingLeave>>>,
    pending_joins: Mutex<HashMap<Gpid, HostId>>,
    team_view: Mutex<Vec<Gpid>>,
    freeze: Arc<Freeze>,
    log: EventLog,
    migrate_prefer_free: bool,
    page_size: usize,
}

impl ClusterShared {
    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The simulation's time source.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The underlying DSM system (diagnostics, migration sizing).
    pub fn dsm_system(&self) -> &Arc<DsmSystem> {
        &self.sys
    }

    /// Current team member list (index = pid).
    pub fn team_view(&self) -> Vec<Gpid> {
        self.team_view.lock().clone()
    }

    /// The typed adaptation handle — the one surface for join / leave /
    /// checkpoint requests (replaces the `request_*` method sprawl).
    pub fn adapt(self: &Arc<Self>) -> AdaptHandle {
        AdaptHandle {
            shared: Arc::clone(self),
        }
    }

    /// Workstation currently hosting `gpid`, if it is placed.
    pub fn host_of(&self, gpid: Gpid) -> Option<HostId> {
        self.hosts.lock().host_of(gpid)
    }

    /// Deprecated spelling of [`AdaptHandle::join`].
    #[deprecated(note = "use `adapt().join()`")]
    pub fn request_join(self: &Arc<Self>) -> Result<HostId, AdaptError> {
        self.join_impl()
    }

    /// Deprecated spelling of [`AdaptHandle::leave`] with
    /// [`LeaveSel::Gpid`].
    #[deprecated(note = "use `adapt().leave(LeaveSel::Gpid(gpid), grace)`")]
    pub fn request_leave(
        self: &Arc<Self>,
        gpid: Gpid,
        grace: Option<Duration>,
    ) -> Result<(), AdaptError> {
        self.leave_impl(gpid, grace)
    }

    /// Deprecated spelling of [`AdaptHandle::checkpoint`].
    #[deprecated(note = "use `adapt().checkpoint()`")]
    pub fn request_checkpoint(&self) {
        self.checkpoint_impl();
    }

    /// Join: reserve a free workstation, spawn the process
    /// (asynchronously: the spawn delay and connection setup overlap the
    /// ongoing computation), and let it enter at a later adaptation
    /// point. Returns the reserved host.
    fn join_impl(self: &Arc<Self>) -> Result<HostId, AdaptError> {
        let host = self
            .hosts
            .lock()
            .reserve_free()
            .ok_or(AdaptError::NoFreeHost)?;
        self.log.push(EventKind::JoinRequested { host });
        let me = Arc::clone(self);
        std::thread::spawn(move || {
            let _participant = me.clock.participant();
            // Process creation cost (0.6–0.8 s on the paper's testbed),
            // charged off the critical path.
            me.net.charge_spawn();
            let mut hello = me.team_view();
            // Connect to slaves first, then the master (§4.1).
            hello.retain(|&g| g != me.master_gpid);
            hello.push(me.master_gpid);
            let gpid = me.sys.spawn_worker(host, me.master_gpid, hello);
            me.pending_joins.lock().insert(gpid, host);
            me.log.push(EventKind::JoinReady { gpid });
        });
        Ok(host)
    }

    /// Leave for `gpid` with the given grace period. If the grace
    /// period expires before the next adaptation point, the process is
    /// urgently migrated.
    fn leave_impl(self: &Arc<Self>, gpid: Gpid, grace: Option<Duration>) -> Result<(), AdaptError> {
        if gpid == self.master_gpid {
            return Err(AdaptError::MasterCannotLeave);
        }
        if !self.team_view.lock().contains(&gpid) {
            return Err(AdaptError::NotInTeam(gpid));
        }
        {
            let pl = self.pending_leaves.lock();
            if pl
                .iter()
                .any(|p| p.gpid == gpid && p.phase() != LeavePhase::Done)
            {
                return Err(AdaptError::AlreadyLeaving(gpid));
            }
        }
        self.log.push(EventKind::LeaveRequested { gpid, grace });
        let pending = Arc::new(PendingLeave::new(gpid, grace));
        // The grace period is a waitable, cancellable deadline on the
        // cluster clock: under a virtual clock it only fires if the
        // whole simulation is otherwise idle until it — exactly the
        // paper's race between the timer and the next adaptation point,
        // minus the wall time. Arm it *before* publishing the pending
        // leave, so an adaptation point that claims the leave
        // immediately always finds a timer to disarm.
        let alarm = grace.map(|g| {
            let a = self.clock.alarm(g);
            pending.arm(a.clone());
            a
        });
        self.pending_leaves.lock().push(Arc::clone(&pending));
        if let Some(alarm) = alarm {
            let me = Arc::clone(self);
            std::thread::spawn(move || {
                let _participant = me.clock.participant();
                if alarm.wait() && pending.claim_urgent() {
                    me.urgent_migrate(pending.gpid);
                }
            });
        }
        Ok(())
    }

    /// Queue a checkpoint for the next adaptation point.
    fn checkpoint_impl(&self) {
        self.events.lock().push_back(AdaptEvent::Checkpoint);
    }

    /// Urgent leave (Figure 2c): freeze the computation, stream the
    /// process image to another workstation, re-home the process there
    /// (multiplexing if occupied). The team shrinks at the *next*
    /// adaptation point, exactly as in the paper.
    pub fn urgent_migrate(&self, gpid: Gpid) {
        let from = self
            .net
            .host_of(gpid)
            .expect("urgent migration target vanished");
        let to = {
            let hosts = self.hosts.lock();
            let free = if self.migrate_prefer_free {
                hosts.free_host()
            } else {
                None
            };
            free.or_else(|| hosts.least_loaded_excluding(from))
                .expect("no workstation to migrate to")
        };
        let resident = self
            .sys
            .core_of(gpid)
            .map(|c| c.lock().pages.count(|m| m.data.is_some()))
            .unwrap_or(0);
        let image = migration_image_bytes(resident, self.page_size);
        self.log.push(EventKind::UrgentMigrationStart {
            gpid,
            from,
            to,
            image_bytes: image,
        });

        // "All processes then wait for the completion of the migration."
        self.freeze.freeze();
        let t0 = self.clock.now();
        self.net.charge_spawn(); // create the new process on the target host
        self.net.charge_migration(from, to, image); // stream heap + stack
        self.net
            .relabel(gpid, to)
            .expect("relabel migrating process");
        {
            let mut hosts = self.hosts.lock();
            hosts.vacate(from, gpid);
            hosts.occupy(to, gpid);
        }
        self.freeze.thaw();
        self.log.push(EventKind::UrgentMigrationDone {
            gpid,
            took: self.clock.elapsed_since(t0),
        });
    }

    /// Migrate any team member — including the master — to `to` right
    /// now (§4.4: "the master node, which executes the master process,
    /// can migrate but it currently cannot perform a normal leave").
    /// The process keeps its identity and team rank; only its
    /// workstation changes, with the full image-transfer cost charged.
    pub fn migrate_now(&self, gpid: Gpid, to: HostId) -> Result<(), AdaptError> {
        if !self.team_view.lock().contains(&gpid) {
            return Err(AdaptError::NotInTeam(gpid));
        }
        let from = self.net.host_of(gpid).ok_or(AdaptError::NotInTeam(gpid))?;
        if from == to {
            return Ok(());
        }
        let resident = self
            .sys
            .core_of(gpid)
            .map(|c| c.lock().pages.count(|m| m.data.is_some()))
            .unwrap_or(0);
        let image = migration_image_bytes(resident, self.page_size);
        self.log.push(EventKind::UrgentMigrationStart {
            gpid,
            from,
            to,
            image_bytes: image,
        });
        self.freeze.freeze();
        let t0 = self.clock.now();
        self.net.charge_spawn();
        self.net.charge_migration(from, to, image);
        self.net
            .relabel(gpid, to)
            .expect("relabel migrating process");
        {
            let mut hosts = self.hosts.lock();
            hosts.vacate(from, gpid);
            hosts.occupy(to, gpid);
        }
        self.freeze.thaw();
        self.log.push(EventKind::UrgentMigrationDone {
            gpid,
            took: self.clock.elapsed_since(t0),
        });
        Ok(())
    }

    /// Force the urgent path right now (deterministic tests/benches).
    pub fn force_urgent(&self, gpid: Gpid) -> bool {
        let pending = {
            let pl = self.pending_leaves.lock();
            pl.iter()
                .find(|p| p.gpid == gpid && p.phase() == LeavePhase::Pending)
                .cloned()
        };
        match pending {
            Some(p) if p.claim_urgent() => {
                p.disarm(); // the timer lost; withdraw its deadline
                self.urgent_migrate(gpid);
                true
            }
            _ => false,
        }
    }
}

/// Selects which team member an adaptation verb applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveSel {
    /// By current team rank (resolved against the team view at request
    /// time — ranks shift at adaptation points).
    Pid(u16),
    /// By global process id (stable across reassignment).
    Gpid(Gpid),
}

/// The typed adaptation surface: every way the outside world changes a
/// running team goes through this one handle, obtained from
/// [`ClusterShared::adapt`] (or the `adapt()` conveniences on
/// `Cluster` / `OmpSystem`). It is `Clone + Send`, so drivers, grace
/// timers and the cluster scheduler all share it.
///
/// The verbs map 1:1 onto the paper's adaptation events:
///
/// * [`join`](Self::join) — §4.1 join, committed at a later adaptation
///   point (the blocking variant, `Cluster::join_ready`, needs the
///   master and so lives there);
/// * [`leave`](Self::leave) — §4.2 leave with a grace period: normal if
///   an adaptation point arrives in time, urgent migration otherwise;
/// * [`checkpoint`](Self::checkpoint) — §4.3 master-only checkpoint at
///   the next adaptation point.
#[derive(Clone)]
pub struct AdaptHandle {
    shared: Arc<ClusterShared>,
}

impl AdaptHandle {
    /// Request a join: reserves the fastest free workstation and spawns
    /// a process toward it; the team grows at a later adaptation point.
    pub fn join(&self) -> Result<HostId, AdaptError> {
        self.shared.join_impl()
    }

    /// Request a leave for the selected member. `grace = None` waits
    /// for an adaptation point indefinitely (always a normal leave);
    /// `Some(g)` races the paper's grace timer against the next
    /// adaptation point and migrates urgently if the timer wins.
    /// Returns the gpid the selector resolved to.
    pub fn leave(&self, sel: LeaveSel, grace: Option<Duration>) -> Result<Gpid, AdaptError> {
        let gpid = match sel {
            LeaveSel::Gpid(g) => g,
            LeaveSel::Pid(pid) => {
                let team = self.shared.team_view.lock();
                *team
                    .get(pid as usize)
                    .ok_or(AdaptError::NotInTeam(Gpid(0)))?
            }
        };
        self.shared.leave_impl(gpid, grace)?;
        Ok(gpid)
    }

    /// Request a checkpoint at the next adaptation point.
    pub fn checkpoint(&self) {
        self.shared.checkpoint_impl();
    }

    /// Current team member list (index = pid).
    pub fn team(&self) -> Vec<Gpid> {
        self.shared.team_view()
    }

    /// Workstation currently hosting `gpid` (the scheduler records it
    /// before a directed shrink so it knows which host a committed
    /// leave frees).
    pub fn host_of(&self, gpid: Gpid) -> Option<HostId> {
        self.shared.host_of(gpid)
    }
}

/// The adaptive cluster: master-side handle driving the computation.
pub struct Cluster {
    shared: Arc<ClusterShared>,
    master: MasterCtl,
    cfg: ClusterConfig,
    last_ckpt_fork: u64,
    blob_provider: Option<Arc<dyn Fn() -> Vec<u8> + Send + Sync>>,
    /// The OpenMP "dynamic adjustment" switch (§4.4): when off, adapt
    /// events stay queued and the team never changes.
    adaptive: bool,
}

impl Cluster {
    /// Bring up a cluster: network, master, initial workers, team.
    pub fn new(cfg: ClusterConfig, runner: Arc<dyn RegionRunner>) -> Self {
        assert!(cfg.initial_procs >= 1, "need at least the master");
        assert!(
            cfg.hosts >= cfg.initial_procs,
            "one process per workstation"
        );
        let clock = cfg.clock.clone();
        let net = Network::with_clock(
            cfg.hosts,
            1,
            cfg.net_model.clone(),
            cfg.cost_model.clone(),
            clock.clone(),
        );
        let freeze = Freeze::new(clock.clone());
        let mut dsm = cfg.dsm.clone();
        dsm.throttle = Some(freeze.hook());
        let sys = DsmSystem::new(net.clone(), dsm, runner);
        let mut master = sys.start_master(HostId(0));
        let master_gpid = master.gpid();

        let mut hosts = HostPool::new(cfg.hosts);
        for h in 0..cfg.hosts {
            let h = HostId(h as u16);
            hosts.set_speed(h, cfg.cost_model.effective_speed(h));
        }
        hosts.occupy(HostId(0), master_gpid);
        let mut workers = Vec::new();
        for i in 1..cfg.initial_procs {
            let mut hello: Vec<Gpid> = workers.clone();
            hello.push(master_gpid);
            let g = sys.spawn_worker(HostId(i as u16), master_gpid, hello);
            hosts.occupy(HostId(i as u16), g);
            workers.push(g);
        }
        master.init_team(&workers);

        let mut team = vec![master_gpid];
        team.extend_from_slice(&workers);
        let page_size = cfg.dsm.page_size;
        let log = match cfg.job {
            Some(job) => EventLog::with_clock_for_job(clock.clone(), job),
            None => EventLog::with_clock(clock.clone()),
        };
        let shared = Arc::new(ClusterShared {
            sys,
            net,
            log,
            clock,
            master_gpid,
            hosts: Mutex::new(hosts),
            events: Mutex::new(VecDeque::new()),
            pending_leaves: Mutex::new(Vec::new()),
            pending_joins: Mutex::new(HashMap::new()),
            team_view: Mutex::new(team),
            freeze,
            migrate_prefer_free: cfg.migrate_prefer_free,
            page_size,
        });
        let blob_provider = cfg.master_state_provider.clone();
        let adaptive = cfg.adaptive;
        Cluster {
            shared,
            master,
            cfg,
            last_ckpt_fork: 0,
            blob_provider,
            adaptive,
        }
    }

    /// Recover a cluster from a checkpoint file: fresh processes, the
    /// shared memory restored, the fork counter fast-forwarded. Returns
    /// the cluster and the master's private blob.
    pub fn recover(
        cfg: ClusterConfig,
        runner: Arc<dyn RegionRunner>,
        path: &std::path::Path,
    ) -> Result<(Self, Vec<u8>), nowmp_ckpt::CkptError> {
        let ckpt = Checkpoint::read_file(path)?;
        // Bring up WITHOUT init_team first: the master must hold the
        // image before the workers learn the directory.
        let mut cluster = {
            // Same bring-up as `new`, but import the image between
            // master start and team formation.
            let cfg2 = cfg.clone();
            assert!(cfg2.initial_procs >= 1);
            let clock = cfg2.clock.clone();
            let net = Network::with_clock(
                cfg2.hosts,
                1,
                cfg2.net_model.clone(),
                cfg2.cost_model.clone(),
                clock.clone(),
            );
            let freeze = Freeze::new(clock.clone());
            let mut dsm = cfg2.dsm.clone();
            dsm.throttle = Some(freeze.hook());
            let sys = DsmSystem::new(net.clone(), dsm, runner);
            let mut master = sys.start_master(HostId(0));
            let master_gpid = master.gpid();
            master.import_image(&ckpt.image);

            let mut hosts = HostPool::new(cfg2.hosts);
            for h in 0..cfg2.hosts {
                let h = HostId(h as u16);
                hosts.set_speed(h, cfg2.cost_model.effective_speed(h));
            }
            hosts.occupy(HostId(0), master_gpid);
            let mut workers = Vec::new();
            for i in 1..cfg2.initial_procs {
                let mut hello: Vec<Gpid> = workers.clone();
                hello.push(master_gpid);
                let g = sys.spawn_worker(HostId(i as u16), master_gpid, hello);
                hosts.occupy(HostId(i as u16), g);
                workers.push(g);
            }
            master.init_team(&workers);
            let mut team = vec![master_gpid];
            team.extend_from_slice(&workers);
            let page_size = cfg2.dsm.page_size;
            let log = match cfg2.job {
                Some(job) => EventLog::with_clock_for_job(clock.clone(), job),
                None => EventLog::with_clock(clock.clone()),
            };
            let shared = Arc::new(ClusterShared {
                sys,
                net,
                log,
                clock,
                master_gpid,
                hosts: Mutex::new(hosts),
                events: Mutex::new(VecDeque::new()),
                pending_leaves: Mutex::new(Vec::new()),
                pending_joins: Mutex::new(HashMap::new()),
                team_view: Mutex::new(team),
                freeze,
                migrate_prefer_free: cfg2.migrate_prefer_free,
                page_size,
            });
            let blob_provider = cfg2.master_state_provider.clone();
            let adaptive = cfg2.adaptive;
            Cluster {
                shared,
                master,
                cfg: cfg2,
                last_ckpt_fork: ckpt.image.fork_no,
                blob_provider,
                adaptive,
            }
        };
        cluster.last_ckpt_fork = ckpt.image.fork_no;
        Ok((cluster, ckpt.master_blob))
    }

    /// Handle for event sources (drivers, timers, schedules).
    pub fn shared(&self) -> Arc<ClusterShared> {
        Arc::clone(&self.shared)
    }

    /// The master's DSM context (sequential phase).
    pub fn ctx(&mut self) -> &mut TmkCtx {
        self.master.ctx()
    }

    /// Allocate and publish shared memory (master, sequential phase).
    pub fn alloc(&mut self, name: &str, len: u64, kind: nowmp_tmk::ElemKind) {
        self.master.alloc(name, len, kind);
    }

    /// Completed forks.
    pub fn fork_no(&self) -> u64 {
        self.master.fork_no()
    }

    /// DSM page size in bytes.
    pub fn page_size(&self) -> usize {
        self.cfg.dsm.page_size
    }

    /// Current team size.
    pub fn nprocs(&self) -> usize {
        self.shared.team_view.lock().len()
    }

    /// Current team.
    pub fn team(&self) -> Vec<Gpid> {
        self.shared.team_view()
    }

    /// DSM statistics.
    pub fn dsm_stats(&self) -> nowmp_tmk::DsmSnapshot {
        self.master.system().stats().snapshot()
    }

    /// Network statistics.
    pub fn net_stats(&self) -> nowmp_net::StatsSnapshot {
        self.shared.net.stats()
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        self.shared.log()
    }

    /// The simulation's time source.
    pub fn clock(&self) -> &Clock {
        self.shared.clock()
    }

    /// The typed adaptation handle (see [`AdaptHandle`]).
    pub fn adapt(&self) -> AdaptHandle {
        self.shared.adapt()
    }

    /// Deprecated spelling of [`AdaptHandle::join`].
    #[deprecated(note = "use `adapt().join()`")]
    pub fn request_join(&self) -> Result<HostId, AdaptError> {
        self.shared.join_impl()
    }

    /// Deprecated spelling of [`Cluster::join_ready`].
    #[deprecated(note = "use `join_ready()`")]
    pub fn request_join_ready(&mut self) -> Result<Gpid, AdaptError> {
        self.join_ready().map(|(g, _)| g)
    }

    /// Request a join and block until the new process has connected
    /// (deterministic variant: the very next adaptation point commits
    /// it). Needs the master, so it lives here rather than on
    /// [`AdaptHandle`]. Returns the new process and the workstation it
    /// was placed on (the host is only *reserved* until the join
    /// commits, so [`ClusterShared::host_of`] cannot resolve it yet).
    pub fn join_ready(&mut self) -> Result<(Gpid, HostId), AdaptError> {
        let host = self.shared.join_impl()?;
        // Wait for the spawner thread to register the embryo. The poll
        // sleeps on the cluster clock: under a virtual clock the master
        // is then visibly blocked and the spawner's 0.7 s creation
        // delay advances instantly; the `Instant` bound stays a
        // real-time deadlock guard.
        let deadline = Instant::now() + Duration::from_secs(120);
        let gpid = loop {
            let found = self
                .shared
                .pending_joins
                .lock()
                .iter()
                .find(|(_, h)| **h == host)
                .map(|(g, _)| *g);
            if let Some(g) = found {
                break g;
            }
            assert!(Instant::now() < deadline, "spawned worker never appeared");
            self.shared.clock.sleep(Duration::from_micros(200));
        };
        self.master.wait_ready(gpid);
        // `wait_ready` consumed the announcement; replay it for the
        // adaptation point.
        self.shared
            .events
            .lock()
            .push_back(AdaptEvent::JoinReady { gpid, host });
        Ok((gpid, host))
    }

    /// Deprecated spelling of [`AdaptHandle::leave`] with
    /// [`LeaveSel::Pid`].
    #[deprecated(note = "use `adapt().leave(LeaveSel::Pid(pid), grace)`")]
    pub fn request_leave_pid(&self, pid: u16, grace: Option<Duration>) -> Result<Gpid, AdaptError> {
        self.adapt().leave(LeaveSel::Pid(pid), grace)
    }

    /// Deprecated spelling of [`AdaptHandle::leave`] with
    /// [`LeaveSel::Gpid`].
    #[deprecated(note = "use `adapt().leave(LeaveSel::Gpid(gpid), grace)`")]
    pub fn request_leave(&self, gpid: Gpid, grace: Option<Duration>) -> Result<(), AdaptError> {
        self.adapt().leave(LeaveSel::Gpid(gpid), grace).map(|_| ())
    }

    /// Deprecated spelling of [`AdaptHandle::checkpoint`].
    #[deprecated(note = "use `adapt().checkpoint()`")]
    pub fn request_checkpoint(&self) {
        self.shared.checkpoint_impl();
    }

    /// Execute one parallel construct, handling any pending adapt
    /// events at the adaptation point first.
    pub fn parallel(&mut self, region: u32, params: &[u8]) {
        self.adaptation_point();
        self.master.parallel(region, params);
    }

    /// Enable or disable adaptivity (the OpenMP dynamic-adjustment
    /// switch, §4.4). While disabled, adapt events queue but never take
    /// effect.
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
    }

    /// Is adaptivity enabled?
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Process pending adapt events (the paper's adaptation point,
    /// between `Tmk_join` and the next `Tmk_fork`).
    pub fn adaptation_point(&mut self) {
        if !self.adaptive {
            return;
        }
        // Joins whose processes have announced readiness.
        let mut joins: Vec<(Gpid, HostId)> = Vec::new();
        for gpid in self.master.drain_ready_joins() {
            if let Some(host) = self.shared.pending_joins.lock().remove(&gpid) {
                joins.push((gpid, host));
            }
        }
        {
            // Plus any replayed by request_join_ready / external sources.
            let mut ev = self.shared.events.lock();
            let mut rest = VecDeque::new();
            while let Some(e) = ev.pop_front() {
                match e {
                    AdaptEvent::JoinReady { gpid, host } => {
                        self.shared.pending_joins.lock().remove(&gpid);
                        joins.push((gpid, host));
                    }
                    other => rest.push_back(other),
                }
            }
            *ev = rest;
        }

        // Leaves: claim pending ones; include urgent-migrated ones.
        let mut leaves: Vec<Arc<PendingLeave>> = Vec::new();
        {
            let pl = self.shared.pending_leaves.lock();
            for p in pl.iter() {
                if p.claim_normal() || p.phase() == LeavePhase::Urgent {
                    // Either way the race is decided: withdraw the
                    // grace timer and its pending deadline.
                    p.disarm();
                    leaves.push(Arc::clone(p));
                }
            }
        }

        // Checkpoint requests / policy.
        let mut ckpt_due = {
            let mut ev = self.shared.events.lock();
            let before = ev.len();
            ev.retain(|e| !matches!(e, AdaptEvent::Checkpoint));
            before != ev.len()
        };
        if let Some(k) = self.cfg.ckpt_every_forks {
            if self.master.fork_no() >= self.last_ckpt_fork + k {
                ckpt_due = true;
            }
        }

        if joins.is_empty() && leaves.is_empty() && !ckpt_due && !self.master.gc_due() {
            return;
        }

        let t0 = self.shared.clock.now();
        let net_before = self.shared.net.stats();

        // GC with leavers avoided; their pages re-home per strategy.
        let avoid: HashSet<Gpid> = leaves.iter().map(|p| p.gpid).collect();
        let old_members = self.master.team().members.clone();
        let survivors: Vec<Gpid> = old_members
            .iter()
            .copied()
            .filter(|g| !avoid.contains(g))
            .collect();
        let outcome = match self.cfg.leave_strategy {
            LeaveStrategy::ViaMaster => self.master.run_gc(&avoid, None),
            LeaveStrategy::Scatter => self.master.run_gc(&avoid, Some(&survivors)),
        };

        // New team.
        let leaver_gpids: Vec<Gpid> = leaves.iter().map(|p| p.gpid).collect();
        let joiner_gpids: Vec<Gpid> = joins.iter().map(|(g, _)| *g).collect();
        let members = reassign(
            self.cfg.reassign,
            &old_members,
            &leaver_gpids,
            &joiner_gpids,
        );
        // Record leaver hosts before they disappear.
        let leaver_hosts: Vec<(Gpid, Option<HostId>)> = leaver_gpids
            .iter()
            .map(|&g| (g, self.shared.hosts.lock().host_of(g)))
            .collect();

        self.master.commit_team(members.clone(), &outcome);

        // Bookkeeping.
        {
            let mut hosts = self.shared.hosts.lock();
            for (g, h) in &leaver_hosts {
                if let Some(h) = h {
                    hosts.vacate(*h, *g);
                }
            }
            for (g, h) in &joins {
                hosts.occupy(*h, *g);
                hosts.unreserve(*h);
            }
        }
        for p in &leaves {
            self.shared
                .log
                .push(EventKind::NormalLeave { gpid: p.gpid });
            p.finish();
        }
        self.shared
            .pending_leaves
            .lock()
            .retain(|p| p.phase() != LeavePhase::Done);
        for (g, _) in &joins {
            let pid = members.iter().position(|m| m == g).unwrap_or(0) as u16;
            self.shared
                .log
                .push(EventKind::JoinCommitted { gpid: *g, pid });
        }
        *self.shared.team_view.lock() = members.clone();

        // Checkpoint (paper §4.3: GC already ran; collect + dump).
        if ckpt_due {
            self.write_checkpoint();
        }

        let net_after = self.shared.net.stats();
        let delta = net_after.since(&net_before);
        self.shared.log.push(EventKind::Adaptation {
            fork_no: self.master.fork_no(),
            joins: joins.len(),
            leaves: leaves.len(),
            took: self.shared.clock.elapsed_since(t0),
            bytes_moved: delta.total_bytes,
            max_link_bytes: delta
                .links
                .iter()
                .map(|l| l.bytes_total())
                .max()
                .unwrap_or(0),
            nprocs: members.len(),
        });
    }

    fn write_checkpoint(&mut self) {
        let t0 = self.shared.clock.now();
        self.master.collect_all_pages();
        let image = self.master.export_image();
        let blob = self.blob_provider.as_ref().map(|f| f()).unwrap_or_default();
        let ckpt = Checkpoint {
            image,
            master_blob: blob,
        };
        let bytes = match &self.cfg.ckpt_path {
            Some(path) => ckpt.write_file(path).expect("checkpoint write failed"),
            None => ckpt.to_bytes().len() as u64, // sized but not persisted
        };
        self.last_ckpt_fork = self.master.fork_no();
        self.shared.log.push(EventKind::Checkpoint {
            bytes,
            took: self.shared.clock.elapsed_since(t0),
        });
    }

    /// Write a checkpoint immediately (the caller is at an adaptation
    /// point by construction — between `parallel` calls).
    pub fn checkpoint_now(&mut self) {
        // GC first, as §4.3 prescribes.
        let outcome = self.master.run_gc(&HashSet::new(), None);
        let members = self.master.team().members.clone();
        self.master.commit_team(members, &outcome);
        self.write_checkpoint();
    }

    /// Shut down the whole system.
    pub fn shutdown(self) {
        self.master.shutdown();
    }
}
