//! Event log: the timeline behind Figure 2 and the per-adaptation cost
//! measurements behind Table 2.

use crate::sched::JobId;
use nowmp_net::{Gpid, HostId};
use nowmp_util::{Clock, Tick};
use parking_lot::Mutex;
use std::time::Duration;

/// One logged cluster event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A join was requested; a process is being spawned.
    JoinRequested {
        /// Target workstation.
        host: HostId,
    },
    /// The spawned process finished its connection setup.
    JoinReady {
        /// The embryo.
        gpid: Gpid,
    },
    /// The join took effect at an adaptation point.
    JoinCommitted {
        /// The new member.
        gpid: Gpid,
        /// Its assigned pid.
        pid: u16,
    },
    /// A leave was requested with the given grace period.
    LeaveRequested {
        /// The process asked to leave.
        gpid: Gpid,
        /// Grace period (`None` = unbounded).
        grace: Option<Duration>,
    },
    /// The leave completed normally at an adaptation point (Fig. 2b).
    NormalLeave {
        /// The departed process.
        gpid: Gpid,
    },
    /// The grace period expired: migration began (Fig. 2c).
    UrgentMigrationStart {
        /// The migrating process.
        gpid: Gpid,
        /// Source workstation.
        from: HostId,
        /// Destination workstation (multiplexed if occupied).
        to: HostId,
        /// Process-image bytes streamed.
        image_bytes: usize,
    },
    /// Migration finished; multiplexing begins.
    UrgentMigrationDone {
        /// The migrated process.
        gpid: Gpid,
        /// Time charged (spawn + image transfer).
        took: Duration,
    },
    /// An adaptation point processed events.
    Adaptation {
        /// Fork counter at the point.
        fork_no: u64,
        /// Joins committed.
        joins: usize,
        /// Leaves committed.
        leaves: usize,
        /// Wall time of the whole adaptation (GC + fetches + commit).
        took: Duration,
        /// Bytes moved network-wide during the adaptation.
        bytes_moved: u64,
        /// Busiest link's byte delta during the adaptation (§5.4 metric).
        max_link_bytes: u64,
        /// New team size.
        nprocs: usize,
    },
    /// A checkpoint was written.
    Checkpoint {
        /// Serialized size.
        bytes: u64,
        /// Wall time including page collection.
        took: Duration,
    },
    /// A job entered the cluster scheduler's queue (multi-tenant runs).
    JobSubmitted {
        /// Scheduling priority (higher preempts lower).
        priority: u8,
        /// Smallest admissible team.
        min_procs: usize,
        /// Largest grantable team.
        max_procs: usize,
    },
    /// The scheduler granted the job its initial team.
    JobStarted {
        /// Hosts granted.
        nprocs: usize,
    },
    /// The scheduler directed the job to shed processes for
    /// higher-priority work.
    JobPreempted {
        /// Processes to shed at the next adaptation point.
        procs: usize,
    },
    /// The scheduler granted a running job extra hosts.
    JobGrown {
        /// Hosts added.
        procs: usize,
    },
    /// The job completed and released its hosts.
    JobFinished {
        /// Submission-to-completion time.
        turnaround: Duration,
    },
}

/// A timestamped event.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Time since the log (cluster) was created.
    pub at: Duration,
    /// The job this event belongs to — `None` in single-job runs, so
    /// existing timelines render unchanged. Multi-tenant traces filter
    /// on it (`entries().iter().filter(|e| e.job == Some(id))`).
    pub job: Option<JobId>,
    /// What happened.
    pub kind: EventKind,
}

/// Append-only, thread-safe event log. Timestamps come from the
/// cluster's [`Clock`], so a virtual-clock run logs *simulated* times —
/// the Figure 2 timeline keeps its shape with zero wall cost.
#[derive(Debug)]
pub struct EventLog {
    clock: Clock,
    start: Tick,
    /// Stamped on every entry pushed through [`Self::push`]; set for
    /// per-job cluster logs in multi-tenant runs, `None` otherwise.
    job: Option<JobId>,
    entries: Mutex<Vec<LogEntry>>,
}

impl EventLog {
    /// New log starting now, on the wall clock.
    pub fn new() -> Self {
        Self::with_clock(Clock::real())
    }

    /// New log timestamped on `clock`, starting at its current time.
    pub fn with_clock(clock: Clock) -> Self {
        let start = clock.now();
        EventLog {
            clock,
            start,
            job: None,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// New log whose entries all carry `job` — the per-job cluster log
    /// under the multi-tenant scheduler.
    pub fn with_clock_for_job(clock: Clock, job: JobId) -> Self {
        let mut log = Self::with_clock(clock);
        log.job = Some(job);
        log
    }

    /// The job label stamped on this log's entries, if any.
    pub fn job(&self) -> Option<JobId> {
        self.job
    }

    /// Record an event.
    pub fn push(&self, kind: EventKind) {
        self.entries.lock().push(LogEntry {
            at: self.clock.elapsed_since(self.start),
            job: self.job,
            kind,
        });
    }

    /// Record an event for `job` at an explicit trace time. The
    /// scheduler's merged timeline is stamped on the *global* clock the
    /// scheduler computes, not this log's own clock, so the timestamp
    /// is passed in.
    pub fn push_job_at(&self, job: JobId, at: Duration, kind: EventKind) {
        self.entries.lock().push(LogEntry {
            at,
            job: Some(job),
            kind,
        });
    }

    /// Snapshot all entries.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.entries.lock().clone()
    }

    /// All adaptation records (for Table 2-style cost accounting).
    pub fn adaptations(&self) -> Vec<(Duration, u64, usize, usize, Duration, u64, u64)> {
        self.entries
            .lock()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Adaptation {
                    fork_no,
                    joins,
                    leaves,
                    took,
                    bytes_moved,
                    max_link_bytes,
                    ..
                } => Some((
                    e.at,
                    *fork_no,
                    *joins,
                    *leaves,
                    *took,
                    *bytes_moved,
                    *max_link_bytes,
                )),
                _ => None,
            })
            .collect()
    }

    /// Render a human-readable timeline (the Figure 2 artifact).
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in self.entries.lock().iter() {
            let t = e.at.as_secs_f64();
            let line = match &e.kind {
                EventKind::JoinRequested { host } => {
                    format!("join requested (spawning on {host})")
                }
                EventKind::JoinReady { gpid } => {
                    format!("process {gpid} connected, ready to join")
                }
                EventKind::JoinCommitted { gpid, pid } => {
                    format!("JOIN committed: {gpid} enters as pid {pid}")
                }
                EventKind::LeaveRequested { gpid, grace } => match grace {
                    Some(g) => format!(
                        "leave requested for {gpid} (grace period {:.2}s)",
                        g.as_secs_f64()
                    ),
                    None => format!("leave requested for {gpid} (unbounded grace)"),
                },
                EventKind::NormalLeave { gpid } => {
                    format!("NORMAL LEAVE: {gpid} terminated at adaptation point")
                }
                EventKind::UrgentMigrationStart {
                    gpid,
                    from,
                    to,
                    image_bytes,
                } => format!(
                    "URGENT LEAVE: migrating {gpid} {from} -> {to} ({})",
                    nowmp_util::fmt_bytes(*image_bytes as u64)
                ),
                EventKind::UrgentMigrationDone { gpid, took } => format!(
                    "migration of {gpid} done in {:.3}s; multiplexing until next adaptation point",
                    took.as_secs_f64()
                ),
                EventKind::Adaptation {
                    fork_no,
                    joins,
                    leaves,
                    took,
                    max_link_bytes,
                    nprocs,
                    ..
                } => format!(
                    "adaptation point @fork {fork_no}: +{joins}/-{leaves} procs -> {nprocs} \
                     ({:.3}s, max link {})",
                    took.as_secs_f64(),
                    nowmp_util::fmt_bytes(*max_link_bytes)
                ),
                EventKind::Checkpoint { bytes, took } => format!(
                    "checkpoint written ({}, {:.3}s)",
                    nowmp_util::fmt_bytes(*bytes),
                    took.as_secs_f64()
                ),
                EventKind::JobSubmitted {
                    priority,
                    min_procs,
                    max_procs,
                } => format!(
                    "submitted (priority {priority}, wants {min_procs}..={max_procs} procs)"
                ),
                EventKind::JobStarted { nprocs } => {
                    format!("STARTED on {nprocs} hosts")
                }
                EventKind::JobPreempted { procs } => {
                    format!("preempted: shedding {procs} procs at next adaptation point")
                }
                EventKind::JobGrown { procs } => format!("grown by {procs} hosts"),
                EventKind::JobFinished { turnaround } => {
                    format!("FINISHED (turnaround {:.3}s)", turnaround.as_secs_f64())
                }
            };
            // Single-job logs (job = None) render exactly as before;
            // multi-tenant entries get a filterable job prefix.
            match e.job {
                Some(job) => writeln!(out, "[{t:9.4}s] [{job}] {line}"),
                None => writeln!(out, "[{t:9.4}s] {line}"),
            }
            .expect("string write");
        }
        out
    }
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_collects_and_renders() {
        let log = EventLog::new();
        log.push(EventKind::JoinRequested { host: HostId(3) });
        log.push(EventKind::JoinReady { gpid: Gpid(7) });
        log.push(EventKind::Adaptation {
            fork_no: 10,
            joins: 1,
            leaves: 0,
            took: Duration::from_millis(120),
            bytes_moved: 4096,
            max_link_bytes: 2048,
            nprocs: 5,
        });
        assert_eq!(log.entries().len(), 3);
        let text = log.render_timeline();
        assert!(text.contains("join requested"));
        assert!(text.contains("adaptation point @fork 10"));
        assert_eq!(log.adaptations().len(), 1);
    }

    #[test]
    fn job_tags_filter_and_render() {
        // Untagged log: rendering is byte-identical to the pre-tenancy
        // format (no prefix).
        let plain = EventLog::new();
        plain.push(EventKind::JoinReady { gpid: Gpid(7) });
        assert!(plain.render_timeline().contains("] process g7 connected"));
        assert!(!plain.render_timeline().contains("[job"));
        assert!(plain.entries().iter().all(|e| e.job.is_none()));

        // Tagged log: every entry carries the job, render shows it.
        let tagged = EventLog::with_clock_for_job(Clock::new_virtual(), JobId(3));
        tagged.push(EventKind::JoinReady { gpid: Gpid(7) });
        tagged.push_job_at(
            JobId(4),
            Duration::from_secs(2),
            EventKind::JobStarted { nprocs: 2 },
        );
        assert!(tagged.render_timeline().contains("[job3]"));
        assert!(tagged
            .render_timeline()
            .contains("[job4] STARTED on 2 hosts"));
        let per_job: Vec<_> = tagged
            .entries()
            .into_iter()
            .filter(|e| e.job == Some(JobId(3)))
            .collect();
        assert_eq!(per_job.len(), 1);
    }

    #[test]
    fn timestamps_monotone() {
        let log = EventLog::new();
        for _ in 0..5 {
            log.push(EventKind::Checkpoint {
                bytes: 1,
                took: Duration::ZERO,
            });
        }
        let e = log.entries();
        for w in e.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }
}
