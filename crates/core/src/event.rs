//! Adaptation events and their lifecycle.
//!
//! "Each node recognizes join and leave events and communicates those to
//! the master. How these events are generated is beyond the scope of
//! this paper." (§4) — our event *sources* (deterministic schedules,
//! wall-clock timers, the examples' scripted scenarios) live in the
//! harnesses; this module defines the events themselves and the
//! grace-period state machine of a pending leave.

use nowmp_net::{Gpid, HostId};
use nowmp_util::Alarm;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Duration;

/// A request enqueued for the next adaptation point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptEvent {
    /// A spawned process finished its asynchronous connection setup and
    /// can join at the next adaptation point.
    JoinReady {
        /// The embryo process.
        gpid: Gpid,
        /// The workstation it runs on.
        host: HostId,
    },
    /// A checkpoint was requested.
    Checkpoint,
}

/// Grace-period state of a pending leave (paper §3, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LeavePhase {
    /// Waiting: either the next adaptation point or the grace timer
    /// will claim it.
    Pending = 0,
    /// The adaptation point arrived within the grace period — a
    /// *normal leave* (Figure 2b).
    Normal = 1,
    /// The grace period expired first — an *urgent leave*: the process
    /// was migrated and multiplexes until the next adaptation point
    /// (Figure 2c).
    Urgent = 2,
    /// Fully processed (removed from the team).
    Done = 3,
}

/// A leave request racing its grace period.
#[derive(Debug)]
pub struct PendingLeave {
    /// The process that must leave.
    pub gpid: Gpid,
    /// Grace period granted (`None` = unbounded: always a normal leave).
    pub grace: Option<Duration>,
    phase: AtomicU8,
    /// The armed grace timer, if any: cancelled ("disarmed") as soon as
    /// the race is decided, so a dead deadline neither keeps a timer
    /// thread around nor pulls a virtual clock toward it.
    alarm: Mutex<Option<Alarm>>,
}

impl PendingLeave {
    /// New pending leave.
    pub fn new(gpid: Gpid, grace: Option<Duration>) -> Self {
        PendingLeave {
            gpid,
            grace,
            phase: AtomicU8::new(LeavePhase::Pending as u8),
            alarm: Mutex::new(None),
        }
    }

    /// Attach the grace timer backing this leave.
    pub fn arm(&self, alarm: Alarm) {
        *self.alarm.lock() = Some(alarm);
    }

    /// Cancel and drop the grace timer (idempotent; no-op if never
    /// armed). Call once the normal/urgent race is decided.
    pub fn disarm(&self) {
        if let Some(a) = self.alarm.lock().take() {
            a.cancel();
        }
    }

    /// Current phase.
    pub fn phase(&self) -> LeavePhase {
        match self.phase.load(Ordering::Acquire) {
            0 => LeavePhase::Pending,
            1 => LeavePhase::Normal,
            2 => LeavePhase::Urgent,
            _ => LeavePhase::Done,
        }
    }

    /// Adaptation point claims the leave: `Pending → Normal`.
    /// Returns `true` if this call won the race against the timer.
    pub fn claim_normal(&self) -> bool {
        self.phase
            .compare_exchange(
                LeavePhase::Pending as u8,
                LeavePhase::Normal as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Grace timer claims the leave: `Pending → Urgent`.
    /// Returns `true` if this call won the race against the adaptation
    /// point.
    pub fn claim_urgent(&self) -> bool {
        self.phase
            .compare_exchange(
                LeavePhase::Pending as u8,
                LeavePhase::Urgent as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Mark fully processed.
    pub fn finish(&self) {
        self.phase.store(LeavePhase::Done as u8, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_claim_wins_once() {
        let p = PendingLeave::new(Gpid(1), Some(Duration::from_secs(3)));
        assert_eq!(p.phase(), LeavePhase::Pending);
        assert!(p.claim_normal());
        assert!(!p.claim_normal(), "second claim loses");
        assert!(!p.claim_urgent(), "timer loses after normal claim");
        assert_eq!(p.phase(), LeavePhase::Normal);
        p.finish();
        assert_eq!(p.phase(), LeavePhase::Done);
    }

    #[test]
    fn urgent_claim_blocks_normal() {
        let p = PendingLeave::new(Gpid(1), Some(Duration::ZERO));
        assert!(p.claim_urgent());
        assert!(!p.claim_normal());
        assert_eq!(p.phase(), LeavePhase::Urgent);
    }

    #[test]
    fn concurrent_claims_exactly_one_winner() {
        for _ in 0..200 {
            let p = std::sync::Arc::new(PendingLeave::new(Gpid(1), Some(Duration::ZERO)));
            let p2 = std::sync::Arc::clone(&p);
            let t = std::thread::spawn(move || p2.claim_urgent());
            let normal = p.claim_normal();
            let urgent = t.join().unwrap();
            assert!(normal ^ urgent, "exactly one side wins the race");
        }
    }
}
