//! Process-id reassignment and the Figure 3 redistribution analytics.
//!
//! "The process id of the leaving process may significantly affect the
//! amount of data to be moved" (§5.3, Figure 3): with block-partitioned
//! iteration spaces, removing the *end* process shifts every surviving
//! process's block (up to ~50% of the data space moves), while removing
//! a *middle* process — keeping the survivors' relative order — moves
//! only ~30%. The closed-form overlap computation here reproduces the
//! figure analytically; the `fig3_redistribution` bench also measures it
//! on a live system.

use nowmp_net::Gpid;

/// How pids are reassigned at an adaptation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassignPolicy {
    /// Survivors keep their relative order and compact down; joiners
    /// append at the end (the paper's scheme, per Figure 3b).
    ///
    /// Order stability is also what keeps the binomial *collective*
    /// trees well-behaved across adaptations: both the fork broadcast
    /// and the join reduce / barrier release (`nowmp_tmk::tree`) are
    /// pure functions of `(rank, nprocs)`, so a compacted team
    /// re-derives a valid tree with every survivor's neighbors still
    /// in the same relative position — interior aggregators keep
    /// covering contiguous rank ranges and no collective state needs
    /// renumbering beyond the compaction itself.
    CompactKeepOrder,
    /// Joiners adopt the slots of leavers when possible (an ablation:
    /// pairs a simultaneous join+leave so nobody else's block moves).
    FillGaps,
}

/// Compute the new member list.
///
/// * `old` — current team (index = pid; `old[0]` is the master);
/// * `leavers` — processes leaving (never the master);
/// * `joiners` — processes joining.
pub fn reassign(
    policy: ReassignPolicy,
    old: &[Gpid],
    leavers: &[Gpid],
    joiners: &[Gpid],
) -> Vec<Gpid> {
    debug_assert!(!leavers.contains(&old[0]), "master cannot leave");
    match policy {
        ReassignPolicy::CompactKeepOrder => {
            let mut members: Vec<Gpid> = old
                .iter()
                .copied()
                .filter(|g| !leavers.contains(g))
                .collect();
            members.extend_from_slice(joiners);
            members
        }
        ReassignPolicy::FillGaps => {
            let mut joiners = joiners.iter().copied();
            let mut members = Vec::with_capacity(old.len());
            for &g in old {
                if leavers.contains(&g) {
                    if let Some(j) = joiners.next() {
                        members.push(j); // joiner takes the leaver's slot
                    }
                    // else: slot vanishes (compaction)
                } else {
                    members.push(g);
                }
            }
            members.extend(joiners);
            members
        }
    }
}

/// Fraction of a block-partitioned data space `[0,1)` that must move
/// when the team changes from `old_n` processes to the `survivor`
/// mapping, where `survivors[r]` is the *old* pid now holding new rank
/// `r`. A process's new block is `[r/new_n, (r+1)/new_n)`; whatever part
/// of it was not already in its old block `[p/old_n, (p+1)/old_n)` has
/// to be fetched — summed over all survivors, this is the moved
/// fraction Figure 3 shades.
pub fn moved_fraction(old_n: usize, survivors: &[(usize, usize)]) -> f64 {
    let new_n = survivors.len();
    assert!(new_n > 0 && old_n > 0);
    let mut kept = 0.0_f64;
    for &(old_pid, new_rank) in survivors {
        let (olo, ohi) = (
            old_pid as f64 / old_n as f64,
            (old_pid + 1) as f64 / old_n as f64,
        );
        let (nlo, nhi) = (
            new_rank as f64 / new_n as f64,
            (new_rank + 1) as f64 / new_n as f64,
        );
        let overlap = (ohi.min(nhi) - olo.max(nlo)).max(0.0);
        kept += overlap;
    }
    1.0 - kept
}

/// Moved fraction when pid `leaver` leaves an `n`-process team under
/// [`ReassignPolicy::CompactKeepOrder`] — the Figure 3 quantity.
pub fn moved_fraction_on_leave(n: usize, leaver: usize) -> f64 {
    assert!(leaver < n && n > 1);
    let survivors: Vec<(usize, usize)> = (0..n)
        .filter(|&p| p != leaver)
        .enumerate()
        .map(|(rank, p)| (p, rank))
        .collect();
    moved_fraction(n, &survivors)
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: fn(u32) -> Gpid = Gpid;

    #[test]
    fn compact_keeps_order() {
        let old = vec![G(1), G(2), G(3), G(4)];
        let members = reassign(ReassignPolicy::CompactKeepOrder, &old, &[G(3)], &[G(9)]);
        assert_eq!(members, vec![G(1), G(2), G(4), G(9)]);
    }

    #[test]
    fn compact_keeps_collective_tree_order_stable() {
        // The reduce/broadcast trees are derived from (rank, nprocs):
        // after any single leave under CompactKeepOrder, survivors
        // appear in the same relative order, and the re-derived
        // binomial tree still covers exactly the compacted ranks with
        // contiguous subtrees (`nowmp_tmk::tree::subtree_size`).
        for n in 2..=12usize {
            let old: Vec<Gpid> = (0..n as u32).map(G).collect();
            for leaver in 1..n {
                let members = reassign(
                    ReassignPolicy::CompactKeepOrder,
                    &old,
                    &[G(leaver as u32)],
                    &[],
                );
                let expect: Vec<Gpid> = old
                    .iter()
                    .copied()
                    .filter(|g| g.0 != leaver as u32)
                    .collect();
                assert_eq!(members, expect, "survivor order must be preserved");
                let m = members.len();
                for rank in 0..m {
                    let lo = rank;
                    let hi = rank + nowmp_tmk::tree::subtree_size(rank, m);
                    assert!(hi <= m, "subtree of rank {rank} overruns the {m}-team");
                    for child in nowmp_tmk::tree::children(rank, m) {
                        assert!(
                            (lo..hi).contains(&child) || rank == 0,
                            "child {child} outside rank {rank}'s contiguous range"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fill_gaps_swaps_in_joiner() {
        let old = vec![G(1), G(2), G(3), G(4)];
        let members = reassign(ReassignPolicy::FillGaps, &old, &[G(3)], &[G(9)]);
        assert_eq!(
            members,
            vec![G(1), G(2), G(9), G(4)],
            "joiner takes the leaver's slot"
        );
    }

    #[test]
    fn fill_gaps_without_joiner_compacts() {
        let old = vec![G(1), G(2), G(3)];
        let members = reassign(ReassignPolicy::FillGaps, &old, &[G(2)], &[]);
        assert_eq!(members, vec![G(1), G(3)]);
    }

    #[test]
    fn extra_joiners_append() {
        let old = vec![G(1), G(2)];
        let members = reassign(ReassignPolicy::FillGaps, &old, &[], &[G(8), G(9)]);
        assert_eq!(members, vec![G(1), G(2), G(8), G(9)]);
    }

    /// ISSUE 5 pin: the binomial fork tree (`nowmp_tmk::tree`) is
    /// defined over team rank order. `CompactKeepOrder` must preserve
    /// the survivors' relative order across any leave — including an
    /// interior relay's — so the tree only compacts and every rank is
    /// still covered by the broadcast after reassignment.
    #[test]
    fn fork_tree_order_stable_under_reassignment_and_host_loss() {
        let old: Vec<Gpid> = (1..=8).map(G).collect();
        for leaver in 2..=8u32 {
            let members = reassign(ReassignPolicy::CompactKeepOrder, &old, &[G(leaver)], &[]);
            // Relative order of every surviving pair is preserved.
            let pos = |g: Gpid| members.iter().position(|&m| m == g);
            for a in 1..=8u32 {
                for b in (a + 1)..=8u32 {
                    if a == leaver || b == leaver {
                        continue;
                    }
                    assert!(
                        pos(G(a)).unwrap() < pos(G(b)).unwrap(),
                        "leaver {leaver}: {a} and {b} swapped ranks"
                    );
                }
            }
            // And the compacted tree still reaches every rank exactly
            // once from the root.
            let n = members.len();
            let mut seen = vec![false; n];
            seen[0] = true;
            let mut frontier = vec![0usize];
            while let Some(p) = frontier.pop() {
                for c in nowmp_tmk::tree::children(p, n) {
                    assert!(!seen[c], "rank {c} delivered twice after leave {leaver}");
                    seen[c] = true;
                    frontier.push(c);
                }
            }
            assert!(seen.iter().all(|&s| s), "compacted tree covers all ranks");
        }
    }

    /// Joiners append at the tail under `CompactKeepOrder`, so a join
    /// grows the fork tree without moving any existing interior edge's
    /// relative order either.
    #[test]
    fn fork_tree_order_stable_under_join() {
        let old: Vec<Gpid> = (1..=6).map(G).collect();
        let members = reassign(ReassignPolicy::CompactKeepOrder, &old, &[], &[G(9), G(10)]);
        assert_eq!(&members[..6], &old[..], "existing ranks untouched");
        assert_eq!(&members[6..], &[G(9), G(10)]);
    }

    #[test]
    fn figure3_end_leave_is_half() {
        // Node 7 of 8 leaves: paper says "up to 50% of the data space".
        let f = moved_fraction_on_leave(8, 7);
        assert!((f - 0.5).abs() < 1e-9, "end leave moves {f}, expected 0.5");
    }

    #[test]
    fn figure3_middle_leave_is_less() {
        // Node 3 of 8 leaves: paper says "up to 30%".
        let f = moved_fraction_on_leave(8, 3);
        assert!(
            (f - 0.2857).abs() < 1e-3,
            "middle leave moves {f}, expected ~0.286"
        );
        assert!(f < moved_fraction_on_leave(8, 7), "middle < end");
    }

    #[test]
    fn leaving_first_slave_moves_most_of_middle_choices() {
        // Monotonic: the further from the end the leaver sits, the less
        // data moves... actually the *closer to the front*, the more the
        // tail shifts; pid 1 moves more than pid 6.
        let f1 = moved_fraction_on_leave(8, 1);
        let f6 = moved_fraction_on_leave(8, 6);
        assert!(f1 > f6);
    }

    #[test]
    fn moved_fraction_bounds() {
        for n in 2..10 {
            for l in 1..n {
                let f = moved_fraction_on_leave(n, l);
                assert!((0.0..=1.0).contains(&f), "n={n} l={l} f={f}");
            }
        }
    }

    #[test]
    fn identity_mapping_moves_nothing() {
        let survivors: Vec<(usize, usize)> = (0..4).map(|p| (p, p)).collect();
        assert_eq!(moved_fraction(4, &survivors), 0.0);
    }
}
