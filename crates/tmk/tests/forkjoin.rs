//! End-to-end fork-join tests over the full DSM stack: master + slaves,
//! service threads, real (simulated) network messages.

use nowmp_net::{Gpid, HostId, NetModel, Network};
use nowmp_tmk::shared::SharedF64Vec;
use nowmp_tmk::system::{DsmSystem, MasterCtl, RegionRunner};
use nowmp_tmk::{DsmConfig, ElemKind, TmkCtx};
use std::collections::HashSet;
use std::sync::Arc;

/// Regions used by these tests.
const R_FILL: u32 = 0; // each pid writes its block: v[i] = i
const R_SCALE: u32 = 1; // each pid scales its block by 2
const R_SUM_CRIT: u32 = 2; // each pid adds its block sum into acc under a lock
const R_STENCIL: u32 = 3; // barrier-separated two-phase: b[i] = a[i-1]+a[i+1]

struct TestApp {
    n: usize,
}

fn block(pid: usize, nprocs: usize, n: usize) -> (usize, usize) {
    let per = n.div_ceil(nprocs);
    let lo = (pid * per).min(n);
    let hi = ((pid + 1) * per).min(n);
    (lo, hi)
}

impl RegionRunner for TestApp {
    fn run(&self, region: u32, ctx: &mut TmkCtx) {
        let n = self.n;
        let (lo, hi) = block(ctx.pid() as usize, ctx.nprocs(), n);
        match region {
            R_FILL => {
                let v = SharedF64Vec::lookup(ctx, "v");
                for i in lo..hi {
                    v.set(ctx, i, i as f64);
                }
            }
            R_SCALE => {
                let v = SharedF64Vec::lookup(ctx, "v");
                for i in lo..hi {
                    let x = v.get(ctx, i);
                    v.set(ctx, i, 2.0 * x);
                }
            }
            R_SUM_CRIT => {
                let v = SharedF64Vec::lookup(ctx, "v");
                let acc = SharedF64Vec::lookup(ctx, "acc");
                let mut local = 0.0;
                for i in lo..hi {
                    local += v.get(ctx, i);
                }
                ctx.critical(0, |c| {
                    let cur = acc.get(c, 0);
                    acc.set(c, 0, cur + local);
                });
            }
            R_STENCIL => {
                let a = SharedF64Vec::lookup(ctx, "a");
                let b = SharedF64Vec::lookup(ctx, "b");
                for i in lo..hi {
                    let left = if i == 0 { 0.0 } else { a.get(ctx, i - 1) };
                    let right = if i + 1 == n { 0.0 } else { a.get(ctx, i + 1) };
                    b.set(ctx, i, left + right);
                }
                ctx.barrier();
                for i in lo..hi {
                    let x = b.get(ctx, i);
                    a.set(ctx, i, x);
                }
            }
            other => panic!("unknown region {other}"),
        }
    }
}

fn bring_up(nprocs: usize, n: usize) -> (Arc<DsmSystem>, MasterCtl, Vec<Gpid>) {
    let net = Network::new(nprocs.max(2), 1, NetModel::disabled());
    let sys = DsmSystem::new(
        net,
        DsmConfig {
            page_size: 256,
            ..DsmConfig::test_small()
        },
        Arc::new(TestApp { n }),
    );
    let mut master = sys.start_master(HostId(0));
    let mut workers = Vec::new();
    for i in 1..nprocs {
        let hello: Vec<Gpid> = workers.clone();
        workers.push(sys.spawn_worker(HostId(i as u16), master.gpid(), hello));
    }
    master.alloc("v", n as u64, ElemKind::F64);
    master.alloc("acc", 1, ElemKind::F64);
    master.alloc("a", n as u64, ElemKind::F64);
    master.alloc("b", n as u64, ElemKind::F64);
    master.init_team(&workers);
    (sys, master, workers)
}

fn read_all(master: &mut MasterCtl, name: &str, n: usize) -> Vec<f64> {
    let v = SharedF64Vec::lookup(master.ctx(), name);
    let mut out = vec![0.0; n];
    v.read_into(master.ctx(), 0, &mut out);
    out
}

#[test]
fn fill_across_4_procs() {
    let n = 500;
    let (_sys, mut master, _w) = bring_up(4, n);
    master.parallel(R_FILL, &[]);
    let got = read_all(&mut master, "v", n);
    for (i, x) in got.iter().enumerate() {
        assert_eq!(*x, i as f64, "element {i}");
    }
    master.shutdown();
}

#[test]
fn single_proc_team_works() {
    let n = 100;
    let (_sys, mut master, _w) = bring_up(1, n);
    master.parallel(R_FILL, &[]);
    master.parallel(R_SCALE, &[]);
    let got = read_all(&mut master, "v", n);
    for (i, x) in got.iter().enumerate() {
        assert_eq!(*x, 2.0 * i as f64);
    }
    master.shutdown();
}

#[test]
fn repeated_forks_propagate_updates() {
    let n = 300;
    let (_sys, mut master, _w) = bring_up(3, n);
    master.parallel(R_FILL, &[]);
    for _ in 0..4 {
        master.parallel(R_SCALE, &[]);
    }
    let got = read_all(&mut master, "v", n);
    for (i, x) in got.iter().enumerate() {
        assert_eq!(*x, 16.0 * i as f64, "element {i}");
    }
    master.shutdown();
}

#[test]
fn critical_section_reduction() {
    let n = 200;
    let (_sys, mut master, _w) = bring_up(4, n);
    master.parallel(R_FILL, &[]);
    master.parallel(R_SUM_CRIT, &[]);
    let acc = read_all(&mut master, "acc", 1)[0];
    let expect: f64 = (0..n).map(|i| i as f64).sum();
    assert_eq!(acc, expect);
    master.shutdown();
}

#[test]
fn in_region_barrier_stencil() {
    let n = 128;
    let (_sys, mut master, _w) = bring_up(4, n);
    // a[i] = i
    {
        let a = SharedF64Vec::lookup(master.ctx(), "a");
        for i in 0..n {
            a.set(master.ctx(), i, i as f64);
        }
    }
    master.parallel(R_STENCIL, &[]);
    let got = read_all(&mut master, "a", n);
    for i in 0..n {
        let left = if i == 0 { 0.0 } else { (i - 1) as f64 };
        let right = if i + 1 == n { 0.0 } else { (i + 1) as f64 };
        assert_eq!(got[i], left + right, "element {i}");
    }
    master.shutdown();
}

#[test]
fn master_sequential_writes_reach_slaves() {
    let n = 64;
    let (_sys, mut master, _w) = bring_up(2, n);
    // Master writes sequentially; slaves scale in parallel; repeat.
    for round in 0..3 {
        {
            let v = SharedF64Vec::lookup(master.ctx(), "v");
            for i in 0..n {
                v.set(master.ctx(), i, (round * 100 + i) as f64);
            }
        }
        master.parallel(R_SCALE, &[]);
        let got = read_all(&mut master, "v", n);
        for i in 0..n {
            assert_eq!(
                got[i],
                2.0 * (round * 100 + i) as f64,
                "round {round} element {i}"
            );
        }
    }
    master.shutdown();
}

#[test]
fn gc_preserves_memory() {
    let n = 400;
    let (_sys, mut master, _w) = bring_up(4, n);
    master.parallel(R_FILL, &[]);
    master.parallel(R_SCALE, &[]);
    let before = read_all(&mut master, "v", n);

    let outcome = master.run_gc(&HashSet::new(), None);
    let members = master.team().members.clone();
    master.commit_team(members, &outcome);

    let after = read_all(&mut master, "v", n);
    assert_eq!(before, after, "GC must not change memory contents");
    // And the system still computes.
    master.parallel(R_SCALE, &[]);
    let scaled = read_all(&mut master, "v", n);
    for i in 0..n {
        assert_eq!(scaled[i], 2.0 * after[i]);
    }
    master.shutdown();
}

#[test]
fn leave_preserves_memory_and_computation() {
    let n = 400;
    let (_sys, mut master, workers) = bring_up(4, n);
    master.parallel(R_FILL, &[]);
    master.parallel(R_SCALE, &[]);
    let before = read_all(&mut master, "v", n);

    // Remove the last worker (paper: "end" leave).
    let leaver = *workers.last().unwrap();
    let avoid: HashSet<Gpid> = [leaver].into_iter().collect();
    let outcome = master.run_gc(&avoid, None);
    let mut members = master.team().members.clone();
    members.retain(|&g| g != leaver);
    master.commit_team(members, &outcome);
    assert_eq!(master.team().nprocs(), 3);

    let after = read_all(&mut master, "v", n);
    assert_eq!(before, after, "leave must not lose data");
    master.parallel(R_SCALE, &[]);
    let got = read_all(&mut master, "v", n);
    for i in 0..n {
        assert_eq!(got[i], 2.0 * before[i], "element {i}");
    }
    master.shutdown();
}

#[test]
fn join_grows_team_and_computes() {
    let n = 400;
    let (sys, mut master, workers) = bring_up(2, n);
    master.parallel(R_FILL, &[]);

    // Spawn a new worker on a fresh host mid-run ("join event").
    let new_host = sys.net().add_host(1);
    let mut hello = vec![workers[0]];
    hello.push(master.gpid());
    let joiner = sys.spawn_worker(new_host, master.gpid(), vec![workers[0]]);
    let _ = hello;

    // Wait for readiness, then adapt at the next adaptation point.
    let outcome = master.run_gc(&HashSet::new(), None);
    let mut members = master.team().members.clone();
    members.push(joiner);
    master.commit_team(members, &outcome);
    assert_eq!(master.team().nprocs(), 3);

    master.parallel(R_SCALE, &[]);
    let got = read_all(&mut master, "v", n);
    for i in 0..n {
        assert_eq!(got[i], 2.0 * i as f64, "element {i}");
    }
    master.shutdown();
}

#[test]
fn leave_then_rejoin_cycles() {
    let n = 256;
    let (sys, mut master, workers) = bring_up(3, n);
    master.parallel(R_FILL, &[]);
    let mut expect: Vec<f64> = (0..n).map(|i| i as f64).collect();

    // Alternate leave / join four times, computing between adaptations.
    let mut current_workers: Vec<Gpid> = workers.clone();
    for round in 0..4 {
        if round % 2 == 0 {
            // leave: drop last worker
            let leaver = *current_workers.last().unwrap();
            let avoid: HashSet<Gpid> = [leaver].into_iter().collect();
            let outcome = master.run_gc(&avoid, None);
            let mut members = master.team().members.clone();
            members.retain(|&g| g != leaver);
            master.commit_team(members, &outcome);
            current_workers.retain(|&g| g != leaver);
        } else {
            // join: fresh worker on a fresh host
            let h = sys.net().add_host(1);
            let joiner = sys.spawn_worker(h, master.gpid(), current_workers.clone());
            let outcome = master.run_gc(&HashSet::new(), None);
            let mut members = master.team().members.clone();
            members.push(joiner);
            master.commit_team(members, &outcome);
            current_workers.push(joiner);
        }
        master.parallel(R_SCALE, &[]);
        for e in &mut expect {
            *e *= 2.0;
        }
        let got = read_all(&mut master, "v", n);
        assert_eq!(got, expect, "round {round}");
    }
    master.shutdown();
}

#[test]
fn checkpoint_image_roundtrip_through_fresh_system() {
    let n = 300;
    let (_sys, mut master, _w) = bring_up(3, n);
    master.parallel(R_FILL, &[]);
    master.parallel(R_SCALE, &[]);
    master.collect_all_pages();
    let image = master.export_image();
    assert_eq!(image.fork_no, 2);
    let expect = read_all(&mut master, "v", n);
    master.shutdown();

    // Fresh system restored from the image (recovery).
    let net = Network::new(2, 1, NetModel::disabled());
    let sys2 = DsmSystem::new(
        net,
        DsmConfig {
            page_size: 256,
            ..DsmConfig::test_small()
        },
        Arc::new(TestApp { n }),
    );
    let mut master2 = sys2.start_master(HostId(0));
    master2.import_image(&image);
    let w = sys2.spawn_worker(HostId(1), master2.gpid(), vec![]);
    master2.init_team(&[w]);
    let got = read_all(&mut master2, "v", n);
    assert_eq!(got, expect, "restored memory differs");
    // Recovered system computes onward.
    master2.parallel(R_SCALE, &[]);
    let got2 = read_all(&mut master2, "v", n);
    for i in 0..n {
        assert_eq!(got2[i], 2.0 * expect[i]);
    }
    assert_eq!(master2.fork_no(), 3);
    master2.shutdown();
}

#[test]
fn traffic_is_near_identical_across_runs() {
    // Check backing Table 1's "network traffic is identical" claim:
    // two identical runs produce the same traffic to within the small
    // nondeterminism of exclusive-page serving (whether an owner's
    // open-interval write lands in the served snapshot or the eventual
    // diff is a timing race; the protocol paths are identical).
    let run = || {
        let n = 256;
        let (sys, mut master, _w) = bring_up(4, n);
        master.parallel(R_FILL, &[]);
        master.parallel(R_SCALE, &[]);
        master.parallel(R_SUM_CRIT, &[]);
        let snap = sys.stats().snapshot();
        master.shutdown();
        (snap.pages_fetched as f64, snap.diffs_fetched as f64)
    };
    let a = run();
    let b = run();
    // Lock-acquisition order is scheduler-dependent, so a handful of
    // full-page fetches (one per process, e.g. the reduction slot) can
    // shift between the full-page and diff columns run to run.
    let close = |x: f64, y: f64| (x - y).abs() <= (0.05 * x.max(y)).max(4.0);
    assert!(close(a.0, b.0), "pages {a:?} vs {b:?}");
    assert!(close(a.1, b.1), "diffs {a:?} vs {b:?}");
}

// --- ISSUE 5: tree broadcast -------------------------------------------

/// `relay_tree_send` must adopt a vanished child's subtree: when an
/// interior relay's endpoint is gone (its host was dropped/reassigned
/// between team formation and the fork), the sender takes over that
/// child's own children so the whole subtree still hears the fork.
#[test]
fn tree_relay_adopts_vanished_childs_subtree() {
    use nowmp_tmk::system::relay_tree_send;
    use nowmp_tmk::Team;

    let net = Network::new(8, 1, NetModel::disabled());
    let eps: Vec<_> = (0..8u16).map(|h| net.register(HostId(h))).collect();
    let team = Team::new(0, eps.iter().map(|e| e.gpid()).collect());
    // Rank 4 is an interior relay (children 6 and 5). Kill it.
    net.unregister(eps[4].gpid());

    let payload = bytes::Bytes::from_static(b"fork");
    let sent = relay_tree_send(&eps[0], &team, 0, &payload);
    // Root's children are [4, 2, 1]; 4 is gone, so its children [6, 5]
    // are adopted: 2, 1, 6, 5 all hear the message directly.
    assert_eq!(sent, 4);
    for r in [1usize, 2, 5, 6] {
        assert!(
            eps[r].try_recv().is_some(),
            "rank {r} must receive the adopted broadcast"
        );
    }
    // Ranks 3 and 7 are served by relays 2 and 6 respectively — not by
    // the root — so nothing arrived for them here.
    for r in [3usize, 7] {
        assert!(eps[r].try_recv().is_none(), "rank {r} is a relay's job");
    }
}

/// Under the tree broadcast, interior workers forward forks (the
/// `bcast_relays` counter moves); under the flat broadcast the master
/// sends everything itself and the counter stays zero. Results are
/// identical either way.
#[test]
fn tree_and_flat_forks_compute_identically() {
    use nowmp_tmk::Broadcast;

    let n = 500;
    let mut results = Vec::new();
    for broadcast in [Broadcast::Flat, Broadcast::Tree] {
        let net = Network::new(5, 1, NetModel::disabled());
        let sys = DsmSystem::new(
            net,
            DsmConfig {
                page_size: 256,
                collectives: nowmp_tmk::CollectiveConfig::default().with_fork(broadcast),
                ..DsmConfig::test_small()
            },
            Arc::new(TestApp { n }),
        );
        let mut master = sys.start_master(HostId(0));
        let mut workers = Vec::new();
        for i in 1..5 {
            let hello: Vec<Gpid> = workers.clone();
            workers.push(sys.spawn_worker(HostId(i as u16), master.gpid(), hello));
        }
        master.alloc("v", n as u64, ElemKind::F64);
        master.alloc("acc", 1, ElemKind::F64);
        master.alloc("a", n as u64, ElemKind::F64);
        master.alloc("b", n as u64, ElemKind::F64);
        master.init_team(&workers);
        master.parallel(R_FILL, &[]);
        master.parallel(R_SCALE, &[]);
        let got = read_all(&mut master, "v", n);
        let relays = sys.stats().snapshot().bcast_relays;
        match broadcast {
            Broadcast::Flat => assert_eq!(relays, 0, "flat mode never relays"),
            // 5 ranks: rank 2 relays rank 3's fork, rank 4 relays none
            // (children(4,5) is empty)... the JoinInit tree also counts.
            Broadcast::Tree => assert!(relays > 0, "tree mode must relay"),
        }
        results.push(got);
        master.shutdown();
    }
    assert_eq!(
        results[0], results[1],
        "broadcast shape is invisible to data"
    );
}
