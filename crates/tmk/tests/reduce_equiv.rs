//! ISSUE 6: equivalence of the tree join reduce with flat collection.
//!
//! The interior-aggregator protocol in `system::worker_join_reduce`
//! merges child vector clocks with [`Vc::merge`] and appends child
//! records deduplicated by `(pid, seq)`. Both operations are
//! commutative over the *set* of contributions, so the root must end
//! up with exactly the flat-collection result no matter how members
//! are grouped into subtrees or in which order aggregates arrive.
//! These tests pin that down as a property over arbitrary team sizes,
//! record populations (including cross-pid records from lock
//! transfers) and arrival orders.

use nowmp_tmk::records::Record;
use nowmp_tmk::tree;
use nowmp_tmk::types::{Pid, Seq, Vc};
use nowmp_util::wire::{Enc, Encoding};
use proptest::prelude::*;
use std::collections::HashSet;

/// One rank's contribution at join time: its vector clock and the
/// records it drained (its own intervals plus any it carries for other
/// pids after a lock transfer).
#[derive(Clone, Debug)]
struct Contribution {
    vc: Vc,
    records: Vec<Record>,
}

fn rec(n: usize, pid: Pid, seq: Seq, pages: Vec<u32>) -> Record {
    let mut vc = Vc::new(n);
    vc.set(pid, seq);
    Record {
        pid,
        seq,
        vc,
        pages,
    }
}

/// Mirror of the aggregation step in `worker_join_reduce` /
/// `MasterCtl::parallel`: merge a child aggregate into an accumulator,
/// deduplicating records by `(pid, seq)`.
fn absorb(
    vc: &mut Vc,
    records: &mut Vec<Record>,
    seen: &mut HashSet<(Pid, Seq)>,
    child: (Vc, Vec<Record>),
) {
    vc.merge(&child.0);
    for r in child.1 {
        if seen.insert((r.pid, r.seq)) {
            records.push(r);
        }
    }
}

/// Compute rank `my`'s outgoing aggregate the way the worker does:
/// start from its own contribution, absorb each child subtree's
/// aggregate. `flip` (one bit per rank) permutes the order children
/// are absorbed in, modelling arbitrary arrival order.
fn tree_aggregate(my: usize, n: usize, ranks: &[Contribution], flip: u64) -> (Vc, Vec<Record>) {
    let own = &ranks[my];
    let mut vc = own.vc.clone();
    let mut records = own.records.clone();
    let mut seen: HashSet<(Pid, Seq)> = records.iter().map(|r| (r.pid, r.seq)).collect();
    let mut kids = tree::children(my, n);
    if flip >> (my % 64) & 1 == 1 {
        kids.reverse();
    }
    for child in kids {
        let agg = tree_aggregate(child, n, ranks, flip);
        absorb(&mut vc, &mut records, &mut seen, agg);
    }
    (vc, records)
}

/// Flat collection at the root: absorb every rank directly, in the
/// order given by `order`.
fn flat_collect(n: usize, ranks: &[Contribution], order: &[usize]) -> (Vc, Vec<Record>) {
    let own = &ranks[0];
    let mut vc = own.vc.clone();
    let mut records = own.records.clone();
    let mut seen: HashSet<(Pid, Seq)> = records.iter().map(|r| (r.pid, r.seq)).collect();
    for &r in order {
        absorb(
            &mut vc,
            &mut records,
            &mut seen,
            (ranks[r].vc.clone(), ranks[r].records.clone()),
        );
    }
    debug_assert_eq!(order.len(), n - 1);
    (vc, records)
}

/// Canonical bytes of a record set: sort by `(pid, seq)` (the dedup
/// key — each key maps to one immutable record, so sorting erases the
/// arrival order) and encode.
fn canonical_bytes(mut records: Vec<Record>, encoding: Encoding) -> Vec<u8> {
    records.sort_by_key(|r| (r.pid, r.seq));
    let mut e = Enc::with_encoding(64, encoding);
    nowmp_tmk::records::RecordSet::enc_slice(&records, &mut e);
    e.finish().to_vec()
}

/// Build per-rank contributions from a compact spec:
/// `intervals[r]` = number of closed intervals at rank r (each writing
/// a small page set), `transfers` = (donor, carrier) pairs where the
/// carrier also holds the donor's first record (lock-transfer shape).
fn build_ranks(n: usize, intervals: &[u8], transfers: &[(usize, usize)]) -> Vec<Contribution> {
    let mut ranks: Vec<Contribution> = (0..n)
        .map(|r| {
            let k = intervals[r] as u32;
            let mut vc = Vc::new(n);
            vc.set(r as Pid, k);
            let records = (1..=k)
                .map(|s| rec(n, r as Pid, s, vec![r as u32 * 8, r as u32 * 8 + s]))
                .collect();
            Contribution { vc, records }
        })
        .collect();
    for &(donor, carrier) in transfers {
        let donor = donor % n;
        let carrier = carrier % n;
        if donor == carrier || intervals[donor] == 0 {
            continue;
        }
        let transferred = rec(
            n,
            donor as Pid,
            1,
            vec![donor as u32 * 8, donor as u32 * 8 + 1],
        );
        ranks[carrier].vc.raise(donor as Pid, 1);
        ranks[carrier].records.push(transferred);
    }
    ranks
}

proptest! {
    /// For any team size, interval population, lock-transfer pattern
    /// and arrival order: the root of the binomial reduce tree holds
    /// exactly the flat-collection vector clock, and the record set is
    /// byte-identical under canonical order — in both wire encodings.
    #[test]
    fn prop_tree_reduce_equals_flat_collection(
        n in 2usize..33,
        intervals in proptest::collection::vec(0u8..4, 33..34),
        transfers in proptest::collection::vec((0usize..33, 0usize..33), 0..5),
        flip in any::<u64>(),
        order_rev in any::<bool>(),
    ) {
        let ranks = build_ranks(n, &intervals, &transfers);

        let (tree_vc, tree_recs) = tree_aggregate(0, n, &ranks, flip);
        let mut order: Vec<usize> = (1..n).collect();
        if order_rev {
            order.reverse();
        }
        let (flat_vc, flat_recs) = flat_collect(n, &ranks, &order);

        prop_assert_eq!(&tree_vc, &flat_vc, "merged vector clocks diverge");
        for enc in [Encoding::Flat, Encoding::Runs] {
            prop_assert_eq!(
                canonical_bytes(tree_recs.clone(), enc),
                canonical_bytes(flat_recs.clone(), enc),
                "record sets diverge under {:?}",
                enc
            );
        }
    }

    /// Aggregation is insensitive to the order children's aggregates
    /// arrive in at every interior rank.
    #[test]
    fn prop_tree_reduce_arrival_order_invariant(
        n in 2usize..33,
        intervals in proptest::collection::vec(1u8..3, 33..34),
        flip_a in any::<u64>(),
        flip_b in any::<u64>(),
    ) {
        let ranks = build_ranks(n, &intervals, &[]);
        let (vc_a, recs_a) = tree_aggregate(0, n, &ranks, flip_a);
        let (vc_b, recs_b) = tree_aggregate(0, n, &ranks, flip_b);
        prop_assert_eq!(vc_a, vc_b);
        prop_assert_eq!(
            canonical_bytes(recs_a, Encoding::Runs),
            canonical_bytes(recs_b, Encoding::Runs)
        );
    }
}

/// Deterministic pin of the adoption bookkeeping: when rank `dead`
/// vanishes mid-join, its children detect the failed send and escalate
/// to `dead`'s parent. Replaying that parent's coverage accounting
/// (subtree ranges plus the ancestor-chain walk from
/// `worker_join_reduce`), the parent must end up waiting on nothing —
/// except `dead` itself when it was a leaf, whose arrival the adaptive
/// layer restores by migrating the process.
#[test]
fn adoption_coverage_is_exact() {
    for n in 2..=40usize {
        for dead in 1..n {
            let my = tree::parent(dead);
            let sub = tree::subtree_size(my, n);
            let mut remaining: HashSet<usize> = (my + 1..my + sub).collect();
            // Senders: my's surviving children, plus dead's children
            // escalating past the vanished aggregator.
            let mut senders: Vec<usize> = tree::children(my, n)
                .into_iter()
                .filter(|&c| c != dead)
                .collect();
            let dead_children = tree::children(dead, n);
            let dead_is_leaf = dead_children.is_empty();
            senders.extend(dead_children);
            for s in senders {
                for r in s..s + tree::subtree_size(s, n) {
                    remaining.remove(&r);
                }
                let mut a = tree::parent(s);
                while a != my && a != 0 {
                    remaining.remove(&a);
                    a = tree::parent(a);
                }
            }
            if dead_is_leaf {
                assert_eq!(
                    remaining,
                    HashSet::from([dead]),
                    "n={n} dead leaf {dead}: parent {my} must wait only for its return"
                );
            } else {
                assert!(
                    remaining.is_empty(),
                    "n={n} dead={dead}: parent {my} still waits on {remaining:?}"
                );
            }
        }
    }
}
