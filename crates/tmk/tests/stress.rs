//! Protocol stress and hardening tests: lock contention, barrier
//! ordering, mixed sync domains, GC under load, message-decoder
//! fuzzing, lazy-diff mode end-to-end.

use nowmp_net::{Gpid, HostId, NetModel, Network};
use nowmp_tmk::msg::Msg;
use nowmp_tmk::shared::SharedF64Vec;
use nowmp_tmk::system::{DsmSystem, MasterCtl, RegionRunner};
use nowmp_tmk::{DsmConfig, TmkCtx};
use nowmp_util::wire::Wire;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

const R_LOCK_ADD: u32 = 0;
const R_BARRIER_PHASES: u32 = 1;
const R_MIXED: u32 = 2;
const R_WRITE_MINE: u32 = 3;

struct Stress {
    n: usize,
    rounds: usize,
}

impl RegionRunner for Stress {
    fn run(&self, region: u32, ctx: &mut TmkCtx) {
        let v = SharedF64Vec::lookup(ctx, "v");
        match region {
            // Every process increments the same counter `rounds` times
            // under a lock: the canonical contention test.
            R_LOCK_ADD => {
                for _ in 0..self.rounds {
                    ctx.critical(1, |c| {
                        let cur = v.get(c, 0);
                        v.set(c, 0, cur + 1.0);
                    });
                }
            }
            // Phased pipeline over barriers: phase p writes slot p+1
            // from slot p; ordering errors corrupt the chain.
            R_BARRIER_PHASES => {
                for p in 0..self.rounds {
                    if ctx.pid() as usize == p % ctx.nprocs() {
                        let cur = v.get(ctx, p);
                        v.set(ctx, p + 1, cur + 1.0);
                    }
                    ctx.barrier();
                }
            }
            // Mixed synchronization domains touching the same pages:
            // barrier-partitioned block writes + lock-protected counter
            // on the same array (page-level false sharing on purpose).
            R_MIXED => {
                let n = self.n;
                let per = n.div_ceil(ctx.nprocs());
                let pid = ctx.pid() as usize;
                let (lo, hi) = ((pid * per).min(n), ((pid + 1) * per).min(n));
                for round in 0..self.rounds {
                    for i in lo.max(8)..hi {
                        let cur = v.get(ctx, i);
                        v.set(ctx, i, cur + 1.0);
                    }
                    ctx.critical(2, |c| {
                        let cur = v.get(c, round % 4);
                        v.set(c, round % 4, cur + 1.0);
                    });
                    ctx.barrier();
                }
            }
            R_WRITE_MINE => {
                let n = self.n;
                let per = n.div_ceil(ctx.nprocs());
                let pid = ctx.pid() as usize;
                let (lo, hi) = ((pid * per).min(n), ((pid + 1) * per).min(n));
                for i in lo..hi {
                    let cur = v.get(ctx, i);
                    v.set(ctx, i, cur + 1.0);
                }
            }
            _ => unreachable!(),
        }
    }
}

fn system(procs: usize, n: usize, rounds: usize, lazy: bool) -> MasterCtl {
    let net = Network::new(procs, 1, NetModel::disabled());
    let mut cfg = DsmConfig {
        page_size: 256,
        ..DsmConfig::test_small()
    };
    cfg.lazy_diffs = lazy;
    let sys = DsmSystem::new(net, cfg, Arc::new(Stress { n, rounds }));
    let mut master = sys.start_master(HostId(0));
    let mut workers = Vec::new();
    for i in 1..procs {
        workers.push(sys.spawn_worker(HostId(i as u16), master.gpid(), workers.clone()));
    }
    master.alloc("v", n as u64, nowmp_tmk::ElemKind::F64);
    master.init_team(&workers);
    master
}

fn read0(master: &mut MasterCtl, i: usize) -> f64 {
    let v = SharedF64Vec::lookup(master.ctx(), "v");
    v.get(master.ctx(), i)
}

#[test]
fn lock_contention_counts_exactly() {
    for procs in [2usize, 4, 6] {
        let rounds = 25;
        let mut master = system(procs, 64, rounds, false);
        master.parallel(R_LOCK_ADD, &[]);
        let got = read0(&mut master, 0);
        assert_eq!(got, (procs * rounds) as f64, "procs={procs}");
        master.shutdown();
    }
}

#[test]
fn lock_contention_lazy_mode() {
    let procs = 4;
    let rounds = 25;
    let mut master = system(procs, 64, rounds, true);
    master.parallel(R_LOCK_ADD, &[]);
    assert_eq!(read0(&mut master, 0), (procs * rounds) as f64);
    master.shutdown();
}

#[test]
fn barrier_phase_chain() {
    let rounds = 12;
    let mut master = system(4, 64, rounds, false);
    {
        let v = SharedF64Vec::lookup(master.ctx(), "v");
        v.set(master.ctx(), 0, 5.0);
    }
    master.parallel(R_BARRIER_PHASES, &[]);
    // Slot p+1 = slot p + 1 for each phase: final = 5 + rounds.
    assert_eq!(read0(&mut master, rounds), 5.0 + rounds as f64);
    master.shutdown();
}

#[test]
fn mixed_sync_domains_on_shared_pages() {
    let procs = 4;
    let n = 64;
    let rounds = 10;
    let mut master = system(procs, n, rounds, false);
    master.parallel(R_MIXED, &[]);
    // Block region: each slot >= 8 incremented `rounds` times.
    for i in 8..n {
        assert_eq!(read0(&mut master, i), rounds as f64, "slot {i}");
    }
    // Lock-protected slots 0..4: counted across all procs.
    let mut total = 0.0;
    for i in 0..4 {
        total += read0(&mut master, i);
    }
    assert_eq!(total, (procs * rounds) as f64);
    master.shutdown();
}

#[test]
fn repeated_gc_under_load_preserves_state() {
    let procs = 4;
    let n = 256;
    let mut master = system(procs, n, 0, false);
    for round in 0..6 {
        master.parallel(R_WRITE_MINE, &[]);
        if round % 2 == 1 {
            let outcome = master.run_gc(&HashSet::new(), None);
            let members = master.team().members.clone();
            master.commit_team(members, &outcome);
        }
    }
    for i in 0..n {
        assert_eq!(read0(&mut master, i), 6.0, "slot {i}");
    }
    // GC postcondition: no consistency metadata survives.
    let core = master.ctx().core().clone();
    {
        let c = core.lock();
        // records may exist from post-GC rounds; force one more GC:
        drop(c);
        let outcome = master.run_gc(&HashSet::new(), None);
        let members = master.team().members.clone();
        master.commit_team(members, &outcome);
        let c = core.lock();
        assert!(c.records.is_empty(), "records cleared");
        assert!(c.diffs.is_empty(), "diffs cleared");
        assert_eq!(c.consistency_bytes, 0);
        c.pages.for_each(|i, m| {
            assert!(m.twin.is_none(), "page {i} twin");
            assert!(m.pending.is_empty(), "page {i} pending");
        });
    }
    master.shutdown();
}

#[test]
fn gc_threshold_triggers_automatically() {
    // Tiny GC threshold: the runtime must GC on its own at adaptation
    // points once diffs accumulate (TreadMarks' memory exhaustion).
    let net = Network::new(3, 1, NetModel::disabled());
    let mut cfg = DsmConfig {
        page_size: 256,
        ..DsmConfig::test_small()
    };
    cfg.gc_diff_threshold = 512; // bytes — absurdly small
    let sys = DsmSystem::new(net, cfg, Arc::new(Stress { n: 64, rounds: 4 }));
    let mut master = sys.start_master(HostId(0));
    let w1 = sys.spawn_worker(HostId(1), master.gpid(), vec![]);
    let w2 = sys.spawn_worker(HostId(2), master.gpid(), vec![w1]);
    master.alloc("v", 64, nowmp_tmk::ElemKind::F64);
    master.init_team(&[w1, w2]);
    for _ in 0..4 {
        master.parallel(R_MIXED, &[]);
        if master.gc_due() {
            let outcome = master.run_gc(&HashSet::new(), None);
            let members = master.team().members.clone();
            master.commit_team(members, &outcome);
        }
    }
    assert!(sys.stats().snapshot().gcs > 0, "GC must have triggered");
    master.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn msg_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Msg::from_wire(&bytes);
    }

    #[test]
    fn msg_roundtrip_fuzzed_pagerep(
        applied in proptest::collection::vec((any::<u16>(), any::<u32>()), 0..8),
        words in proptest::collection::vec(any::<u64>(), 0..64),
        redirect in proptest::option::of(any::<u32>()),
    ) {
        let m = Msg::PageRep {
            applied,
            words,
            redirect: redirect.map(Gpid),
        };
        let b = m.to_bytes();
        prop_assert_eq!(Msg::from_wire(&b).unwrap(), m);
    }

    #[test]
    fn msg_roundtrip_fuzzed_fork(
        epoch in any::<u32>(),
        region in any::<u32>(),
        params in proptest::collection::vec(any::<u8>(), 0..64),
        alloc in any::<u64>(),
    ) {
        let m = Msg::Fork {
            epoch,
            fork_no: 1,
            region,
            params,
            vc: nowmp_tmk::Vc::new(3),
            records: vec![],
            registry_delta: vec![],
            alloc_slots: alloc,
            relay: false,
            piggyback: vec![],
        };
        let b = m.to_bytes();
        prop_assert_eq!(Msg::from_wire(&b).unwrap(), m);
    }
}

// --- ownership redirect chains ---

#[test]
fn stale_owner_hints_redirect_to_current_owner() {
    // After a leave, pages the leaver owned re-home; a process that
    // slept through the change (kept the old owner hint) must chase the
    // redirect chain instead of failing.
    let procs = 4;
    let n = 256;
    let mut master = system(procs, n, 0, false);
    master.parallel(R_WRITE_MINE, &[]);
    // Leave of the last worker: its pages re-home via the master.
    let leaver = *master.team().members.last().unwrap();
    let avoid: HashSet<_> = [leaver].into_iter().collect();
    let outcome = master.run_gc(&avoid, None);
    let mut members = master.team().members.clone();
    members.retain(|&g| g != leaver);
    master.commit_team(members, &outcome);
    // Master reads everything, including pages whose directory entry
    // changed; every fetch resolves (possibly via redirects).
    for i in 0..n {
        let got = read0(&mut master, i);
        assert_eq!(got, 1.0, "slot {i}");
    }
    master.shutdown();
}

#[test]
fn team_of_one_supports_all_sync_ops() {
    // Degenerate team: locks and barriers must be local no-ops.
    let mut master = system(1, 32, 3, false);
    master.parallel(R_LOCK_ADD, &[]);
    master.parallel(R_BARRIER_PHASES, &[]);
    assert_eq!(read0(&mut master, 0), 3.0);
    master.shutdown();
}
