//! The binomial fork tree: who relays `Fork`/`JoinInit` to whom.
//!
//! The flat broadcast serializes `n - 1` sends on the master's link, so
//! fork latency grows linearly with the team and caps virtual-timeline
//! speedups past ~8–16 nodes (the ceiling `whatif_scale` exposed). The
//! binomial tree rooted at pid 0 sends to O(log n) children; each child
//! relays onward on *its own* host link, so the per-link occupancy — and
//! with it the fork's critical path — drops to O(log n) serializations.
//!
//! The tree is defined over team *ranks*, which the adaptive layer keeps
//! stable across reassignment (`ReassignPolicy::CompactKeepOrder`
//! preserves survivors' relative order, so a leave only compacts the
//! tree rather than reshuffling it). A relay that vanished between team
//! formation and a fork is handled by the sender *adopting* the missing
//! child's subtree (see [`crate::system`]).

/// Children of rank `pid` in the binomial broadcast tree over ranks
/// `0..n`, largest subtree first (so the deepest relay chain starts
/// earliest — the classic latency-optimal send order).
///
/// The shape is the standard binomial construction: rank `p` relays to
/// `p | mask` for every `mask = 1, 2, 4, …` below `p`'s lowest set bit
/// (the root scans all masks). Every rank in `0..n` is covered exactly
/// once and the depth is `⌈log₂ n⌉`.
pub fn children(pid: usize, n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut mask = 1usize;
    while mask < n && pid & mask == 0 {
        let child = pid | mask;
        if child < n {
            out.push(child);
        }
        mask <<= 1;
    }
    out.reverse(); // largest subtree first
    out
}

/// Depth of the binomial tree over `n` ranks. Rank `r` sits
/// `popcount(r)` hops from the root, so the depth is the maximum
/// popcount among ranks `0..n` — at most `⌈log₂ n⌉`.
pub fn depth(n: usize) -> usize {
    (0..n).map(|r| r.count_ones() as usize).max().unwrap_or(0)
}

/// Parent of rank `pid` in the binomial tree: clear the lowest set bit.
/// The root (rank 0) is its own parent. This is the exact inverse of
/// [`children`]: `p`'s children are `p | mask` for masks below `p`'s
/// lowest set bit, so removing a child's lowest set bit recovers `p`.
pub fn parent(pid: usize) -> usize {
    pid & pid.wrapping_sub(1)
}

/// Number of ranks in the subtree rooted at `pid` (inclusive) in the
/// binomial tree over `0..n`. For `pid > 0` the subtree is exactly the
/// contiguous rank range `[pid, pid + lowbit(pid))` clipped to `n`
/// (every descendant only sets bits *below* `pid`'s lowest set bit);
/// the root's subtree is the whole team.
pub fn subtree_size(pid: usize, n: usize) -> usize {
    if pid == 0 {
        return n;
    }
    if pid >= n {
        return 0;
    }
    let span = pid & pid.wrapping_neg(); // lowest set bit
    (pid + span).min(n) - pid
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk the tree from the root and return each rank's hop distance,
    /// panicking on double delivery.
    fn hops(n: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; n];
        dist[0] = 0;
        let mut frontier = vec![0usize];
        while let Some(p) = frontier.pop() {
            for c in children(p, n) {
                assert_eq!(dist[c], usize::MAX, "rank {c} delivered twice (n={n})");
                dist[c] = dist[p] + 1;
                frontier.push(c);
            }
        }
        dist
    }

    #[test]
    fn every_rank_covered_exactly_once() {
        for n in 1..=40 {
            let dist = hops(n);
            assert!(
                dist.iter().all(|&d| d != usize::MAX),
                "n={n}: some rank never receives the fork"
            );
        }
    }

    #[test]
    fn depth_is_log_n() {
        for n in 1..=40 {
            let dist = hops(n);
            let max = dist.into_iter().max().unwrap_or(0);
            assert_eq!(max, depth(n), "n={n}");
        }
        assert_eq!(depth(1), 0);
        assert_eq!(depth(2), 1);
        assert_eq!(depth(6), 2, "truncated teams can beat ⌈log₂ n⌉");
        assert_eq!(depth(8), 3);
        assert_eq!(depth(9), 3);
        assert_eq!(depth(32), 5);
        // Never deeper than ⌈log₂ n⌉.
        for n in 1..=64usize {
            let ceil_log = (usize::BITS - n.next_power_of_two().leading_zeros() - 1) as usize;
            assert!(depth(n) <= ceil_log.max(1) || n == 1, "n={n}");
        }
    }

    #[test]
    fn root_fanout_is_logarithmic() {
        assert_eq!(children(0, 32).len(), 5);
        assert_eq!(children(0, 2), vec![1]);
        assert!(children(0, 1).is_empty());
        // Largest subtree first: the rank-16 child roots 16 further
        // ranks and must be released before the rank-1 leaf.
        assert_eq!(children(0, 32), vec![16, 8, 4, 2, 1]);
    }

    #[test]
    fn interior_node_children() {
        // Rank 4 in an 8-team relays to 6 then 5; rank 6 relays to 7.
        assert_eq!(children(4, 8), vec![6, 5]);
        assert_eq!(children(6, 8), vec![7]);
        assert!(children(7, 8).is_empty());
        assert!(children(1, 8).is_empty(), "odd ranks are leaves");
    }

    #[test]
    fn truncated_teams_skip_out_of_range_children() {
        // n = 6: rank 4's nominal child 6 does not exist.
        assert_eq!(children(4, 6), vec![5]);
        let dist = hops(6);
        assert_eq!(dist.len(), 6);
    }

    #[test]
    fn parent_inverts_children() {
        for n in 1..=40 {
            for p in 0..n {
                for c in children(p, n) {
                    assert_eq!(parent(c), p, "n={n} child {c} of {p}");
                }
            }
        }
        assert_eq!(parent(0), 0, "the root is its own parent");
        assert_eq!(parent(4), 0);
        assert_eq!(parent(6), 4);
        assert_eq!(parent(7), 6);
    }

    /// Collect the subtree rooted at `p` by walking `children`.
    fn subtree(p: usize, n: usize) -> Vec<usize> {
        let mut out = vec![p];
        let mut frontier = vec![p];
        while let Some(q) = frontier.pop() {
            for c in children(q, n) {
                out.push(c);
                frontier.push(c);
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn subtree_is_contiguous_rank_range() {
        // The reduce path relies on this: a single sender pid identifies
        // its whole aggregated subtree as [pid, pid + subtree_size).
        for n in 1..=40 {
            for p in 0..n {
                let s = subtree(p, n);
                let size = subtree_size(p, n);
                assert_eq!(s.len(), size, "n={n} p={p}");
                let expect: Vec<usize> = (p..p + size).collect();
                assert_eq!(s, expect, "n={n} p={p}: subtree not contiguous");
            }
        }
        assert_eq!(subtree_size(0, 32), 32);
        assert_eq!(subtree_size(4, 8), 4); // {4,5,6,7}
        assert_eq!(subtree_size(4, 6), 2); // clipped: {4,5}
        assert_eq!(subtree_size(16, 32), 16);
        assert_eq!(subtree_size(7, 8), 1, "odd ranks are leaves");
    }
}
