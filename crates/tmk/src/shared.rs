//! Typed views over shared memory: vectors and matrices of `f64`/`u64`.
//!
//! Handles are plain `(addr, shape)` descriptors — cheap to copy, safe
//! to embed in region parameters, resolvable by name from the registry
//! on any process (including late joiners). All access goes through a
//! [`TmkCtx`], which enforces the DSM protocol.

use crate::ctx::TmkCtx;
use crate::msg::{ElemKind, RegEntry};
use crate::types::Addr;
use nowmp_util::wire::{Dec, Enc, Wire, WireError};

/// A shared vector of `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedF64Vec {
    /// Base slot address.
    pub addr: Addr,
    /// Element count.
    pub len: u64,
}

impl SharedF64Vec {
    /// View a registry entry as an `f64` vector.
    pub fn from_entry(e: &RegEntry) -> Self {
        debug_assert_eq!(e.kind, ElemKind::F64);
        SharedF64Vec {
            addr: e.addr,
            len: e.len,
        }
    }

    /// Resolve by name through the context's registry.
    pub fn lookup(ctx: &TmkCtx, name: &str) -> Self {
        let e = ctx
            .handle(name)
            .unwrap_or_else(|| panic!("no shared allocation {name:?}"));
        Self::from_entry(&e)
    }

    /// Element count as `usize`.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, ctx: &mut TmkCtx, i: usize) -> f64 {
        debug_assert!(
            (i as u64) < self.len,
            "index {i} out of bounds {}",
            self.len
        );
        ctx.read_f64(self.addr + i as u64)
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&self, ctx: &mut TmkCtx, i: usize, v: f64) {
        debug_assert!(
            (i as u64) < self.len,
            "index {i} out of bounds {}",
            self.len
        );
        ctx.write_f64(self.addr + i as u64, v);
    }

    /// Add `v` to element `i` (single-writer accumulation; wrap in a
    /// critical section when multiple processes target the same slot).
    #[inline]
    pub fn add(&self, ctx: &mut TmkCtx, i: usize, v: f64) {
        let cur = self.get(ctx, i);
        self.set(ctx, i, cur + v);
    }

    /// Bulk read `[start, start+dst.len())`.
    pub fn read_into(&self, ctx: &mut TmkCtx, start: usize, dst: &mut [f64]) {
        debug_assert!(start as u64 + dst.len() as u64 <= self.len);
        ctx.read_f64s(self.addr + start as u64, dst);
    }

    /// Bulk write `[start, start+src.len())`.
    pub fn write_from(&self, ctx: &mut TmkCtx, start: usize, src: &[f64]) {
        debug_assert!(start as u64 + src.len() as u64 <= self.len);
        ctx.write_f64s(self.addr + start as u64, src);
    }
}

impl Wire for SharedF64Vec {
    fn enc(&self, e: &mut Enc) {
        e.put_u64(self.addr);
        e.put_u64(self.len);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(SharedF64Vec {
            addr: d.get_u64()?,
            len: d.get_u64()?,
        })
    }
}

/// A shared row-major matrix of `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedF64Mat {
    /// Base slot address.
    pub addr: Addr,
    /// Rows.
    pub rows: u64,
    /// Columns.
    pub cols: u64,
}

impl SharedF64Mat {
    /// View a registry entry as a matrix of the given shape.
    pub fn from_entry(e: &RegEntry, rows: u64, cols: u64) -> Self {
        debug_assert_eq!(e.kind, ElemKind::F64);
        debug_assert!(rows * cols <= e.len, "shape exceeds allocation");
        SharedF64Mat {
            addr: e.addr,
            rows,
            cols,
        }
    }

    /// Resolve by name; the allocation length must equal `rows * cols`.
    pub fn lookup(ctx: &TmkCtx, name: &str, rows: u64, cols: u64) -> Self {
        let e = ctx
            .handle(name)
            .unwrap_or_else(|| panic!("no shared allocation {name:?}"));
        Self::from_entry(&e, rows, cols)
    }

    /// Slot address of `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Addr {
        debug_assert!((r as u64) < self.rows && (c as u64) < self.cols);
        self.addr + r as u64 * self.cols + c as u64
    }

    /// Read `(r, c)`.
    #[inline]
    pub fn get(&self, ctx: &mut TmkCtx, r: usize, c: usize) -> f64 {
        ctx.read_f64(self.at(r, c))
    }

    /// Write `(r, c)`.
    #[inline]
    pub fn set(&self, ctx: &mut TmkCtx, r: usize, c: usize, v: f64) {
        ctx.write_f64(self.at(r, c), v);
    }

    /// Bulk-read row `r` into `dst` (one fault check per page).
    pub fn read_row(&self, ctx: &mut TmkCtx, r: usize, dst: &mut [f64]) {
        debug_assert!(dst.len() as u64 <= self.cols);
        ctx.read_f64s(self.at(r, 0), dst);
    }

    /// Bulk-write row `r` from `src`.
    pub fn write_row(&self, ctx: &mut TmkCtx, r: usize, src: &[f64]) {
        debug_assert!(src.len() as u64 <= self.cols);
        ctx.write_f64s(self.at(r, 0), src);
    }
}

impl Wire for SharedF64Mat {
    fn enc(&self, e: &mut Enc) {
        e.put_u64(self.addr);
        e.put_u64(self.rows);
        e.put_u64(self.cols);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(SharedF64Mat {
            addr: d.get_u64()?,
            rows: d.get_u64()?,
            cols: d.get_u64()?,
        })
    }
}

/// A shared vector of `u64` (indices, counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedU64Vec {
    /// Base slot address.
    pub addr: Addr,
    /// Element count.
    pub len: u64,
}

impl SharedU64Vec {
    /// View a registry entry as a `u64` vector.
    pub fn from_entry(e: &RegEntry) -> Self {
        debug_assert_eq!(e.kind, ElemKind::U64);
        SharedU64Vec {
            addr: e.addr,
            len: e.len,
        }
    }

    /// Resolve by name through the context's registry.
    pub fn lookup(ctx: &TmkCtx, name: &str) -> Self {
        let e = ctx
            .handle(name)
            .unwrap_or_else(|| panic!("no shared allocation {name:?}"));
        Self::from_entry(&e)
    }

    /// Element count as `usize`.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, ctx: &mut TmkCtx, i: usize) -> u64 {
        debug_assert!((i as u64) < self.len);
        ctx.read_u64(self.addr + i as u64)
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&self, ctx: &mut TmkCtx, i: usize, v: u64) {
        debug_assert!((i as u64) < self.len);
        ctx.write_u64(self.addr + i as u64, v);
    }

    /// Bulk read.
    pub fn read_into(&self, ctx: &mut TmkCtx, start: usize, dst: &mut [u64]) {
        debug_assert!(start as u64 + dst.len() as u64 <= self.len);
        ctx.read_words(self.addr + start as u64, dst);
    }

    /// Bulk write.
    pub fn write_from(&self, ctx: &mut TmkCtx, start: usize, src: &[u64]) {
        debug_assert!(start as u64 + src.len() as u64 <= self.len);
        ctx.write_words(self.addr + start as u64, src);
    }
}

impl Wire for SharedU64Vec {
    fn enc(&self, e: &mut Enc) {
        e.put_u64(self.addr);
        e.put_u64(self.len);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(SharedU64Vec {
            addr: d.get_u64()?,
            len: d.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DsmConfig;
    use crate::core::ProcCore;
    use crate::stats::DsmStats;
    use nowmp_net::{HostId, NetModel, Network};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn ctx() -> TmkCtx {
        let net = Network::new(1, 1, NetModel::disabled());
        let ep = Arc::new(net.register(HostId(0)));
        let gpid = ep.gpid();
        let core = Arc::new(Mutex::new(ProcCore::new(
            DsmConfig {
                page_size: 64,
                ..DsmConfig::test_small()
            },
            gpid,
            DsmStats::new_shared(),
            gpid,
        )));
        TmkCtx::new(core, ep, None)
    }

    #[test]
    fn vec_elementwise() {
        let mut c = ctx();
        let v = SharedF64Vec { addr: 0, len: 20 };
        for i in 0..20 {
            v.set(&mut c, i, i as f64 * 1.5);
        }
        for i in 0..20 {
            assert_eq!(v.get(&mut c, i), i as f64 * 1.5);
        }
        v.add(&mut c, 3, 0.5);
        assert_eq!(v.get(&mut c, 3), 5.0);
    }

    #[test]
    fn vec_bulk_roundtrip() {
        let mut c = ctx();
        let v = SharedF64Vec { addr: 8, len: 40 };
        let src: Vec<f64> = (0..40).map(|i| (i * i) as f64).collect();
        v.write_from(&mut c, 0, &src);
        let mut dst = vec![0.0; 40];
        v.read_into(&mut c, 0, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn mat_rows_and_cells() {
        let mut c = ctx();
        let m = SharedF64Mat {
            addr: 0,
            rows: 5,
            cols: 7,
        };
        for r in 0..5 {
            for col in 0..7 {
                m.set(&mut c, r, col, (r * 10 + col) as f64);
            }
        }
        assert_eq!(m.get(&mut c, 3, 4), 34.0);
        let mut row = vec![0.0; 7];
        m.read_row(&mut c, 2, &mut row);
        assert_eq!(row, vec![20., 21., 22., 23., 24., 25., 26.]);
        m.write_row(&mut c, 4, &[9.0; 7]);
        assert_eq!(m.get(&mut c, 4, 6), 9.0);
    }

    #[test]
    fn u64_vec_roundtrip() {
        let mut c = ctx();
        let v = SharedU64Vec { addr: 0, len: 10 };
        v.set(&mut c, 0, u64::MAX);
        v.write_from(&mut c, 1, &[1, 2, 3]);
        assert_eq!(v.get(&mut c, 0), u64::MAX);
        let mut dst = [0u64; 3];
        v.read_into(&mut c, 1, &mut dst);
        assert_eq!(dst, [1, 2, 3]);
    }

    #[test]
    fn wire_roundtrips() {
        let v = SharedF64Vec { addr: 5, len: 10 };
        assert_eq!(SharedF64Vec::from_wire(&v.to_wire()).unwrap(), v);
        let m = SharedF64Mat {
            addr: 1,
            rows: 2,
            cols: 3,
        };
        assert_eq!(SharedF64Mat::from_wire(&m.to_wire()).unwrap(), m);
        let u = SharedU64Vec { addr: 0, len: 4 };
        assert_eq!(SharedU64Vec::from_wire(&u.to_wire()).unwrap(), u);
    }
}
