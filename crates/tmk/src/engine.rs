//! Resumable host state for the event-driven engine — tasks, not
//! threads.
//!
//! The thread-backed simulation in [`crate::system`] parks each host's
//! protocol position in an OS stack: an application thread blocked in a
//! barrier *is* the state "arrived at barrier". That representation
//! costs two threads per simulated host and tops sweeps out near 32
//! hosts. This module provides the alternative the scale sweeps run
//! on: each host's position between communication points is an explicit
//! enum ([`HostState`]), each parallel-region body is a resumable state
//! machine ([`RegionTask`]) stepped by a scheduler, and shared memory
//! is a flat word store ([`SimMemory`]) with phase-buffered writes.
//! Parking a host is then a data move, not a stack switch — the
//! typestate idiom (xv6's `CPUState`): invalid protocol positions are
//! unrepresentable, and *which* communication point a host is parked at
//! is pattern-matchable by the engine.
//!
//! ## Memory model
//!
//! Lazy release consistency says writes become visible at the next
//! synchronization. The task engine takes that literally:
//! [`TaskCtx`] reads hit the pre-phase [`SimMemory`] snapshot; writes
//! buffer into the step's [`StepOutcome`]; the engine applies all
//! buffers in pid order at the barrier / region end. One rule follows
//! for kernels: **within one phase, never read a location after
//! writing it** — read-your-own-write needs the next phase. (The
//! paper kernels are phase-structured exactly this way.)
//!
//! The engine that drives these types — scheduling, virtual time,
//! adaptation — lives in `nowmp_core::engine`; the application state
//! machines live in `nowmp_apps::tasks`.

use std::collections::BTreeSet;

use crate::types::{Addr, PageId, Pid};

/// What a [`RegionTask`] does after one step: the only three ways a
/// host can leave the CPU between communication points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// More compute before the next synchronization — resume me in the
    /// next wave without waiting for anyone.
    Again,
    /// Arrived at a barrier: park until every live rank arrives, then
    /// resume (buffered writes of the whole team apply first).
    Barrier,
    /// Region body complete for this rank (an implicit barrier ends
    /// the region).
    Done,
}

/// One rank's resumable execution of one parallel-region body.
///
/// A `RegionTask` is the unwound form of a region function: instead of
/// blocking in `barrier()`, it returns [`Step::Barrier`] and keeps its
/// loop position in fields. The engine calls [`RegionTask::step`] once
/// per scheduling wave with a fresh [`TaskCtx`]; all side effects flow
/// through the ctx (buffered writes, compute charges, page touches).
pub trait RegionTask: Send {
    /// Run until the next communication point (or a voluntary yield).
    fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step;
}

/// A host's protocol position between communication points — the
/// resumable replacement for a parked thread stack.
///
/// Transitions (driven by the engine):
///
/// ```text
///   Idle ── fork ──▶ Running ──[Step::Barrier]──▶ BarrierWait
///                      ▲  │                            │
///                      │  └─[Step::Again]              │ all ranks
///                      └────── barrier release ◀───────┘ arrived
///   Running ──[Step::Done]──▶ Done ── join (all ranks) ──▶ Idle
/// ```
pub enum HostState {
    /// Between regions: no task installed (the fork hasn't reached
    /// this rank, or the join already collected it).
    Idle,
    /// Executing region code: the task is runnable and will be stepped
    /// in the next wave.
    Running(Box<dyn RegionTask>),
    /// Arrived at an in-region barrier; holds the task to resume once
    /// every live rank arrives.
    BarrierWait(Box<dyn RegionTask>),
    /// Region body finished; waiting for the implicit end-of-region
    /// barrier (the join).
    Done,
}

impl HostState {
    /// Is this rank holding up the current wave (still runnable)?
    pub fn is_running(&self) -> bool {
        matches!(self, HostState::Running(_))
    }

    /// Has this rank reached a communication point (barrier or done)?
    pub fn is_parked(&self) -> bool {
        matches!(self, HostState::BarrierWait(_) | HostState::Done)
    }
}

impl std::fmt::Debug for HostState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HostState::Idle => "Idle",
            HostState::Running(_) => "Running",
            HostState::BarrierWait(_) => "BarrierWait",
            HostState::Done => "Done",
        })
    }
}

/// Everything one [`RegionTask::step`] did, for the engine to merge
/// deterministically: buffered writes (applied in pid order at the
/// next sync), pages touched (fault accounting against the rank's
/// valid set), and compute charged (worksharing iterations).
#[derive(Debug, Default)]
pub struct StepOutcome {
    /// Word writes in program order; visible to others after the next
    /// synchronization, per LRC.
    pub writes: Vec<(Addr, u64)>,
    /// Pages read or written this step (set, not multiset: TreadMarks
    /// faults once per page per interval).
    pub touched: BTreeSet<PageId>,
    /// Worksharing iterations charged (converted to virtual time by
    /// the engine's cost model, like `charge_compute`).
    pub compute_iters: u64,
}

/// The flat shared-memory image the task engine simulates against.
///
/// The thread engine replicates pages per process and reconciles them
/// with twins and diffs; parity is judged on *final content and event
/// order*, not on the reconciliation mechanics, so the task engine
/// keeps one authoritative copy. Word-addressed like the real
/// [`crate::shm::Allocator`] address space (same `Addr` values, same
/// page geometry), zero-initialized like fresh DSM pages.
#[derive(Debug)]
pub struct SimMemory {
    words: Vec<u64>,
    /// Slots (8-byte words) per page — `DsmConfig::slots_per_page`.
    spp: usize,
}

impl SimMemory {
    /// An empty store with `spp`-word pages.
    pub fn new(spp: usize) -> SimMemory {
        assert!(spp > 0, "pages must hold at least one word");
        SimMemory {
            words: Vec::new(),
            spp,
        }
    }

    /// Words per page.
    pub fn slots_per_page(&self) -> usize {
        self.spp
    }

    /// Grow (zero-filled) so addresses below `slots` are in range —
    /// call after each allocation, mirroring `Allocator::alloc`.
    pub fn ensure_slots(&mut self, slots: Addr) {
        let want = (slots as usize).div_ceil(self.spp) * self.spp;
        if want > self.words.len() {
            self.words.resize(want, 0);
        }
    }

    /// Load the word at `addr` (zero if never written, like a fresh
    /// DSM page).
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Store directly (master-sequential phases and write-buffer
    /// application; region code goes through [`TaskCtx::write_u64`]).
    #[inline]
    pub fn store(&mut self, addr: Addr, word: u64) {
        if self.words.len() <= addr as usize {
            self.ensure_slots(addr + 1);
        }
        self.words[addr as usize] = word;
    }

    /// Apply one rank's buffered writes in program order.
    pub fn apply_writes(&mut self, writes: &[(Addr, u64)]) {
        for &(addr, word) in writes {
            self.store(addr, word);
        }
    }

    /// Page containing `addr`.
    #[inline]
    pub fn page_of(&self, addr: Addr) -> PageId {
        (addr as usize / self.spp) as PageId
    }

    /// Number of pages backing the grown store.
    pub fn num_pages(&self) -> usize {
        self.words.len() / self.spp
    }

    /// The `spp` words of `page` (zero-filled if beyond the store) —
    /// checkpoint image extraction.
    pub fn page_words(&self, page: PageId) -> Vec<u64> {
        let start = page as usize * self.spp;
        (start..start + self.spp)
            .map(|i| self.words.get(i).copied().unwrap_or(0))
            .collect()
    }
}

/// What a [`RegionTask`] programs against for one step: its identity
/// in the team, read access to the pre-phase memory snapshot, and the
/// outcome accumulators. The same access surface as the thread
/// engine's `TmkCtx` typed views, minus the fault driver — faults are
/// derived from [`StepOutcome::touched`] by the engine.
pub struct TaskCtx<'a> {
    pid: Pid,
    nprocs: usize,
    mem: &'a SimMemory,
    out: &'a mut StepOutcome,
}

impl<'a> TaskCtx<'a> {
    /// Build a step context for `pid` of `nprocs` over the pre-phase
    /// snapshot `mem`, accumulating into `out`.
    pub fn new(pid: Pid, nprocs: usize, mem: &'a SimMemory, out: &'a mut StepOutcome) -> Self {
        TaskCtx {
            pid,
            nprocs,
            mem,
            out,
        }
    }

    /// This rank.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Team size at this fork.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    #[inline]
    fn touch(&mut self, addr: Addr) {
        self.out.touched.insert(self.mem.page_of(addr));
    }

    /// Read a word from the pre-phase snapshot (buffered writes of the
    /// current phase — own or others' — are *not* visible).
    #[inline]
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        self.touch(addr);
        self.mem.load(addr)
    }

    /// Read an `f64` (bit-stored, like the typed shared arrays).
    #[inline]
    pub fn read_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Buffer a word write; visible after the next synchronization.
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.touch(addr);
        self.out.writes.push((addr, v));
    }

    /// Buffer an `f64` write (bit-stored).
    #[inline]
    pub fn write_f64(&mut self, addr: Addr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Charge `iters` worksharing iterations of virtual compute — the
    /// task-engine analog of `TmkCtx::charge_compute`.
    pub fn charge_compute(&mut self, iters: u64) {
        self.out.compute_iters += iters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts to 3 with a barrier between increments.
    struct Counter {
        base: Addr,
        round: u32,
    }

    impl RegionTask for Counter {
        fn step(&mut self, ctx: &mut TaskCtx<'_>) -> Step {
            let addr = self.base + ctx.pid() as Addr;
            let v = ctx.read_u64(addr);
            ctx.write_u64(addr, v + 1);
            ctx.charge_compute(1);
            self.round += 1;
            if self.round < 3 {
                Step::Barrier
            } else {
                Step::Done
            }
        }
    }

    #[test]
    fn writes_are_buffered_until_applied() {
        let mut mem = SimMemory::new(8);
        mem.ensure_slots(8);
        let mut task = Counter { base: 0, round: 0 };
        let mut out = StepOutcome::default();
        let step = task.step(&mut TaskCtx::new(0, 1, &mem, &mut out));
        assert_eq!(step, Step::Barrier);
        // Pre-sync: the store is untouched; the write sits in the log.
        assert_eq!(mem.load(0), 0);
        assert_eq!(out.writes, vec![(0, 1)]);
        assert_eq!(out.touched.iter().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(out.compute_iters, 1);
        mem.apply_writes(&out.writes);
        assert_eq!(mem.load(0), 1);
    }

    #[test]
    fn task_resumes_across_barriers_as_data() {
        let mut mem = SimMemory::new(8);
        mem.ensure_slots(8);
        let mut state = HostState::Running(Box::new(Counter { base: 0, round: 0 }));
        let mut waves = 0;
        loop {
            let HostState::Running(mut task) = state else {
                break;
            };
            let mut out = StepOutcome::default();
            let step = task.step(&mut TaskCtx::new(0, 1, &mem, &mut out));
            mem.apply_writes(&out.writes);
            waves += 1;
            state = match step {
                Step::Again | Step::Barrier => {
                    // Single-rank team: the barrier releases instantly.
                    HostState::Running(task)
                }
                Step::Done => HostState::Done,
            };
        }
        assert!(state.is_parked());
        assert_eq!(waves, 3);
        assert_eq!(mem.load(0), 3, "one increment per wave, each visible");
    }

    #[test]
    fn sim_memory_page_geometry() {
        let mut mem = SimMemory::new(512);
        assert_eq!(mem.num_pages(), 0);
        mem.ensure_slots(513); // two pages
        assert_eq!(mem.num_pages(), 2);
        assert_eq!(mem.page_of(511), 0);
        assert_eq!(mem.page_of(512), 1);
        mem.store(512, 7);
        assert_eq!(mem.page_words(1)[0], 7);
        assert_eq!(mem.page_words(1).len(), 512);
        // Pages beyond the store read as zeros.
        assert_eq!(mem.page_words(9), vec![0u64; 512]);
        assert_eq!(mem.load(99_999), 0);
    }

    #[test]
    fn f64_reads_writes_roundtrip_bits() {
        let mut mem = SimMemory::new(8);
        mem.ensure_slots(8);
        let mut out = StepOutcome::default();
        let mut ctx = TaskCtx::new(2, 4, &mem, &mut out);
        assert_eq!(ctx.pid(), 2);
        assert_eq!(ctx.nprocs(), 4);
        ctx.write_f64(3, -0.25);
        mem.apply_writes(&out.writes);
        let mut out = StepOutcome::default();
        let mut ctx = TaskCtx::new(2, 4, &mem, &mut out);
        assert_eq!(ctx.read_f64(3), -0.25);
    }
}
