//! Diffs: run-length encodings of the words a process changed in a page
//! during one interval.
//!
//! A diff is computed by comparing the current page contents against the
//! *twin* snapshot taken at the first write of the interval, exactly as
//! in TreadMarks. Diffs are word-granular (the paper's TreadMarks also
//! diffs at word granularity), so two processes writing disjoint words
//! of the same page produce disjoint, commuting diffs — the heart of the
//! multiple-writer protocol.

use crate::page::PageBuf;
use crate::types::PageId;
use nowmp_util::wire::{Dec, Enc, Wire, WireError};

/// One run of modified words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// First modified slot index.
    pub start: u32,
    /// The new word values.
    pub words: Vec<u64>,
}

/// All modifications a single interval made to a single page.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    /// Modified runs, in ascending `start` order, non-overlapping.
    pub runs: Vec<DiffRun>,
}

impl Diff {
    /// Compute the diff of `page` against its `twin` snapshot.
    ///
    /// Adjacent modified words within `gap_merge` unmodified words of
    /// each other coalesce into one run (fewer headers on the wire);
    /// TreadMarks used a similar heuristic. `gap_merge = 0` produces
    /// exact runs.
    pub fn create(twin: &[u64], page: &PageBuf, gap_merge: usize) -> Diff {
        assert_eq!(twin.len(), page.slots(), "twin/page size mismatch");
        let cur = page.snapshot();
        Self::create_from_words(twin, &cur, gap_merge)
    }

    /// Diff of two word slices (testable core of [`Diff::create`]).
    pub fn create_from_words(twin: &[u64], cur: &[u64], gap_merge: usize) -> Diff {
        assert_eq!(twin.len(), cur.len());
        let mut runs: Vec<DiffRun> = Vec::new();
        let n = cur.len();
        let mut i = 0usize;
        while i < n {
            // Clean stretches dominate a typical page (a few scattered
            // writes in 512 words), so skip them eight words at a time
            // — one slice compare (memcmp) per chunk. A failed chunk
            // guarantees a dirty word within it; fall through to the
            // word scan to pinpoint it rather than retrying the memcmp
            // at every clean word of the gap.
            while i + 8 <= n && cur[i..i + 8] == twin[i..i + 8] {
                i += 8;
            }
            while i < n && cur[i] == twin[i] {
                i += 1;
            }
            if i >= n {
                break;
            }
            // Start of a modified run; extend while changed or within the
            // merge gap of the next change.
            let start = i;
            let mut end = i + 1; // exclusive end of last *changed* word
            let mut j = i + 1;
            let mut gap = 0usize;
            while j < cur.len() {
                if cur[j] != twin[j] {
                    end = j + 1;
                    gap = 0;
                } else {
                    gap += 1;
                    if gap > gap_merge {
                        break;
                    }
                }
                j += 1;
            }
            runs.push(DiffRun {
                start: start as u32,
                words: cur[start..end].to_vec(),
            });
            i = end.max(j);
        }
        Diff { runs }
    }

    /// Apply this diff to `page`.
    pub fn apply(&self, page: &PageBuf) {
        for run in &self.runs {
            page.write_range(run.start as usize, &run.words);
        }
    }

    /// Apply this diff to a plain word buffer.
    pub fn apply_to_words(&self, words: &mut [u64]) {
        for run in &self.runs {
            let s = run.start as usize;
            words[s..s + run.words.len()].copy_from_slice(&run.words);
        }
    }

    /// True when no words changed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of modified (carried) words.
    pub fn words(&self) -> usize {
        self.runs.iter().map(|r| r.words.len()).sum()
    }

    /// Approximate size on the wire (headers + payload).
    pub fn wire_bytes(&self) -> usize {
        4 + self
            .runs
            .iter()
            .map(|r| 8 + r.words.len() * 8)
            .sum::<usize>()
    }
}

impl Wire for DiffRun {
    fn enc(&self, e: &mut Enc) {
        e.put_u32(self.start);
        e.put_u64_slice(&self.words);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(DiffRun {
            start: d.get_u32()?,
            words: d.get_u64_vec()?,
        })
    }
}

impl Wire for Diff {
    fn enc(&self, e: &mut Enc) {
        e.put_seq(&self.runs);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(Diff { runs: d.get_seq()? })
    }
}

/// Key identifying a stored diff: which page, which interval of ours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiffKey {
    /// Page modified.
    pub page: PageId,
    /// Our interval that modified it.
    pub seq: crate::types::Seq,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_diff_for_identical() {
        let twin = vec![7u64; 16];
        let page = PageBuf::from_words(&twin);
        let d = Diff::create(&twin, &page, 0);
        assert!(d.is_empty());
        assert_eq!(d.words(), 0);
    }

    #[test]
    fn single_word_change() {
        let twin = vec![0u64; 16];
        let page = PageBuf::from_words(&twin);
        page.store(5, 99);
        let d = Diff::create(&twin, &page, 0);
        assert_eq!(d.runs.len(), 1);
        assert_eq!(d.runs[0].start, 5);
        assert_eq!(d.runs[0].words, vec![99]);
    }

    #[test]
    fn gap_merge_coalesces_runs() {
        let twin = vec![0u64; 16];
        let cur = {
            let mut c = twin.clone();
            c[2] = 1;
            c[4] = 2; // gap of 1 unmodified word
            c
        };
        let exact = Diff::create_from_words(&twin, &cur, 0);
        assert_eq!(exact.runs.len(), 2);
        let merged = Diff::create_from_words(&twin, &cur, 1);
        assert_eq!(merged.runs.len(), 1);
        // Merged run still applies correctly (it carries the unmodified
        // word's current value, which equals the twin's).
        let mut back = twin.clone();
        merged.apply_to_words(&mut back);
        assert_eq!(back, cur);
    }

    #[test]
    fn apply_reconstructs() {
        let twin: Vec<u64> = (0..32).collect();
        let mut cur = twin.clone();
        cur[0] = 100;
        cur[15] = 200;
        cur[16] = 201;
        cur[31] = 300;
        let d = Diff::create_from_words(&twin, &cur, 0);
        let page = PageBuf::from_words(&twin);
        d.apply(&page);
        assert_eq!(page.snapshot(), cur);
    }

    #[test]
    fn disjoint_diffs_commute() {
        let twin = vec![0u64; 32];
        let mut a = twin.clone();
        a[3] = 1;
        a[4] = 2;
        let mut b = twin.clone();
        b[20] = 9;
        let da = Diff::create_from_words(&twin, &a, 0);
        let db = Diff::create_from_words(&twin, &b, 0);
        let mut ab = twin.clone();
        da.apply_to_words(&mut ab);
        db.apply_to_words(&mut ab);
        let mut ba = twin.clone();
        db.apply_to_words(&mut ba);
        da.apply_to_words(&mut ba);
        assert_eq!(ab, ba);
        assert_eq!(ab[3], 1);
        assert_eq!(ab[20], 9);
    }

    #[test]
    fn wire_roundtrip() {
        let d = Diff {
            runs: vec![
                DiffRun {
                    start: 0,
                    words: vec![1, 2, 3],
                },
                DiffRun {
                    start: 10,
                    words: vec![u64::MAX],
                },
            ],
        };
        assert_eq!(Diff::from_wire(&d.to_wire()).unwrap(), d);
    }

    proptest! {
        #[test]
        fn prop_diff_apply_roundtrip(
            twin in proptest::collection::vec(0u64..4, 1..128),
            flips in proptest::collection::vec((0usize..128, 1u64..100), 0..40),
            gap in 0usize..4,
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            let d = Diff::create_from_words(&twin, &cur, gap);
            let mut back = twin.clone();
            d.apply_to_words(&mut back);
            prop_assert_eq!(back, cur);
        }

        #[test]
        fn prop_exact_diff_is_minimal(
            twin in proptest::collection::vec(0u64..4, 1..64),
            flips in proptest::collection::vec((0usize..64, 10u64..100), 0..20),
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            let d = Diff::create_from_words(&twin, &cur, 0);
            let changed = twin.iter().zip(&cur).filter(|(a, b)| a != b).count();
            prop_assert_eq!(d.words(), changed, "exact diff carries only changed words");
        }

        #[test]
        fn prop_wire_roundtrip(starts in proptest::collection::vec((0u32..500, 1usize..8), 0..10)) {
            let mut next = 0u32;
            let runs: Vec<DiffRun> = starts.into_iter().map(|(gap, len)| {
                let start = next + gap;
                next = start + len as u32 + 1;
                DiffRun { start, words: (0..len as u64).collect() }
            }).collect();
            let d = Diff { runs };
            prop_assert_eq!(Diff::from_wire(&d.to_wire()).unwrap(), d);
        }
    }
}
