//! Diffs: run-length encodings of the words a process changed in a page
//! during one interval.
//!
//! A diff is computed by comparing the current page contents against the
//! *twin* snapshot taken at the first write of the interval, exactly as
//! in TreadMarks. Diffs are word-granular (the paper's TreadMarks also
//! diffs at word granularity), so two processes writing disjoint words
//! of the same page produce disjoint, commuting diffs — the heart of the
//! multiple-writer protocol.
//!
//! ## Layout
//!
//! A diff is **one** allocation: a header-prefixed `u64` buffer. The
//! first `nruns` words are packed run descriptors
//! (`start << 32 | len`), ascending and non-overlapping; the payload
//! words follow immediately, concatenated in run order (offsets are
//! the running prefix sum of the lengths). Apply therefore walks a
//! single contiguous buffer front to back — the descriptor index sits
//! in the same cache lines as the first payload words, where the
//! earlier two-vector layout (descriptors in one allocation, arena in
//! another) cost a second cache stream per apply and regressed
//! many-small-run shapes (`apply_4k_64w`) 2×. The wire format is
//! unchanged: `u32` run count, then per run a `u32` start, `u32`
//! length and the raw little-endian words.

use crate::page::PageBuf;
use crate::types::PageId;
use nowmp_util::wire::{Dec, Enc, Wire, WireError};

/// All modifications a single interval made to a single page.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    /// Number of runs (= descriptor words at the front of `buf`).
    nruns: usize,
    /// `[desc_0 .. desc_{nruns-1}] [payload words in run order]` where
    /// `desc_i = start_i << 32 | len_i`.
    buf: Vec<u64>,
}

#[inline]
const fn desc(start: u32, len: u32) -> u64 {
    ((start as u64) << 32) | len as u64
}

#[inline]
const fn desc_start(d: u64) -> u32 {
    (d >> 32) as u32
}

#[inline]
const fn desc_len(d: u64) -> u32 {
    d as u32
}

impl Diff {
    /// Compute the diff of `page` against its `twin` snapshot.
    ///
    /// Adjacent modified words within `gap_merge` unmodified words of
    /// each other coalesce into one run (fewer headers on the wire);
    /// TreadMarks used a similar heuristic. `gap_merge = 0` produces
    /// exact runs.
    pub fn create(twin: &[u64], page: &PageBuf, gap_merge: usize) -> Diff {
        assert_eq!(twin.len(), page.slots(), "twin/page size mismatch");
        let cur = page.snapshot();
        Self::create_from_words(twin, &cur, gap_merge)
    }

    /// Diff of two word slices (testable core of [`Diff::create`]).
    ///
    /// Branch-reduced scan instead of a per-word state machine:
    ///
    /// 1. per 64-word block, a wide XOR-OR fold ([`block_acc`], which
    ///    the compiler vectorizes into 128-bit+ lanes) rejects clean
    ///    blocks with no per-word branching — the common case, since a
    ///    typical interval dirties a few scattered words in 512;
    /// 2. a dirty block gets a 64-bit dirty *bitmap* (branchless
    ///    compare-into-mask), and runs fall out as bit scans
    ///    (`trailing_zeros`) over the mask rather than data re-reads.
    ///
    /// `gap_merge` is applied by coalescing adjacent exact intervals
    /// whose clean gap is `<= gap_merge` — equivalent to the old
    /// gap-counter scan, and the merged run carries the current page
    /// contents for the gap words (which equal the twin's).
    pub fn create_from_words(twin: &[u64], cur: &[u64], gap_merge: usize) -> Diff {
        assert_eq!(twin.len(), cur.len());
        let n = cur.len();
        // Pass 1: gap-merged dirty intervals (start, end) — descriptors
        // only, no payload copies yet.
        let mut iv: Vec<(usize, usize)> = Vec::new();
        let mut total = 0usize;
        let mut base = 0usize;
        while base < n {
            let blk = (n - base).min(64);
            let c = &cur[base..base + blk];
            let t = &twin[base..base + blk];
            if block_acc(c, t) == 0 {
                base += 64;
                continue;
            }
            let mut mask = block_mask(c, t);
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                let run = (!(mask >> s)).trailing_zeros() as usize; // >=1
                let (start, end) = (base + s, base + s + run);
                match iv.last_mut() {
                    Some(last) if start - last.1 <= gap_merge => {
                        total += end - last.1;
                        last.1 = end;
                    }
                    _ => {
                        iv.push((start, end));
                        total += run;
                    }
                }
                if s + run >= 64 {
                    break;
                }
                mask &= u64::MAX << (s + run);
            }
            base += 64;
        }
        // Pass 2: one exactly-sized allocation — descriptors up front,
        // then one contiguous payload copy per run (merged runs carry
        // the gap words' current contents, which equal the twin's).
        let mut buf = Vec::with_capacity(iv.len() + total);
        for &(start, end) in &iv {
            buf.push(desc(start as u32, (end - start) as u32));
        }
        for &(start, end) in &iv {
            buf.extend_from_slice(&cur[start..end]);
        }
        Diff {
            nruns: iv.len(),
            buf,
        }
    }

    /// Build a diff from explicit `(start, payload)` runs (tests,
    /// hand-rolled fixtures). Runs must be ascending / non-overlapping.
    pub fn from_runs<'a, I>(runs: I) -> Diff
    where
        I: IntoIterator<Item = (u32, &'a [u64])>,
    {
        let mut d = Diff::default();
        for (start, words) in runs {
            d.push_run(start, words);
        }
        d
    }

    /// Convenience: a diff of exactly one run.
    pub fn of_run(start: u32, words: &[u64]) -> Diff {
        Self::from_runs([(start, words)])
    }

    /// Append one run (must be after all existing runs).
    ///
    /// Shifts the payload right by one descriptor word — O(carried
    /// words). Fixture/decoder convenience; the hot constructor is
    /// [`Diff::create_from_words`], which sizes the buffer once.
    pub fn push_run(&mut self, start: u32, words: &[u64]) {
        if self.nruns > 0 {
            let last = self.buf[self.nruns - 1];
            assert!(
                start >= desc_start(last) + desc_len(last),
                "runs must be ascending/non-overlapping"
            );
        }
        self.buf.insert(self.nruns, desc(start, words.len() as u32));
        self.nruns += 1;
        self.buf.extend_from_slice(words);
    }

    /// Iterate runs as `(start_slot, payload)`.
    pub fn iter_runs(&self) -> impl Iterator<Item = (u32, &[u64])> {
        let (descs, payload) = self.buf.split_at(self.nruns);
        descs.iter().scan(0usize, move |off, &d| {
            let len = desc_len(d) as usize;
            let w = &payload[*off..*off + len];
            *off += len;
            Some((desc_start(d), w))
        })
    }

    /// Number of runs.
    pub fn num_runs(&self) -> usize {
        self.nruns
    }

    /// Apply this diff to `page`.
    ///
    /// Single-word runs — the dominant shape for scattered writes —
    /// take a direct store instead of the bulk-copy loop, whose setup
    /// (slice construction, unroll prologue) costs more than the one
    /// word it would move.
    pub fn apply(&self, page: &PageBuf) {
        let (descs, payload) = self.buf.split_at(self.nruns);
        let mut off = 0usize;
        for &d in descs {
            let (s, l) = (desc_start(d) as usize, desc_len(d) as usize);
            if l == 1 {
                page.store(s, payload[off]);
            } else {
                page.write_range(s, &payload[off..off + l]);
            }
            off += l;
        }
    }

    /// Apply this diff to a plain word buffer.
    pub fn apply_to_words(&self, words: &mut [u64]) {
        let (descs, payload) = self.buf.split_at(self.nruns);
        let mut off = 0usize;
        for &d in descs {
            let (s, l) = (desc_start(d) as usize, desc_len(d) as usize);
            words[s..s + l].copy_from_slice(&payload[off..off + l]);
            off += l;
        }
    }

    /// True when no words changed.
    pub fn is_empty(&self) -> bool {
        self.nruns == 0
    }

    /// Number of modified (carried) words.
    pub fn words(&self) -> usize {
        self.buf.len() - self.nruns
    }

    /// Approximate size on the wire (headers + payload).
    pub fn wire_bytes(&self) -> usize {
        4 + self.buf.len() * 8
    }
}

/// XOR-OR fold of a block (`<= 64` words): zero iff the block is
/// clean. Written as a plain fold so the autovectorizer widens it to
/// 128-bit (SSE2) or wider lanes — one wide compare per 2–4 words and
/// a single reduction, no per-word branches.
#[inline]
fn block_acc(cur: &[u64], twin: &[u64]) -> u64 {
    let mut acc = 0u64;
    for (c, t) in cur.iter().zip(twin) {
        acc |= c ^ t;
    }
    acc
}

/// Dirty bitmap of a block (`<= 64` words): bit `k` set iff word `k`
/// differs. Branchless — the compare becomes a flag-to-bit move, so
/// run boundaries cost bit scans instead of branch mispredicts.
#[inline]
fn block_mask(cur: &[u64], twin: &[u64]) -> u64 {
    let mut m = 0u64;
    for (k, (c, t)) in cur.iter().zip(twin).enumerate() {
        m |= (((c ^ t) != 0) as u64) << k;
    }
    m
}

impl Wire for Diff {
    fn enc(&self, e: &mut Enc) {
        e.put_u32(self.nruns as u32);
        for (start, words) in self.iter_runs() {
            e.put_u32(start);
            e.put_u32(words.len() as u32);
            e.put_u64_words(words);
        }
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let n = d.get_u32()? as usize;
        if n > d.remaining().saturating_add(1) {
            return Err(WireError::BadLength {
                what: "diff runs",
                len: n,
            });
        }
        // The run count is known up front, so the header-prefixed
        // layout decodes into one buffer: reserve `n` descriptor
        // slots, then append each run's payload behind them. (`n` is
        // bounded by `remaining` above, so a corrupt count cannot
        // force a huge allocation.)
        let mut buf = vec![0u64; n];
        for i in 0..n {
            let start = d.get_u32()?;
            let len = d.get_u32()? as usize;
            buf[i] = desc(start, len as u32);
            d.get_u64_words_into(&mut buf, len)?;
        }
        Ok(Diff { nruns: n, buf })
    }
}

/// Key identifying a stored diff: which page, which interval of ours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiffKey {
    /// Page modified.
    pub page: PageId,
    /// Our interval that modified it.
    pub seq: crate::types::Seq,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_diff_for_identical() {
        let twin = vec![7u64; 16];
        let page = PageBuf::from_words(&twin);
        let d = Diff::create(&twin, &page, 0);
        assert!(d.is_empty());
        assert_eq!(d.words(), 0);
    }

    #[test]
    fn single_word_change() {
        let twin = vec![0u64; 16];
        let page = PageBuf::from_words(&twin);
        page.store(5, 99);
        let d = Diff::create(&twin, &page, 0);
        assert_eq!(d.num_runs(), 1);
        let (start, words) = d.iter_runs().next().unwrap();
        assert_eq!(start, 5);
        assert_eq!(words, &[99]);
    }

    #[test]
    fn gap_merge_coalesces_runs() {
        let twin = vec![0u64; 16];
        let cur = {
            let mut c = twin.clone();
            c[2] = 1;
            c[4] = 2; // gap of 1 unmodified word
            c
        };
        let exact = Diff::create_from_words(&twin, &cur, 0);
        assert_eq!(exact.num_runs(), 2);
        let merged = Diff::create_from_words(&twin, &cur, 1);
        assert_eq!(merged.num_runs(), 1);
        // Merged run still applies correctly (it carries the unmodified
        // word's current value, which equals the twin's).
        let mut back = twin.clone();
        merged.apply_to_words(&mut back);
        assert_eq!(back, cur);
    }

    #[test]
    fn runs_straddling_block_boundaries() {
        // A run crossing the 64-word bitmap block boundary must come
        // out as one run, not split at the seam.
        let twin = vec![0u64; 192];
        let mut cur = twin.clone();
        for i in 60..70 {
            cur[i] = i as u64 + 1;
        }
        cur[127] = 7;
        cur[128] = 8;
        let d = Diff::create_from_words(&twin, &cur, 0);
        let runs: Vec<(u32, Vec<u64>)> = d.iter_runs().map(|(s, w)| (s, w.to_vec())).collect();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, 60);
        assert_eq!(runs[0].1.len(), 10);
        assert_eq!(runs[1].0, 127);
        assert_eq!(runs[1].1, vec![7, 8]);
        let mut back = twin.clone();
        d.apply_to_words(&mut back);
        assert_eq!(back, cur);
    }

    #[test]
    fn apply_reconstructs() {
        let twin: Vec<u64> = (0..32).collect();
        let mut cur = twin.clone();
        cur[0] = 100;
        cur[15] = 200;
        cur[16] = 201;
        cur[31] = 300;
        let d = Diff::create_from_words(&twin, &cur, 0);
        let page = PageBuf::from_words(&twin);
        d.apply(&page);
        assert_eq!(page.snapshot(), cur);
    }

    #[test]
    fn disjoint_diffs_commute() {
        let twin = vec![0u64; 32];
        let mut a = twin.clone();
        a[3] = 1;
        a[4] = 2;
        let mut b = twin.clone();
        b[20] = 9;
        let da = Diff::create_from_words(&twin, &a, 0);
        let db = Diff::create_from_words(&twin, &b, 0);
        let mut ab = twin.clone();
        da.apply_to_words(&mut ab);
        db.apply_to_words(&mut ab);
        let mut ba = twin.clone();
        db.apply_to_words(&mut ba);
        da.apply_to_words(&mut ba);
        assert_eq!(ab, ba);
        assert_eq!(ab[3], 1);
        assert_eq!(ab[20], 9);
    }

    #[test]
    fn wire_roundtrip() {
        let d = Diff::from_runs([(0u32, &[1u64, 2, 3][..]), (10, &[u64::MAX][..])]);
        assert_eq!(Diff::from_wire(&d.to_wire()).unwrap(), d);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn push_run_rejects_overlap() {
        let mut d = Diff::of_run(4, &[1, 2]);
        d.push_run(5, &[3]);
    }

    proptest! {
        #[test]
        fn prop_diff_apply_roundtrip(
            twin in proptest::collection::vec(0u64..4, 1..128),
            flips in proptest::collection::vec((0usize..128, 1u64..100), 0..40),
            gap in 0usize..4,
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            let d = Diff::create_from_words(&twin, &cur, gap);
            let mut back = twin.clone();
            d.apply_to_words(&mut back);
            prop_assert_eq!(back, cur);
        }

        #[test]
        fn prop_exact_diff_is_minimal(
            twin in proptest::collection::vec(0u64..4, 1..64),
            flips in proptest::collection::vec((0usize..64, 10u64..100), 0..20),
        ) {
            let mut cur = twin.clone();
            for (i, v) in flips {
                let i = i % cur.len();
                cur[i] = v;
            }
            let d = Diff::create_from_words(&twin, &cur, 0);
            let changed = twin.iter().zip(&cur).filter(|(a, b)| a != b).count();
            prop_assert_eq!(d.words(), changed, "exact diff carries only changed words");
        }

        #[test]
        fn prop_wire_roundtrip(starts in proptest::collection::vec((0u32..500, 1usize..8), 0..10)) {
            let mut next = 0u32;
            let mut d = Diff::default();
            for (gap, len) in starts {
                let start = next + gap;
                next = start + len as u32 + 1;
                let words: Vec<u64> = (0..len as u64).collect();
                d.push_run(start, &words);
            }
            prop_assert_eq!(Diff::from_wire(&d.to_wire()).unwrap(), d);
        }
    }
}
