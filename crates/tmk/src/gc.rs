//! Garbage-collection planning.
//!
//! GC is the paper's central simplification device: "this step removes
//! all these internal data structures, and leaves each memory page
//! either valid and up-to-date, or invalid but with its owner field
//! pointing to a node with a valid copy of the page" (§4.1). The master
//! coordinates: it queries per-page applied clocks from every process,
//! determines which copies are complete, directs minimal diff fetches to
//! complete at least one copy per page, chooses owners (avoiding
//! processes about to leave — which is how *leave* handling folds into
//! GC), and commits the new epoch.

use crate::msg::PageApplied;
use crate::page::Wn;
use crate::records::RecordStore;
use crate::types::{PageId, Vc};
use nowmp_net::Gpid;
use std::collections::{HashMap, HashSet};

/// All write notices per page, from the master's complete record set.
pub fn page_writes(records: &RecordStore) -> HashMap<PageId, Vec<Wn>> {
    let mut writes: HashMap<PageId, Vec<Wn>> = HashMap::new();
    for r in records.all() {
        let vcsum = r.vcsum();
        for &p in &r.pages {
            writes.entry(p).or_default().push(Wn {
                pid: r.pid,
                seq: r.seq,
                vcsum,
            });
        }
    }
    writes
}

/// Where pages held only by leavers should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaveSink<'a> {
    /// Paper's scheme (§4.2): the master fetches them and becomes owner.
    ViaMaster,
    /// Future-work ablation: scatter them round-robin over the
    /// survivors, relieving the master-link bottleneck the paper calls
    /// out in §7.
    Scatter(&'a [Gpid]),
}

/// The master's GC decision.
#[derive(Debug, Default)]
pub struct GcPlan {
    /// Owner per page after GC.
    pub dir: Vec<Gpid>,
    /// Pages each process must drop (incomplete copies).
    pub drops: HashMap<Gpid, Vec<PageId>>,
    /// Pages each process must complete before commit, with the write
    /// notices it may be missing.
    pub fetches: HashMap<Gpid, Vec<(PageId, Vec<Wn>)>>,
    /// Complete holders per page after the fetch phase (owners first).
    pub complete: Vec<Vec<Gpid>>,
}

fn applied_vc(applied: &[(crate::types::Pid, crate::types::Seq)]) -> Vc {
    let mut vc = Vc::default();
    for &(p, s) in applied {
        vc.set(p, s);
    }
    vc
}

/// Compute the GC plan.
///
/// * `total_pages` — allocated page count;
/// * `writes` — every write notice of the epoch (from [`page_writes`]);
/// * `reports` — `(process, held pages with applied clocks)` for every
///   team member, master included;
/// * `old_dir` — directory before this GC (shorter is fine; the default
///   owner is `master`);
/// * `avoid` — processes that must own nothing afterwards (leavers);
/// * `sink` — where avoid-only pages migrate.
pub fn compute_gc_plan(
    total_pages: usize,
    writes: &HashMap<PageId, Vec<Wn>>,
    reports: &[(Gpid, Vec<PageApplied>)],
    old_dir: &[Gpid],
    avoid: &HashSet<Gpid>,
    master: Gpid,
    sink: LeaveSink<'_>,
) -> GcPlan {
    // holders[page] = [(gpid, applied)]
    let mut holders: HashMap<PageId, Vec<(Gpid, Vc)>> = HashMap::new();
    for (gpid, pages) in reports {
        for pa in pages {
            holders
                .entry(pa.page)
                .or_default()
                .push((*gpid, applied_vc(&pa.applied)));
        }
    }

    let mut plan = GcPlan {
        dir: Vec::with_capacity(total_pages),
        complete: Vec::with_capacity(total_pages),
        ..GcPlan::default()
    };
    let mut scatter_rr = 0usize;
    let empty: Vec<Wn> = Vec::new();

    for p in 0..total_pages as PageId {
        let wns = writes.get(&p).unwrap_or(&empty);
        let hs = holders.get(&p).map(Vec::as_slice).unwrap_or(&[]);
        let is_complete = |vc: &Vc| wns.iter().all(|w| vc.get(w.pid) >= w.seq);

        let mut complete: Vec<Gpid> = hs
            .iter()
            .filter(|(_, vc)| is_complete(vc))
            .map(|(g, _)| *g)
            .collect();
        let old_owner = old_dir.get(p as usize).copied().unwrap_or(master);

        let eligible_owner = complete
            .iter()
            .copied()
            .filter(|g| !avoid.contains(g))
            .collect::<Vec<_>>();

        let owner = if eligible_owner.contains(&old_owner) {
            old_owner
        } else if let Some(&g) = eligible_owner.first() {
            // Deterministic: prefer the complete holder with the
            // largest applied knowledge, tie-break by gpid.
            eligible_owner
                .iter()
                .copied()
                .max_by_key(|g| {
                    let sum = hs
                        .iter()
                        .find(|(h, _)| h == g)
                        .map(|(_, vc)| vc.sum())
                        .unwrap_or(0);
                    (sum, u64::MAX - g.0 as u64)
                })
                .unwrap_or(g)
        } else {
            // No eligible complete holder: someone must fetch.
            let fetcher: Gpid = {
                let candidates: Vec<&(Gpid, Vc)> =
                    hs.iter().filter(|(g, _)| !avoid.contains(g)).collect();
                if let Some((g, _)) = candidates.iter().max_by_key(|(g, vc)| {
                    let coverage = wns.iter().filter(|w| vc.get(w.pid) >= w.seq).count();
                    (coverage, vc.sum(), u64::MAX - g.0 as u64)
                }) {
                    *g
                } else {
                    // Nobody eligible holds the page at all (it lives
                    // only on leavers, or nowhere): route per sink.
                    match sink {
                        LeaveSink::ViaMaster => master,
                        LeaveSink::Scatter(survivors) if !survivors.is_empty() => {
                            scatter_rr += 1;
                            survivors[(scatter_rr - 1) % survivors.len()]
                        }
                        LeaveSink::Scatter(_) => master,
                    }
                }
            };
            // If the page exists nowhere (never materialized), the
            // master materializes zeros on demand; no fetch needed.
            if hs.is_empty() && wns.is_empty() {
                plan.dir.push(master);
                plan.complete.push(vec![master]);
                continue;
            }
            let missing: Vec<Wn> = {
                let vc = hs
                    .iter()
                    .find(|(g, _)| *g == fetcher)
                    .map(|(_, vc)| vc.clone())
                    .unwrap_or_default();
                wns.iter()
                    .copied()
                    .filter(|w| w.seq > vc.get(w.pid))
                    .collect()
            };
            plan.fetches.entry(fetcher).or_default().push((p, missing));
            complete.push(fetcher);
            fetcher
        };

        // Drops: holders that are neither complete nor the fetcher.
        for (g, vc) in hs {
            if !is_complete(vc) && !complete.contains(g) {
                plan.drops.entry(*g).or_default().push(p);
            }
        }
        // Owner first in the complete list (useful to leave handling).
        let mut ordered = vec![owner];
        ordered.extend(complete.into_iter().filter(|g| *g != owner));
        plan.complete.push(ordered);
        plan.dir.push(owner);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Pid, Seq};

    fn wn(pid: Pid, seq: Seq) -> Wn {
        Wn {
            pid,
            seq,
            vcsum: seq as u64,
        }
    }

    fn report(page: PageId, applied: &[(Pid, Seq)]) -> PageApplied {
        PageApplied {
            page,
            applied: applied.to_vec(),
        }
    }

    const M: Gpid = Gpid(1); // master
    const A: Gpid = Gpid(2);
    const B: Gpid = Gpid(3);

    #[test]
    fn untouched_pages_go_to_master() {
        let plan = compute_gc_plan(
            3,
            &HashMap::new(),
            &[(M, vec![])],
            &[],
            &HashSet::new(),
            M,
            LeaveSink::ViaMaster,
        );
        assert_eq!(plan.dir, vec![M, M, M]);
        assert!(plan.fetches.is_empty());
        assert!(plan.drops.is_empty());
    }

    #[test]
    fn complete_holder_keeps_ownership() {
        let mut writes = HashMap::new();
        writes.insert(0, vec![wn(1, 2)]);
        let reports = vec![
            (M, vec![report(0, &[])]),       // master: stale
            (A, vec![report(0, &[(1, 2)])]), // A (pid 1) wrote it
        ];
        let plan = compute_gc_plan(
            1,
            &writes,
            &reports,
            &[A],
            &HashSet::new(),
            M,
            LeaveSink::ViaMaster,
        );
        assert_eq!(plan.dir, vec![A]);
        // Master's stale copy must drop.
        assert_eq!(plan.drops.get(&M).unwrap(), &vec![0]);
        assert!(plan.fetches.is_empty());
        assert_eq!(plan.complete[0][0], A);
    }

    #[test]
    fn no_complete_copy_triggers_fetch_at_best_holder() {
        // Two concurrent writers; each copy misses the other's diff.
        let mut writes = HashMap::new();
        writes.insert(0, vec![wn(1, 1), wn(2, 1)]);
        let reports = vec![
            (A, vec![report(0, &[(1, 1)])]),
            (B, vec![report(0, &[(2, 1)])]),
        ];
        let plan = compute_gc_plan(
            1,
            &writes,
            &reports,
            &[M],
            &HashSet::new(),
            M,
            LeaveSink::ViaMaster,
        );
        // One of them fetches the other's diff and becomes owner.
        assert_eq!(plan.fetches.len(), 1);
        let (fetcher, wants) = plan.fetches.iter().next().unwrap();
        assert_eq!(wants.len(), 1);
        assert_eq!(wants[0].1.len(), 1, "only the missing diff is fetched");
        assert_eq!(plan.dir[0], *fetcher);
        // The non-fetcher is incomplete and drops.
        let other = if *fetcher == A { B } else { A };
        assert_eq!(plan.drops.get(&other).unwrap(), &vec![0]);
    }

    #[test]
    fn leaver_only_pages_route_to_master() {
        let leaver = A;
        let mut writes = HashMap::new();
        writes.insert(0, vec![wn(1, 3)]);
        let reports = vec![(leaver, vec![report(0, &[(1, 3)])])];
        let avoid: HashSet<Gpid> = [leaver].into_iter().collect();
        let plan = compute_gc_plan(
            1,
            &writes,
            &reports,
            &[leaver],
            &avoid,
            M,
            LeaveSink::ViaMaster,
        );
        assert_eq!(plan.dir, vec![M], "master takes over the leaver's page");
        let wants = plan.fetches.get(&M).unwrap();
        assert_eq!(wants[0].0, 0);
        assert_eq!(wants[0].1.len(), 1, "master fetches the missing write");
    }

    #[test]
    fn leaver_pages_scatter_round_robin() {
        let leaver = Gpid(9);
        let avoid: HashSet<Gpid> = [leaver].into_iter().collect();
        let mut writes = HashMap::new();
        let mut reports_pages = vec![];
        for p in 0..4u32 {
            writes.insert(p, vec![wn(3, 1)]);
            reports_pages.push(report(p, &[(3, 1)]));
        }
        let reports = vec![(leaver, reports_pages)];
        let survivors = [M, A, B];
        let plan = compute_gc_plan(
            4,
            &writes,
            &reports,
            &[leaver, leaver, leaver, leaver],
            &avoid,
            M,
            LeaveSink::Scatter(&survivors),
        );
        // Pages spread across survivors instead of piling on the master.
        assert_eq!(plan.dir.len(), 4);
        let owners: HashSet<Gpid> = plan.dir.iter().copied().collect();
        assert!(owners.len() >= 3, "scatter spreads ownership: {owners:?}");
    }

    #[test]
    fn leaver_with_surviving_complete_copy_needs_no_fetch() {
        // Leaver owns the page but B also has a complete copy:
        // "exclusively owned by the leaving process" does not apply.
        let leaver = A;
        let mut writes = HashMap::new();
        writes.insert(0, vec![wn(1, 1)]);
        let reports = vec![
            (leaver, vec![report(0, &[(1, 1)])]),
            (B, vec![report(0, &[(1, 1)])]),
        ];
        let avoid: HashSet<Gpid> = [leaver].into_iter().collect();
        let plan = compute_gc_plan(
            1,
            &writes,
            &reports,
            &[leaver],
            &avoid,
            M,
            LeaveSink::ViaMaster,
        );
        assert_eq!(
            plan.dir,
            vec![B],
            "ownership moves by directory update only"
        );
        assert!(plan.fetches.is_empty(), "no data moves");
    }

    #[test]
    fn page_writes_collects_all_notices() {
        let mut store = RecordStore::new();
        let mut vc = Vc::new(2);
        vc.set(0, 1);
        store.insert(crate::records::Record {
            pid: 0,
            seq: 1,
            vc: vc.clone(),
            pages: vec![2, 3],
        });
        vc.set(1, 1);
        store.insert(crate::records::Record {
            pid: 1,
            seq: 1,
            vc,
            pages: vec![3],
        });
        let w = page_writes(&store);
        assert_eq!(w[&2].len(), 1);
        assert_eq!(w[&3].len(), 2);
    }

    #[test]
    fn deterministic_owner_choice() {
        // Same inputs must give the same plan (determinism matters for
        // reproducible experiments).
        let mut writes = HashMap::new();
        writes.insert(0, vec![wn(1, 1)]);
        let reports = vec![
            (A, vec![report(0, &[(1, 1)])]),
            (B, vec![report(0, &[(1, 1)])]),
            (M, vec![report(0, &[(1, 1)])]),
        ];
        let p1 = compute_gc_plan(
            1,
            &writes,
            &reports,
            &[],
            &HashSet::new(),
            M,
            LeaveSink::ViaMaster,
        );
        let p2 = compute_gc_plan(
            1,
            &writes,
            &reports,
            &[],
            &HashSet::new(),
            M,
            LeaveSink::ViaMaster,
        );
        assert_eq!(p1.dir, p2.dir);
    }
}
