//! Per-process protocol state and transitions (`ProcCore`).
//!
//! One `ProcCore` sits behind a `parking_lot::Mutex` shared by the
//! process's *application thread* (faults, interval management,
//! synchronization) and its *service thread* (serving pages, diffs,
//! records and lock requests at any time — TreadMarks' SIGIO handler).
//! All methods here are short, non-blocking state transitions; network
//! I/O happens outside the lock, in the fault driver ([`crate::ctx`])
//! and the orchestration layer ([`crate::system`]).
//!
//! ## Invariants
//!
//! * `vc[my_pid]` is the last *closed* interval; the open interval is
//!   `vc[my_pid] + 1`.
//! * A page's `applied` clock never exceeds the writes actually
//!   reflected in its `data`.
//! * Writes to exclusive (never-served) pages are untwinned and
//!   unrecorded, but every copy ever served includes them — so they are
//!   present in *all* copies, which keeps GC sound.
//! * Stored diffs are immutable once created; lazy mode materializes
//!   them on first demand (next write fault or first `DiffReq`).

use crate::config::DsmConfig;
use crate::diff::{Diff, DiffKey};
use crate::msg::PageApplied;
use crate::page::{PageBuf, PageState, Wn};
use crate::records::{Record, RecordStore};
use crate::shm::Registry;
use crate::stats::DsmStats;
use crate::table::PageTable;
use crate::types::{Epoch, PageId, Pid, Seq, Team, Vc};
use nowmp_net::Gpid;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Page id traced when the `NOWMP_TRACE_PAGE` env var is set (debugging aid).
fn trace_page() -> Option<u32> {
    static P: std::sync::OnceLock<Option<u32>> = std::sync::OnceLock::new();
    *P.get_or_init(|| {
        std::env::var("NOWMP_TRACE_PAGE")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

macro_rules! ptrace {
    ($page:expr, $($arg:tt)*) => {
        if trace_page() == Some(u32::MAX) || trace_page() == Some($page) {
            eprintln!($($arg)*);
        }
    };
}

/// What the fault driver must do to make a page accessible.
#[derive(Debug)]
pub enum AccessPlan {
    /// Usable now (cache this buffer).
    Ready {
        /// The page payload.
        buf: Arc<PageBuf>,
        /// Whether writes may go through the cached entry.
        writable: bool,
    },
    /// No local copy: fetch the full page from `target`.
    NeedFull {
        /// Process to ask first (last writer or directory owner).
        target: Gpid,
    },
    /// Stale local copy: fetch these diffs, grouped by creator.
    NeedDiffs {
        /// `(creator, wanted (page, seq) pairs)` — all for this page.
        groups: Vec<(Gpid, Vec<(PageId, Seq)>)>,
    },
}

/// What a release-phase prefetch should request, derived read-only
/// from last window's fault set by [`ProcCore::plan_prefetch`]:
/// full-page fetches plus diff requests batched per creator (one
/// `DiffReq` per creator covers every planned page).
#[derive(Debug, Default)]
pub struct PrefetchPlan {
    /// Pages with no local copy: `(page, holder to ask)`.
    pub fulls: Vec<(PageId, Gpid)>,
    /// Stale pages: per-creator `(page, seq)` wants, in page order.
    pub diffs: Vec<(Gpid, Vec<(PageId, Seq)>)>,
    /// Pages covered by this plan (budget accounting).
    pub pages: usize,
}

/// A queued lock waiter.
pub enum LockWaiter {
    /// Remote requester (reply through the transport).
    Remote(nowmp_net::Replier),
    /// Local application thread (woken through a channel).
    Local(crossbeam_channel::Sender<Option<Gpid>>),
}

/// Manager-side state of one lock.
#[derive(Default)]
pub struct LockMgr {
    held: bool,
    last: Option<Gpid>,
    queue: VecDeque<(Gpid, LockWaiter)>,
}

/// Outcome of a grant decision that the service loop must act on.
pub enum LockGrant {
    /// Reply `LockRep { prev }` to this remote waiter.
    Remote(nowmp_net::Replier, Option<Gpid>),
    /// Wake this local waiter with `prev`.
    Local(crossbeam_channel::Sender<Option<Gpid>>, Option<Gpid>),
}

/// The complete DSM state of one process.
pub struct ProcCore {
    /// Static configuration.
    pub cfg: DsmConfig,
    /// This process's immutable instance id.
    pub gpid: Gpid,
    /// Current team (epoch + members).
    pub team: Team,
    /// Our rank in `team`.
    pub my_pid: Pid,
    /// Knowledge vector clock.
    pub vc: Vc,
    /// Per-page metadata behind interleaved spin-lock shards. `Arc`ed
    /// so the service thread can reach it (for the shared-page serve
    /// fast path) without taking the core mutex. Lock order is core
    /// mutex → shard; see [`crate::table`] for the full discipline.
    pub pages: Arc<PageTable>,
    /// Every interval record known this epoch.
    pub records: RecordStore,
    /// Our own records not yet shipped to the master (drained at
    /// join/barrier arrivals).
    pub unsent: Vec<Record>,
    /// Diffs we created, by (page, seq).
    pub diffs: HashMap<DiffKey, Arc<Diff>>,
    /// Lazy mode: twins awaiting diff materialization (page → (seq, twin)).
    pub pending_twins: HashMap<PageId, (Seq, Vec<u64>)>,
    /// Bytes of stored diff/twin data (GC trigger).
    pub consistency_bytes: usize,
    /// Manager-side lock state for locks we manage.
    pub locks: HashMap<u32, LockMgr>,
    /// Shared event counters.
    pub stats: Arc<DsmStats>,
    /// Handle registry replica.
    pub registry: Registry,
    /// Default directory owner for untouched pages (the master).
    pub default_owner: Gpid,
    /// Pages faulted on since the last release point (insertion order,
    /// deduplicated). Only tracked when `cfg.dataplane.prefetch > 0`.
    pub fault_window: Vec<PageId>,
    /// The last few rotated fault windows, newest first. The prefetch
    /// candidate set is their union: a page's *invalidating* write
    /// notices can trail the fault by more than one release point
    /// (e.g. two alternating worksharing regions put a full epoch
    /// between a region's faults and the records that invalidate its
    /// pages again), so candidates must outlive one rotation.
    /// [`Self::plan_prefetch`] skips still-valid pages, so a stale
    /// candidate costs nothing.
    pub window_history: std::collections::VecDeque<Vec<PageId>>,
    /// How often each page's diffs have been served to peers — the
    /// "heat" ranking behind piggyback selection.
    pub diff_heat: HashMap<PageId, u32>,
}

impl ProcCore {
    /// Fresh state for a process joining (or founding) a system whose
    /// master is `default_owner`.
    pub fn new(cfg: DsmConfig, gpid: Gpid, stats: Arc<DsmStats>, default_owner: Gpid) -> Self {
        cfg.validate();
        ProcCore {
            cfg,
            gpid,
            team: Team::new(0, vec![gpid]),
            my_pid: 0,
            vc: Vc::new(1),
            pages: Arc::new(PageTable::new()),
            records: RecordStore::new(),
            unsent: Vec::new(),
            diffs: HashMap::new(),
            pending_twins: HashMap::new(),
            consistency_bytes: 0,
            locks: HashMap::new(),
            stats,
            registry: Registry::new(),
            default_owner,
            fault_window: Vec::new(),
            window_history: std::collections::VecDeque::new(),
            diff_heat: HashMap::new(),
        }
    }

    /// Current protocol epoch.
    pub fn epoch(&self) -> Epoch {
        self.team.epoch
    }

    /// The open interval's sequence number.
    pub fn open_seq(&self) -> Seq {
        self.vc.get(self.my_pid) + 1
    }

    /// Grow the page table to cover `n` pages.
    pub fn ensure_pages(&mut self, n: usize) {
        self.pages.ensure(n, self.default_owner);
    }

    fn slots_per_page(&self) -> usize {
        self.cfg.slots_per_page()
    }

    // ------------------------------------------------------------------
    // Fault handling (application thread)
    // ------------------------------------------------------------------

    /// Decide how to obtain access to `page`; performs the local-only
    /// transitions (twin creation, exclusive materialization) inline.
    /// Faults that need the network are noted in the per-release fault
    /// window when release-phase prefetch is configured.
    pub fn plan_access(&mut self, page: PageId, want_write: bool) -> AccessPlan {
        let plan = self.plan_access_inner(page, want_write);
        if self.cfg.dataplane.prefetch > 0
            && !matches!(plan, AccessPlan::Ready { .. })
            && !self.fault_window.contains(&page)
        {
            self.fault_window.push(page);
        }
        plan
    }

    fn plan_access_inner(&mut self, page: PageId, want_write: bool) -> AccessPlan {
        self.ensure_pages(page as usize + 1);
        let spp = self.slots_per_page();
        let me = self.gpid;
        let my_pid = self.my_pid;
        let open_seq = self.open_seq();
        let lazy = self.cfg.lazy_diffs;
        let page_size = self.cfg.page_size;

        // Lazy mode: a pending twin must be flushed before this page can
        // be re-twinned. Do it before borrowing meta mutably for the
        // main transition.
        if want_write && lazy {
            self.flush_pending_twin(page);
        }

        let mut meta = self.pages.guard(page);
        match meta.state {
            PageState::Write => {
                // A page we are writing can still have pending notices:
                // another process wrote different words of it under a
                // different synchronization domain (page-level false
                // sharing — the multiple-writer case). Merge its diffs
                // into our working copy before further access.
                let unapplied = meta.unapplied();
                if !unapplied.is_empty() {
                    let team = &self.team;
                    let mut groups: HashMap<Gpid, Vec<(PageId, Seq)>> = HashMap::new();
                    for wn in unapplied {
                        let g = team.gpid(wn.pid);
                        groups.entry(g).or_default().push((page, wn.seq));
                    }
                    return AccessPlan::NeedDiffs {
                        groups: groups.into_iter().collect(),
                    };
                }
                let buf = Arc::clone(meta.data.as_ref().expect("Write state implies data"));
                AccessPlan::Ready {
                    buf,
                    writable: true,
                }
            }
            PageState::Read => {
                if !want_write {
                    let buf = Arc::clone(meta.data.as_ref().expect("Read state implies data"));
                    return AccessPlan::Ready {
                        buf,
                        writable: false,
                    };
                }
                // Write fault on a valid page: twin unless exclusive.
                DsmStats::bump(&self.stats.write_faults);
                let data = Arc::clone(meta.data.as_ref().expect("Read state implies data"));
                if meta.shared {
                    meta.twin = Some(data.snapshot());
                    DsmStats::bump(&self.stats.twins_created);
                    if lazy {
                        self.consistency_bytes += page_size;
                    }
                }
                meta.state = PageState::Write;
                // Interval bookkeeping rides the shard lock the fault
                // already holds — no core-level dirty list.
                meta.mark_dirty();
                // NOTE: `applied[my_pid]` is NOT raised here. Open-interval
                // writes are only attributed once the interval closes and
                // becomes a record; raising early would let an unrecorded
                // (exclusive) write shadow a later recorded interval with
                // the same sequence number.
                let _ = (my_pid, open_seq);
                AccessPlan::Ready {
                    buf: data,
                    writable: true,
                }
            }
            PageState::Invalid => {
                if meta.data.is_some() {
                    // Stale copy: need diffs.
                    let unapplied = meta.unapplied();
                    if unapplied.is_empty() {
                        // Nothing pending after all — promote.
                        meta.state = PageState::Read;
                        drop(meta);
                        return self.plan_access(page, want_write);
                    }
                    let team = &self.team;
                    let mut groups: HashMap<Gpid, Vec<(PageId, Seq)>> = HashMap::new();
                    for wn in unapplied {
                        let g = team.gpid(wn.pid);
                        groups.entry(g).or_default().push((page, wn.seq));
                    }
                    AccessPlan::NeedDiffs {
                        groups: groups.into_iter().collect(),
                    }
                } else if meta.owner == me && meta.pending.is_empty() {
                    // We are the directory owner of a page nobody has
                    // materialized yet — and nobody has written it
                    // either (no notices): conjure the zero page (the
                    // backing store of a fresh allocation). With
                    // notices present, the writer's copy is the truth
                    // and we must fetch like anyone else.
                    let buf = Arc::new(PageBuf::new(spp));
                    meta.data = Some(Arc::clone(&buf));
                    meta.state = PageState::Read;
                    // Exclusive until first served — but if we already
                    // lent zeros to someone, copies exist out there and
                    // our writes must be twinned and recorded.
                    meta.shared = meta.zero_lent;
                    drop(meta);
                    self.plan_access(page, want_write)
                } else {
                    // No copy: full fetch from the best-known holder.
                    let target = meta
                        .pending
                        .iter()
                        .max_by_key(|w| w.vcsum)
                        .map(|w| self.team.gpid(w.pid))
                        .unwrap_or(meta.owner);
                    AccessPlan::NeedFull { target }
                }
            }
        }
    }

    /// Install a fetched full page.
    pub fn install_page(
        &mut self,
        page: PageId,
        applied: &[(Pid, Seq)],
        words: Vec<u64>,
        from: Gpid,
    ) {
        self.ensure_pages(page as usize + 1);
        assert_eq!(
            words.len(),
            self.cfg.slots_per_page(),
            "page payload size mismatch"
        );
        DsmStats::bump(&self.stats.pages_fetched);
        ptrace!(
            page,
            "[{:?}] install_page {} from {:?} applied={:?}",
            self.gpid,
            page,
            from,
            applied
        );
        let mut meta = self.pages.guard(page);
        meta.data = Some(Arc::new(PageBuf::from_words(&words)));
        let mut vc = Vc::default();
        for &(p, s) in applied {
            vc.set(p, s);
        }
        meta.applied = vc;
        meta.owner = from;
        meta.shared = true; // another copy (the server's) exists
        meta.prune_pending();
        meta.state = if meta.unapplied().is_empty() {
            PageState::Read
        } else {
            PageState::Invalid
        };
    }

    /// Apply fetched diffs (already collected from all creators) to a
    /// stale page, in causal (vcsum) order.
    pub fn apply_diffs(&mut self, page: PageId, mut batch: Vec<(Pid, Seq, Diff)>) {
        self.ensure_pages(page as usize + 1);
        // Attach vcsum sort keys from the pending write notices.
        let mut meta = self.pages.guard(page);
        let keyed: HashMap<(Pid, Seq), u64> = meta
            .pending
            .iter()
            .map(|w| ((w.pid, w.seq), w.vcsum))
            .collect();
        batch.sort_by_key(|(p, s, _)| keyed.get(&(*p, *s)).copied().unwrap_or(u64::MAX));
        let data = Arc::clone(
            meta.data
                .as_ref()
                .expect("apply_diffs requires a stale local copy"),
        );
        let mut words = 0u64;
        for (pid, seq, diff) in &batch {
            ptrace!(
                page,
                "[{:?}] apply_diff {} from pid {} seq {} ({} words)",
                self.gpid,
                page,
                pid,
                seq,
                diff.words()
            );
            diff.apply(&data);
            // Multiple-writer invariant: our eventual close-diff must
            // contain *only our own* modifications, or it would carry
            // stale copies of other writers' words and clobber their
            // concurrent updates at third parties. Folding received
            // diffs into the twin keeps twin == "everyone else's state".
            if let Some(twin) = &mut meta.twin {
                diff.apply_to_words(twin);
            }
            words += diff.words() as u64;
            meta.applied.raise(*pid, *seq);
        }
        DsmStats::add(&self.stats.diffs_fetched, batch.len() as u64);
        DsmStats::add(&self.stats.diff_words, words);
        meta.prune_pending();
        // Promote stale copies to Read; a page we are concurrently
        // writing (multiple-writer merge) stays Write.
        if meta.unapplied().is_empty() && meta.state == PageState::Invalid {
            meta.state = PageState::Read;
        }
    }

    /// How many rotated fault windows stay live as prefetch candidates.
    /// A page's invalidating notices arrive a full *iteration* after
    /// the fault that recorded it (the writer region runs in between),
    /// and one iteration can rotate the window several times — e.g.
    /// NBF's fork → reduce-barrier ×2 → fork cadence is 4 rotations, so
    /// a candidate must survive at least that many to still be in the
    /// union when its page finally turns `Invalid`. Stale candidates
    /// cost nothing ([`Self::plan_prefetch`] skips valid pages), so err
    /// on the deep side; a page that truly stopped faulting ages out.
    const WINDOW_HISTORY: usize = 6;

    /// Record a fault for the prefetch window directly — the path for
    /// faults satisfied by a prefetch, which never reach
    /// [`Self::plan_access`] but are demand the next window must still
    /// predict.
    pub fn note_fault(&mut self, page: PageId) {
        if self.cfg.dataplane.prefetch > 0 && !self.fault_window.contains(&page) {
            self.fault_window.push(page);
        }
    }

    /// Rotate the per-release fault window and return the prefetch
    /// candidate set: the union of the last few windows, newest first,
    /// deduplicated. See `window_history` for why candidates must
    /// survive more than one rotation.
    pub fn rotate_fault_window(&mut self) -> Vec<PageId> {
        let window = std::mem::take(&mut self.fault_window);
        self.window_history.push_front(window);
        self.window_history.truncate(Self::WINDOW_HISTORY);
        let mut union: Vec<PageId> = Vec::new();
        for w in &self.window_history {
            for &p in w {
                if !union.contains(&p) {
                    union.push(p);
                }
            }
        }
        union
    }

    /// Derive, without mutating any page state, what a release-phase
    /// prefetch over `candidates` should request: at most `budget`
    /// pages, preferring the order they faulted last window. Pages
    /// already valid, pages we would serve ourselves, and pages whose
    /// fetch would chase a redirect from ourselves are skipped — the
    /// plan only covers requests a demand fault would also have made.
    pub fn plan_prefetch(&self, candidates: &[PageId], budget: usize) -> PrefetchPlan {
        let mut plan = PrefetchPlan::default();
        for &page in candidates {
            if plan.pages >= budget {
                break;
            }
            let Some(meta) = self.pages.get(page) else {
                continue;
            };
            if meta.state != PageState::Invalid {
                continue;
            }
            if meta.data.is_some() {
                let unapplied = meta.unapplied();
                if unapplied.is_empty()
                    || unapplied
                        .iter()
                        .any(|wn| self.team.gpid(wn.pid) == self.gpid)
                {
                    continue;
                }
                for wn in unapplied {
                    let creator = self.team.gpid(wn.pid);
                    match plan.diffs.iter_mut().find(|(g, _)| *g == creator) {
                        Some((_, wants)) => wants.push((page, wn.seq)),
                        None => plan.diffs.push((creator, vec![(page, wn.seq)])),
                    }
                }
                plan.pages += 1;
            } else if !(meta.owner == self.gpid && meta.pending.is_empty()) {
                let target = meta
                    .pending
                    .iter()
                    .max_by_key(|w| w.vcsum)
                    .map(|w| self.team.gpid(w.pid))
                    .unwrap_or(meta.owner);
                if target != self.gpid {
                    plan.fulls.push((page, target));
                    plan.pages += 1;
                }
            }
        }
        plan
    }

    /// Select up to `budget` wire bytes of our own hottest diffs to
    /// piggyback on an outgoing `Fork`/`BarrierRelease`. Per page only
    /// the newest diff rides (receivers lacking more than one of our
    /// intervals fall back to demand fetch — see
    /// [`Self::apply_piggyback`]); pages rank by diff-serve heat, ties
    /// by page id, so the selection is deterministic.
    pub fn piggyback_diffs(&self, budget: usize) -> Vec<(PageId, Seq, Diff)> {
        if budget == 0 || self.diffs.is_empty() {
            return Vec::new();
        }
        let mut newest: HashMap<PageId, Seq> = HashMap::new();
        for k in self.diffs.keys() {
            let e = newest.entry(k.page).or_insert(k.seq);
            if k.seq > *e {
                *e = k.seq;
            }
        }
        let mut ranked: Vec<(PageId, Seq)> = newest.into_iter().collect();
        ranked.sort_by_key(|(page, _)| {
            (
                std::cmp::Reverse(self.diff_heat.get(page).copied().unwrap_or(0)),
                *page,
            )
        });
        let mut out = Vec::new();
        let mut bytes = 0usize;
        for (page, seq) in ranked {
            let d = &self.diffs[&DiffKey { page, seq }];
            let wb = d.wire_bytes();
            if bytes + wb > budget {
                continue; // a smaller diff may still fit
            }
            bytes += wb;
            out.push((page, seq, d.as_ref().clone()));
        }
        out
    }

    /// Apply diffs piggybacked on a received `Fork`/`BarrierRelease`
    /// (created by team rank `from` — the collective's root). Guarded:
    /// a page's entries apply only when we hold a stale copy whose
    /// *entire* unapplied-notice set is covered by the offer — partial
    /// application would replay the sender's intervals out of causal
    /// order once the demand path fetched the rest. Unusable entries
    /// are dropped (the demand path still works). Apply the message's
    /// records *before* calling this. Returns the pages applied.
    pub fn apply_piggyback(&mut self, from: Pid, entries: &[(PageId, Seq, Diff)]) -> usize {
        if entries.is_empty() {
            return 0;
        }
        let mut by_page: Vec<(PageId, Vec<(Seq, &Diff)>)> = Vec::new();
        for (page, seq, d) in entries {
            match by_page.iter_mut().find(|(p, _)| p == page) {
                Some((_, offers)) => offers.push((*seq, d)),
                None => by_page.push((*page, vec![(*seq, d)])),
            }
        }
        let mut applied_pages = 0;
        for (page, offers) in by_page {
            let batch: Vec<(Pid, Seq, Diff)> = {
                let Some(meta) = self.pages.get(page) else {
                    continue;
                };
                if meta.data.is_none() {
                    continue;
                }
                let unapplied = meta.unapplied();
                if unapplied.is_empty()
                    || !unapplied
                        .iter()
                        .all(|wn| wn.pid == from && offers.iter().any(|(s, _)| *s == wn.seq))
                {
                    continue;
                }
                unapplied
                    .iter()
                    .map(|wn| {
                        let d = offers
                            .iter()
                            .find(|(s, _)| *s == wn.seq)
                            .expect("coverage checked above");
                        (from, wn.seq, d.1.clone())
                    })
                    .collect()
            };
            self.apply_diffs(page, batch);
            applied_pages += 1;
        }
        applied_pages
    }

    // ------------------------------------------------------------------
    // Interval management
    // ------------------------------------------------------------------

    /// Lazy mode: turn the pending twin of `page` (if any) into a diff.
    /// Correct because the page has been read-only since its interval
    /// closed, so `data` still equals the close-time contents.
    pub fn flush_pending_twin(&mut self, page: PageId) {
        if !self.cfg.lazy_diffs {
            return;
        }
        if let Some((seq, twin)) = self.pending_twins.remove(&page) {
            let diff = {
                let meta = self.pages.guard(page);
                let data = meta.data.as_ref().expect("pending twin implies data");
                Diff::create(&twin, data, 0)
            };
            self.consistency_bytes = self.consistency_bytes.saturating_sub(self.cfg.page_size);
            self.consistency_bytes += diff.wire_bytes();
            self.diffs.insert(DiffKey { page, seq }, Arc::new(diff));
        }
    }

    /// Close the open interval: turn twins into diffs (or pending
    /// twins in lazy mode), emit the interval record, advance the
    /// clock. Returns the record if any page was written.
    pub fn close_interval(&mut self) -> Option<Record> {
        if self.pages.dirty_count() == 0 {
            return None;
        }
        let seq = self.open_seq();
        let me = self.my_pid;
        let lazy = self.cfg.lazy_diffs;
        // The write set lives in the page-table shards (enrolled under
        // the shard lock at fault time); take it back in one sweep.
        let dirty = self.pages.drain_dirty();
        let mut rec_pages = Vec::with_capacity(dirty.len());
        for page in dirty {
            let mut meta = self.pages.guard(page);
            meta.dirty = false;
            // Write notices may have arrived *during* the interval (the
            // multiple-writer case keeps the page writable); a closing
            // page with unapplied notices is a stale copy, not a valid
            // one.
            meta.state = if meta.unapplied().is_empty() {
                PageState::Read
            } else {
                PageState::Invalid
            };
            match meta.twin.take() {
                Some(twin) => {
                    if lazy {
                        self.pending_twins.insert(page, (seq, twin));
                        // `applied` is raised only for *recorded* writes;
                        // unrecorded ones must never shadow a later record
                        // reusing the same sequence number.
                        meta.applied.raise(me, seq);
                        rec_pages.push(page);
                    } else {
                        let data = meta.data.as_ref().expect("twinned page has data");
                        let diff = Diff::create(&twin, data, 0);
                        ptrace!(
                            page,
                            "[{:?}] close_interval page {} seq {} diff_words={}",
                            self.gpid,
                            page,
                            seq,
                            diff.words()
                        );
                        if diff.is_empty() {
                            continue; // spurious write fault, nothing changed
                        }
                        self.consistency_bytes += diff.wire_bytes();
                        self.diffs.insert(DiffKey { page, seq }, Arc::new(diff));
                        meta.applied.raise(me, seq);
                        rec_pages.push(page);
                    }
                }
                None => {
                    // Exclusive page: writes propagate with the full copy
                    // on first request; no write notice (and no `applied`
                    // attribution — the interval emits no record for it).
                    debug_assert!(!meta.shared, "twinless dirty page must be exclusive");
                }
            }
        }
        if rec_pages.is_empty() {
            return None;
        }
        // Canonical ascending order: worksharing loops dirty contiguous
        // page blocks, so sorted notices interval-encode to a handful of
        // runs on the wire (see `records::enc_pages`).
        rec_pages.sort_unstable();
        self.vc.set(me, seq);
        let rec = Record {
            pid: me,
            seq,
            vc: self.vc.clone(),
            pages: rec_pages,
        };
        self.records.insert(rec.clone());
        self.unsent.push(rec.clone());
        Some(rec)
    }

    /// Integrate received records: store, merge clocks, post write
    /// notices, invalidate affected pages.
    pub fn apply_records(&mut self, recs: &[Record]) {
        for rec in recs {
            if !self.records.insert(rec.clone()) {
                continue;
            }
            self.vc.merge(&rec.vc);
            self.vc.raise(rec.pid, rec.seq);
            let vcsum = rec.vcsum();
            for &page in &rec.pages {
                self.ensure_pages(page as usize + 1);
                let mut meta = self.pages.guard(page);
                let before = meta.pending.len();
                meta.push_wn(Wn {
                    pid: rec.pid,
                    seq: rec.seq,
                    vcsum,
                });
                if meta.pending.len() > before && meta.state != PageState::Write {
                    // Invalidate; the copy (if any) becomes stale. A page
                    // we are currently writing stays writable — the
                    // multiple-writer protocol merges via diffs.
                    if meta.state == PageState::Read {
                        meta.state = PageState::Invalid;
                    }
                }
            }
        }
    }

    /// Drain our unsent records (join/barrier arrival payload).
    pub fn drain_unsent(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.unsent)
    }

    // ------------------------------------------------------------------
    // Serving (service thread)
    // ------------------------------------------------------------------

    /// Serve a full-page request.
    pub fn serve_page(&mut self, page: PageId) -> crate::msg::Msg {
        self.ensure_pages(page as usize + 1);
        let open_seq = self.open_seq();
        let me_pid = self.my_pid;
        let mut meta = self.pages.guard(page);
        ptrace!(
            page,
            "[{:?}] serve_page {} state={:?} applied={:?}",
            self.gpid,
            page,
            meta.state,
            meta.applied
        );
        match meta.data.clone() {
            None => {
                if meta.owner == self.gpid {
                    // Directory owner of a never-materialized page: the
                    // backing store is all-zeros. Serve zeros *without*
                    // keeping a copy — holding one would leave us a
                    // permanently stale replica that later drags whole
                    // diff chains (a real mmap-based DSM never maps a
                    // page it does not touch). Safe because an
                    // owner-without-data implies no GC'd content exists;
                    // any this-epoch writes live in the writers' diffs,
                    // which the requester fetches via its write notices.
                    meta.zero_lent = true;
                    crate::msg::Msg::PageRep {
                        applied: vec![],
                        words: vec![0; self.cfg.slots_per_page()],
                        redirect: None,
                    }
                } else {
                    crate::msg::Msg::PageRep {
                        applied: vec![],
                        words: vec![],
                        redirect: Some(meta.owner),
                    }
                }
            }
            Some(data) => {
                if !meta.shared {
                    // Exclusive page becoming shared. If it is dirty in
                    // the open interval with no twin, the served snapshot
                    // becomes the twin so post-snapshot writes diff.
                    meta.shared = true;
                    if meta.state == PageState::Write && meta.twin.is_none() {
                        let snap = data.snapshot();
                        meta.twin = Some(snap.clone());
                        DsmStats::bump(&self.stats.twins_created);
                        meta.mark_dirty();
                        // `applied` holds closed knowledge only; the open
                        // interval's diff will carry post-snapshot writes.
                        debug_assert!(meta.applied.get(me_pid) < open_seq);
                        return crate::msg::Msg::PageRep {
                            applied: meta.applied.iter_nonzero().collect(),
                            words: snap,
                            redirect: None,
                        };
                    }
                }
                debug_assert!(
                    meta.state != PageState::Write || meta.applied.get(me_pid) < open_seq,
                    "open-interval writes must not be attributed before close"
                );
                crate::msg::Msg::PageRep {
                    applied: meta.applied.iter_nonzero().collect(),
                    words: data.snapshot(),
                    redirect: None,
                }
            }
        }
    }

    /// Serve a diff request for diffs we created.
    pub fn serve_diffs(&mut self, wants: &[(PageId, Seq)]) -> crate::msg::Msg {
        let mut out = Vec::with_capacity(wants.len());
        for &(page, seq) in wants {
            *self.diff_heat.entry(page).or_insert(0) += 1;
            let key = DiffKey { page, seq };
            if !self.diffs.contains_key(&key) {
                // Lazy mode: materialize on demand.
                if self
                    .pending_twins
                    .get(&page)
                    .map(|(s, _)| *s == seq)
                    .unwrap_or(false)
                {
                    self.flush_pending_twin(page);
                }
            }
            match self.diffs.get(&key) {
                Some(d) => out.push((page, seq, d.as_ref().clone())),
                None => panic!(
                    "{:?} asked for diff (page {page}, seq {seq}) we don't have",
                    self.gpid
                ),
            }
        }
        crate::msg::Msg::DiffRep { diffs: out }
    }

    /// Serve a records request (lock-transfer consistency data).
    pub fn serve_records(&self, vc: &Vc) -> crate::msg::Msg {
        crate::msg::Msg::RecordsRep {
            records: self.records.newer_than(vc),
        }
    }

    // ------------------------------------------------------------------
    // Lock management (manager side)
    // ------------------------------------------------------------------

    /// Handle an acquire request at the manager. Returns an immediate
    /// grant action, or queues the waiter.
    pub fn lock_acquire(
        &mut self,
        lock: u32,
        requester: Gpid,
        waiter: LockWaiter,
    ) -> Option<LockGrant> {
        let mgr = self.locks.entry(lock).or_default();
        if mgr.held {
            mgr.queue.push_back((requester, waiter));
            None
        } else {
            mgr.held = true;
            let prev = mgr.last;
            mgr.last = Some(requester);
            Some(match waiter {
                LockWaiter::Remote(r) => LockGrant::Remote(r, prev),
                LockWaiter::Local(s) => LockGrant::Local(s, prev),
            })
        }
    }

    /// Queued waiters on a lock we manage (0 for unknown locks).
    /// Diagnostics and condition waits: "the contending request has
    /// arrived at the manager" is `lock_waiters(l) == 1`.
    pub fn lock_waiters(&self, lock: u32) -> usize {
        self.locks.get(&lock).map_or(0, |m| m.queue.len())
    }

    /// Handle a release at the manager; may grant to the next waiter.
    pub fn lock_release(&mut self, lock: u32) -> Option<LockGrant> {
        let mgr = self.locks.entry(lock).or_default();
        mgr.held = false;
        if let Some((requester, waiter)) = mgr.queue.pop_front() {
            mgr.held = true;
            let prev = mgr.last;
            mgr.last = Some(requester);
            Some(match waiter {
                LockWaiter::Remote(r) => LockGrant::Remote(r, prev),
                LockWaiter::Local(s) => LockGrant::Local(s, prev),
            })
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    /// Report per-page applied clocks for every page we hold (GC step 1).
    pub fn gc_report(&self) -> Vec<PageApplied> {
        let mut out = Vec::new();
        self.pages.for_each(|page, m| {
            if m.data.is_some() {
                out.push(PageApplied {
                    page,
                    applied: m.applied.iter_nonzero().collect(),
                });
            }
        });
        out
    }

    /// Install GC fetch instructions: post the missing write notices so
    /// the ordinary fault path can complete the page.
    pub fn gc_prepare_fetch(&mut self, wants: &[(PageId, Vec<Wn>)]) {
        for (page, wns) in wants {
            self.ensure_pages(*page as usize + 1);
            let mut meta = self.pages.guard(*page);
            for wn in wns {
                meta.push_wn(*wn);
            }
            if !meta.unapplied().is_empty() && meta.state != PageState::Write {
                meta.state = PageState::Invalid;
            }
        }
    }

    /// Commit a GC / adaptation: drop incomplete copies, wipe all
    /// consistency metadata, install the new epoch, team and directory.
    pub fn gc_commit(
        &mut self,
        new_epoch: Epoch,
        team: Team,
        my_pid: Pid,
        dir: &[Gpid],
        drop_pages: &[PageId],
    ) {
        assert_eq!(team.epoch, new_epoch, "team/epoch mismatch in commit");
        // The rewrite below passes through inconsistent intermediate
        // states; hold the service fast path down until it completes
        // (the guard borrows a local clone so `&mut self` stays free).
        let table = Arc::clone(&self.pages);
        let _frozen = table.freeze();
        self.ensure_pages(dir.len());
        for &p in drop_pages {
            self.pages.guard(p).data = None;
        }
        let nprocs = team.members.len();
        self.pages.for_each(|i, meta| {
            crate::table::reset_meta(meta, nprocs, dir.get(i as usize).copied());
        });
        self.pages.set_epoch(new_epoch);
        self.diffs.clear();
        self.pending_twins.clear();
        self.consistency_bytes = 0;
        self.records.clear();
        self.unsent.clear();
        // Shard dirty lists too — `reset_meta` above already dropped
        // the per-page flags.
        let _ = self.pages.drain_dirty();
        self.locks.clear();
        self.vc = Vc::new(team.members.len());
        self.team = team;
        self.my_pid = my_pid;
        // Fault-window candidates reference per-epoch protocol state
        // (pending notices, creators by pid) that the commit just
        // wiped; the heat ranking only orders pages, so it survives.
        self.fault_window.clear();
        self.window_history.clear();
        DsmStats::bump(&self.stats.gcs);
    }

    /// Does stored consistency data exceed the GC threshold?
    pub fn gc_due(&self) -> bool {
        self.consistency_bytes > self.cfg.gc_diff_threshold
    }

    // ------------------------------------------------------------------
    // Checkpoint support
    // ------------------------------------------------------------------

    /// Snapshot every locally-valid page (master-side checkpoint after
    /// it collected all pages).
    pub fn export_pages(&self) -> Vec<(PageId, Vec<u64>)> {
        let mut out = Vec::new();
        self.pages.for_each(|page, m| {
            if let Some(d) = &m.data {
                out.push((page, d.snapshot()));
            }
        });
        out
    }

    /// Import pages wholesale (recovery: the master owns everything).
    pub fn import_pages(&mut self, pages: &[(PageId, Vec<u64>)]) {
        for (p, words) in pages {
            self.ensure_pages(*p as usize + 1);
            let mut meta = self.pages.guard(*p);
            meta.data = Some(Arc::new(PageBuf::from_words(words)));
            meta.state = PageState::Read;
            meta.applied = Vc::new(self.team.members.len());
            meta.owner = self.gpid;
            meta.shared = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Msg;

    fn core() -> ProcCore {
        let cfg = DsmConfig {
            page_size: 64,
            ..DsmConfig::test_small()
        }; // 8 slots/page
        ProcCore::new(cfg, Gpid(1), DsmStats::new_shared(), Gpid(1))
    }

    fn two_proc_team(c: &mut ProcCore, my_pid: Pid) {
        c.team = Team::new(0, vec![Gpid(1), Gpid(2)]);
        c.my_pid = my_pid;
        c.vc = Vc::new(2);
    }

    #[test]
    fn owner_materializes_zero_page() {
        let mut c = core();
        match c.plan_access(0, false) {
            AccessPlan::Ready { buf, writable } => {
                assert!(!writable);
                assert_eq!(buf.load(0), 0);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        assert_eq!(c.pages.guard(0).state, PageState::Read);
        assert!(!c.pages.guard(0).shared, "untouched page stays exclusive");
    }

    #[test]
    fn exclusive_write_skips_twin() {
        let mut c = core();
        let AccessPlan::Ready { buf, writable } = c.plan_access(0, true) else {
            panic!("expected Ready");
        };
        assert!(writable);
        buf.store(0, 7);
        assert!(
            c.pages.guard(0).twin.is_none(),
            "exclusive pages never twin"
        );
        assert!(c.pages.guard(0).dirty);
        // Closing the interval emits no record for exclusive pages.
        assert!(c.close_interval().is_none());
    }

    #[test]
    fn shared_write_twins_and_diffs() {
        let mut c = core();
        two_proc_team(&mut c, 0);
        // Materialize, then pretend proc 2 fetched it.
        let _ = c.plan_access(0, false);
        let rep = c.serve_page(0);
        assert!(matches!(rep, Msg::PageRep { redirect: None, .. }));
        assert!(c.pages.guard(0).shared);
        // Now a write must twin.
        let AccessPlan::Ready { buf, .. } = c.plan_access(0, true) else {
            panic!()
        };
        buf.store(3, 99);
        assert!(c.pages.guard(0).twin.is_some());
        let rec = c
            .close_interval()
            .expect("dirty shared page yields a record");
        assert_eq!(rec.pid, 0);
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.pages, vec![0]);
        assert_eq!(c.vc.get(0), 1);
        // The diff exists and carries the one changed word.
        let d = c.diffs.get(&DiffKey { page: 0, seq: 1 }).unwrap();
        assert_eq!(d.words(), 1);
    }

    #[test]
    fn serve_exclusive_dirty_page_installs_twin() {
        let mut c = core();
        let AccessPlan::Ready { buf, .. } = c.plan_access(0, true) else {
            panic!()
        };
        buf.store(1, 5);
        // Service thread serves the page mid-interval.
        let rep = c.serve_page(0);
        let Msg::PageRep {
            words,
            applied,
            redirect,
        } = rep
        else {
            panic!()
        };
        assert!(redirect.is_none());
        assert_eq!(words[1], 5);
        assert!(applied.is_empty(), "no closed intervals yet");
        assert!(c.pages.guard(0).twin.is_some(), "snapshot became the twin");
        assert!(c.pages.guard(0).shared);
        // Post-snapshot writes land in the eventual diff.
        buf.store(2, 6);
        let rec = c.close_interval().unwrap();
        assert_eq!(rec.pages, vec![0]);
        let d = c.diffs.get(&DiffKey { page: 0, seq: 1 }).unwrap();
        assert_eq!(d.words(), 1, "only the post-snapshot write diffs");
    }

    #[test]
    fn empty_diff_suppressed() {
        let mut c = core();
        two_proc_team(&mut c, 0);
        let _ = c.plan_access(0, false);
        let _ = c.serve_page(0); // shared now
        let AccessPlan::Ready { .. } = c.plan_access(0, true) else {
            panic!()
        };
        // No write actually performed.
        assert!(
            c.close_interval().is_none(),
            "no record for an unchanged page"
        );
        assert!(c.diffs.is_empty());
    }

    #[test]
    fn apply_records_invalidates() {
        let mut c = core();
        two_proc_team(&mut c, 0);
        let _ = c.plan_access(0, false);
        c.pages.guard(0).shared = true;
        let mut vc = Vc::new(2);
        vc.set(1, 1);
        let rec = Record {
            pid: 1,
            seq: 1,
            vc,
            pages: vec![0],
        };
        c.apply_records(&[rec]);
        assert_eq!(c.pages.guard(0).state, PageState::Invalid);
        assert!(
            c.pages.guard(0).data.is_some(),
            "stale copy kept for diffing"
        );
        assert_eq!(c.vc.get(1), 1);
        // Planning access now asks for diffs from gpid 2.
        match c.plan_access(0, false) {
            AccessPlan::NeedDiffs { groups } => {
                assert_eq!(groups.len(), 1);
                assert_eq!(groups[0].0, Gpid(2));
                assert_eq!(groups[0].1, vec![(0, 1)]);
            }
            other => panic!("expected NeedDiffs, got {other:?}"),
        }
    }

    #[test]
    fn apply_diffs_repairs_stale_copy() {
        let mut c = core();
        two_proc_team(&mut c, 0);
        let _ = c.plan_access(0, false);
        c.pages.guard(0).shared = true;
        let mut vc = Vc::new(2);
        vc.set(1, 1);
        c.apply_records(&[Record {
            pid: 1,
            seq: 1,
            vc,
            pages: vec![0],
        }]);
        let diff = Diff::create_from_words(&[0; 8], &[0, 42, 0, 0, 0, 0, 0, 0], 0);
        c.apply_diffs(0, vec![(1, 1, diff)]);
        assert_eq!(c.pages.guard(0).state, PageState::Read);
        assert_eq!(c.pages.guard(0).data.as_ref().unwrap().load(1), 42);
        assert_eq!(c.pages.guard(0).applied.get(1), 1);
        assert!(c.pages.guard(0).pending.is_empty());
    }

    #[test]
    fn install_page_with_remaining_diffs_stays_invalid() {
        let mut c = core();
        two_proc_team(&mut c, 0);
        // Learn of two writes by proc 1 before having any copy.
        let mut vc1 = Vc::new(2);
        vc1.set(1, 1);
        let mut vc2 = Vc::new(2);
        vc2.set(1, 2);
        c.apply_records(&[
            Record {
                pid: 1,
                seq: 1,
                vc: vc1,
                pages: vec![3],
            },
            Record {
                pid: 1,
                seq: 2,
                vc: vc2,
                pages: vec![3],
            },
        ]);
        // Fetch a copy that only includes seq 1.
        c.install_page(3, &[(1, 1)], vec![0; 8], Gpid(2));
        assert_eq!(
            c.pages.guard(3).state,
            PageState::Invalid,
            "seq 2 still missing"
        );
        match c.plan_access(3, false) {
            AccessPlan::NeedDiffs { groups } => {
                assert_eq!(groups[0].1, vec![(3, 2)]);
            }
            other => panic!("expected NeedDiffs, got {other:?}"),
        }
    }

    #[test]
    fn full_fetch_targets_last_writer() {
        let mut c = core();
        two_proc_team(&mut c, 1); // we are pid 1; gpid(pid 0) == Gpid(1)
        c.my_pid = 1;
        c.gpid = Gpid(2);
        let mut vc = Vc::new(2);
        vc.set(0, 3);
        c.apply_records(&[Record {
            pid: 0,
            seq: 3,
            vc,
            pages: vec![5],
        }]);
        match c.plan_access(5, false) {
            AccessPlan::NeedFull { target } => assert_eq!(target, Gpid(1)),
            other => panic!("expected NeedFull, got {other:?}"),
        }
    }

    #[test]
    fn lazy_mode_materializes_diff_on_demand() {
        let mut cfg = DsmConfig {
            page_size: 64,
            ..DsmConfig::test_small()
        };
        cfg.lazy_diffs = true;
        let mut c = ProcCore::new(cfg, Gpid(1), DsmStats::new_shared(), Gpid(1));
        two_proc_team(&mut c, 0);
        let _ = c.plan_access(0, false);
        let _ = c.serve_page(0); // make shared
        let AccessPlan::Ready { buf, .. } = c.plan_access(0, true) else {
            panic!()
        };
        buf.store(4, 11);
        let rec = c.close_interval().unwrap();
        assert_eq!(rec.pages, vec![0]);
        assert!(c.diffs.is_empty(), "lazy: no diff yet");
        assert!(c.pending_twins.contains_key(&0));
        // A diff request forces materialization.
        let Msg::DiffRep { diffs } = c.serve_diffs(&[(0, 1)]) else {
            panic!()
        };
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].2.words(), 1);
        assert!(c.pending_twins.is_empty());
    }

    #[test]
    fn lazy_mode_flushes_before_rewrite() {
        let mut cfg = DsmConfig {
            page_size: 64,
            ..DsmConfig::test_small()
        };
        cfg.lazy_diffs = true;
        let mut c = ProcCore::new(cfg, Gpid(1), DsmStats::new_shared(), Gpid(1));
        two_proc_team(&mut c, 0);
        let _ = c.plan_access(0, false);
        let _ = c.serve_page(0);
        let AccessPlan::Ready { buf, .. } = c.plan_access(0, true) else {
            panic!()
        };
        buf.store(4, 11);
        c.close_interval().unwrap();
        // Second interval writes the page again: pending twin must flush first.
        let AccessPlan::Ready { buf, .. } = c.plan_access(0, true) else {
            panic!()
        };
        buf.store(5, 12);
        assert!(c.diffs.contains_key(&DiffKey { page: 0, seq: 1 }));
        c.close_interval().unwrap();
        let Msg::DiffRep { diffs } = c.serve_diffs(&[(0, 1), (0, 2)]) else {
            panic!()
        };
        assert_eq!(diffs.len(), 2);
    }

    #[test]
    fn serve_page_without_copy_redirects() {
        let mut c = core();
        c.gpid = Gpid(2);
        c.default_owner = Gpid(1);
        c.ensure_pages(1);
        let Msg::PageRep {
            redirect, words, ..
        } = c.serve_page(0)
        else {
            panic!()
        };
        assert_eq!(redirect, Some(Gpid(1)));
        assert!(words.is_empty());
    }

    #[test]
    fn lock_manager_grant_queue_release() {
        let mut c = core();
        let (tx1, rx1) = crossbeam_channel::bounded(1);
        let g = c.lock_acquire(7, Gpid(10), LockWaiter::Local(tx1));
        assert!(
            matches!(g, Some(LockGrant::Local(_, None))),
            "first grant, no prev"
        );
        if let Some(LockGrant::Local(s, prev)) = g {
            s.send(prev).unwrap();
        }
        assert_eq!(rx1.recv().unwrap(), None);
        // Second acquire queues.
        let (tx2, rx2) = crossbeam_channel::bounded(1);
        assert!(c
            .lock_acquire(7, Gpid(11), LockWaiter::Local(tx2))
            .is_none());
        // Release grants to the waiter with prev = first holder.
        match c.lock_release(7) {
            Some(LockGrant::Local(s, prev)) => {
                assert_eq!(prev, Some(Gpid(10)));
                s.send(prev).unwrap();
            }
            other => panic!("expected local grant, got {:?}", other.is_some()),
        }
        assert_eq!(rx2.recv().unwrap(), Some(Gpid(10)));
        assert!(c.lock_release(7).is_none(), "empty queue");
    }

    #[test]
    fn gc_commit_resets_everything() {
        let mut c = core();
        two_proc_team(&mut c, 0);
        let _ = c.plan_access(0, false);
        let _ = c.serve_page(0);
        let AccessPlan::Ready { buf, .. } = c.plan_access(0, true) else {
            panic!()
        };
        buf.store(0, 1);
        c.close_interval().unwrap();
        assert!(!c.records.is_empty());
        assert!(!c.diffs.is_empty());

        let new_team = Team::new(1, vec![Gpid(1), Gpid(2), Gpid(3)]);
        let dir = vec![Gpid(1)];
        c.gc_commit(1, new_team.clone(), 0, &dir, &[]);
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.team, new_team);
        assert!(c.records.is_empty());
        assert!(c.diffs.is_empty());
        assert_eq!(c.vc.len(), 3);
        assert_eq!(c.pages.guard(0).state, PageState::Read);
        assert!(c.pages.guard(0).twin.is_none());
        assert_eq!(c.pages.guard(0).applied.sum(), 0);
    }

    #[test]
    fn gc_commit_drops_incomplete() {
        let mut c = core();
        two_proc_team(&mut c, 0);
        let _ = c.plan_access(0, false);
        let new_team = Team::new(1, vec![Gpid(1), Gpid(2)]);
        c.gc_commit(1, new_team, 0, &[Gpid(2)], &[0]);
        assert!(c.pages.guard(0).data.is_none());
        assert_eq!(c.pages.guard(0).state, PageState::Invalid);
        assert_eq!(c.pages.guard(0).owner, Gpid(2));
    }

    #[test]
    fn gc_report_lists_held_pages() {
        let mut c = core();
        two_proc_team(&mut c, 0);
        let _ = c.plan_access(2, false);
        let report = c.gc_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].page, 2);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut c = core();
        let AccessPlan::Ready { buf, .. } = c.plan_access(1, true) else {
            panic!()
        };
        buf.store(0, 77);
        let pages = c.export_pages();
        let mut c2 = core();
        c2.import_pages(&pages);
        let AccessPlan::Ready { buf, .. } = c2.plan_access(1, false) else {
            panic!()
        };
        assert_eq!(buf.load(0), 77);
    }

    #[test]
    fn consistency_bytes_trigger_gc() {
        let mut c = core();
        c.cfg.gc_diff_threshold = 10;
        assert!(!c.gc_due());
        c.consistency_bytes = 11;
        assert!(c.gc_due());
    }
}
