//! Interval records — the unit of consistency information exchanged at
//! synchronization points.
//!
//! Closing an interval at process `pid` produces one [`Record`]: the
//! interval's sequence number, the creator's vector clock at close time,
//! and the list of pages written (the write notices). Records flow:
//!
//! * lock grant: the releaser sends the acquirer every record the
//!   acquirer has not seen;
//! * barrier / join: every process sends its new records to the
//!   manager, which redistributes the union at release;
//! * GC: records let the master compute, for every page, which writes a
//!   complete copy must contain.

use crate::types::{PageId, Pid, Seq, Vc};
use nowmp_util::wire::{Dec, Enc, Wire, WireError};

/// One closed interval's consistency record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Creator's pid (in the creating epoch).
    pub pid: Pid,
    /// The interval sequence number at the creator.
    pub seq: Seq,
    /// Creator's vector clock at interval close (captures
    /// happens-before; its sum is the diff application sort key).
    pub vc: Vc,
    /// Pages written during the interval (write notices).
    pub pages: Vec<PageId>,
}

impl Record {
    /// Causal sort key: strictly increases along happens-before.
    pub fn vcsum(&self) -> u64 {
        self.vc.sum()
    }
}

impl Wire for Record {
    fn enc(&self, e: &mut Enc) {
        e.put_u16(self.pid);
        e.put_u32(self.seq);
        self.vc.enc(e);
        e.put_u32_slice(&self.pages);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(Record {
            pid: d.get_u16()?,
            seq: d.get_u32()?,
            vc: Vc::dec(d)?,
            pages: d.get_u32_vec()?,
        })
    }
}

/// A process's store of every record known this epoch (its own and
/// received ones), deduplicated by `(pid, seq)`.
#[derive(Debug, Default)]
pub struct RecordStore {
    records: Vec<Record>,
}

impl RecordStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// All records.
    pub fn all(&self) -> &[Record] {
        &self.records
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Insert unless `(pid, seq)` is already present. Returns whether
    /// the record was new.
    pub fn insert(&mut self, rec: Record) -> bool {
        if self.contains(rec.pid, rec.seq) {
            return false;
        }
        self.records.push(rec);
        true
    }

    /// Is `(pid, seq)` present?
    pub fn contains(&self, pid: Pid, seq: Seq) -> bool {
        self.records.iter().any(|r| r.pid == pid && r.seq == seq)
    }

    /// Records the holder of clock `vc` has not seen (i.e. `seq >
    /// vc[pid]`). This is exactly the set a lock releaser must forward.
    pub fn newer_than(&self, vc: &Vc) -> Vec<Record> {
        self.records
            .iter()
            .filter(|r| r.seq > vc.get(r.pid))
            .cloned()
            .collect()
    }

    /// Drop everything (garbage collection).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// For every page, the per-pid maximum interval that wrote it — the
    /// "needed" clock a complete copy must dominate. Used by GC.
    pub fn page_needs(&self) -> std::collections::HashMap<PageId, Vc> {
        let mut needs: std::collections::HashMap<PageId, Vc> = std::collections::HashMap::new();
        for r in &self.records {
            for &p in &r.pages {
                needs.entry(p).or_default().raise(r.pid, r.seq);
            }
        }
        needs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pid: Pid, seq: Seq, pages: &[PageId]) -> Record {
        let mut vc = Vc::new(4);
        vc.set(pid, seq);
        Record {
            pid,
            seq,
            vc,
            pages: pages.to_vec(),
        }
    }

    #[test]
    fn insert_dedups() {
        let mut s = RecordStore::new();
        assert!(s.insert(rec(0, 1, &[5])));
        assert!(!s.insert(rec(0, 1, &[5])));
        assert!(s.insert(rec(0, 2, &[5])));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn newer_than_filters() {
        let mut s = RecordStore::new();
        s.insert(rec(0, 1, &[1]));
        s.insert(rec(0, 2, &[2]));
        s.insert(rec(1, 1, &[3]));
        let mut vc = Vc::new(2);
        vc.set(0, 1);
        let newer = s.newer_than(&vc);
        assert_eq!(newer.len(), 2);
        assert!(newer.iter().any(|r| r.pid == 0 && r.seq == 2));
        assert!(newer.iter().any(|r| r.pid == 1 && r.seq == 1));
    }

    #[test]
    fn page_needs_takes_max() {
        let mut s = RecordStore::new();
        s.insert(rec(0, 1, &[7]));
        s.insert(rec(0, 3, &[7]));
        s.insert(rec(1, 2, &[7, 8]));
        let needs = s.page_needs();
        let n7 = &needs[&7];
        assert_eq!(n7.get(0), 3);
        assert_eq!(n7.get(1), 2);
        let n8 = &needs[&8];
        assert_eq!(n8.get(0), 0);
        assert_eq!(n8.get(1), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = RecordStore::new();
        s.insert(rec(0, 1, &[1]));
        s.clear();
        assert!(s.is_empty());
        assert!(s.page_needs().is_empty());
    }

    #[test]
    fn record_wire_roundtrip() {
        let r = rec(3, 9, &[1, 2, 3]);
        assert_eq!(Record::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn vcsum_reflects_clock() {
        let r = rec(1, 5, &[]);
        assert_eq!(r.vcsum(), 5);
    }
}
