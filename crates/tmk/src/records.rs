//! Interval records — the unit of consistency information exchanged at
//! synchronization points.
//!
//! Closing an interval at process `pid` produces one [`Record`]: the
//! interval's sequence number, the creator's vector clock at close time,
//! and the list of pages written (the write notices). Records flow:
//!
//! * lock grant: the releaser sends the acquirer every record the
//!   acquirer has not seen;
//! * barrier / join: every process sends its new records to the
//!   manager, which redistributes the union at release;
//! * GC: records let the master compute, for every page, which writes a
//!   complete copy must contain.

use crate::types::{PageId, Pid, Seq, Vc};
use nowmp_util::wire::{Dec, Enc, Encoding, Wire, WireError};

/// Hard ceiling on pages carried by one encoded page set (decode-side
/// sanity bound, same order as the `DirRle` guard).
const MAX_PAGES: usize = 1 << 24;

/// A write-notice page set as contiguous interval runs: `(start, len)`
/// pairs. Worksharing loops dirty contiguous page blocks, so a join's
/// notice payload in run form scales with dirty *regions* rather than
/// dirty pages — the compact encoding that lifts the fork-broadcast
/// payload off the master's link.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageRuns {
    /// `(first_page, run_length)` pairs, ascending and non-overlapping.
    pub runs: Vec<(PageId, u32)>,
}

impl PageRuns {
    /// Interval-encode `pages`. Returns `None` unless the list is
    /// strictly ascending (the canonical order [`Record`]s are built
    /// with) — arbitrary orders fall back to the flat wire form so
    /// encode→decode stays byte-identical for any input.
    pub fn from_pages(pages: &[PageId]) -> Option<Self> {
        let mut runs: Vec<(PageId, u32)> = Vec::new();
        for &p in pages {
            // Widen before adding: a run ending at `u32::MAX` must not
            // overflow the comparison (debug panic / release wrap).
            match runs.last_mut() {
                Some((start, len)) if p as u64 == *start as u64 + *len as u64 => *len += 1,
                Some((start, len)) if (p as u64) > *start as u64 + *len as u64 => runs.push((p, 1)),
                None => runs.push((p, 1)),
                _ => return None, // not strictly ascending
            }
        }
        Some(PageRuns { runs })
    }

    /// Expand back to the page list (ascending).
    pub fn to_pages(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.total());
        for &(start, len) in &self.runs {
            // u64 iteration: a run ending at `u32::MAX` must not
            // overflow the range bound.
            out.extend((start as u64..start as u64 + len as u64).map(|p| p as PageId));
        }
        out
    }

    /// Total pages covered.
    pub fn total(&self) -> usize {
        self.runs.iter().map(|&(_, n)| n as usize).sum()
    }
}

/// Wire size of the *flat* page-set encoding (count prefix + one `u32`
/// per page) — the baseline the hybrid encoder never exceeds.
pub fn flat_pages_wire_bytes(pages: &[PageId]) -> usize {
    4 + 4 * pages.len()
}

/// Encode a page set, choosing per-set between the flat form and the
/// interval-run form — whichever is smaller. The mode rides in the low
/// bit of the count word, so the hybrid is never larger than flat.
/// Under [`Encoding::Flat`] the flat form is always emitted (the faithful
/// 1999 payload sizes the Table 1/2 calibration pins assume).
pub fn enc_pages(pages: &[PageId], e: &mut Enc) {
    let flat = |e: &mut Enc| {
        e.put_u32((pages.len() as u32) << 1);
        for &p in pages {
            e.put_u32(p);
        }
    };
    if e.encoding() == Encoding::Runs {
        if let Some(r) = PageRuns::from_pages(pages) {
            // Runs cost 8 bytes each vs 4 per flat page: only worth it
            // when the set is at least half contiguous.
            if 8 * r.runs.len() < 4 * pages.len() {
                e.put_u32(((r.runs.len() as u32) << 1) | 1);
                for &(start, len) in &r.runs {
                    e.put_u32(start);
                    e.put_u32(len);
                }
                return;
            }
        }
    }
    flat(e);
}

/// Decode a page set written by [`enc_pages`].
pub fn dec_pages(d: &mut Dec<'_>) -> Result<Vec<PageId>, WireError> {
    let head = d.get_u32()?;
    let n = (head >> 1) as usize;
    if head & 1 == 0 {
        if n > MAX_PAGES || n.saturating_mul(4) > d.remaining() {
            return Err(WireError::BadLength {
                what: "page set (flat)",
                len: n,
            });
        }
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            pages.push(d.get_u32()?);
        }
        Ok(pages)
    } else {
        if n.saturating_mul(8) > d.remaining() {
            return Err(WireError::BadLength {
                what: "page set (runs)",
                len: n,
            });
        }
        let mut pages = Vec::new();
        for _ in 0..n {
            let start = d.get_u32()?;
            let len = d.get_u32()?;
            if len == 0
                || pages.len() + len as usize > MAX_PAGES
                || (start as u64 + len as u64 - 1) > u32::MAX as u64
            {
                return Err(WireError::BadLength {
                    what: "page run",
                    len: len as usize,
                });
            }
            // Iterate in u64: a run ending exactly at `u32::MAX` passes
            // the guard but `start + len` itself would overflow.
            pages.extend((start as u64..start as u64 + len as u64).map(|p| p as PageId));
        }
        Ok(pages)
    }
}

/// One closed interval's consistency record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Creator's pid (in the creating epoch).
    pub pid: Pid,
    /// The interval sequence number at the creator.
    pub seq: Seq,
    /// Creator's vector clock at interval close (captures
    /// happens-before; its sum is the diff application sort key).
    pub vc: Vc,
    /// Pages written during the interval (write notices), ascending.
    pub pages: Vec<PageId>,
}

impl Record {
    /// Causal sort key: strictly increases along happens-before.
    pub fn vcsum(&self) -> u64 {
        self.vc.sum()
    }

    /// Wire size this record would have with the pre-RLE flat page
    /// encoding (diagnostics / size-bound tests).
    pub fn flat_wire_bytes(&self) -> usize {
        2 + 4 + (4 + 4 * self.vc.len()) + flat_pages_wire_bytes(&self.pages)
    }
}

impl Wire for Record {
    fn enc(&self, e: &mut Enc) {
        e.put_u16(self.pid);
        e.put_u32(self.seq);
        self.vc.enc(e);
        enc_pages(&self.pages, e);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(Record {
            pid: d.get_u16()?,
            seq: d.get_u32()?,
            vc: Vc::dec(d)?,
            pages: dec_pages(d)?,
        })
    }
}

/// A batch of records as shipped at forks, joins, barriers and lock
/// transfers: the count-prefixed sequence of [`Record`]s whose page
/// notices use the hybrid interval encoding. This is the canonical wire
/// form for every `records` field of [`crate::msg::Msg`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecordSet(pub Vec<Record>);

impl RecordSet {
    /// Encode a borrowed record slice in the `RecordSet` wire form
    /// (what [`crate::msg::Msg`] uses, avoiding an owning clone).
    pub fn enc_slice(records: &[Record], e: &mut Enc) {
        e.put_seq(records);
    }

    /// Decode a `RecordSet` wire form into its inner vector.
    pub fn dec_vec(d: &mut Dec<'_>) -> Result<Vec<Record>, WireError> {
        Ok(Self::dec(d)?.0)
    }

    /// Encoded size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.to_wire().len()
    }

    /// Encoded size with the pre-RLE flat page encoding.
    pub fn flat_wire_bytes(&self) -> usize {
        4 + self.0.iter().map(Record::flat_wire_bytes).sum::<usize>()
    }
}

impl Wire for RecordSet {
    fn enc(&self, e: &mut Enc) {
        e.put_seq(&self.0);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(RecordSet(d.get_seq()?))
    }
}

/// A process's store of every record known this epoch (its own and
/// received ones), deduplicated by `(pid, seq)`.
#[derive(Debug, Default)]
pub struct RecordStore {
    records: Vec<Record>,
}

impl RecordStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// All records.
    pub fn all(&self) -> &[Record] {
        &self.records
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Insert unless `(pid, seq)` is already present. Returns whether
    /// the record was new.
    pub fn insert(&mut self, rec: Record) -> bool {
        if self.contains(rec.pid, rec.seq) {
            return false;
        }
        self.records.push(rec);
        true
    }

    /// Is `(pid, seq)` present?
    pub fn contains(&self, pid: Pid, seq: Seq) -> bool {
        self.records.iter().any(|r| r.pid == pid && r.seq == seq)
    }

    /// Records the holder of clock `vc` has not seen (i.e. `seq >
    /// vc[pid]`). This is exactly the set a lock releaser must forward.
    pub fn newer_than(&self, vc: &Vc) -> Vec<Record> {
        self.records
            .iter()
            .filter(|r| r.seq > vc.get(r.pid))
            .cloned()
            .collect()
    }

    /// Drop everything (garbage collection).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// For every page, the per-pid maximum interval that wrote it — the
    /// "needed" clock a complete copy must dominate. Used by GC.
    pub fn page_needs(&self) -> std::collections::HashMap<PageId, Vc> {
        let mut needs: std::collections::HashMap<PageId, Vc> = std::collections::HashMap::new();
        for r in &self.records {
            for &p in &r.pages {
                needs.entry(p).or_default().raise(r.pid, r.seq);
            }
        }
        needs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pid: Pid, seq: Seq, pages: &[PageId]) -> Record {
        let mut vc = Vc::new(4);
        vc.set(pid, seq);
        Record {
            pid,
            seq,
            vc,
            pages: pages.to_vec(),
        }
    }

    #[test]
    fn insert_dedups() {
        let mut s = RecordStore::new();
        assert!(s.insert(rec(0, 1, &[5])));
        assert!(!s.insert(rec(0, 1, &[5])));
        assert!(s.insert(rec(0, 2, &[5])));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn newer_than_filters() {
        let mut s = RecordStore::new();
        s.insert(rec(0, 1, &[1]));
        s.insert(rec(0, 2, &[2]));
        s.insert(rec(1, 1, &[3]));
        let mut vc = Vc::new(2);
        vc.set(0, 1);
        let newer = s.newer_than(&vc);
        assert_eq!(newer.len(), 2);
        assert!(newer.iter().any(|r| r.pid == 0 && r.seq == 2));
        assert!(newer.iter().any(|r| r.pid == 1 && r.seq == 1));
    }

    #[test]
    fn page_needs_takes_max() {
        let mut s = RecordStore::new();
        s.insert(rec(0, 1, &[7]));
        s.insert(rec(0, 3, &[7]));
        s.insert(rec(1, 2, &[7, 8]));
        let needs = s.page_needs();
        let n7 = &needs[&7];
        assert_eq!(n7.get(0), 3);
        assert_eq!(n7.get(1), 2);
        let n8 = &needs[&8];
        assert_eq!(n8.get(0), 0);
        assert_eq!(n8.get(1), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s = RecordStore::new();
        s.insert(rec(0, 1, &[1]));
        s.clear();
        assert!(s.is_empty());
        assert!(s.page_needs().is_empty());
    }

    #[test]
    fn record_wire_roundtrip() {
        let r = rec(3, 9, &[1, 2, 3]);
        assert_eq!(Record::from_wire(&r.to_wire()).unwrap(), r);
    }

    #[test]
    fn vcsum_reflects_clock() {
        let r = rec(1, 5, &[]);
        assert_eq!(r.vcsum(), 5);
    }

    #[test]
    fn page_runs_compress_contiguous_blocks() {
        let pages: Vec<PageId> = (100..612).collect();
        let runs = PageRuns::from_pages(&pages).unwrap();
        assert_eq!(runs.runs, vec![(100, 512)]);
        assert_eq!(runs.to_pages(), pages);
        assert_eq!(runs.total(), 512);
        // One 512-page run encodes in 12 bytes instead of 2052.
        let mut e = Enc::new();
        enc_pages(&pages, &mut e);
        assert_eq!(e.len(), 12);
        assert!(e.len() <= flat_pages_wire_bytes(&pages));
    }

    #[test]
    fn unsorted_pages_fall_back_to_flat() {
        let pages = vec![9, 3, 7];
        assert!(PageRuns::from_pages(&pages).is_none());
        let mut e = Enc::new();
        enc_pages(&pages, &mut e);
        assert_eq!(e.len(), flat_pages_wire_bytes(&pages));
        let back = dec_pages(&mut Dec::new(&e.finish())).unwrap();
        assert_eq!(back, pages);
    }

    #[test]
    fn duplicate_pages_fall_back_to_flat() {
        let pages = vec![4, 4, 5];
        assert!(PageRuns::from_pages(&pages).is_none());
        let mut e = Enc::new();
        enc_pages(&pages, &mut e);
        let back = dec_pages(&mut Dec::new(&e.finish())).unwrap();
        assert_eq!(back, pages);
    }

    #[test]
    fn sparse_ascending_pages_stay_flat() {
        // Strictly ascending but nowhere contiguous: runs would cost
        // 8 bytes per page, so the hybrid must pick the flat form.
        let pages: Vec<PageId> = (0..64).map(|i| i * 10).collect();
        let mut e = Enc::new();
        enc_pages(&pages, &mut e);
        assert_eq!(e.len(), flat_pages_wire_bytes(&pages));
    }

    #[test]
    fn page_ids_at_u32_max_roundtrip() {
        // A run ending exactly at u32::MAX must neither overflow the
        // encoder's run grouping nor the decoder's expansion.
        let top: Vec<PageId> = (u32::MAX - 511..=u32::MAX).collect();
        let runs = PageRuns::from_pages(&top).unwrap();
        assert_eq!(runs.runs, vec![(u32::MAX - 511, 512)]);
        assert_eq!(runs.to_pages(), top);
        let mut e = Enc::new();
        enc_pages(&top, &mut e);
        let back = dec_pages(&mut Dec::new(&e.finish())).unwrap();
        assert_eq!(back, top);
        // Wrap-around input (MAX then 0) is simply "not ascending":
        // flat fallback, exact round-trip, no panic.
        let wrap = vec![u32::MAX, 0];
        assert!(PageRuns::from_pages(&wrap).is_none());
        let mut e = Enc::new();
        enc_pages(&wrap, &mut e);
        assert_eq!(dec_pages(&mut Dec::new(&e.finish())).unwrap(), wrap);
        // A hand-built single run (u32::MAX, 1) decodes to [u32::MAX].
        let mut e = Enc::new();
        e.put_u32((1 << 1) | 1);
        e.put_u32(u32::MAX);
        e.put_u32(1);
        assert_eq!(
            dec_pages(&mut Dec::new(&e.finish())).unwrap(),
            vec![u32::MAX]
        );
    }

    #[test]
    fn zero_length_run_rejected_on_decode() {
        let mut e = Enc::new();
        e.put_u32((1 << 1) | 1); // one run, run mode
        e.put_u32(5);
        e.put_u32(0); // len 0: never produced by the encoder
        assert!(dec_pages(&mut Dec::new(&e.finish())).is_err());
    }

    #[test]
    fn record_set_roundtrips_and_never_beats_flat() {
        let set = RecordSet(vec![
            rec(0, 1, &(0..300).collect::<Vec<_>>()),
            rec(1, 2, &[7, 9, 1000]),
            rec(2, 3, &[]),
        ]);
        let back = RecordSet::from_wire(&set.to_wire()).unwrap();
        assert_eq!(set, back);
        assert!(
            set.wire_bytes() <= set.flat_wire_bytes(),
            "hybrid {} > flat {}",
            set.wire_bytes(),
            set.flat_wire_bytes()
        );
        // The contiguous 300-page notice dominates the flat size; runs
        // should cut the batch by an order of magnitude.
        assert!(set.wire_bytes() * 10 < set.flat_wire_bytes());
    }
}

#[cfg(test)]
mod rle_proptests {
    use super::*;
    use proptest::prelude::*;

    fn rec_with(pages: Vec<PageId>, pid: Pid, seq: Seq) -> Record {
        let mut vc = Vc::new(4);
        vc.set(pid, seq.max(1));
        Record {
            pid,
            seq: seq.max(1),
            vc,
            pages,
        }
    }

    proptest! {
        /// Arbitrary page lists (any order, duplicates allowed): decode
        /// reproduces the exact sequence and the hybrid never exceeds
        /// the flat size.
        #[test]
        fn prop_page_set_roundtrip_any_order(
            pages in proptest::collection::vec(any::<u32>(), 0..300)
        ) {
            let mut e = Enc::new();
            enc_pages(&pages, &mut e);
            let buf = e.finish();
            prop_assert!(buf.len() <= flat_pages_wire_bytes(&pages));
            let mut d = Dec::new(&buf);
            let back = dec_pages(&mut d).unwrap();
            prop_assert_eq!(back, pages);
            prop_assert!(d.is_done());
        }

        /// Sorted-deduped sets (the canonical record shape): same
        /// round-trip and size bound, exercising the run path.
        #[test]
        fn prop_sorted_page_set_roundtrip(
            raw in proptest::collection::vec(0u32..5000, 0..300)
        ) {
            let mut pages = raw;
            pages.sort_unstable();
            pages.dedup();
            let mut e = Enc::new();
            enc_pages(&pages, &mut e);
            let buf = e.finish();
            prop_assert!(buf.len() <= flat_pages_wire_bytes(&pages));
            let back = dec_pages(&mut Dec::new(&buf)).unwrap();
            prop_assert_eq!(back, pages);
        }

        /// Whole RecordSets round-trip through the wire and respect the
        /// flat-size ceiling (the satellite's RLE wire-format pin).
        #[test]
        fn prop_record_set_roundtrip(
            specs in proptest::collection::vec(
                (0u16..4, 1u32..100, proptest::collection::vec(0u32..4096, 0..64)),
                0..8
            )
        ) {
            let set = RecordSet(
                specs
                    .into_iter()
                    .map(|(pid, seq, mut pages)| {
                        pages.sort_unstable();
                        pages.dedup();
                        rec_with(pages, pid, seq)
                    })
                    .collect(),
            );
            let back = RecordSet::from_wire(&set.to_wire()).unwrap();
            prop_assert_eq!(&back, &set);
            prop_assert!(set.wire_bytes() <= set.flat_wire_bytes());
        }

        /// Garbage never panics the page-set decoder.
        #[test]
        fn prop_dec_pages_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = dec_pages(&mut Dec::new(&buf));
            let _ = RecordSet::from_wire(&buf);
        }
    }
}
