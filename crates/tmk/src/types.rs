//! Core identifier types, vector timestamps, and team descriptors.
//!
//! Terminology follows TreadMarks / the paper:
//!
//! * a **pid** is a process's logical rank in the current team (0 is
//!   always the master). Pids are *reassigned* at adaptation points;
//! * a **gpid** ([`nowmp_net::Gpid`]) names a process instance forever;
//! * an **interval** is the span between two consecutive releases at one
//!   process; intervals are numbered per process by a [`Seq`];
//! * a **vector timestamp** ([`Vc`]) maps each pid to the highest
//!   interval of that process known (or applied);
//! * an **epoch** counts garbage collections. All consistency metadata
//!   (intervals, diffs, write notices, vector clocks) lives within one
//!   epoch; GC resets it, which is what makes adaptation cheap.

use nowmp_net::Gpid;
use nowmp_util::wire::{Dec, Enc, Encoding, Wire, WireError};

/// Logical process rank within the current team.
pub type Pid = u16;

/// Interval sequence number (per process, per epoch).
pub type Seq = u32;

/// Page index within the global shared address space.
pub type PageId = u32;

/// Slot (8-byte word) index within the global shared address space.
pub type Addr = u64;

/// Garbage-collection epoch.
pub type Epoch = u32;

/// A vector timestamp: `vc[pid] =` highest interval seq of `pid` known.
///
/// The *sum* of the entries is a strictly monotone function along
/// happens-before, so sorting by [`Vc::sum`] linearizes causality —
/// concurrent entries compare arbitrarily, which is fine because
/// concurrent diffs of data-race-free programs touch disjoint words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Vc(Vec<Seq>);

impl Vc {
    /// All-zero vector clock for `n` processes.
    pub fn new(n: usize) -> Self {
        Vc(vec![0; n])
    }

    /// Number of process entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when sized for zero processes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Entry for `pid` (0 when out of range — a process that did not
    /// exist has performed no intervals).
    #[inline]
    pub fn get(&self, pid: Pid) -> Seq {
        self.0.get(pid as usize).copied().unwrap_or(0)
    }

    /// Set entry for `pid`, growing as needed.
    pub fn set(&mut self, pid: Pid, seq: Seq) {
        if self.0.len() <= pid as usize {
            self.0.resize(pid as usize + 1, 0);
        }
        self.0[pid as usize] = seq;
    }

    /// Raise entry for `pid` to at least `seq`.
    pub fn raise(&mut self, pid: Pid, seq: Seq) {
        if self.get(pid) < seq {
            self.set(pid, seq);
        }
    }

    /// Element-wise maximum with `other`.
    pub fn merge(&mut self, other: &Vc) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &o) in other.0.iter().enumerate() {
            if self.0[i] < o {
                self.0[i] = o;
            }
        }
    }

    /// True when every entry of `self` is ≥ the matching entry of `other`.
    pub fn dominates(&self, other: &Vc) -> bool {
        for (i, &o) in other.0.iter().enumerate() {
            if o > 0 && self.0.get(i).copied().unwrap_or(0) < o {
                return false;
            }
        }
        true
    }

    /// Sum of all entries — a linear extension of happens-before.
    pub fn sum(&self) -> u64 {
        self.0.iter().map(|&s| s as u64).sum()
    }

    /// Iterate `(pid, seq)` pairs with non-zero seq.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Pid, Seq)> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0)
            .map(|(i, &s)| (i as Pid, s))
    }

    /// Access the raw entries.
    pub fn as_slice(&self) -> &[Seq] {
        &self.0
    }
}

/// Marker bit distinguishing the packed vector-clock form from the
/// flat one in the leading count word. Team sizes never approach
/// 2^31, so a flat encoder can't produce it by accident.
const VC_PACKED: u32 = 0x8000_0000;

impl Wire for Vc {
    /// Under [`Encoding::Flat`] a vector clock is a count-prefixed
    /// `u32` slice — 4 bytes per entry, the 1999 layout the calibrated
    /// cost pins depend on. Under [`Encoding::Runs`] the count word
    /// carries [`VC_PACKED`] and each entry follows as an LEB128
    /// varint: interval sequence numbers are small (they reset every
    /// GC epoch), so a dense n-entry clock shrinks from `4n` to about
    /// `n` bytes — the dominant term in a [`crate::records::Record`],
    /// and therefore in fork payloads and join aggregates, once teams
    /// grow past a handful of ranks. Decoders accept both forms
    /// unconditionally (same contract as the page-run encoding).
    fn enc(&self, e: &mut Enc) {
        if e.encoding() == Encoding::Runs {
            e.put_u32(VC_PACKED | self.0.len() as u32);
            for &x in &self.0 {
                e.put_varu32(x);
            }
        } else {
            e.put_u32_slice(&self.0);
        }
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let head = d.get_u32()?;
        if head & VC_PACKED == 0 {
            // Flat: `head` is the count, entries are fixed-width.
            let n = head as usize;
            if n.saturating_mul(4) > d.remaining() {
                return Err(WireError::BadLength { what: "vc", len: n });
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.get_u32()?);
            }
            Ok(Vc(v))
        } else {
            let n = (head & !VC_PACKED) as usize;
            if n > d.remaining() {
                // Each varint is at least one byte.
                return Err(WireError::BadLength { what: "vc", len: n });
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.get_varu32()?);
            }
            Ok(Vc(v))
        }
    }
}

/// The current set of processes: `members[pid] = gpid`.
///
/// A fresh team (with possibly different size and pid assignment) is
/// installed at every adaptation point; the `epoch` ties protocol
/// messages to the team they were meant for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Team {
    /// GC / adaptation epoch this team belongs to.
    pub epoch: Epoch,
    /// Process instances by pid; index 0 is the master.
    pub members: Vec<Gpid>,
}

impl Team {
    /// Build a team for `epoch` from its member list.
    pub fn new(epoch: Epoch, members: Vec<Gpid>) -> Self {
        Team { epoch, members }
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.members.len()
    }

    /// Gpid of `pid`.
    pub fn gpid(&self, pid: Pid) -> Gpid {
        self.members[pid as usize]
    }

    /// Pid of `gpid`, if a member.
    pub fn pid_of(&self, gpid: Gpid) -> Option<Pid> {
        self.members
            .iter()
            .position(|&g| g == gpid)
            .map(|i| i as Pid)
    }

    /// The master's gpid.
    pub fn master(&self) -> Gpid {
        self.members[0]
    }

    /// Manager pid for lock `id` (TreadMarks statically distributes
    /// lock management round-robin).
    pub fn lock_manager(&self, lock: u32) -> Pid {
        (lock as usize % self.nprocs()) as Pid
    }
}

impl Wire for Team {
    fn enc(&self, e: &mut Enc) {
        e.put_u32(self.epoch);
        e.put_seq(&self.members);
    }
    fn dec(d: &mut Dec<'_>) -> Result<Self, WireError> {
        Ok(Team {
            epoch: d.get_u32()?,
            members: d.get_seq()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_merge_is_lub() {
        let mut a = Vc::new(3);
        a.set(0, 5);
        a.set(2, 1);
        let mut b = Vc::new(3);
        b.set(1, 7);
        b.set(2, 4);
        a.merge(&b);
        assert_eq!(a.as_slice(), &[5, 7, 4]);
        assert!(a.dominates(&b));
    }

    #[test]
    fn vc_dominates_handles_size_mismatch() {
        let mut small = Vc::new(1);
        small.set(0, 9);
        let mut big = Vc::new(4);
        big.set(3, 1);
        assert!(!small.dominates(&big));
        big.merge(&small);
        assert!(big.dominates(&small));
    }

    #[test]
    fn vc_sum_monotone_under_raise() {
        let mut v = Vc::new(4);
        let s0 = v.sum();
        v.raise(2, 3);
        assert!(v.sum() > s0);
        v.raise(2, 1); // no-op, already higher
        assert_eq!(v.get(2), 3);
    }

    #[test]
    fn vc_wire_roundtrip() {
        let mut v = Vc::new(5);
        v.set(1, 10);
        v.set(4, 2);
        let back = Vc::from_wire(&v.to_wire()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn team_lookup() {
        let t = Team::new(3, vec![Gpid(10), Gpid(20), Gpid(30)]);
        assert_eq!(t.nprocs(), 3);
        assert_eq!(t.gpid(1), Gpid(20));
        assert_eq!(t.pid_of(Gpid(30)), Some(2));
        assert_eq!(t.pid_of(Gpid(99)), None);
        assert_eq!(t.master(), Gpid(10));
        assert_eq!(t.lock_manager(7), 1);
    }

    #[test]
    fn team_wire_roundtrip() {
        let t = Team::new(9, vec![Gpid(1), Gpid(4)]);
        assert_eq!(Team::from_wire(&t.to_wire()).unwrap(), t);
    }

    #[test]
    fn iter_nonzero_skips_zeros() {
        let mut v = Vc::new(4);
        v.set(1, 3);
        v.set(3, 1);
        let got: Vec<_> = v.iter_nonzero().collect();
        assert_eq!(got, vec![(1, 3), (3, 1)]);
    }
}
