//! Page storage and per-page protocol metadata.
//!
//! Page payloads are `AtomicU64` words accessed with `Relaxed` ordering
//! everywhere: the application thread reads/writes its elements while a
//! service thread may concurrently snapshot the same page to serve a
//! remote request (page-level false sharing is exactly what the
//! multiple-writer protocol is for). Using atomics for every word makes
//! that pattern well-defined in the Rust memory model; on x86-64 a
//! relaxed atomic load/store compiles to a plain `mov`, so the cost is
//! only the lost vectorization. Cross-thread ordering is provided by the
//! protocol's channels and mutexes, never by the data words themselves.

use crate::types::{Pid, Seq, Vc};
use nowmp_net::Gpid;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Payload of one page: fixed-size array of atomic 8-byte slots.
#[derive(Debug)]
pub struct PageBuf {
    words: Box<[AtomicU64]>,
}

impl PageBuf {
    /// Zero-filled page of `slots` words.
    pub fn new(slots: usize) -> Self {
        let mut v = Vec::with_capacity(slots);
        v.resize_with(slots, || AtomicU64::new(0));
        PageBuf {
            words: v.into_boxed_slice(),
        }
    }

    /// Page initialized from a word slice.
    pub fn from_words(words: &[u64]) -> Self {
        let v: Vec<AtomicU64> = words.iter().map(|&w| AtomicU64::new(w)).collect();
        PageBuf {
            words: v.into_boxed_slice(),
        }
    }

    /// Number of 8-byte slots.
    pub fn slots(&self) -> usize {
        self.words.len()
    }

    /// Relaxed load of slot `i`.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// Relaxed store to slot `i`.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        self.words[i].store(v, Ordering::Relaxed);
    }

    /// Word-atomic snapshot of the whole page.
    pub fn snapshot(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Overwrite the whole page from `words` (must match in length).
    pub fn overwrite(&self, words: &[u64]) {
        assert_eq!(words.len(), self.words.len(), "page size mismatch");
        for (slot, &w) in self.words.iter().zip(words) {
            slot.store(w, Ordering::Relaxed);
        }
    }

    /// Bulk read `dst.len()` slots starting at `offset`. One bounds
    /// check for the whole range; the body is a straight-line
    /// load/store stream the compiler unrolls.
    #[inline]
    pub fn read_range(&self, offset: usize, dst: &mut [u64]) {
        let src = &self.words[offset..offset + dst.len()];
        for (d, s) in dst.iter_mut().zip(src) {
            *d = s.load(Ordering::Relaxed);
        }
    }

    /// Bulk write `src` starting at `offset` (range-checked once, like
    /// [`PageBuf::read_range`]). `#[inline]` so per-run callers
    /// (diff apply) pay a store stream, not a call, per run.
    #[inline]
    pub fn write_range(&self, offset: usize, src: &[u64]) {
        let dst = &self.words[offset..offset + src.len()];
        for (d, &s) in dst.iter().zip(src) {
            d.store(s, Ordering::Relaxed);
        }
    }
}

/// Access state of a page at one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// No usable copy: either no data at all, or a stale copy awaiting
    /// diffs (pending write notices).
    Invalid,
    /// Up-to-date copy; writes must fault (to create a twin).
    Read,
    /// Writable: a twin exists (or the page is still exclusive).
    Write,
}

/// A pending write notice: process `pid`'s interval `seq` modified this
/// page; `vcsum` (the creating interval's vector-clock sum) orders diff
/// application along happens-before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wn {
    /// Creator pid (in the epoch the notice was created).
    pub pid: Pid,
    /// Creator's interval.
    pub seq: Seq,
    /// Vector-clock sum of the creating interval (causal sort key).
    pub vcsum: u64,
}

/// Per-page metadata at one process.
#[derive(Debug)]
pub struct PageMeta {
    /// Access state.
    pub state: PageState,
    /// Local copy, if any. `Invalid` with `Some(data)` is a *stale*
    /// copy that can be repaired with diffs.
    pub data: Option<Arc<PageBuf>>,
    /// Twin snapshot taken at the first write of the current interval.
    pub twin: Option<Vec<u64>>,
    /// Writes reflected in `data`, per pid.
    pub applied: Vc,
    /// Write notices received but not yet applied.
    pub pending: Vec<Wn>,
    /// Directory hint: who certainly has a usable copy.
    pub owner: Gpid,
    /// False until some other process obtained a copy; exclusive pages
    /// skip twinning entirely (TreadMarks' exclusivity optimization).
    pub shared: bool,
    /// Page was written during the currently open interval.
    pub dirty: bool,
    /// We served this never-materialized page as zeros without keeping
    /// a copy; a later local materialization must not be exclusive.
    pub zero_lent: bool,
}

impl PageMeta {
    /// Fresh metadata for an untouched page owned (initially) by `owner`.
    pub fn new(owner: Gpid) -> Self {
        PageMeta {
            state: PageState::Invalid,
            data: None,
            twin: None,
            applied: Vc::default(),
            pending: Vec::new(),
            owner,
            shared: false,
            dirty: false,
            zero_lent: false,
        }
    }

    /// Write notices still unapplied given the `applied` clock.
    pub fn unapplied(&self) -> Vec<Wn> {
        self.pending
            .iter()
            .copied()
            .filter(|w| w.seq > self.applied.get(w.pid))
            .collect()
    }

    /// Record a write notice (idempotent).
    pub fn push_wn(&mut self, wn: Wn) {
        if wn.seq <= self.applied.get(wn.pid) {
            return; // already reflected
        }
        if self
            .pending
            .iter()
            .any(|w| w.pid == wn.pid && w.seq == wn.seq)
        {
            return;
        }
        self.pending.push(wn);
    }

    /// Drop pending notices that `applied` now covers.
    pub fn prune_pending(&mut self) {
        let applied = &self.applied;
        self.pending.retain(|w| w.seq > applied.get(w.pid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagebuf_zeroed_and_rw() {
        let p = PageBuf::new(8);
        assert_eq!(p.slots(), 8);
        assert!(p.snapshot().iter().all(|&w| w == 0));
        p.store(3, 42);
        assert_eq!(p.load(3), 42);
    }

    #[test]
    fn pagebuf_overwrite_and_ranges() {
        let p = PageBuf::new(4);
        p.overwrite(&[1, 2, 3, 4]);
        let mut dst = [0u64; 2];
        p.read_range(1, &mut dst);
        assert_eq!(dst, [2, 3]);
        p.write_range(2, &[9, 9]);
        assert_eq!(p.snapshot(), vec![1, 2, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "page size mismatch")]
    fn overwrite_size_mismatch_panics() {
        PageBuf::new(4).overwrite(&[1, 2]);
    }

    #[test]
    fn snapshot_is_word_consistent_under_concurrent_writes() {
        // A service-thread snapshot racing an app-thread writer must
        // observe whole words only (no tearing). We can't prove
        // atomicity by testing, but we can hammer it: every observed
        // word must be one of the two legal values.
        let p = Arc::new(PageBuf::new(64));
        let w = Arc::clone(&p);
        let writer = std::thread::spawn(move || {
            for _ in 0..2000 {
                for i in 0..64 {
                    w.store(i, 0xAAAA_AAAA_AAAA_AAAA);
                }
                for i in 0..64 {
                    w.store(i, 0x5555_5555_5555_5555);
                }
            }
        });
        for _ in 0..200 {
            for wv in p.snapshot() {
                assert!(
                    wv == 0 || wv == 0xAAAA_AAAA_AAAA_AAAA || wv == 0x5555_5555_5555_5555,
                    "torn word {wv:#x}"
                );
            }
        }
        writer.join().unwrap();
    }

    #[test]
    fn wn_bookkeeping() {
        let mut m = PageMeta::new(Gpid(1));
        m.push_wn(Wn {
            pid: 1,
            seq: 2,
            vcsum: 5,
        });
        m.push_wn(Wn {
            pid: 1,
            seq: 2,
            vcsum: 5,
        }); // dup ignored
        m.push_wn(Wn {
            pid: 2,
            seq: 1,
            vcsum: 3,
        });
        assert_eq!(m.pending.len(), 2);
        m.applied.set(1, 2);
        assert_eq!(m.unapplied().len(), 1);
        m.prune_pending();
        assert_eq!(m.pending.len(), 1);
        assert_eq!(m.pending[0].pid, 2);
        // A WN already covered by `applied` is dropped on arrival.
        m.push_wn(Wn {
            pid: 1,
            seq: 1,
            vcsum: 1,
        });
        assert_eq!(m.pending.len(), 1);
    }
}
