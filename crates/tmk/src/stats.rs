//! DSM-level statistics: the counters behind Table 1 and §5.4.
//!
//! Network-level bytes/messages live in [`nowmp_net::NetStats`]; this
//! module counts protocol events: full-page transfers, diff transfers,
//! faults, lock/barrier operations, GCs. A single [`DsmStats`] is shared
//! by every process of a system (relaxed atomics — exact totals matter,
//! per-event ordering does not).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Shared DSM event counters.
        #[derive(Debug, Default)]
        pub struct DsmStats {
            $($(#[$doc])* pub $name: AtomicU64,)+
        }

        /// Point-in-time copy of [`DsmStats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct DsmSnapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl DsmStats {
            /// Snapshot all counters.
            pub fn snapshot(&self) -> DsmSnapshot {
                DsmSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }
        }

        impl DsmSnapshot {
            /// Difference against an earlier snapshot.
            pub fn since(&self, earlier: &DsmSnapshot) -> DsmSnapshot {
                DsmSnapshot {
                    $($name: self.$name - earlier.$name,)+
                }
            }
        }
    };
}

counters! {
    /// Full pages fetched over the network (Table 1 "Pages (4k)").
    pages_fetched,
    /// Diffs fetched over the network (Table 1 "Diffs").
    diffs_fetched,
    /// Words carried by fetched diffs.
    diff_words,
    /// Read faults taken (slow path entered).
    read_faults,
    /// Write faults taken (twin creations + exclusive upgrades).
    write_faults,
    /// Twin snapshots created.
    twins_created,
    /// Lock acquisitions completed.
    lock_acquires,
    /// Barrier episodes completed (per process arrival).
    barrier_arrivals,
    /// Fork events (master-side count).
    forks,
    /// `Fork`/`JoinInit` broadcast messages forwarded by interior
    /// binomial-tree relays (zero under the flat broadcast).
    bcast_relays,
    /// `JoinArrive` aggregates forwarded upward by interior
    /// binomial-tree ranks (zero under the flat join reduce).
    reduce_relays,
    /// `BarrierRelease` messages forwarded downward by interior
    /// binomial-tree ranks (zero under the flat barrier release).
    release_relays,
    /// Garbage collections run.
    gcs,
    /// Pages fetched specifically during GC completion (step 2).
    gc_fetch_pages,
    /// Pages moved off leaving processes at adaptation.
    leave_pages_moved,
    /// Pages covered by release-phase prefetch requests issued
    /// (zero under the demand data plane).
    prefetch_issued,
    /// Faults satisfied by a completed or in-flight prefetch instead
    /// of a fresh demand round-trip.
    prefetch_hits,
    /// Prefetched pages never faulted before the window rotated, plus
    /// prefetch replies dropped as unusable (redirects, stale plans).
    prefetch_wasted,
    /// Bytes of hot diffs piggybacked on `Fork`/`BarrierRelease`
    /// payloads (sender-side count).
    piggyback_bytes,
}

impl DsmStats {
    /// New shared counter block.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let s = DsmStats::new_shared();
        DsmStats::bump(&s.pages_fetched);
        DsmStats::add(&s.diff_words, 10);
        let a = s.snapshot();
        assert_eq!(a.pages_fetched, 1);
        assert_eq!(a.diff_words, 10);
        DsmStats::bump(&s.pages_fetched);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.pages_fetched, 1);
        assert_eq!(d.diff_words, 0);
    }

    #[test]
    fn default_is_zero() {
        let s = DsmStats::default().snapshot();
        assert_eq!(s, DsmSnapshot::default());
    }
}
